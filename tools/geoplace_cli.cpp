// geoplace command-line driver.
//
// Subcommands:
//   simulate   run the MPC controller over the Section-VII environment and
//              print per-period CSV metrics
//   provision  print the cheapest SLA-feasible placement for one demand
//              snapshot (per data center)
//   game       run the resource-competition game on random providers and
//              report equilibrium quality vs the social optimum
//
// Examples:
//   geoplace_cli simulate --dcs 4 --cities 24 --periods 24 --predictor seasonal
//   geoplace_cli provision --dcs 3 --cities 8 --hour 14
//   geoplace_cli game --players 6 --capacity 150 --epsilon 0.02
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "game/competition.hpp"
#include "dspp/provisioning.hpp"
#include "sim/engine.hpp"

namespace {

using namespace gp;

/// Tiny --key value / --flag parser; unknown keys are fatal (typo safety).
class Args {
 public:
  Args(int argc, char** argv, const std::map<std::string, std::string>& known) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument '%s'\n", key.c_str());
        std::exit(2);
      }
      key = key.substr(2);
      if (!known.count(key)) {
        std::fprintf(stderr, "unknown option --%s\n", key.c_str());
        std::fprintf(stderr, "known options:\n");
        for (const auto& [name, help] : known) {
          std::fprintf(stderr, "  --%-14s %s\n", name.c_str(), help.c_str());
        }
        std::exit(2);
      }
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "1";  // boolean flag
      }
    }
  }

  double number(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  std::string text(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  bool flag(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

dspp::DsppModel build_model(std::size_t dcs, std::size_t cities_count, double sla_ms,
                            double reconfig, double capacity) {
  const auto sites = topology::default_datacenter_sites(dcs);
  const auto& all = topology::us_cities24();
  const std::vector<topology::City> cities(all.begin(),
                                           all.begin() + static_cast<std::ptrdiff_t>(cities_count));
  dspp::DsppModel model;
  model.network = topology::NetworkModel::from_geography(sites, cities);
  model.sla.mu = 100.0;
  model.sla.max_latency_ms = sla_ms;
  model.sla.reservation_ratio = 1.1;
  model.reconfig_cost.assign(dcs, reconfig);
  model.capacity.assign(dcs, capacity);
  return model;
}

int cmd_simulate(const Args& args) {
  const auto dcs = static_cast<std::size_t>(args.number("dcs", 4));
  const auto cities_count = static_cast<std::size_t>(args.number("cities", 24));
  const auto model = build_model(dcs, cities_count, args.number("sla-ms", 60.0),
                                 args.number("reconfig", 0.005),
                                 args.number("capacity", 2000.0));
  const auto& all = topology::us_cities24();
  const std::vector<topology::City> cities(all.begin(),
                                           all.begin() + static_cast<std::ptrdiff_t>(cities_count));
  const auto demand = workload::DemandModel::from_cities(
      cities, args.number("rate-per-capita", 2e-5), workload::DiurnalProfile());
  const workload::ServerPriceModel prices(topology::default_datacenter_sites(dcs),
                                          workload::VmType::kMedium,
                                          workload::ElectricityPriceModel());
  sim::SimulationConfig config;
  config.periods = static_cast<std::size_t>(args.number("periods", 24));
  config.period_hours = args.number("period-hours", 1.0);
  config.noisy_demand = args.flag("noisy");
  config.seed = static_cast<std::uint64_t>(args.number("seed", 1));

  const std::string kind = args.text("predictor", "seasonal");
  std::unique_ptr<control::SeriesPredictor> demand_predictor;
  if (kind == "ar") {
    demand_predictor = std::make_unique<control::ArPredictor>(2, 48);
  } else if (kind == "last") {
    demand_predictor = std::make_unique<control::LastValuePredictor>();
  } else if (kind == "seasonal") {
    demand_predictor = std::make_unique<control::SeasonalNaivePredictor>(
        static_cast<std::size_t>(24.0 / config.period_hours));
  } else {
    std::fprintf(stderr, "unknown predictor '%s' (ar|seasonal|last)\n", kind.c_str());
    return 2;
  }
  control::MpcSettings settings;
  settings.horizon = static_cast<std::size_t>(args.number("horizon", 4));
  control::MpcController controller(model, settings, std::move(demand_predictor),
                                    std::make_unique<control::LastValuePredictor>());
  sim::SimulationEngine engine(model, demand, prices, config);
  const auto summary = engine.run(sim::policy_from(controller));
  summary.write_csv(std::cout);
  std::fprintf(stderr,
               "total cost $%.4f (resource %.4f + reconfig %.4f), mean SLA %.2f%%, "
               "churn %.1f, unsolved periods %d\n",
               summary.total_cost, summary.total_resource_cost, summary.total_reconfig_cost,
               100.0 * summary.mean_compliance, summary.total_churn,
               summary.unsolved_periods);
  return summary.unsolved_periods == 0 ? 0 : 1;
}

int cmd_provision(const Args& args) {
  const auto dcs = static_cast<std::size_t>(args.number("dcs", 4));
  const auto cities_count = static_cast<std::size_t>(args.number("cities", 24));
  const auto model = build_model(dcs, cities_count, args.number("sla-ms", 60.0), 0.0,
                                 args.number("capacity", 2000.0));
  const auto& all = topology::us_cities24();
  const std::vector<topology::City> cities(all.begin(),
                                           all.begin() + static_cast<std::ptrdiff_t>(cities_count));
  const auto demand_model = workload::DemandModel::from_cities(
      cities, args.number("rate-per-capita", 2e-5), workload::DiurnalProfile());
  const workload::ServerPriceModel prices(topology::default_datacenter_sites(dcs),
                                          workload::VmType::kMedium,
                                          workload::ElectricityPriceModel());
  const double hour = args.number("hour", 12.0);
  const dspp::PairIndex pairs(model);
  qp::AdmmSolver solver;
  const auto placement = dspp::min_cost_placement(
      model, pairs, demand_model.mean_rates(hour), prices.server_prices(hour), solver);
  std::printf("dc,site,servers,price_per_server_hour\n");
  const auto sites = topology::default_datacenter_sites(dcs);
  for (std::size_t l = 0; l < dcs; ++l) {
    double servers = 0.0;
    for (const std::size_t p : pairs.pairs_of_datacenter(l)) servers += placement[p];
    std::printf("%zu,%s,%.2f,%.5f\n", l, sites[l].name.c_str(), servers,
                prices.server_price(l, hour));
  }
  return 0;
}

int cmd_game(const Args& args) {
  const auto players = static_cast<int>(args.number("players", 4));
  const double capacity = args.number("capacity", 200.0);
  Rng rng(static_cast<std::uint64_t>(args.number("seed", 1)));
  const topology::NetworkModel network({"dc-cheap", "dc-big"}, {"an0", "an1", "an2"},
                                       {{15.0, 25.0, 35.0}, {100.0, 20.0, 15.0}});
  game::RandomProviderParams params;
  params.horizon = static_cast<std::size_t>(args.number("horizon", 3));
  std::vector<game::ProviderConfig> providers;
  for (int i = 0; i < players; ++i) {
    providers.push_back(game::make_random_provider(network, params, rng));
    for (auto& price : providers.back().price) price[0] = 0.4 * price[1];
  }
  game::GameSettings settings;
  settings.epsilon = args.number("epsilon", 0.02);
  game::CompetitionGame game(std::move(providers),
                             linalg::Vector{capacity, 10.0 * capacity}, settings);
  const auto equilibrium = game.run();
  const auto welfare = game.solve_social_welfare();
  std::printf("players,%d\nbottleneck_capacity,%.1f\niterations,%d\nconverged,%s\n",
              players, capacity, equilibrium.iterations,
              equilibrium.converged ? "yes" : "no");
  std::printf("equilibrium_cost,%.4f\n", equilibrium.total_cost);
  if (welfare.solved) {
    std::printf("social_optimum_cost,%.4f\nefficiency_ratio,%.4f\n", welfare.total_cost,
                game::efficiency_ratio(equilibrium, welfare));
  }
  std::printf("unserved,%.4f\n", equilibrium.total_unserved);
  return equilibrium.converged ? 0 : 1;
}

void usage() {
  std::puts("usage: geoplace_cli <simulate|provision|game> [--option value ...]");
  std::puts("  simulate   MPC controller over the paper's environment, CSV to stdout");
  std::puts("  provision  one-shot cheapest placement for a demand snapshot");
  std::puts("  game       N-provider competition to Nash equilibrium");
  std::puts("run a subcommand with an unknown option (e.g. --help) to list its options");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  try {
    if (command == "simulate") {
      return cmd_simulate(Args(argc, argv,
                               {{"dcs", "data centers (1-5), default 4"},
                                {"cities", "access networks (1-24), default 24"},
                                {"periods", "control periods, default 24"},
                                {"period-hours", "period length, default 1"},
                                {"horizon", "MPC window W, default 4"},
                                {"predictor", "ar|seasonal|last, default seasonal"},
                                {"sla-ms", "latency bound, default 60"},
                                {"reconfig", "c^l, default 0.005"},
                                {"capacity", "C^l servers, default 2000"},
                                {"rate-per-capita", "demand scale, default 2e-5"},
                                {"noisy", "sample NHPP demand"},
                                {"seed", "rng seed, default 1"}}));
    }
    if (command == "provision") {
      return cmd_provision(Args(argc, argv,
                                {{"dcs", "data centers (1-5), default 4"},
                                 {"cities", "access networks (1-24), default 24"},
                                 {"sla-ms", "latency bound, default 60"},
                                 {"capacity", "C^l servers, default 2000"},
                                 {"rate-per-capita", "demand scale, default 2e-5"},
                                 {"hour", "UTC hour of the snapshot, default 12"}}));
    }
    if (command == "game") {
      return cmd_game(Args(argc, argv,
                           {{"players", "competing providers, default 4"},
                            {"capacity", "bottleneck DC capacity, default 200"},
                            {"horizon", "window W, default 3"},
                            {"epsilon", "stability threshold, default 0.02"},
                            {"seed", "rng seed, default 1"}}));
    }
    usage();
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
