#!/usr/bin/env python3
"""Compare two BENCH_*.json files and fail on wall-time regressions.

Usage:
    bench_check.py BASELINE.json CANDIDATE.json [--threshold 0.15]
    bench_check.py --self-test

Walks both JSON trees and compares every numeric leaf whose key ends in
"wall_ms" at the same path. The check fails (exit 1) when any candidate
wall time exceeds the baseline by more than the threshold (default 15%,
sized for wall-clock noise on shared CI boxes). Ratio-style keys
("wall_ratio", "speedup") and counters are reported but never gate.

Times below --floor-ms (default 5 ms) are skipped: at that scale the
scheduler jitter exceeds any real regression.
"""

import argparse
import json
import sys


def walk(tree, path=()):
    """Yields (dotted_path, value) for every numeric leaf."""
    if isinstance(tree, dict):
        for key, value in tree.items():
            yield from walk(value, path + (str(key),))
    elif isinstance(tree, list):
        for index, value in enumerate(tree):
            yield from walk(value, path + (str(index),))
    elif isinstance(tree, (int, float)) and not isinstance(tree, bool):
        yield ".".join(path), float(tree)


def compare(baseline, candidate, threshold, floor_ms):
    """Returns (regressions, rows); rows are (path, base, cand, ratio, gating)."""
    base_leaves = dict(walk(baseline))
    cand_leaves = dict(walk(candidate))
    rows = []
    regressions = []
    for path in sorted(base_leaves.keys() & cand_leaves.keys()):
        if not path.split(".")[-1].endswith("wall_ms"):
            continue
        base, cand = base_leaves[path], cand_leaves[path]
        ratio = cand / base if base > 0 else float("inf")
        gating = base >= floor_ms or cand >= floor_ms
        rows.append((path, base, cand, ratio, gating))
        if gating and cand > base * (1.0 + threshold):
            regressions.append((path, base, cand, ratio))
    return regressions, rows


def run_check(baseline, candidate, threshold, floor_ms, label=""):
    regressions, rows = compare(baseline, candidate, threshold, floor_ms)
    if not rows:
        print(f"bench_check{label}: no comparable wall_ms keys found", file=sys.stderr)
        return 1
    width = max(len(r[0]) for r in rows)
    for path, base, cand, ratio, gating in rows:
        flag = "REGRESSION" if any(path == r[0] for r in regressions) else (
            "ok" if gating else "skipped (< floor)")
        print(f"  {path:<{width}}  {base:10.3f} -> {cand:10.3f} ms  "
              f"x{ratio:5.2f}  {flag}")
    if regressions:
        print(f"bench_check{label}: {len(regressions)} wall-time regression(s) "
              f"beyond {threshold:.0%}", file=sys.stderr)
        return 1
    print(f"bench_check{label}: OK ({len(rows)} wall_ms keys within "
          f"{threshold:.0%})")
    return 0


def self_test():
    baseline = {
        "cpus": 8,
        "game": {"runs": [{"threads": 1, "wall_ms": 120.0, "speedup": 1.0},
                          {"threads": 2, "wall_ms": 70.0, "speedup": 1.71}]},
        "mpc": {"cold": {"wall_ms": 900.0}, "cached": {"wall_ms": 300.0},
                "wall_ratio": 0.33, "tiny": {"wall_ms": 0.5}},
    }
    improved = json.loads(json.dumps(baseline))
    improved["mpc"]["cached"]["wall_ms"] = 250.0
    regressed = json.loads(json.dumps(baseline))
    regressed["game"]["runs"][1]["wall_ms"] = 95.0  # +36%
    noisy_tiny = json.loads(json.dumps(baseline))
    noisy_tiny["mpc"]["tiny"]["wall_ms"] = 4.0  # 8x, but below the 5 ms floor

    failures = 0

    def expect(code, want, what):
        nonlocal failures
        if code != want:
            print(f"self-test FAILED: {what} (exit {code}, want {want})",
                  file=sys.stderr)
            failures += 1

    expect(run_check(baseline, improved, 0.15, 5.0, " [improved]"), 0,
           "an improvement must pass")
    expect(run_check(baseline, regressed, 0.15, 5.0, " [regressed]"), 1,
           "a 36% regression must fail")
    expect(run_check(baseline, regressed, 0.50, 5.0, " [lenient]"), 0,
           "the same diff passes at a 50% threshold")
    expect(run_check(baseline, noisy_tiny, 0.15, 5.0, " [tiny]"), 0,
           "sub-floor timings must not gate")
    expect(run_check({"a": 1}, {"a": 2}, 0.15, 5.0, " [no-keys]"), 1,
           "no wall_ms keys is an error")
    if failures == 0:
        print("bench_check self-test OK")
    return 0 if failures == 0 else 1


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", nargs="?", help="baseline BENCH_*.json")
    parser.add_argument("candidate", nargs="?", help="candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed relative slowdown (default 0.15 = 15%%)")
    parser.add_argument("--floor-ms", type=float, default=5.0,
                        help="ignore timings below this many ms (default 5)")
    parser.add_argument("--self-test", action="store_true",
                        help="run built-in fixtures instead of reading files")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.candidate:
        parser.error("baseline and candidate files are required "
                     "(or use --self-test)")
    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
        with open(args.candidate) as f:
            candidate = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_check: {err}", file=sys.stderr)
        return 2
    return run_check(baseline, candidate, args.threshold, args.floor_ms)


if __name__ == "__main__":
    sys.exit(main())
