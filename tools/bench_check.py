#!/usr/bin/env python3
"""Compare BENCH_*.json baseline/candidate pairs and fail on wall-time regressions.

Usage:
    bench_check.py BASELINE.json CANDIDATE.json [BASELINE2.json CANDIDATE2.json ...]
                   [--threshold 0.15]
    bench_check.py --internal FILE.json [FILE2.json ...]
    bench_check.py --bandwidth-floor GB_S FILE.json [FILE2.json ...]
    bench_check.py --append-history FILE.json [FILE2.json ...]
                   [--history-dir DIR] [--threshold 0.15]
    bench_check.py --self-test

Files are consumed in (baseline, candidate) pairs, so one invocation can
gate several benchmark suites at once (e.g. BENCH_parallel.json and
BENCH_admm.json). For each pair, walks both JSON trees and compares every
numeric leaf at the same path whose key ends in "wall_ms" (lower is better)
or "runs_per_s" / "gb_s" (higher is better). The check fails (exit 1) when
any candidate wall time exceeds its baseline by more than the threshold, or
any candidate throughput falls below its baseline by more than the threshold
(default 15%, sized for wall-clock noise on shared CI boxes). Ratio-style
keys ("wall_ratio", "speedup") and counters are reported but never gate.

--internal checks a single file against ITSELF: every numeric leaf "X_min"
declares a floor for its sibling leaf "X" (e.g. BENCH_sweep.json writes
"thread_scaling_ratio" next to "thread_scaling_ratio_min", BENCH_admm.json
"spmv.vector_speedup" next to "spmv.vector_speedup_min"). This is how
machine-dependent gates travel inside the artifact — the bench decides the
floor (0.0 = not gated on this box), the checker enforces it anywhere.

--bandwidth-floor gates every "*gb_s" leaf in the given files against one
absolute floor in GB/s (e.g. `--bandwidth-floor 5.0 BENCH_admm.json` fails
if any measured bandwidth fell below 5 GB/s). Use it on a box whose memory
system is known; the relative pair/internal modes stay machine-portable.

--append-history accumulates a perf trajectory: for each BENCH_X.json it
appends one JSONL line — the file's manifest (provenance: git sha, build,
host, ...) plus the bench tree itself — to BENCH_X_history.jsonl next to
the bench (or under --history-dir). Before appending, the new results are
gated against the MOST RECENT history line with the ordinary pair rules
(--threshold/--floor-ms); a regression exits 1 and does NOT append, so a
red run can never poison the trajectory baseline. The first entry seeds
the history and always passes.

Times below --floor-ms (default 5 ms) are skipped: at that scale the
scheduler jitter exceeds any real regression.
"""

import argparse
import json
import os
import sys


def strip_manifest(tree, label=""):
    """Removes the flight-recorder "manifest" provenance object from a BENCH
    tree so its fields (threads, capture timings, ...) never participate in
    gating. Validates the header on the way out: a manifest without tool and
    git_sha is malformed and gets a warning (but never fails the check —
    provenance is advisory here)."""
    if not isinstance(tree, dict) or "manifest" not in tree:
        return tree
    manifest = tree["manifest"]
    if not (isinstance(manifest, dict)
            and "tool" in manifest and "git_sha" in manifest):
        print(f"bench_check{label}: malformed manifest (no tool/git_sha)",
              file=sys.stderr)
    return {key: value for key, value in tree.items() if key != "manifest"}


def walk(tree, path=()):
    """Yields (dotted_path, value) for every numeric leaf."""
    if isinstance(tree, dict):
        for key, value in tree.items():
            yield from walk(value, path + (str(key),))
    elif isinstance(tree, list):
        for index, value in enumerate(tree):
            yield from walk(value, path + (str(index),))
    elif isinstance(tree, (int, float)) and not isinstance(tree, bool):
        yield ".".join(path), float(tree)


def leaf_kind(path):
    """Gate direction for a leaf: "time" (lower wins), "throughput" (higher
    wins), or None (not gated). "_min" leaves are internal-mode floors, never
    pair-compared (a raised floor would otherwise read as a regression)."""
    leaf = path.split(".")[-1]
    if leaf.endswith("_min"):
        return None
    if leaf.endswith("wall_ms"):
        return "time"
    if leaf.endswith("runs_per_s") or leaf.endswith("gb_s"):
        return "throughput"
    return None


def compare(baseline, candidate, threshold, floor_ms):
    """Returns (regressions, rows); rows are (path, base, cand, ratio, gating)."""
    base_leaves = dict(walk(baseline))
    cand_leaves = dict(walk(candidate))
    rows = []
    regressions = []
    for path in sorted(base_leaves.keys() & cand_leaves.keys()):
        kind = leaf_kind(path)
        if kind is None:
            continue
        base, cand = base_leaves[path], cand_leaves[path]
        ratio = cand / base if base > 0 else float("inf")
        # The jitter floor only makes sense for times; throughputs always gate.
        gating = kind == "throughput" or base >= floor_ms or cand >= floor_ms
        rows.append((path, base, cand, ratio, gating))
        if not gating:
            continue
        worse = (cand > base * (1.0 + threshold) if kind == "time"
                 else cand < base * (1.0 - threshold))
        if worse:
            regressions.append((path, base, cand, ratio))
    return regressions, rows


def check_internal(tree):
    """Enforces every "X_min" floor against its sibling leaf "X" within one
    tree. Returns (violations, rows); rows are (path, value, floor, ok)."""
    leaves = dict(walk(tree))
    rows = []
    violations = []
    for path in sorted(leaves):
        if not path.endswith("_min"):
            continue
        target = path[: -len("_min")]
        if target not in leaves:
            continue
        value, floor = leaves[target], leaves[path]
        ok = value >= floor
        rows.append((target, value, floor, ok))
        if not ok:
            violations.append((target, value, floor))
    return violations, rows


def check_bandwidth_floor(tree, floor):
    """Gates every "*gb_s" leaf against one absolute floor (GB/s). Returns
    (violations, rows); rows are (path, value, ok)."""
    rows = []
    violations = []
    for path, value in sorted(dict(walk(tree)).items()):
        if not path.split(".")[-1].endswith("gb_s"):
            continue
        ok = value >= floor
        rows.append((path, value, ok))
        if not ok:
            violations.append((path, value))
    return violations, rows


def run_bandwidth_floor_files(paths, floor):
    """Checks each file's gb_s leaves against the absolute floor; worst exit
    code wins. A file with no gb_s leaves is an error (wrong artifact)."""
    worst = 0
    for path in paths:
        try:
            with open(path) as f:
                tree = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_check: {err}", file=sys.stderr)
            return 2
        label = f" [{os.path.basename(path)}]"
        violations, rows = check_bandwidth_floor(strip_manifest(tree, label), floor)
        if not rows:
            print(f"bench_check{label}: no gb_s keys found", file=sys.stderr)
            worst = max(worst, 1)
            continue
        for leaf, value, ok in rows:
            print(f"  {leaf}  {value:.2f} >= {floor:.2f} GB/s  "
                  f"{'ok' if ok else 'VIOLATION'}")
        if violations:
            print(f"bench_check{label}: {len(violations)} bandwidth floor "
                  f"violation(s)", file=sys.stderr)
            worst = max(worst, 1)
        else:
            print(f"bench_check{label}: OK ({len(rows)} bandwidth(s) >= "
                  f"{floor:.2f} GB/s)")
    return worst


def run_internal_files(paths):
    """Checks each file's X >= X_min constraints; worst exit code wins."""
    worst = 0
    for path in paths:
        try:
            with open(path) as f:
                tree = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_check: {err}", file=sys.stderr)
            return 2
        label = f" [{os.path.basename(path)}]"
        violations, rows = check_internal(strip_manifest(tree, label))
        for target, value, floor, ok in rows:
            print(f"  {target}  {value:.3f} >= {floor:.3f}  "
                  f"{'ok' if ok else 'VIOLATION'}")
        if violations:
            print(f"bench_check{label}: {len(violations)} internal floor "
                  f"violation(s)", file=sys.stderr)
            worst = max(worst, 1)
        else:
            print(f"bench_check{label}: OK ({len(rows)} internal floor(s) held)")
    return worst


def run_check(baseline, candidate, threshold, floor_ms, label=""):
    baseline = strip_manifest(baseline, label)
    candidate = strip_manifest(candidate, label)
    regressions, rows = compare(baseline, candidate, threshold, floor_ms)
    if not rows:
        print(f"bench_check{label}: no comparable wall_ms/runs_per_s keys found",
              file=sys.stderr)
        return 1
    width = max(len(r[0]) for r in rows)
    for path, base, cand, ratio, gating in rows:
        if leaf_kind(path) == "time":
            unit = "ms"
        else:
            unit = "GB/s" if path.split(".")[-1].endswith("gb_s") else "runs/s"
        flag = "REGRESSION" if any(path == r[0] for r in regressions) else (
            "ok" if gating else "skipped (< floor)")
        print(f"  {path:<{width}}  {base:10.3f} -> {cand:10.3f} {unit}  "
              f"x{ratio:5.2f}  {flag}")
    if regressions:
        print(f"bench_check{label}: {len(regressions)} regression(s) "
              f"beyond {threshold:.0%}", file=sys.stderr)
        return 1
    print(f"bench_check{label}: OK ({len(rows)} gated keys within "
          f"{threshold:.0%})")
    return 0


def last_history_entry(history_path):
    """Returns the most recent parseable entry of a history JSONL file, or
    None when the file is absent/empty. Corrupt lines are skipped with a
    warning — a truncated tail (e.g. a killed CI run) must not wedge the
    trajectory forever."""
    if not os.path.exists(history_path):
        return None
    entry = None
    with open(history_path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                print(f"bench_check: {history_path}:{lineno}: skipping "
                      f"corrupt history line", file=sys.stderr)
    return entry


def append_history(paths, threshold, floor_ms, history_dir=None):
    """Gates each bench file against the tail of its history and, when
    clean, appends it as a new manifest-headed JSONL line. Worst exit code
    wins; a regressed bench is reported and NOT appended."""
    worst = 0
    for path in paths:
        try:
            with open(path) as f:
                tree = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_check: {err}", file=sys.stderr)
            return 2
        label = f" [{os.path.basename(path)}]"
        manifest = tree.get("manifest") if isinstance(tree, dict) else None
        bench = strip_manifest(tree, label)
        stem = os.path.splitext(os.path.basename(path))[0]
        directory = history_dir or os.path.dirname(path) or "."
        os.makedirs(directory, exist_ok=True)
        history_path = os.path.join(directory, stem + "_history.jsonl")

        prior = last_history_entry(history_path)
        code = 0
        if prior is None:
            print(f"bench_check{label}: no prior history, seeding "
                  f"{history_path}")
        else:
            code = run_check(prior.get("bench", {}), bench, threshold,
                             floor_ms, label + " vs history")
        if code != 0:
            print(f"bench_check{label}: regression vs history tail, "
                  f"NOT appended to {history_path}", file=sys.stderr)
            worst = max(worst, code)
            continue
        entry = {"manifest": manifest, "bench": bench}
        with open(history_path, "a") as f:
            f.write(json.dumps(entry, sort_keys=True,
                               separators=(",", ":")) + "\n")
        print(f"bench_check{label}: appended to {history_path}")
    return worst


def run_file_pairs(paths, threshold, floor_ms):
    """Checks each (baseline, candidate) file pair; worst exit code wins."""
    worst = 0
    for baseline_path, candidate_path in zip(paths[0::2], paths[1::2]):
        try:
            with open(baseline_path) as f:
                baseline = json.load(f)
            with open(candidate_path) as f:
                candidate = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_check: {err}", file=sys.stderr)
            return 2
        label = f" [{os.path.basename(candidate_path)}]"
        worst = max(worst, run_check(baseline, candidate, threshold, floor_ms, label))
    return worst


def self_test():
    import tempfile

    baseline = {
        "cpus": 8,
        "game": {"runs": [{"threads": 1, "wall_ms": 120.0, "speedup": 1.0},
                          {"threads": 2, "wall_ms": 70.0, "speedup": 1.71}]},
        "mpc": {"cold": {"wall_ms": 900.0}, "cached": {"wall_ms": 300.0},
                "wall_ratio": 0.33, "tiny": {"wall_ms": 0.5}},
        "sweep": {"runs_per_s": 40.0},
    }
    improved = json.loads(json.dumps(baseline))
    improved["mpc"]["cached"]["wall_ms"] = 250.0
    regressed = json.loads(json.dumps(baseline))
    regressed["game"]["runs"][1]["wall_ms"] = 95.0  # +36%
    noisy_tiny = json.loads(json.dumps(baseline))
    noisy_tiny["mpc"]["tiny"]["wall_ms"] = 4.0  # 8x, but below the 5 ms floor
    slow_sweep = json.loads(json.dumps(baseline))
    slow_sweep["sweep"]["runs_per_s"] = 25.0  # -37.5% throughput
    fast_sweep = json.loads(json.dumps(baseline))
    fast_sweep["sweep"]["runs_per_s"] = 80.0  # throughput gain must pass

    failures = 0

    def expect(code, want, what):
        nonlocal failures
        if code != want:
            print(f"self-test FAILED: {what} (exit {code}, want {want})",
                  file=sys.stderr)
            failures += 1

    expect(run_check(baseline, improved, 0.15, 5.0, " [improved]"), 0,
           "an improvement must pass")
    expect(run_check(baseline, regressed, 0.15, 5.0, " [regressed]"), 1,
           "a 36% regression must fail")
    expect(run_check(baseline, regressed, 0.50, 5.0, " [lenient]"), 0,
           "the same diff passes at a 50% threshold")
    expect(run_check(baseline, noisy_tiny, 0.15, 5.0, " [tiny]"), 0,
           "sub-floor timings must not gate")
    expect(run_check(baseline, slow_sweep, 0.15, 5.0, " [slow-sweep]"), 1,
           "a 37% throughput drop must fail")
    expect(run_check(baseline, fast_sweep, 0.15, 5.0, " [fast-sweep]"), 0,
           "a throughput gain must pass")
    expect(run_check({"a": 1}, {"a": 2}, 0.15, 5.0, " [no-keys]"), 1,
           "no wall_ms keys is an error")

    # Manifest-bearing files: the provenance header travels inside the
    # artifact but must never gate — here the capture timing it carries
    # regresses 100x while the real keys are clean.
    with_manifest = json.loads(json.dumps(baseline))
    with_manifest["manifest"] = {"tool": "bench", "git_sha": "abc123def456",
                                 "threads": 4, "capture_wall_ms": 10.0}
    manifest_candidate = json.loads(json.dumps(with_manifest))
    manifest_candidate["manifest"]["capture_wall_ms"] = 1000.0
    manifest_candidate["manifest"]["threads"] = 32
    expect(run_check(with_manifest, manifest_candidate, 0.15, 5.0,
                     " [manifest]"), 0,
           "manifest fields must be skipped, not gated")
    bad_manifest = {"sweep": {"runs_per_s": 40.0}, "manifest": {"threads": 4}}
    expect(run_check(bad_manifest, bad_manifest, 0.15, 5.0, " [bad-manifest]"),
           0, "a malformed manifest warns but does not fail")
    internal_manifest = {"manifest": {"tool": "bench", "git_sha": "abc",
                                      "threads": 2, "threads_min": 16},
                         "thread_scaling_ratio": 2.6,
                         "thread_scaling_ratio_min": 2.0}
    expect(1 if check_internal(strip_manifest(internal_manifest))[0] else 0, 0,
           "manifest fields must not create internal floors")

    # gb_s leaves gate as throughputs in pair mode (the BENCH_admm.json spmv
    # shape), and "*_min" floors never pair-compare: raising a floor in the
    # candidate must not read as a regression.
    spmv = {"spmv": {"mirror_ax": {"wall_ms": 4.0, "gb_s": 15.0},
                     "sell": {"avx2": {"ax": {"wall_ms": 2.0, "gb_s": 30.0}}},
                     "vector_speedup": 2.0, "vector_speedup_min": 1.25}}
    slow_spmv = json.loads(json.dumps(spmv))
    slow_spmv["spmv"]["sell"]["avx2"]["ax"]["gb_s"] = 18.0  # -40%
    raised_floor = json.loads(json.dumps(spmv))
    raised_floor["spmv"]["vector_speedup_min"] = 10.0
    expect(run_check(spmv, slow_spmv, 0.15, 5.0, " [slow-spmv]"), 1,
           "a 40% bandwidth drop must fail")
    expect(run_check(spmv, raised_floor, 0.15, 5.0, " [raised-floor]"), 0,
           "raising an internal floor must not pair-gate")

    # Absolute bandwidth floors (--bandwidth-floor).
    expect(1 if check_bandwidth_floor(spmv, 5.0)[0] else 0, 0,
           "bandwidths above an absolute floor must pass")
    expect(1 if check_bandwidth_floor(spmv, 20.0)[0] else 0, 1,
           "a bandwidth below the absolute floor must fail")
    expect(1 if check_bandwidth_floor({"a": {"wall_ms": 1.0}}, 5.0)[1] else 0, 0,
           "no gb_s leaves yields no bandwidth rows")

    # Internal X >= X_min floors, the BENCH_sweep.json shape.
    sweep_ok = {"bit": True, "thread_scaling_ratio": 2.6,
                "thread_scaling_ratio_min": 2.0}
    sweep_bad = {"thread_scaling_ratio": 1.4, "thread_scaling_ratio_min": 2.0}
    sweep_ungated = {"thread_scaling_ratio": 0.9,
                     "thread_scaling_ratio_min": 0.0}  # small box: floor off
    expect(1 if check_internal(sweep_ok)[0] else 0, 0,
           "a ratio above its floor must pass the internal check")
    expect(1 if check_internal(sweep_bad)[0] else 0, 1,
           "a ratio below its floor must fail the internal check")
    expect(1 if check_internal(sweep_ungated)[0] else 0, 0,
           "a 0.0 floor disables the internal gate")

    # Multi-pair: one good pair plus one regressed pair must fail as a whole,
    # and two good pairs must pass.
    with tempfile.TemporaryDirectory() as tmp:
        def dump(name, tree):
            path = os.path.join(tmp, name)
            with open(path, "w") as f:
                json.dump(tree, f)
            return path

        base_a = dump("base_a.json", baseline)
        good_a = dump("good_a.json", improved)
        base_b = dump("base_b.json", baseline)
        bad_b = dump("bad_b.json", regressed)
        expect(run_file_pairs([base_a, good_a, base_b, bad_b], 0.15, 5.0), 1,
               "a regression in the second pair must fail the invocation")
        expect(run_file_pairs([base_a, good_a, base_b, good_a], 0.15, 5.0), 0,
               "two clean pairs must pass")
        expect(run_file_pairs([base_a, os.path.join(tmp, "missing.json")],
                              0.15, 5.0), 2,
               "an unreadable file is a usage error")
        ok_file = dump("sweep_ok.json", sweep_ok)
        bad_file = dump("sweep_bad.json", sweep_bad)
        expect(run_internal_files([ok_file]), 0,
               "--internal passes a file whose floors hold")
        expect(run_internal_files([ok_file, bad_file]), 1,
               "--internal fails when any file violates a floor")
        expect(run_internal_files([os.path.join(tmp, "missing.json")]), 2,
               "--internal on an unreadable file is a usage error")
        spmv_file = dump("spmv.json", spmv)
        expect(run_bandwidth_floor_files([spmv_file], 5.0), 0,
               "--bandwidth-floor passes when every gb_s clears it")
        expect(run_bandwidth_floor_files([spmv_file], 20.0), 1,
               "--bandwidth-floor fails on a bandwidth below it")
        expect(run_bandwidth_floor_files([ok_file], 5.0), 1,
               "--bandwidth-floor on a file with no gb_s keys is an error")
        expect(run_bandwidth_floor_files([os.path.join(tmp, "missing.json")],
                                         5.0), 2,
               "--bandwidth-floor on an unreadable file is a usage error")

        # --append-history: seed, accumulate, and refuse to append a
        # regression (so the trajectory baseline cannot be poisoned).
        hist_dir = os.path.join(tmp, "history")
        bench_file = dump("BENCH_fake.json", with_manifest)
        expect(append_history([bench_file], 0.15, 5.0, hist_dir), 0,
               "the first history entry seeds and passes")
        expect(append_history([bench_file], 0.15, 5.0, hist_dir), 0,
               "an identical re-run passes against the history tail")
        hist_path = os.path.join(hist_dir, "BENCH_fake_history.jsonl")
        with open(hist_path) as f:
            lines = [json.loads(line) for line in f if line.strip()]
        expect(len(lines), 2, "two clean runs produce two history lines")
        if len(lines) == 2:
            expect(0 if lines[0]["manifest"].get("tool") == "bench" else 1, 0,
                   "history lines carry the bench manifest inline")
            expect(0 if "manifest" not in lines[0]["bench"] else 1, 0,
                   "the gated bench subtree excludes the manifest")
        regressed_file = dump("BENCH_fake2.json", regressed)
        os.replace(regressed_file, os.path.join(tmp, "BENCH_fake.json"))
        expect(append_history([os.path.join(tmp, "BENCH_fake.json")],
                              0.15, 5.0, hist_dir), 1,
               "a regressed bench fails the history gate")
        with open(hist_path) as f:
            kept = [line for line in f if line.strip()]
        expect(len(kept), 2, "a regressed bench is not appended")
        expect(append_history([os.path.join(tmp, "missing.json")],
                              0.15, 5.0, hist_dir), 2,
               "--append-history on an unreadable file is a usage error")
        # A corrupt tail line is skipped: gating falls back to the last
        # parseable entry instead of wedging.
        with open(hist_path, "a") as f:
            f.write("{truncated\n")
        good_again = dump("BENCH_fake3.json", with_manifest)
        os.replace(good_again, os.path.join(tmp, "BENCH_fake.json"))
        expect(append_history([os.path.join(tmp, "BENCH_fake.json")],
                              0.15, 5.0, hist_dir), 0,
               "a corrupt history tail is skipped, not fatal")
    if failures == 0:
        print("bench_check self-test OK")
    return 0 if failures == 0 else 1


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="*", metavar="BASELINE CANDIDATE",
                        help="one or more baseline/candidate BENCH_*.json pairs")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed relative slowdown (default 0.15 = 15%%)")
    parser.add_argument("--floor-ms", type=float, default=5.0,
                        help="ignore timings below this many ms (default 5)")
    parser.add_argument("--internal", action="store_true",
                        help="check each file's own X >= X_min floors instead "
                             "of comparing baseline/candidate pairs")
    parser.add_argument("--bandwidth-floor", type=float, metavar="GB_S",
                        help="gate every *gb_s leaf in the given files "
                             "against this absolute floor in GB/s")
    parser.add_argument("--append-history", action="store_true",
                        help="gate each file against its BENCH_*_history.jsonl "
                             "tail and append it as a new entry when clean")
    parser.add_argument("--history-dir", metavar="DIR",
                        help="directory for history files (default: next to "
                             "each bench file)")
    parser.add_argument("--self-test", action="store_true",
                        help="run built-in fixtures instead of reading files")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if sum([args.internal, args.bandwidth_floor is not None,
            args.append_history]) > 1:
        parser.error("--internal, --bandwidth-floor and --append-history are "
                     "separate modes")
    if args.append_history:
        if not args.files:
            parser.error("--append-history requires at least one file")
        return append_history(args.files, args.threshold, args.floor_ms,
                              args.history_dir)
    if args.internal:
        if not args.files:
            parser.error("--internal requires at least one file")
        return run_internal_files(args.files)
    if args.bandwidth_floor is not None:
        if not args.files:
            parser.error("--bandwidth-floor requires at least one file")
        return run_bandwidth_floor_files(args.files, args.bandwidth_floor)
    if len(args.files) < 2 or len(args.files) % 2 != 0:
        parser.error("an even number (>= 2) of files is required: "
                     "BASELINE CANDIDATE [BASELINE2 CANDIDATE2 ...] "
                     "(or use --self-test)")
    return run_file_pairs(args.files, args.threshold, args.floor_ms)


if __name__ == "__main__":
    sys.exit(main())
