// gp_replay: deterministically re-runs a ReplayBundle captured by
// SweepRunner's failure capture (or assembled by hand) and checks that the
// failure reproduces bit-for-bit — same unsolved-period count, same failed
// period indices, same per-audit violation counts. Exit 0 means the bundle
// reproduces; 1 means the re-run diverged (the report shows both sides);
// 2 means the bundle could not be loaded.
//
//   gp_replay <bundle.replay.json>   replay one bundle
//   gp_replay --self-test            capture a failure, then replay it
//
// The self-test is the end-to-end drill of the flight-recorder pipeline: it
// sweeps a deliberately broken scenario (capacity far below demand, so
// every period's QP is infeasible), confirms SweepRunner wrote a bundle to
// a temp failures dir, replays that bundle from disk alone, and requires
// exact reproduction.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/audit.hpp"
#include "obs/recorder.hpp"
#include "scenario/policy.hpp"
#include "scenario/registry.hpp"
#include "scenario/serialize.hpp"
#include "scenario/spec.hpp"
#include "scenario/sweep.hpp"
#include "sim/engine.hpp"

namespace {

using namespace gp;

struct ReplayOutcome {
  int unsolved_periods = 0;
  std::vector<int> failed_periods;
  std::vector<std::pair<std::string, long long>> audit_violations;
};

/// Re-runs the bundle's scenario/policy/seed exactly as the capturing sweep
/// lane did: audits per the bundle flag, thread-local counters zeroed
/// around the run.
ReplayOutcome replay(const scenario::ReplayBundle& bundle) {
  obs::audit::set_enabled(bundle.audits_enabled);
  obs::audit::reset_thread_counts();
  if (obs::recording_enabled()) obs::ConvergenceRecorder::local().clear();

  const scenario::ScenarioBundle built = scenario::build(bundle.scenario);
  scenario::PolicyHandle policy =
      scenario::make_policy(built, bundle.scenario, bundle.policy);
  sim::SimulationEngine engine = scenario::make_engine(built, bundle.scenario);
  const sim::SimulationSummary summary = engine.run(policy.policy());

  ReplayOutcome outcome;
  outcome.unsolved_periods = summary.unsolved_periods;
  for (std::size_t k = 0; k < summary.periods.size(); ++k) {
    if (!summary.periods[k].solved) outcome.failed_periods.push_back(static_cast<int>(k));
  }
  if (bundle.audits_enabled) outcome.audit_violations = obs::audit::thread_counts();
  return outcome;
}

std::string join_ints(const std::vector<int>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(values[i]);
  }
  return out.empty() ? "-" : out;
}

std::string join_violations(
    const std::vector<std::pair<std::string, long long>>& counts) {
  std::string out;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (i > 0) out += ",";
    out += counts[i].first + "=" + std::to_string(counts[i].second);
  }
  return out.empty() ? "-" : out;
}

/// Replays the bundle at `path` and reports; returns the process exit code.
int replay_file(const std::string& path) {
  scenario::ReplayBundle bundle;
  try {
    bundle = scenario::read_bundle(path);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "gp_replay: %s\n", error.what());
    return 2;
  }

  std::printf("bundle    %s\n", path.c_str());
  std::printf("captured  by=%s git=%s spec=%s seed=%llu audits=%s\n",
              bundle.manifest.tool.c_str(), bundle.manifest.git_sha.c_str(),
              bundle.manifest.spec_hash.c_str(),
              static_cast<unsigned long long>(bundle.seed),
              bundle.audits_enabled ? "on" : "off");
  std::printf("scenario  %s  policy %s  records %zu\n", bundle.scenario.name.c_str(),
              bundle.policy.label().c_str(), bundle.records.size());

  const ReplayOutcome outcome = replay(bundle);

  const bool unsolved_match = outcome.unsolved_periods == bundle.unsolved_periods;
  const bool periods_match = outcome.failed_periods == bundle.failed_periods;
  const bool audits_match = outcome.audit_violations == bundle.audit_violations;
  std::printf("unsolved  captured %d  replayed %d  %s\n", bundle.unsolved_periods,
              outcome.unsolved_periods, unsolved_match ? "MATCH" : "DIVERGED");
  std::printf("periods   captured %s  replayed %s  %s\n",
              join_ints(bundle.failed_periods).c_str(),
              join_ints(outcome.failed_periods).c_str(),
              periods_match ? "MATCH" : "DIVERGED");
  std::printf("audits    captured %s  replayed %s  %s\n",
              join_violations(bundle.audit_violations).c_str(),
              join_violations(outcome.audit_violations).c_str(),
              audits_match ? "MATCH" : "DIVERGED");

  const bool reproduced = unsolved_match && periods_match && audits_match;
  std::printf("%s\n", reproduced ? "REPRODUCED" : "NOT REPRODUCED");
  return reproduced ? 0 : 1;
}

int self_test() {
  // A scenario whose capacity is far below demand: every period's QP is
  // infeasible, so the ADMM path returns !solved and the feasibility /
  // conservation audits fire. Initial provisioning must be skipped —
  // min_cost_placement (correctly) throws on an infeasible environment.
  scenario::ScenarioSpec spec = scenario::preset("ablation_small");
  spec.name = "selftest_broken";
  spec.capacity = 0.5;
  spec.sim.periods = 6;
  spec.sim.provision_initial = false;

  scenario::SweepGrid grid;
  grid.scenarios = {spec};
  grid.policies = {scenario::PolicySpec{}};
  grid.base_seed = 7;

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "gp_replay_selftest";
  std::filesystem::remove_all(dir);

  scenario::SweepOptions options;
  options.max_threads = 1;
  options.failures_dir = dir.string();

  obs::audit::set_enabled(true);
  obs::ConvergenceRecorder::set_enabled(true);
  const scenario::SweepResult result = scenario::SweepRunner(grid, options).run();

  require(result.failure_bundles == 1,
          "self-test: expected exactly one failure bundle, got " +
              std::to_string(result.failure_bundles));
  require(result.runs.size() == 1 && result.runs[0].summary.unsolved_periods > 0,
          "self-test: the broken scenario should have unsolved periods");
  require(!result.runs[0].recorder_tail.empty(),
          "self-test: recording was on, the bundle should carry a recorder tail");

  std::string bundle_path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().string().ends_with(".replay.json")) {
      bundle_path = entry.path().string();
      break;
    }
  }
  require(!bundle_path.empty(), "self-test: no .replay.json in " + dir.string());

  // The bundle must survive a parse round trip exactly.
  const scenario::ReplayBundle bundle = scenario::read_bundle(bundle_path);
  require(scenario::to_json(bundle) ==
              scenario::to_json(scenario::bundle_from_json(scenario::to_json(bundle))),
          "self-test: bundle JSON round trip is not bit-identical");
  require(!bundle.records.empty(), "self-test: bundle lost the recorder tail");

  const int code = replay_file(bundle_path);
  require(code == 0, "self-test: replay did not reproduce the capture");

  std::filesystem::remove_all(dir);
  std::printf("gp_replay self-test passed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--self-test") {
    try {
      return self_test();
    } catch (const std::exception& error) {
      std::fprintf(stderr, "gp_replay: self-test FAILED: %s\n", error.what());
      return 1;
    }
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: gp_replay <bundle.replay.json>\n"
                 "       gp_replay --self-test\n");
    return 2;
  }
  return replay_file(argv[1]);
}
