// gp_report: render a per-period telemetry timeline (GEOPLACE_TIMELINE,
// obs/timeline.hpp) — or a whole sweep's timeline sidecar directory — into
// per-period tables and anomaly summaries.
//
// Input is the columnar JSONL the TimelineWriter emits: an optional
// {"type":"manifest",...} head, a {"type":"timeline",...} segment header,
// then one {"type":"timeline_col","name":...,"values":[...]} line per
// column. A file may hold several segments (one per engine run when
// GEOPLACE_TIMELINE=<path> appends).
//
// Anomaly detectors, per segment:
//   - cost spikes: total period cost above kSpikeFactor x the trailing
//     rolling median (window kSpikeWindow, needs >= kSpikeMinHistory
//     history) — the "why did period 37 spike" question answered offline;
//   - unsolved streaks: maximal runs of solved == 0;
//   - forecast-error regressions: the second half's mean one-step demand
//     forecast error at least kForecastRegressionFactor x the first
//     half's (and above an absolute floor), plus per-period outliers
//     above 3 x the median error.
//
// Usage:
//   gp_report <timeline.jsonl | sweep-timelines-dir> [more...]
//   gp_report --self-test
//
// A file argument prints full per-period tables; a directory argument
// scans its *.timeline.jsonl sidecars and prints one summary line per run
// plus aggregate anomaly counts.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/timeline.hpp"

namespace {

constexpr double kSpikeFactor = 2.0;
constexpr std::size_t kSpikeWindow = 9;
constexpr std::size_t kSpikeMinHistory = 4;
constexpr double kForecastRegressionFactor = 2.0;
constexpr double kForecastFloor = 0.02;

/// Extracts the value following `"key":` in a single-line JSON object
/// (same tolerant scanner as trace_report; both writers emit one object
/// per line with no whitespace around the colon).
std::optional<std::string> raw_value(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  std::size_t pos = at + needle.size();
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  if (pos >= line.size()) return std::nullopt;
  if (line[pos] == '"') {
    std::string out;
    for (++pos; pos < line.size() && line[pos] != '"'; ++pos) {
      if (line[pos] == '\\' && pos + 1 < line.size()) ++pos;
      out.push_back(line[pos]);
    }
    return out;
  }
  std::size_t end = pos;
  while (end < line.size() && line[end] != ',' && line[end] != '}' && line[end] != ']') ++end;
  return line.substr(pos, end - pos);
}

/// Parses the `"values":[...]` array of a timeline_col line; "null" (the
/// non-finite encoding) becomes NaN.
std::vector<double> parse_values(const std::string& line) {
  std::vector<double> out;
  const std::string needle = "\"values\":[";
  std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return out;
  pos += needle.size();
  while (pos < line.size() && line[pos] != ']') {
    if (line[pos] == ',' || line[pos] == ' ') {
      ++pos;
      continue;
    }
    if (line.compare(pos, 4, "null") == 0) {
      out.push_back(std::nan(""));
      pos += 4;
      continue;
    }
    char* end = nullptr;
    const double value = std::strtod(line.c_str() + pos, &end);
    if (end == line.c_str() + pos) break;  // malformed token: stop the array
    out.push_back(value);
    pos = static_cast<std::size_t>(end - line.c_str());
  }
  return out;
}

/// One parsed timeline segment: column name -> values.
struct Segment {
  std::size_t frames = 0;
  std::map<std::string, std::vector<double>> columns;

  const std::vector<double>* column(const std::string& name) const {
    const auto it = columns.find(name);
    return it == columns.end() ? nullptr : &it->second;
  }
  double at(const std::string& name, std::size_t i, double fallback = 0.0) const {
    const auto* values = column(name);
    return values != nullptr && i < values->size() ? (*values)[i] : fallback;
  }
};

struct ParsedFile {
  std::vector<Segment> segments;
  std::string manifest_tool;  ///< provenance of the first manifest line
  std::string manifest_git;
  std::size_t lines = 0;
};

ParsedFile parse(std::istream& in) {
  ParsedFile file;
  std::string line;
  while (std::getline(in, line)) {
    ++file.lines;
    const auto type = raw_value(line, "type");
    if (!type) continue;
    if (*type == "manifest") {
      if (file.manifest_tool.empty()) {
        file.manifest_tool = raw_value(line, "tool").value_or("");
        file.manifest_git = raw_value(line, "git_sha").value_or("");
      }
    } else if (*type == "timeline") {
      Segment segment;
      if (const auto frames = raw_value(line, "frames")) {
        segment.frames = static_cast<std::size_t>(std::strtoull(frames->c_str(), nullptr, 10));
      }
      file.segments.push_back(std::move(segment));
    } else if (*type == "timeline_col") {
      if (file.segments.empty()) file.segments.emplace_back();  // headerless: tolerate
      const auto name = raw_value(line, "name");
      if (!name) continue;
      file.segments.back().columns[*name] = parse_values(line);
    }
  }
  return file;
}

/// Per-period total cost: resource + reconfiguration + planned SLA penalty
/// (NaN components contribute 0 — unsolved periods stay comparable).
std::vector<double> total_cost_of(const Segment& segment) {
  std::vector<double> total(segment.frames, 0.0);
  for (const char* name : {"cost_resource", "cost_reconfig", "cost_sla_penalty"}) {
    const auto* values = segment.column(name);
    if (values == nullptr) continue;
    for (std::size_t i = 0; i < total.size() && i < values->size(); ++i) {
      if (std::isfinite((*values)[i])) total[i] += (*values)[i];
    }
  }
  return total;
}

double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2] : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

struct Anomalies {
  std::vector<std::size_t> cost_spikes;            ///< period indices
  std::vector<std::pair<std::size_t, std::size_t>> unsolved_streaks;  ///< (start, len)
  std::vector<std::size_t> forecast_outliers;      ///< period indices
  bool forecast_regressed = false;
  double forecast_first_half = 0.0;
  double forecast_second_half = 0.0;

  std::size_t count() const {
    return cost_spikes.size() + unsolved_streaks.size() + forecast_outliers.size() +
           (forecast_regressed ? 1 : 0);
  }
};

Anomalies detect(const Segment& segment) {
  Anomalies found;
  const std::vector<double> total = total_cost_of(segment);

  // Cost spikes vs the trailing rolling median.
  for (std::size_t k = kSpikeMinHistory; k < total.size(); ++k) {
    const std::size_t begin = k > kSpikeWindow ? k - kSpikeWindow : 0;
    const double median =
        median_of(std::vector<double>(total.begin() + static_cast<std::ptrdiff_t>(begin),
                                      total.begin() + static_cast<std::ptrdiff_t>(k)));
    if (median > 0.0 && total[k] > kSpikeFactor * median) found.cost_spikes.push_back(k);
  }

  // Unsolved streaks.
  if (const auto* solved = segment.column("solved")) {
    std::size_t start = 0, length = 0;
    for (std::size_t k = 0; k <= solved->size(); ++k) {
      const bool unsolved = k < solved->size() && (*solved)[k] == 0.0;
      if (unsolved) {
        if (length == 0) start = k;
        ++length;
      } else if (length > 0) {
        found.unsolved_streaks.emplace_back(start, length);
        length = 0;
      }
    }
  }

  // Forecast-error trend and outliers (err < 0 means "no forecast").
  if (const auto* errs = segment.column("forecast_rel_err")) {
    std::vector<double> valid;
    for (double e : *errs) {
      if (std::isfinite(e) && e >= 0.0) valid.push_back(e);
    }
    if (valid.size() >= 8) {
      const std::size_t half = valid.size() / 2;
      double first = 0.0, second = 0.0;
      for (std::size_t i = 0; i < half; ++i) first += valid[i];
      for (std::size_t i = half; i < valid.size(); ++i) second += valid[i];
      first /= static_cast<double>(half);
      second /= static_cast<double>(valid.size() - half);
      found.forecast_first_half = first;
      found.forecast_second_half = second;
      found.forecast_regressed =
          second > kForecastFloor && second > kForecastRegressionFactor * first;
    }
    const double median = median_of(valid);
    if (median > 0.0) {
      for (std::size_t k = 0; k < errs->size(); ++k) {
        if (std::isfinite((*errs)[k]) && (*errs)[k] > 3.0 * median) {
          found.forecast_outliers.push_back(k);
        }
      }
    }
  }
  return found;
}

std::string join_indices(const std::vector<std::size_t>& indices, std::size_t limit = 12) {
  std::string out;
  for (std::size_t i = 0; i < indices.size() && i < limit; ++i) {
    if (i > 0) out += ",";
    out += std::to_string(indices[i]);
  }
  if (indices.size() > limit) out += ",...";
  return out.empty() ? "-" : out;
}

void print_anomalies(const Anomalies& found) {
  std::printf("# anomalies: %zu\n", found.count());
  if (!found.cost_spikes.empty()) {
    std::printf("#   cost spikes (> %.1fx rolling median): periods %s\n", kSpikeFactor,
                join_indices(found.cost_spikes).c_str());
  }
  for (const auto& [start, length] : found.unsolved_streaks) {
    std::printf("#   unsolved streak: period %zu, length %zu\n", start, length);
  }
  if (found.forecast_regressed) {
    std::printf("#   forecast error regressed: mean %.4f -> %.4f (first/second half)\n",
                found.forecast_first_half, found.forecast_second_half);
  }
  if (!found.forecast_outliers.empty()) {
    std::printf("#   forecast outliers (> 3x median err): periods %s\n",
                join_indices(found.forecast_outliers).c_str());
  }
}

void print_table(const Segment& segment) {
  const std::vector<double> total = total_cost_of(segment);
  std::printf("%6s %10s %10s %10s %10s %6s %8s %6s %9s %9s %6s\n", "period", "demand",
              "servers", "cost_res", "cost_total", "sla", "fc_err", "iters", "prim_res",
              "policy_ms", "solved");
  for (std::size_t k = 0; k < segment.frames; ++k) {
    std::printf("%6.0f %10.2f %10.2f %10.2f %10.2f %6.3f %8.4f %6.0f %9.2e %9.3f %6.0f\n",
                segment.at("period", k), segment.at("demand_total", k),
                segment.at("servers_total", k), segment.at("cost_resource", k),
                k < total.size() ? total[k] : 0.0, segment.at("sla_compliance", k),
                segment.at("forecast_rel_err", k), segment.at("solver_iterations", k),
                segment.at("solver_primal_residual", k), segment.at("policy_ms", k),
                segment.at("solved", k));
  }
  double cost = 0.0;
  for (double c : total) cost += c;
  std::printf("# %zu periods, total cost %.2f\n", segment.frames, cost);
  print_anomalies(detect(segment));
}

/// Compact one-line view of a sidecar (directory mode).
void print_summary_line(const std::string& name, const ParsedFile& file) {
  for (const Segment& segment : file.segments) {
    const std::vector<double> total = total_cost_of(segment);
    double cost = 0.0;
    for (double c : total) cost += c;
    std::size_t unsolved = 0;
    if (const auto* solved = segment.column("solved")) {
      for (double s : *solved) unsolved += s == 0.0 ? 1 : 0;
    }
    const Anomalies found = detect(segment);
    std::printf("%-56s %4zu periods  cost %12.2f  unsolved %3zu  anomalies %2zu\n",
                name.c_str(), segment.frames, cost, unsolved, found.count());
  }
}

int report_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "gp_report: cannot open %s\n", path.c_str());
    return 2;
  }
  const ParsedFile file = parse(in);
  if (file.segments.empty()) {
    std::fprintf(stderr,
                 "gp_report: no timeline segments in %s (is GEOPLACE_TIMELINE set when "
                 "running the workload?)\n",
                 path.c_str());
    return 1;
  }
  for (std::size_t s = 0; s < file.segments.size(); ++s) {
    std::printf("== %s segment %zu\n", path.c_str(), s);
    print_table(file.segments[s]);
  }
  if (!file.manifest_tool.empty()) {
    std::printf("# recorded by %s at git %s\n", file.manifest_tool.c_str(),
                file.manifest_git.c_str());
  }
  return 0;
}

int report_directory(const std::string& dir) {
  std::vector<std::filesystem::path> sidecars;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() &&
        entry.path().filename().string().ends_with(".timeline.jsonl")) {
      sidecars.push_back(entry.path());
    }
  }
  std::sort(sidecars.begin(), sidecars.end());
  if (sidecars.empty()) {
    std::fprintf(stderr, "gp_report: no *.timeline.jsonl sidecars in %s\n", dir.c_str());
    return 1;
  }
  std::size_t anomalies = 0;
  for (const auto& path : sidecars) {
    std::ifstream in(path);
    if (!in) continue;
    const ParsedFile file = parse(in);
    print_summary_line(path.filename().string(), file);
    for (const Segment& segment : file.segments) anomalies += detect(segment).count();
  }
  std::printf("# %zu sidecars, %zu anomalies total\n", sidecars.size(), anomalies);
  return 0;
}

/// Round-trips synthetic frames through write_timeline_jsonl and the
/// parser, and checks every anomaly detector against planted defects.
int self_test() {
  int failures = 0;
  auto expect = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "self-test FAILED: %s\n", what);
      ++failures;
    }
  };

  // 48 synthetic periods: steady cost 100 with a 5x spike at period 20, an
  // unsolved streak at 30..32, and a forecast error that doubles in the
  // second half (0.01 -> 0.08).
  std::vector<gp::obs::TelemetryFrame> frames(48);
  for (std::size_t k = 0; k < frames.size(); ++k) {
    auto& f = frames[k];
    f.period = static_cast<double>(k);
    f.utc_hour = 0.5 * static_cast<double>(k);
    f.demand_total = 1000.0 + static_cast<double>(k);
    f.cost_resource = k == 20 ? 500.0 : 100.0;
    f.cost_reconfig = 1.25;
    f.solved = (k >= 30 && k <= 32) ? 0.0 : 1.0;
    f.forecast_rel_err = k == 0 ? -1.0 : (k < 24 ? 0.01 : 0.08);
    f.solver_iterations = 25.0;
    f.solver_primal_residual = 1e-4;
    f.sla_compliance = 0.999;
  }
  frames[5].mean_latency_ms = std::nan("");  // non-finite -> null round-trip

  gp::obs::RunManifest manifest;
  manifest.tool = "timeline";
  manifest.git_sha = "abc123def456";
  std::ostringstream out;
  gp::obs::write_timeline_jsonl(out, frames, &manifest);

  std::istringstream in(out.str());
  const ParsedFile file = parse(in);
  expect(file.segments.size() == 1, "one segment parsed");
  expect(file.manifest_tool == "timeline" && file.manifest_git == "abc123def456",
         "manifest provenance extracted");
  if (file.segments.empty()) return 1;
  const Segment& segment = file.segments[0];
  expect(segment.frames == frames.size(), "frame count round-trips");
  expect(segment.columns.size() == gp::obs::timeline_num_columns(),
         "every column present");
  for (const std::string& name : gp::obs::timeline_column_names()) {
    const auto* values = segment.column(name);
    expect(values != nullptr && values->size() == frames.size(), "column sized to frames");
  }
  expect(segment.at("cost_resource", 20) == 500.0, "spike value round-trips exactly");
  expect(segment.at("forecast_rel_err", 0) == -1.0, "sentinel round-trips exactly");
  expect(segment.at("demand_total", 47) == 1047.0, "demand round-trips exactly");
  expect(std::isnan(segment.at("mean_latency_ms", 5)), "null parses as NaN");

  const Anomalies found = detect(segment);
  expect(found.cost_spikes.size() == 1 && found.cost_spikes[0] == 20,
         "the planted cost spike (and only it) is detected");
  expect(found.unsolved_streaks.size() == 1 && found.unsolved_streaks[0].first == 30 &&
             found.unsolved_streaks[0].second == 3,
         "the planted unsolved streak is detected");
  expect(found.forecast_regressed, "the planted forecast regression is detected");

  // A clean constant-cost timeline must report no anomalies.
  std::vector<gp::obs::TelemetryFrame> clean(24);
  for (std::size_t k = 0; k < clean.size(); ++k) {
    clean[k].period = static_cast<double>(k);
    clean[k].cost_resource = 100.0;
    clean[k].solved = 1.0;
    clean[k].forecast_rel_err = 0.01;
  }
  std::ostringstream clean_out;
  gp::obs::write_timeline_jsonl(clean_out, clean);
  std::istringstream clean_in(clean_out.str());
  const ParsedFile clean_file = parse(clean_in);
  expect(clean_file.segments.size() == 1 && detect(clean_file.segments[0]).count() == 0,
         "a clean timeline reports no anomalies");

  // Two appended segments (the GEOPLACE_TIMELINE=<path> shape) stay separate.
  std::ostringstream multi;
  gp::obs::write_timeline_jsonl(multi, clean, &manifest);
  gp::obs::write_timeline_jsonl(multi, frames);
  std::istringstream multi_in(multi.str());
  const ParsedFile multi_file = parse(multi_in);
  expect(multi_file.segments.size() == 2 && multi_file.segments[0].frames == 24 &&
             multi_file.segments[1].frames == 48,
         "appended segments parse separately");

  if (failures == 0) std::printf("gp_report self-test OK\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--self-test") == 0) return self_test();
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: gp_report <timeline.jsonl | sweep-timelines-dir> [more...]\n"
                 "       gp_report --self-test\n");
    return 2;
  }
  int worst = 0;
  for (int i = 1; i < argc; ++i) {
    std::error_code ec;
    const bool is_dir = std::filesystem::is_directory(argv[i], ec);
    worst = std::max(worst, is_dir ? report_directory(argv[i]) : report_file(argv[i]));
  }
  return worst;
}
