// trace_report: summarize a geoplace trace file (JSONL or Chrome format).
//
// Reads the span events of a run recorded via GEOPLACE_TRACE (either the
// JSONL event log or the Chrome trace-event array written for ".json"
// paths), groups them per span name and per module (the prefix before the
// first '.'), and prints a latency table with exact p50/p95/p99 computed
// from the raw durations (gp::percentile, not the registry's bucketed
// estimate).
//
// Usage:
//   trace_report [--csv] <trace-file> [<trace-file>...]
//   trace_report --self-test
//
// --csv writes the same table as machine-readable CSV on stdout (header
// `span,module,count,total_ms,mean_ms,p50_ms,p95_ms,p99_ms`, rows in the
// same sorted-by-name order, %.10g numbers that round-trip through
// strtod), for spreadsheet import or diffing two runs' span profiles.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace {

/// One parsed span occurrence (durations in milliseconds).
struct SpanGroup {
  std::vector<double> durations_ms;
  double total_ms = 0.0;
};

/// Extracts the value following `"key":` in a single-line JSON object.
/// Tolerant scanner, not a full JSON parser: both trace writers emit one
/// object per line with no whitespace around the colon.
std::optional<std::string> raw_value(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  std::size_t pos = at + needle.size();
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  if (pos >= line.size()) return std::nullopt;
  if (line[pos] == '"') {
    std::string out;
    for (++pos; pos < line.size() && line[pos] != '"'; ++pos) {
      if (line[pos] == '\\' && pos + 1 < line.size()) ++pos;
      out.push_back(line[pos]);
    }
    return out;
  }
  std::size_t end = pos;
  while (end < line.size() && line[end] != ',' && line[end] != '}' && line[end] != ']') ++end;
  return line.substr(pos, end - pos);
}

std::optional<double> number_value(const std::string& line, const std::string& key) {
  const auto raw = raw_value(line, key);
  if (!raw) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(raw->c_str(), &end);
  if (end == raw->c_str()) return std::nullopt;
  return value;
}

/// Parses one line of either format; returns true when it was a span event.
/// JSONL:  {"type":"span","name":...,"ts_us":...,"dur_us":...}
/// Chrome: {"ph":"X","name":...,"ts":...,"dur":...}  (array commas tolerated)
bool parse_span(const std::string& line, std::string& name, double& dur_ms) {
  const auto type = raw_value(line, "type");
  const auto ph = raw_value(line, "ph");
  std::optional<double> dur_us;
  if (type && *type == "span") {
    dur_us = number_value(line, "dur_us");
  } else if (ph && *ph == "X") {
    dur_us = number_value(line, "dur");
  } else {
    return false;
  }
  const auto span_name = raw_value(line, "name");
  if (!span_name || !dur_us) return false;
  name = *span_name;
  dur_ms = *dur_us / 1000.0;
  return true;
}

std::string module_of(const std::string& name) {
  const std::size_t dot = name.find('.');
  return dot == std::string::npos ? name : name.substr(0, dot);
}

struct Report {
  std::map<std::string, SpanGroup> by_name;
  std::size_t lines = 0;
  std::size_t spans = 0;
  std::size_t manifests = 0;       ///< run-manifest header lines seen
  std::size_t bad_manifests = 0;   ///< manifest lines missing tool/git_sha
  std::string manifest_tool;       ///< provenance of the FIRST manifest
  std::string manifest_git;
};

/// Flight-recorder provenance headers ({"type":"manifest",...}) are not
/// span events: validate the fields gp_replay and humans rely on, remember
/// the first one for the report footer, and skip the line.
bool consume_manifest(const std::string& line, Report& report) {
  const auto type = raw_value(line, "type");
  if (!type || *type != "manifest") return false;
  ++report.manifests;
  const auto tool = raw_value(line, "tool");
  const auto git = raw_value(line, "git_sha");
  if (!tool || !git) {
    ++report.bad_manifests;
    std::fprintf(stderr, "trace_report: malformed manifest line (no tool/git_sha)\n");
    return true;
  }
  if (report.manifest_tool.empty()) {
    report.manifest_tool = *tool;
    report.manifest_git = *git;
  }
  return true;
}

void consume(std::istream& in, Report& report) {
  std::string line;
  while (std::getline(in, line)) {
    ++report.lines;
    if (consume_manifest(line, report)) continue;
    std::string name;
    double dur_ms = 0.0;
    if (!parse_span(line, name, dur_ms)) continue;
    ++report.spans;
    auto& group = report.by_name[name];
    group.durations_ms.push_back(dur_ms);
    group.total_ms += dur_ms;
  }
}

void print_table(const Report& report) {
  std::printf("%-28s %8s %12s %10s %10s %10s %10s\n", "span", "count", "total_ms",
              "mean_ms", "p50_ms", "p95_ms", "p99_ms");
  std::string module;
  for (const auto& [name, group] : report.by_name) {
    const std::string m = module_of(name);
    if (m != module) {
      module = m;
      std::printf("# module %s\n", module.c_str());
    }
    std::vector<double> sorted = group.durations_ms;
    std::sort(sorted.begin(), sorted.end());
    const double count = static_cast<double>(sorted.size());
    std::printf("%-28s %8zu %12.3f %10.4f %10.4f %10.4f %10.4f\n", name.c_str(),
                sorted.size(), group.total_ms, group.total_ms / count,
                gp::percentile(sorted, 50.0), gp::percentile(sorted, 95.0),
                gp::percentile(sorted, 99.0));
  }
  std::printf("# %zu span events from %zu lines\n", report.spans, report.lines);
  if (!report.manifest_tool.empty()) {
    std::printf("# recorded by %s at git %s\n", report.manifest_tool.c_str(),
                report.manifest_git.c_str());
  }
}

/// The table as CSV: fixed column order, one row per span group in the
/// same sorted-by-name iteration order as the human table. Span names come
/// from Span string literals (no commas/quotes in practice), so no quoting
/// is needed; %.10g keeps every double exact through a strtod round-trip
/// at these magnitudes.
void print_csv(const Report& report, std::ostream& out) {
  out << "span,module,count,total_ms,mean_ms,p50_ms,p95_ms,p99_ms\n";
  char buffer[256];
  for (const auto& [name, group] : report.by_name) {
    std::vector<double> sorted = group.durations_ms;
    std::sort(sorted.begin(), sorted.end());
    const double count = static_cast<double>(sorted.size());
    std::snprintf(buffer, sizeof(buffer), "%s,%s,%zu,%.10g,%.10g,%.10g,%.10g,%.10g\n",
                  name.c_str(), module_of(name).c_str(), sorted.size(), group.total_ms,
                  group.total_ms / count, gp::percentile(sorted, 50.0),
                  gp::percentile(sorted, 95.0), gp::percentile(sorted, 99.0));
    out << buffer;
  }
}

/// Feeds synthetic lines of both formats through the parser and checks the
/// resulting counts/percentiles against hand-computed values.
int self_test() {
  std::ostringstream fixture;
  fixture << "[\n";
  fixture << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,"
             "\"args\":{\"name\":\"geoplace\"}},\n";
  // Chrome complete events: admm.solve with durations 1000..100000 us.
  for (int i = 1; i <= 100; ++i) {
    fixture << ",\n{\"ph\":\"X\",\"name\":\"admm.solve\",\"cat\":\"admm\",\"ts\":"
            << i * 10 << ",\"dur\":" << i * 1000 << ",\"pid\":0,\"tid\":1}";
  }
  fixture << ",\n{\"ph\":\"C\",\"name\":\"admm.primal_residual\",\"ts\":5,"
             "\"args\":{\"value\":0.25}}\n]\n";
  // A JSONL log starts with the flight-recorder manifest header: it must
  // be recognized, validated, and NOT counted as a span.
  fixture << "{\"type\":\"manifest\",\"schema\":1,\"tool\":\"trace\","
             "\"git_sha\":\"abc123def456\",\"build\":\"Release\","
             "\"threads\":4,\"seeds\":[7],\"spec_hash\":\"00ff\"}\n";
  // JSONL events for a second module.
  fixture << "{\"type\":\"span\",\"name\":\"mpc.step\",\"ts_us\":0.0,"
             "\"dur_us\":2500.0,\"tid\":1,\"depth\":0}\n";
  fixture << "{\"type\":\"span\",\"name\":\"mpc.step\",\"ts_us\":9.0,"
             "\"dur_us\":7500.0,\"tid\":1,\"depth\":0,\"arg\":3}\n";
  fixture << "{\"type\":\"counter_sample\",\"name\":\"game.total_cost\","
             "\"ts_us\":1.0,\"value\":12.5}\n";
  fixture << "{\"type\":\"histogram\",\"name\":\"admm.solve_ms\",\"count\":3}\n";

  Report report;
  std::istringstream in(fixture.str());
  consume(in, report);

  int failures = 0;
  auto expect = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "self-test FAILED: %s\n", what);
      ++failures;
    }
  };
  expect(report.spans == 102, "102 span events parsed");
  expect(report.by_name.count("admm.solve") == 1, "admm.solve group present");
  expect(report.by_name.count("mpc.step") == 1, "mpc.step group present");
  expect(report.by_name.size() == 2, "counters/metadata not counted as spans");
  expect(report.manifests == 1, "manifest header recognized");
  expect(report.bad_manifests == 0, "manifest header validated");
  expect(report.manifest_tool == "trace" && report.manifest_git == "abc123def456",
         "manifest provenance extracted");

  const auto& admm = report.by_name.at("admm.solve");
  std::vector<double> sorted = admm.durations_ms;
  std::sort(sorted.begin(), sorted.end());
  // Durations are exactly 1..100 ms: the interpolated percentiles of the
  // scalar reference are easy to state in closed form.
  expect(gp::approx_equal(gp::percentile(sorted, 50.0), 50.5, 1e-12, 1e-9),
         "admm.solve p50 == 50.5 ms");
  expect(gp::approx_equal(gp::percentile(sorted, 99.0), 99.01, 1e-12, 1e-9),
         "admm.solve p99 == 99.01 ms");
  expect(gp::approx_equal(admm.total_ms, 5050.0, 1e-12, 1e-9),
         "admm.solve total == 5050 ms");

  const auto& mpc = report.by_name.at("mpc.step");
  expect(mpc.durations_ms.size() == 2, "mpc.step count == 2");
  expect(gp::approx_equal(mpc.total_ms, 10.0, 1e-12, 1e-9), "mpc.step total == 10 ms");

  // CSV round-trip: the emitted rows must parse back to the exact values
  // the table was computed from, in the same order.
  std::ostringstream csv;
  print_csv(report, csv);
  std::istringstream csv_in(csv.str());
  std::string line;
  expect(std::getline(csv_in, line) &&
             line == "span,module,count,total_ms,mean_ms,p50_ms,p95_ms,p99_ms",
         "CSV header is the documented column order");
  std::size_t rows = 0;
  while (std::getline(csv_in, line)) {
    ++rows;
    std::vector<std::string> cells;
    std::stringstream cell_stream(line);
    std::string cell;
    while (std::getline(cell_stream, cell, ',')) cells.push_back(cell);
    expect(cells.size() == 8, "CSV row has 8 cells");
    if (cells.size() != 8) continue;
    const auto& group = report.by_name.at(cells[0]);
    expect(cells[1] == module_of(cells[0]), "CSV module column matches span name");
    expect(std::strtod(cells[2].c_str(), nullptr) ==
               static_cast<double>(group.durations_ms.size()),
           "CSV count round-trips");
    expect(gp::approx_equal(std::strtod(cells[3].c_str(), nullptr), group.total_ms,
                            1e-9, 1e-12),
           "CSV total_ms round-trips");
    std::vector<double> row_sorted = group.durations_ms;
    std::sort(row_sorted.begin(), row_sorted.end());
    expect(gp::approx_equal(std::strtod(cells[5].c_str(), nullptr),
                            gp::percentile(row_sorted, 50.0), 1e-9, 1e-12),
           "CSV p50_ms round-trips");
    expect(gp::approx_equal(std::strtod(cells[7].c_str(), nullptr),
                            gp::percentile(row_sorted, 99.0), 1e-9, 1e-12),
           "CSV p99_ms round-trips");
  }
  expect(rows == report.by_name.size(), "CSV has one row per span group");

  if (failures == 0) std::printf("trace_report self-test OK\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--self-test") == 0) return self_test();
  bool csv = false;
  int first_file = 1;
  if (argc >= 2 && std::strcmp(argv[1], "--csv") == 0) {
    csv = true;
    first_file = 2;
  }
  if (first_file >= argc) {
    std::fprintf(stderr, "usage: trace_report [--csv] <trace-file> [<trace-file>...]\n"
                         "       trace_report --self-test\n");
    return 2;
  }
  Report report;
  for (int i = first_file; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "trace_report: cannot open %s\n", argv[i]);
      return 2;
    }
    consume(in, report);
  }
  if (report.spans == 0) {
    std::fprintf(stderr, "trace_report: no span events found (is GEOPLACE_TRACE set "
                         "when running the workload?)\n");
    return 1;
  }
  if (csv) {
    std::ostringstream out;
    print_csv(report, out);
    std::fputs(out.str().c_str(), stdout);
  } else {
    print_table(report);
  }
  return 0;
}
