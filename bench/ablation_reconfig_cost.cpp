// Ablation: the reconfiguration-cost weight c (Section IV-A design choice).
// Sweeps c over four orders of magnitude on the Fig.4 workload and reports
// the trade-off the quadratic penalty buys: lower c tracks demand tightly
// (low resource cost, high churn), higher c smooths (low churn, slightly
// higher resource cost). c = 0 is the "ignore reconfiguration" strawman the
// paper argues against.
#include "common/stats.hpp"
#include "scenarios.hpp"

int main() {
  using namespace gp;

  bench::print_series_header(
      "Ablation: reconfiguration weight c vs churn / cost / SLA",
      {"c", "total_cost", "resource_cost", "reconfig_cost", "churn_servers",
       "mean_sla_compliance"});

  std::vector<double> churns, resource_costs;
  for (const double c : {0.0, 0.001, 0.01, 0.1, 1.0}) {
    auto scenario = bench::paper_scenario(2, 4, 1.5e-5);
    scenario.model.reconfig_cost.assign(2, c);
    sim::SimulationConfig config;
    config.periods = 48;
    config.period_hours = 0.5;
    config.noisy_demand = true;
    config.seed = 21;
    sim::SimulationEngine engine(scenario.model, scenario.demand, scenario.prices, config);
    control::MpcSettings settings;
    settings.horizon = 5;
    control::MpcController controller(scenario.model, settings,
                                      bench::make_predictor("ar"),
                                      bench::make_predictor("last"));
    const auto summary = engine.run(sim::policy_from(controller));
    churns.push_back(summary.total_churn);
    resource_costs.push_back(summary.total_resource_cost);
    bench::print_row({c, summary.total_cost, summary.total_resource_cost,
                      summary.total_reconfig_cost, summary.total_churn,
                      summary.mean_compliance});
  }

  // Shape check: churn decreases monotonically-in-trend from c=0 to c=1.
  const bool ok = churns.back() < churns.front();
  std::printf("\n# shape check: churn(c=1)=%.1f < churn(c=0)=%.1f -- %s\n", churns.back(),
              churns.front(), ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
