// Ablation: the reconfiguration-cost weight c (Section IV-A design choice).
// Sweeps c over four orders of magnitude on the Fig.4 workload and reports
// the trade-off the quadratic penalty buys: lower c tracks demand tightly
// (low resource cost, high churn), higher c smooths (low churn, slightly
// higher resource cost). c = 0 is the "ignore reconfiguration" strawman the
// paper argues against.
#include <cstdio>

#include "scenario/policy.hpp"
#include "scenario/registry.hpp"
#include "scenario/report.hpp"

int main() {
  using namespace gp;

  scenario::print_series_header(
      "Ablation: reconfiguration weight c vs churn / cost / SLA",
      {"c", "total_cost", "resource_cost", "reconfig_cost", "churn_servers",
       "mean_sla_compliance"});

  std::vector<double> churns, resource_costs;
  for (const double c : {0.0, 0.001, 0.01, 0.1, 1.0}) {
    auto spec = scenario::preset("ablation_reconfig");
    spec.reconfig_cost = c;  // the swept knob
    const auto bundle = scenario::build(spec);
    auto engine = scenario::make_engine(bundle, spec);
    scenario::PolicySpec policy;
    policy.horizon = 5;
    policy.demand_predictor.kind = "ar";
    policy.price_predictor.kind = "last";
    const auto handle = scenario::make_policy(bundle, spec, policy);
    const auto summary = engine.run(handle.policy());
    churns.push_back(summary.total_churn);
    resource_costs.push_back(summary.total_resource_cost);
    scenario::print_row({c, summary.total_cost, summary.total_resource_cost,
                         summary.total_reconfig_cost, summary.total_churn,
                         summary.mean_compliance});
  }

  // Shape check: churn decreases monotonically-in-trend from c=0 to c=1.
  const bool ok = churns.back() < churns.front();
  std::printf("\n# shape check: churn(c=1)=%.1f < churn(c=0)=%.1f -- %s\n", churns.back(),
              churns.front(), ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
