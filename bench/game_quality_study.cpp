// NE-quality study: the paper's conclusion claims an analysis of "the
// impact of various factors on the quality of the Nash equilibrium
// solution". This bench sweeps the two factors that could plausibly break
// Theorem 1 in practice — capacity scarcity and the number of players — and
// reports the empirical efficiency ratio sum_i J^i(NE) / J(SWP) with the
// residual unserved demand.
//
// Expected shape: the efficiency ratio stays ~1 for moderate-to-loose
// capacity (Theorem 1's socially-optimal NE is found), but DEGRADES under
// deep starvation (<= ~10% of required capacity): every provider's
// capacity dual saturates near the unserved-demand penalty, the duals stop
// discriminating, and the quota exchange can settle short of the optimum.
// Theorem 1 guarantees a socially optimal equilibrium EXISTS; this bench
// maps where the best-response computation actually reaches it — a
// boundary the paper does not explore.
#include "game/competition.hpp"
#include "scenario/report.hpp"

int main() {
  using namespace gp;

  const topology::NetworkModel network({"dc0", "dc1"}, {"an0", "an1", "an2"},
                                       {{15.0, 25.0, 35.0}, {100.0, 20.0, 15.0}});
  scenario::print_series_header(
      "NE quality: efficiency ratio vs capacity scarcity and player count",
      {"players", "capacity_scale", "efficiency_ratio", "unserved", "iterations"});

  double worst_moderate_ratio = 0.0;  // scale >= 0.3
  double worst_starved_ratio = 0.0;   // the deep-starvation cells
  for (const int players : {2, 4, 6}) {
    for (const double scale : {0.08, 0.3, 1.0, 2.0}) {
      double ratio_sum = 0.0, unserved_sum = 0.0;
      int iterations_sum = 0, samples = 0;
      constexpr int kSeeds = 3;
      for (int seed = 0; seed < kSeeds; ++seed) {
        Rng rng(7000 + static_cast<std::uint64_t>(players * 31 + seed));
        game::RandomProviderParams params;
        params.horizon = 3;
        params.max_latency_min_ms = 60.0;
        params.max_latency_max_ms = 120.0;
        params.demand_min = 100.0;
        params.demand_max = 400.0;
        std::vector<game::ProviderConfig> providers;
        for (int i = 0; i < players; ++i) {
          providers.push_back(game::make_random_provider(network, params, rng));
          for (auto& price : providers.back().price) price[0] = 0.4 * price[1];
        }
        // Capacity proportional to an estimate of total need, scaled.
        const double per_player_units = 60.0;
        const double capacity = scale * per_player_units * players;
        game::GameSettings settings;
        settings.epsilon = 0.01;
        settings.max_iterations = 1000;
        game::CompetitionGame game(std::move(providers),
                                   linalg::Vector{capacity, 5000.0}, settings);
        const auto equilibrium = game.run();
        const auto welfare = game.solve_social_welfare();
        if (!equilibrium.converged || !welfare.solved || welfare.total_cost <= 0.0) continue;
        ratio_sum += game::efficiency_ratio(equilibrium, welfare);
        unserved_sum += equilibrium.total_unserved;
        iterations_sum += equilibrium.iterations;
        ++samples;
      }
      if (samples == 0) continue;
      const double ratio = ratio_sum / samples;
      (scale >= 0.3 ? worst_moderate_ratio : worst_starved_ratio) =
          std::max(scale >= 0.3 ? worst_moderate_ratio : worst_starved_ratio, ratio);
      scenario::print_row({static_cast<double>(players), scale, ratio,
                        unserved_sum / samples,
                        static_cast<double>(iterations_sum) / samples});
    }
  }

  const bool ok = worst_moderate_ratio > 0.0 && worst_moderate_ratio < 1.05 &&
                  worst_starved_ratio < 1.5;
  std::printf("\n# shape check: efficiency <= %.3f at moderate scarcity (Theorem 1 found);"
              " degrades to %.3f under deep starvation (saturated duals) -- %s\n",
              worst_moderate_ratio, worst_starved_ratio, ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
