// Ablation: the queueing model behind the sizing rule. The paper splits
// demand equally across independent M/M/1 servers (which linearizes the
// SLA constraint into x >= a * sigma); a pooled M/M/c queue needs FEWER
// servers for the same latency budget (resource pooling / statistical
// multiplexing). This bench quantifies how conservative the paper's model
// is across loads, i.e. the head-room a provider using this library's
// controller actually enjoys.
//
// Expected shape: the M/M/1-split count is always >= the M/M/c count. The
// split rule needs lambda / (mu - 1/budget) servers (each server keeps a
// fixed headroom), while the pooled queue approaches the bare Erlang load
// lambda/mu as it scales, so the relative overhead GROWS with load toward
// the headroom ratio 1 / (mu*budget - 1) — 25% at mu=100, budget=50 ms.
#include "queueing/mmc.hpp"
#include "scenario/report.hpp"

int main() {
  using namespace gp;

  constexpr double kMu = 100.0;       // req/s per server
  constexpr double kBudget = 0.05;    // 50 ms queueing budget

  scenario::print_series_header(
      "Ablation: servers needed, paper's M/M/1-split rule vs pooled M/M/c (mu=100, 50 ms)",
      {"lambda_req_s", "servers_mm1_split", "servers_mmc_pooled", "overhead_percent"});

  double low_load_gap = 0.0, high_load_gap = 0.0;
  const std::vector<double> lambdas{50,   100,  200,  400,   800,
                                    1600, 3200, 6400, 12800, 25600};
  for (const double lambda : lambdas) {
    const auto split = queueing::mm1_split_required_servers(lambda, kMu, kBudget);
    const auto pooled = queueing::mmc_required_servers(lambda, kMu, kBudget);
    const double overhead =
        100.0 * (static_cast<double>(split) / static_cast<double>(pooled) - 1.0);
    if (lambda == lambdas.front()) low_load_gap = overhead;
    if (lambda == lambdas.back()) high_load_gap = overhead;
    scenario::print_row({lambda, static_cast<double>(split), static_cast<double>(pooled),
                      overhead});
  }

  const bool ok = high_load_gap > low_load_gap && high_load_gap > 20.0 && high_load_gap < 26.0;
  std::printf("\n# shape check: M/M/1-split overhead grows %.1f%% -> %.1f%% with load,"
              " approaching the 25%% headroom ratio -- %s\n",
              low_load_gap, high_load_gap, ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
