// Ablation: the quota-update rule of Algorithm 2. Compares the paper's
// literal fixed-step update (Cbar = C + alpha*lambda, multiplicative
// renormalization) against this library's stabilized mean-centred exchange
// on the same tightly-capacitated instances, reporting iterations to
// stability, the equilibrium quality (efficiency ratio vs the social
// optimum), and the residual unserved demand.
//
// Expected: the stabilized rule converges in fewer iterations and lands on
// (near-)socially-optimal splits; the fixed-step rule is sensitive to alpha
// — too large oscillates, too small stalls before reaching a good split —
// which is why the production default is the stabilized rule.
#include "game/competition.hpp"
#include "scenario/report.hpp"

namespace {

struct RuleOutcome {
  double iterations = 0.0;
  double efficiency = 0.0;
  double unserved = 0.0;
  double converged_fraction = 0.0;
};

RuleOutcome evaluate(gp::game::GameSettings settings) {
  using namespace gp;
  const topology::NetworkModel network({"dc-cheap", "dc-big"}, {"an0", "an1", "an2"},
                                       {{15.0, 25.0, 35.0}, {100.0, 20.0, 15.0}});
  RuleOutcome outcome;
  constexpr int kSeeds = 5;
  for (int seed = 0; seed < kSeeds; ++seed) {
    Rng rng(900 + static_cast<std::uint64_t>(seed));
    game::RandomProviderParams params;
    params.horizon = 3;
    params.max_latency_min_ms = 60.0;
    params.max_latency_max_ms = 120.0;
    params.demand_min = 150.0;
    params.demand_max = 500.0;
    std::vector<game::ProviderConfig> providers;
    for (int i = 0; i < 6; ++i) {
      providers.push_back(game::make_random_provider(network, params, rng));
      for (auto& price : providers.back().price) price[0] = 0.4 * price[1];
    }
    game::CompetitionGame game(std::move(providers), linalg::Vector{150.0, 3000.0},
                               settings);
    const auto equilibrium = game.run();
    const auto welfare = game.solve_social_welfare();
    outcome.iterations += equilibrium.iterations;
    outcome.unserved += equilibrium.total_unserved;
    outcome.converged_fraction += equilibrium.converged ? 1.0 : 0.0;
    if (welfare.solved && welfare.total_cost > 0.0) {
      outcome.efficiency += game::efficiency_ratio(equilibrium, welfare);
    }
  }
  outcome.iterations /= kSeeds;
  outcome.efficiency /= kSeeds;
  outcome.unserved /= kSeeds;
  outcome.converged_fraction /= kSeeds;
  return outcome;
}

}  // namespace

int main() {
  using namespace gp;

  scenario::print_series_header(
      "Ablation: Algorithm-2 quota-update rule (mean over 5 seeds, 6 providers)",
      {"rule", "iterations", "efficiency_ratio", "unserved", "converged_fraction"});

  game::GameSettings stabilized;
  stabilized.update_rule = game::QuotaUpdateRule::kStabilized;
  stabilized.epsilon = 0.02;
  const RuleOutcome stable = evaluate(stabilized);
  std::printf("stabilized,");
  scenario::print_row({stable.iterations, stable.efficiency, stable.unserved,
                    stable.converged_fraction});

  RuleOutcome best_paper;
  double best_alpha = 0.0;
  for (const double alpha : {0.002, 0.01, 0.05, 0.2}) {
    game::GameSettings paper;
    paper.update_rule = game::QuotaUpdateRule::kPaperFixedStep;
    paper.paper_step_size = alpha;
    paper.epsilon = 0.02;
    const RuleOutcome outcome = evaluate(paper);
    std::printf("paper_alpha_%g,", alpha);
    scenario::print_row({outcome.iterations, outcome.efficiency, outcome.unserved,
                      outcome.converged_fraction});
    if (best_alpha == 0.0 || outcome.efficiency < best_paper.efficiency) {
      best_paper = outcome;
      best_alpha = alpha;
    }
  }

  // Shape check: the stabilized rule reaches at least as good an efficiency
  // ratio as the best fixed-step alpha, while converging reliably.
  const bool ok =
      stable.converged_fraction == 1.0 && stable.efficiency <= best_paper.efficiency * 1.05;
  std::printf("\n# shape check: stabilized efficiency %.3f <= best fixed-step (alpha=%g) "
              "%.3f * 1.05, convergence %.0f%% -- %s\n",
              stable.efficiency, best_alpha, best_paper.efficiency,
              100.0 * stable.converged_fraction, ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
