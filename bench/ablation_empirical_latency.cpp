// Ablation / validation: the analytic queueing formulas the controller
// plans with versus request-level simulation. For a sweep of utilizations,
// compares (a) the M/M/1 mean sojourn 1/(mu - lambda) against the simulated
// split-server mean, (b) the paper's percentile device ln(20) * mean
// against the simulated p95, and (c) the Erlang-C pooled response against
// the simulated M/M/c — the three analytic pillars of the sizing rule.
//
// Expected shape: every analytic value within a few percent of the
// simulation at every utilization (the whole point of using closed forms).
#include <cmath>

#include "queueing/mm1.hpp"
#include "queueing/mmc.hpp"
#include <algorithm>

#include "scenario/report.hpp"
#include "sim/request_sim.hpp"

int main() {
  using namespace gp;

  constexpr double kMu = 50.0;
  constexpr int kServers = 6;
  constexpr double kDuration = 4000.0;

  scenario::print_series_header(
      "Validation: analytic vs simulated latency (mu=50, 6 servers, seconds)",
      {"utilization", "mean_analytic", "mean_simulated", "p95_analytic", "p95_simulated",
       "pooled_analytic", "pooled_simulated"});

  Rng rng(17);
  double worst_error = 0.0;
  for (const double rho : {0.5, 0.7, 0.85, 0.95}) {
    const double lambda = rho * kMu * kServers;
    const double mean_analytic = queueing::mean_response_time(kMu, lambda / kServers);
    const double p95_analytic = queueing::percentile_factor(0.95) * mean_analytic;
    const double pooled_analytic = queueing::mmc_mean_response_time(kServers, lambda, kMu);
    const auto split = sim::simulate_split_mm1(lambda, kMu, kServers, kDuration, rng);
    const auto pooled = sim::simulate_pooled_mmc(lambda, kMu, kServers, kDuration, rng);
    scenario::print_row({rho, mean_analytic, split.mean_response, p95_analytic,
                      split.p95_response, pooled_analytic, pooled.mean_response});
    worst_error = std::max(
        {worst_error, std::abs(split.mean_response - mean_analytic) / mean_analytic,
         std::abs(split.p95_response - p95_analytic) / p95_analytic,
         std::abs(pooled.mean_response - pooled_analytic) / pooled_analytic});
  }

  const bool ok = worst_error < 0.10;
  std::printf("\n# shape check: worst analytic-vs-simulated relative error %.1f%% < 10%%"
              " -- %s\n",
              100.0 * worst_error, ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
