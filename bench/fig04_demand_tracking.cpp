// Reproduces Fig. 4: "Impact of demand change on resource allocation" —
// the paper's simplest experiment: ONE data center serving ONE access
// network under diurnally fluctuating requests. The MPC controller should
// track the demand curve while smoothing the per-step change in servers.
//
// Expected shape: the server curve follows the request curve up and down
// with a small lag and visibly smoothed steps (the number of requests and
// number of servers rise together during 8:00-17:00 and fall at night).
#include <algorithm>
#include <cstdio>

#include "scenario/policy.hpp"
#include "scenario/registry.hpp"
#include "scenario/report.hpp"

int main() {
  using namespace gp;

  // One DC (San Jose), one access network (New York), relaxed SLA so the
  // distant pair is feasible — the registry's fig04 preset.
  const auto spec = scenario::preset("fig04");
  const auto bundle = scenario::build(spec);
  auto engine = scenario::make_engine(bundle, spec);

  scenario::PolicySpec policy;
  policy.horizon = 5;
  policy.demand_predictor.kind = "ar";
  policy.price_predictor.kind = "last";
  const auto handle = scenario::make_policy(bundle, spec, policy);

  const auto summary = engine.run(handle.policy());

  scenario::print_series_header(
      "Fig.4: demand vs. allocated servers, single DC / single access network",
      {"utc_hour", "requests_per_s", "servers", "sla_compliance"});
  for (const auto& period : summary.periods) {
    scenario::print_row({period.utc_hour, period.total_demand, period.total_servers,
                         period.sla_compliance});
  }

  // Shape checks: allocation at the working-hours peak is a multiple of the
  // overnight trough, and it tracks demand (high rank correlation proxy:
  // peak-hour servers > 2x night servers; compliance stays reasonable).
  double servers_peak = 0.0, servers_night = 1e300;
  for (const auto& period : summary.periods) {
    servers_peak = std::max(servers_peak, period.total_servers);
    servers_night = std::min(servers_night, period.total_servers);
  }
  const bool ok = servers_peak > 2.0 * servers_night && summary.mean_compliance > 0.7 &&
                  summary.unsolved_periods == 0;
  std::printf("\n# shape check: peak %.1f vs trough %.1f servers, mean SLA %.1f%% -- %s\n",
              servers_peak, servers_night, 100.0 * summary.mean_compliance,
              ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
