// Ablation: integral server counts vs the paper's continuous relaxation.
// Section IV argues the relaxation "is reasonable for large-scale services
// that require tens or hundreds of servers, where the weight of each
// individual server in the overall solution is small", and the conclusion
// flags the integer regime (small data centers) as future work. This bench
// quantifies the claim: the same MPC loop is run continuously and with
// per-period round-up integerization, across demand scales, reporting the
// relative cost premium of integrality.
//
// Expected shape: the integrality premium COLLAPSES with scale. At
// minuscule demand it is enormous — servers are dedicated per (l, v) pair,
// so every access network costs at least one whole server regardless of
// load (exactly the "small scale data centers" regime the paper flags) —
// and it falls below ~10% once pairs hold tens of servers. Compliance can
// only improve: rounding up adds capacity.
#include <cstdio>

#include "scenario/policy.hpp"
#include "scenario/registry.hpp"
#include "scenario/report.hpp"

int main() {
  using namespace gp;

  scenario::print_series_header(
      "Ablation: integer rounding premium vs deployment scale",
      {"rate_per_capita", "mean_servers", "cost_continuous", "cost_integer",
       "premium_percent", "compliance_delta"});

  std::vector<double> premiums;
  for (const double rate : {2e-7, 1e-6, 4e-6, 2e-5, 1e-4}) {
    auto spec = scenario::preset("ablation_small");
    spec.rate_per_capita = rate;  // the swept knob
    const auto bundle = scenario::build(spec);

    auto run = [&](bool integral) {
      scenario::PolicySpec policy;
      policy.horizon = 4;
      policy.demand_predictor.kind = "seasonal";
      policy.price_predictor.kind = "last";
      policy.integerized = integral;
      auto engine = scenario::make_engine(bundle, spec);
      const auto handle = scenario::make_policy(bundle, spec, policy);
      return engine.run(handle.policy());
    };
    const auto continuous = run(false);
    const auto integral = run(true);
    double mean_servers = 0.0;
    for (const auto& period : integral.periods) mean_servers += period.total_servers;
    mean_servers /= static_cast<double>(integral.periods.size());
    const double premium =
        100.0 * (integral.total_cost / continuous.total_cost - 1.0);
    premiums.push_back(premium);
    scenario::print_row({rate, mean_servers, continuous.total_cost, integral.total_cost,
                         premium, integral.mean_compliance - continuous.mean_compliance});
  }

  bool monotone = true;
  for (std::size_t i = 1; i < premiums.size(); ++i) {
    monotone = monotone && premiums[i] < premiums[i - 1];
  }
  const bool ok = monotone && premiums.front() > 100.0 && premiums.back() < 10.0;
  std::printf("\n# shape check: premium falls from %.1f%% (tiny DC) to %.1f%% (large"
              " deployment) -- %s\n",
              premiums.front(), premiums.back(), ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
