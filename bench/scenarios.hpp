// Shared experiment setups for the figure-reproduction benches: the
// Section VII environment (named data centers, 24 US-city access networks,
// population-scaled diurnal demand, regional electricity prices) and small
// helpers for printing plot-ready series.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "control/mpc_controller.hpp"
#include "sim/engine.hpp"

namespace gp::bench {

/// Paper experiment environment: data centers, cities, demand, prices.
struct Scenario {
  dspp::DsppModel model;
  workload::DemandModel demand;
  workload::ServerPriceModel prices;
  std::vector<topology::DataCenterSite> sites;
  std::vector<topology::City> cities;
};

/// The Section VII environment. `num_dcs` of the paper's sites,
/// `num_cities` of the 24 access networks, an SLA tight enough that serving
/// a city from a distant region costs visibly more servers, and the paper's
/// 2000-server per-DC capacity.
inline Scenario paper_scenario(std::size_t num_dcs = 4, std::size_t num_cities = 24,
                               double rate_per_capita = 2e-5,
                               workload::DiurnalProfile profile = workload::DiurnalProfile()) {
  Scenario s{.model = {},
             .demand = workload::DemandModel({{1.0, 0, profile}}),
             .prices = workload::ServerPriceModel(topology::default_datacenter_sites(num_dcs),
                                                  workload::VmType::kMedium,
                                                  workload::ElectricityPriceModel()),
             .sites = topology::default_datacenter_sites(num_dcs),
             .cities = {}};
  const auto& all = topology::us_cities24();
  s.cities.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(num_cities));
  s.model.network = topology::NetworkModel::from_geography(s.sites, s.cities);
  s.model.sla.mu = 100.0;
  s.model.sla.max_latency_ms = 32.0;
  s.model.sla.reservation_ratio = 1.1;
  s.model.reconfig_cost.assign(num_dcs, 0.002);
  s.model.capacity.assign(num_dcs, 2000.0);
  s.demand = workload::DemandModel::from_cities(s.cities, rate_per_capita, profile);
  return s;
}

/// MPC controller with the named predictor ("oracle" needs the traces).
inline std::unique_ptr<control::SeriesPredictor> make_predictor(
    const std::string& kind, std::vector<linalg::Vector> oracle_trace = {}) {
  if (kind == "oracle") {
    return std::make_unique<control::OraclePredictor>(std::move(oracle_trace), true);
  }
  if (kind == "ar") return std::make_unique<control::ArPredictor>(2, 48);
  if (kind == "seasonal") return std::make_unique<control::SeasonalNaivePredictor>(24);
  if (kind == "seasonal_ar") return std::make_unique<control::SeasonalArPredictor>(24, 2, 72);
  return std::make_unique<control::LastValuePredictor>();
}

/// Prints "# <title>" then a CSV header line — every bench emits the series
/// of one paper figure in a directly plottable form.
inline void print_series_header(const char* title, const std::vector<std::string>& columns) {
  std::printf("# %s\n", title);
  for (std::size_t i = 0; i < columns.size(); ++i) {
    std::printf("%s%s", i ? "," : "", columns[i].c_str());
  }
  std::printf("\n");
}

inline void print_row(const std::vector<double>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::printf("%s%.6g", i ? "," : "", cells[i]);
  }
  std::printf("\n");
}

}  // namespace gp::bench
