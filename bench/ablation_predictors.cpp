// Ablation: predictor choice (Section III notes the controller "can work
// with any demand prediction techniques"). Runs the same noisy two-day
// diurnal workload under four predictors — perfect oracle, AR(2) (the
// paper's choice), seasonal-naive (historical daily pattern), the
// seasonal+AR hybrid (this library's upgrade), and last-value persistence —
// and reports realized cost and SLA compliance.
//
// Expected: oracle <= AR/seasonal < persistence in cost-at-compliance;
// persistence lags the ramps and pays in SLA violations.
#include <cstdio>
#include <string>

#include "scenario/policy.hpp"
#include "scenario/registry.hpp"
#include "scenario/report.hpp"

int main() {
  using namespace gp;

  const auto spec = scenario::preset("ablation_predictors");
  const auto bundle = scenario::build(spec);

  scenario::print_series_header(
      "Ablation: predictor choice vs realized cost and SLA compliance",
      {"predictor", "total_cost", "mean_sla_compliance", "worst_sla_compliance"});

  double oracle_compliance = 0.0, last_compliance = 0.0;
  for (const std::string kind : {"oracle", "ar", "seasonal", "seasonal_ar", "last"}) {
    auto engine = scenario::make_engine(bundle, spec);
    // Note: the oracle sees the MEAN trace (make_policy feeds it the
    // bundle's mean series); the realized demand is the noisy NHPP sample,
    // so even the oracle is not perfectly informed — exactly the situation
    // the reservation cushion exists for.
    scenario::PolicySpec policy;
    policy.horizon = 4;
    policy.demand_predictor.kind = kind;
    if (kind == "seasonal_ar") policy.demand_predictor.window = 72;
    policy.price_predictor.kind = kind == "oracle" ? "oracle" : "last";
    const auto handle = scenario::make_policy(bundle, spec, policy);
    const auto summary = engine.run(handle.policy());
    if (kind == "oracle") oracle_compliance = summary.mean_compliance;
    if (kind == "last") last_compliance = summary.mean_compliance;
    std::printf("%s,", kind.c_str());
    scenario::print_row({summary.total_cost, summary.mean_compliance,
                         summary.worst_compliance});
  }

  const bool ok = oracle_compliance >= last_compliance;
  std::printf("\n# shape check: compliance(oracle)=%.3f >= compliance(persistence)=%.3f -- %s\n",
              oracle_compliance, last_compliance, ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
