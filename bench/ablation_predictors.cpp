// Ablation: predictor choice (Section III notes the controller "can work
// with any demand prediction techniques"). Runs the same noisy two-day
// diurnal workload under four predictors — perfect oracle, AR(2) (the
// paper's choice), seasonal-naive (historical daily pattern), the
// seasonal+AR hybrid (this library's upgrade), and last-value persistence —
// and reports realized cost and SLA compliance.
//
// Expected: oracle <= AR/seasonal < persistence in cost-at-compliance;
// persistence lags the ramps and pays in SLA violations.
#include "scenarios.hpp"

int main() {
  using namespace gp;

  auto scenario = bench::paper_scenario(2, 6, 1.5e-5);
  scenario.model.reconfig_cost.assign(2, 0.01);
  scenario.model.sla.reservation_ratio = 1.1;

  sim::SimulationConfig config;
  config.periods = 48;  // two days x 24 h: seasonal gets one day of history
  config.period_hours = 1.0;
  config.noisy_demand = true;
  config.seed = 33;

  bench::print_series_header(
      "Ablation: predictor choice vs realized cost and SLA compliance",
      {"predictor", "total_cost", "mean_sla_compliance", "worst_sla_compliance"});

  double oracle_compliance = 0.0, last_compliance = 0.0;
  for (const std::string kind : {"oracle", "ar", "seasonal", "seasonal_ar", "last"}) {
    sim::SimulationEngine engine(scenario.model, scenario.demand, scenario.prices, config);
    std::vector<linalg::Vector> demand_trace, price_trace;
    Rng unused(0);
    if (kind == "oracle") {
      // Note: the oracle sees the MEAN trace; the realized demand is the
      // noisy NHPP sample, so even the oracle is not perfectly informed —
      // exactly the situation the reservation cushion exists for.
      for (std::size_t k = 0; k <= config.periods + 8; ++k) {
        const double hour = static_cast<double>(k) * config.period_hours;
        demand_trace.push_back(
            scenario.demand.mean_rates(hour + config.period_hours / 2.0));
        price_trace.push_back(engine.observe_price(hour));
      }
    }
    control::MpcSettings settings;
    settings.horizon = 4;
    control::MpcController controller(
        scenario.model, settings, bench::make_predictor(kind, demand_trace),
        kind == "oracle" ? bench::make_predictor(kind, price_trace)
                         : bench::make_predictor("last"));
    const auto summary = engine.run(sim::policy_from(controller));
    if (kind == "oracle") oracle_compliance = summary.mean_compliance;
    if (kind == "last") last_compliance = summary.mean_compliance;
    std::printf("%s,", kind.c_str());
    bench::print_row({summary.total_cost, summary.mean_compliance,
                      summary.worst_compliance});
  }

  const bool ok = oracle_compliance >= last_compliance;
  std::printf("\n# shape check: compliance(oracle)=%.3f >= compliance(persistence)=%.3f -- %s\n",
              oracle_compliance, last_compliance, ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
