// Reproduces Fig. 6: "Effect of prediction horizon on the number of
// servers" — the single-DC experiment of Fig. 4 re-run with prediction
// horizons K in {1, 10, 20, 30} under the paper's realistic conditions:
// noisy (sampled NHPP) demand forecast by an AR model. The paper observes
// that "the change in the number of servers tends to be less as K
// increases".
//
// Mechanism reproduced here: the K = 1 controller chases the one-step AR
// forecast, which overshoots at every demand turning point; with a longer
// window the first-step control is tempered by the predicted decline
// beyond the peak, so the trajectory is smoother (lower total variation)
// AND cheaper. The effect saturates once the window exceeds the AR model's
// effective memory (K >= 10 trajectories coincide) — a finding this bench
// reports explicitly; see EXPERIMENTS.md.
#include <cstdio>

#include "common/stats.hpp"
#include "scenario/policy.hpp"
#include "scenario/registry.hpp"
#include "scenario/report.hpp"

int main() {
  using namespace gp;

  // Single DC serving a single (distant) access network at low load, with
  // the SLA relaxed so the San Jose -> New York pair is feasible.
  const auto spec = scenario::preset("fig06_horizon");
  const auto bundle = scenario::build(spec);

  const std::vector<std::size_t> horizons{1, 10, 20, 30};
  std::vector<std::vector<double>> trajectories;
  std::vector<double> variations, costs;

  for (const std::size_t horizon : horizons) {
    auto engine = scenario::make_engine(bundle, spec);
    scenario::PolicySpec policy;
    policy.horizon = horizon;
    policy.demand_predictor.kind = "ar";
    policy.price_predictor.kind = "last";
    const auto handle = scenario::make_policy(bundle, spec, policy);
    const auto summary = engine.run(handle.policy());
    std::vector<double> servers;
    for (const auto& period : summary.periods) servers.push_back(period.total_servers);
    variations.push_back(total_variation(servers));
    costs.push_back(summary.total_cost);
    trajectories.push_back(std::move(servers));
  }

  scenario::print_series_header(
      "Fig.6: server trajectories for prediction horizons K = 1, 10, 20, 30",
      {"utc_hour", "servers_K1", "servers_K10", "servers_K20", "servers_K30"});
  for (std::size_t k = 0; k < spec.sim.periods; ++k) {
    scenario::print_row({static_cast<double>(k) * spec.sim.period_hours, trajectories[0][k],
                         trajectories[1][k], trajectories[2][k], trajectories[3][k]});
  }

  std::printf("\n# total variation (server churn) and realized cost per horizon:\n");
  for (std::size_t i = 0; i < horizons.size(); ++i) {
    std::printf("# K=%zu: churn=%.3f cost=%.4f\n", horizons[i], variations[i], costs[i]);
  }
  // Shape check: the longest horizon churns less than the myopic K=1 and is
  // no more expensive.
  const bool ok = variations.back() < variations.front() && costs.back() <= costs.front();
  std::printf("# shape check: churn(K=30)=%.3f < churn(K=1)=%.3f and "
              "cost(K=30)=%.4f <= cost(K=1)=%.4f -- %s\n",
              variations.back(), variations.front(), costs.back(), costs.front(),
              ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
