// Ablation: ADMM warm starting across the receding-horizon loop. The MPC
// controller solves a near-identical window program every period; reusing
// the previous (x, y) iterate should cut iterations substantially after the
// first period. This bench runs the same 24-period loop cold and warm and
// reports the per-period solver iterations.
//
// Expected shape: warm-started mean iterations (periods 2+) sit below the
// cold-start mean at an identical trajectory (warm starting changes where
// ADMM starts, not where it converges). The gain is moderate — hourly
// demand moves the active set, and the adaptive rho schedule restarts each
// solve — which is itself a finding worth recording.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/stats.hpp"
#include "dspp/window_program.hpp"
#include "scenario/registry.hpp"
#include "scenario/report.hpp"

int main() {
  using namespace gp;

  const auto spec = scenario::preset("ablation_warm_start");
  const auto bundle = scenario::build(spec);
  const dspp::PairIndex pairs(bundle.model);

  auto run_loop = [&](bool warm) {
    qp::AdmmSettings settings;
    settings.auto_warm_start = warm;
    qp::AdmmSolver solver(settings);
    linalg::Vector state(pairs.num_pairs(), 1.0);
    std::vector<double> iterations;
    std::vector<double> objectives;
    for (std::size_t k = 0; k < spec.sim.periods; ++k) {
      const double hour = static_cast<double>(k);
      dspp::WindowInputs inputs;
      inputs.initial_state = state;
      for (std::size_t t = 1; t <= 4; ++t) {
        inputs.demand.push_back(
            bundle.demand.mean_rates(hour + static_cast<double>(t) + 0.5));
        inputs.price.push_back(
            bundle.prices.server_prices(hour + static_cast<double>(t) + 0.5));
      }
      const dspp::WindowProgram program(bundle.model, pairs, std::move(inputs));
      const auto solution = program.solve(solver);
      if (!solution.ok()) {
        std::printf("solve failed at period %zu\n", k);
        std::exit(1);
      }
      iterations.push_back(static_cast<double>(solution.solver_iterations));
      objectives.push_back(solution.objective);
      state = solution.x.front();
    }
    return std::pair{iterations, objectives};
  };

  const auto [cold_iters, cold_obj] = run_loop(false);
  const auto [warm_iters, warm_obj] = run_loop(true);

  scenario::print_series_header(
      "Ablation: ADMM iterations per MPC period, cold vs warm started",
      {"period", "iters_cold", "iters_warm"});
  for (std::size_t k = 0; k < cold_iters.size(); ++k) {
    scenario::print_row({static_cast<double>(k), cold_iters[k], warm_iters[k]});
  }

  // Steady-state means (skip the first period: both start cold there).
  const double cold_mean =
      gp::mean(std::span<const double>(cold_iters).subspan(1));
  const double warm_mean =
      gp::mean(std::span<const double>(warm_iters).subspan(1));
  double objective_drift = 0.0;
  for (std::size_t k = 0; k < cold_obj.size(); ++k) {
    objective_drift =
        std::max(objective_drift, std::abs(cold_obj[k] - warm_obj[k]) /
                                      (1.0 + std::abs(cold_obj[k])));
  }
  const bool ok = warm_mean < 0.92 * cold_mean && objective_drift < 1e-2;
  std::printf("\n# shape check: warm mean %.0f iters < 0.92 x cold mean %.0f; max objective"
              " drift %.2e -- %s\n",
              warm_mean, cold_mean, objective_drift, ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
