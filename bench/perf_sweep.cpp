// Performance study of the scenario sweep layer (BENCH_sweep.json).
//
// One grid — the ablation_small preset x one default MPC policy x 16
// derived seeds — run twice through SweepRunner: once capped at a single
// lane, once at four. Reports wall time and runs/s for both, verifies the
// determinism contract (the full JSONL export, every digit of every run,
// must be BIT-identical across thread counts), and derives the thread
// scaling ratio.
//
// Honest reporting on small boxes: on a host with fewer than 4 hardware
// threads the lanes time-slice the same cores and the scaling ratio is
// scheduler noise, so `thread_scaling_ratio_min` is written as 0.0 (nothing
// to gate) instead of pretending. On a >= 4-core box the floor is 2.0 and
// tools/bench_check.py enforces ratio >= floor via its internal-constraint
// check.
//
// Timeline overhead gate: a third 4-lane run with the per-period telemetry
// timeline (GEOPLACE_TIMELINE) force-armed measures what recording one
// TelemetryFrame per period costs the hot loop, and re-checks that the
// sweep's JSONL stays bit-identical with recording on. The floor
// (timeline_overhead_ratio_min) is deliberately loose — recording must not
// halve throughput — and, like thread scaling, is only gated on >= 4-cpu
// hosts where the measurement is not scheduler noise.
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "obs/manifest.hpp"
#include "obs/timeline.hpp"
#include "scenario/sweep.hpp"

int main() {
  // Size the global pool for the 4-lane run regardless of what the machine
  // reports (the pool is sized once, on first use).
  setenv("GEOPLACE_THREADS", "4", /*overwrite=*/0);
  const unsigned cpus = std::thread::hardware_concurrency();

  gp::scenario::SweepGrid grid;
  grid.scenarios = {gp::scenario::preset("ablation_small")};
  grid.policies = {gp::scenario::PolicySpec{}};  // default MPC (horizon 5, last/last)
  grid.num_seeds = 16;
  grid.base_seed = 1;

  auto sweep_at = [&grid](std::size_t threads) {
    gp::scenario::SweepOptions options;
    options.max_threads = threads;
    // Any cell that fails here leaves a replay bundle behind (CI uploads the
    // directory on a red run); a healthy sweep writes nothing.
    options.failures_dir = "sweep_failures";
    return gp::scenario::SweepRunner(grid, options).run();
  };

  const auto result1 = sweep_at(1);
  const auto result4 = sweep_at(4);

  // Third run: identical grid, telemetry timeline force-armed. Frames are
  // recorded into the per-lane rings but not dumped (no timelines_dir, no
  // GEOPLACE_TIMELINE dump path), so this isolates the record-path cost.
  gp::obs::TimelineWriter::set_enabled(true);
  const auto result_tl = sweep_at(4);
  gp::obs::TimelineWriter::set_enabled(false);

  // The leading manifest line records host facts (lane count among them),
  // so the determinism identity is checked on the stripped body — that is
  // the part that must not depend on GEOPLACE_THREADS.
  std::ostringstream jsonl1, jsonl4, jsonl_tl;
  result1.write_jsonl(jsonl1);
  result4.write_jsonl(jsonl4);
  result_tl.write_jsonl(jsonl_tl);
  const bool manifest_first = gp::obs::is_manifest_line(jsonl1.str()) &&
                              gp::obs::is_manifest_line(jsonl4.str()) &&
                              gp::obs::is_manifest_line(jsonl_tl.str());
  const std::string body1 = gp::obs::strip_manifest_lines(jsonl1.str());
  const bool bit_identical =
      manifest_first && body1 == gp::obs::strip_manifest_lines(jsonl4.str());
  // Recording telemetry must never perturb the results themselves.
  const bool timeline_transparent =
      manifest_first && body1 == gp::obs::strip_manifest_lines(jsonl_tl.str());

  const double ratio =
      result1.runs_per_s > 0.0 ? result4.runs_per_s / result1.runs_per_s : 0.0;
  const bool scaling_gated = cpus >= 4;
  const double ratio_min = scaling_gated ? 2.0 : 0.0;
  const double timeline_ratio =
      result4.runs_per_s > 0.0 ? result_tl.runs_per_s / result4.runs_per_s : 0.0;
  const double timeline_ratio_min = scaling_gated ? 0.5 : 0.0;

  std::printf("# sweep: %zu runs (1 scenario x 1 policy x 16 seeds), cpus=%u\n",
              result1.runs.size(), cpus);
  std::printf("threads=1: %.1f ms, %.2f runs/s\n", result1.wall_ms, result1.runs_per_s);
  std::printf("threads=4: %.1f ms, %.2f runs/s\n", result4.wall_ms, result4.runs_per_s);
  std::printf("bit-identical JSONL across thread counts: %s\n",
              bit_identical ? "yes" : "NO");
  if (scaling_gated) {
    std::printf("thread scaling ratio: x%.2f (floor %.1f)\n", ratio, ratio_min);
  } else {
    std::printf("thread scaling ratio: x%.2f (n/a: cpus=%u < 4, not gated)\n", ratio, cpus);
  }
  std::printf("timeline armed: %.1f ms, %.2f runs/s (x%.2f of disabled%s), results %s\n",
              result_tl.wall_ms, result_tl.runs_per_s, timeline_ratio,
              scaling_gated ? "" : ", not gated",
              timeline_transparent ? "identical" : "PERTURBED");

  std::FILE* json = std::fopen("BENCH_sweep.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"manifest\": %s,\n",
                 result1.manifest.to_json_object().c_str());
    std::fprintf(json, "  \"cpus\": %u,\n  \"runs\": %zu,\n", cpus, result1.runs.size());
    std::fprintf(json, "  \"threads1\": {\"wall_ms\": %.3f, \"runs_per_s\": %.3f},\n",
                 result1.wall_ms, result1.runs_per_s);
    std::fprintf(json, "  \"threads4\": {\"wall_ms\": %.3f, \"runs_per_s\": %.3f},\n",
                 result4.wall_ms, result4.runs_per_s);
    std::fprintf(json, "  \"bit_identical\": %s,\n", bit_identical ? "true" : "false");
    std::fprintf(json, "  \"thread_scaling_ratio\": %.3f,\n", ratio);
    std::fprintf(json, "  \"thread_scaling_ratio_min\": %.1f,\n", ratio_min);
    std::fprintf(json, "  \"timeline\": {\"wall_ms\": %.3f, \"runs_per_s\": %.3f},\n",
                 result_tl.wall_ms, result_tl.runs_per_s);
    std::fprintf(json, "  \"timeline_transparent\": %s,\n",
                 timeline_transparent ? "true" : "false");
    std::fprintf(json, "  \"timeline_overhead_ratio\": %.3f,\n", timeline_ratio);
    std::fprintf(json, "  \"timeline_overhead_ratio_min\": %.1f\n}\n", timeline_ratio_min);
    std::fclose(json);
  }

  const bool ok = bit_identical && timeline_transparent &&
                  (!scaling_gated ||
                   (ratio >= ratio_min && timeline_ratio >= timeline_ratio_min));
  std::printf("\n# determinism %s, timeline %s, scaling %s -- %s\n",
              bit_identical ? "holds" : "VIOLATED",
              timeline_transparent ? "transparent" : "PERTURBS RESULTS",
              scaling_gated ? (ratio >= ratio_min ? "meets floor" : "BELOW FLOOR") : "n/a",
              ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
