// Ablation: placement controllers head to head on the same two-day noisy
// diurnal workload with price variation — the economic argument for the
// paper's MPC design spelled out against the alternatives a practitioner
// would actually reach for:
//   mpc        the paper's controller (Algorithm 1, seasonal predictor —
//              Section III: demand is "reasonably predicted using
//              historical traces"; day 1 warms the season up)
//   reactive   myopic re-optimization for the current demand (W=1, c=0)
//   autoscaler industry threshold rules (no prediction, no price awareness)
//   static     one-shot peak provisioning (classic replica placement)
//
// The four controllers run as one SweepRunner grid (one scenario, four
// policies, one seed), fanned across the thread pool.
//
// Expected: MPC has the lowest cost at comparable compliance; static is the
// most expensive (pays for the peak all day); the autoscaler churns and
// lags ramps; reactive churns most.
#include <cstdio>

#include "scenario/report.hpp"
#include "scenario/sweep.hpp"

int main() {
  using namespace gp;

  scenario::SweepGrid grid;
  grid.scenarios = {scenario::preset("ablation_controllers")};

  scenario::PolicySpec mpc;
  mpc.name = "mpc";
  mpc.horizon = 4;
  mpc.demand_predictor.kind = "seasonal";
  mpc.price_predictor.kind = "seasonal";
  grid.policies.push_back(mpc);

  scenario::PolicySpec reactive;
  reactive.name = "reactive";
  reactive.kind = "reactive";
  grid.policies.push_back(reactive);

  scenario::PolicySpec autoscaler;
  autoscaler.name = "autoscaler";
  autoscaler.kind = "autoscaler";
  grid.policies.push_back(autoscaler);

  scenario::PolicySpec static_policy;
  static_policy.name = "static";
  static_policy.kind = "static";  // peak provisioning at the 12:00 UTC price
  grid.policies.push_back(static_policy);

  grid.seeds = {grid.scenarios[0].sim.seed};
  const auto result = scenario::SweepRunner(grid).run();

  scenario::print_series_header(
      "Ablation: controllers on the same 2-day noisy diurnal workload",
      {"controller", "total_cost", "churn", "mean_sla", "worst_sla"});
  for (const auto& run : result.runs) {
    std::printf("%s,", run.policy.c_str());
    scenario::print_row({run.summary.total_cost, run.summary.total_churn,
                         run.summary.mean_compliance, run.summary.worst_compliance});
  }

  const auto& mpc_summary = result.runs[0].summary;
  const auto& reactive_summary = result.runs[1].summary;
  const auto& autoscaler_summary = result.runs[2].summary;
  const auto& static_summary = result.runs[3].summary;

  // The autoscaler's low bill is an artifact of under-provisioning (it
  // drops ~half the demand), so cost comparisons are made at comparable
  // compliance: MPC must beat static and reactive on cost while keeping
  // compliance high, and expose the autoscaler's compliance collapse.
  const bool ok = mpc_summary.total_cost < static_summary.total_cost &&
                  mpc_summary.total_cost < reactive_summary.total_cost &&
                  mpc_summary.mean_compliance > 0.9 &&
                  autoscaler_summary.mean_compliance < mpc_summary.mean_compliance - 0.2;
  std::printf("\n# shape check: mpc cost %.3f < static %.3f, < reactive %.3f at"
              " %.1f%% SLA; autoscaler SLA only %.1f%% -- %s\n",
              mpc_summary.total_cost, static_summary.total_cost,
              reactive_summary.total_cost, 100.0 * mpc_summary.mean_compliance,
              100.0 * autoscaler_summary.mean_compliance, ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
