// Ablation: placement controllers head to head on the same two-day noisy
// diurnal workload with price variation — the economic argument for the
// paper's MPC design spelled out against the alternatives a practitioner
// would actually reach for:
//   mpc        the paper's controller (Algorithm 1, seasonal predictor —
//              Section III: demand is "reasonably predicted using
//              historical traces"; day 1 warms the season up)
//   reactive   myopic re-optimization for the current demand (W=1, c=0)
//   autoscaler industry threshold rules (no prediction, no price awareness)
//   static     one-shot peak provisioning (classic replica placement)
//
// Expected: MPC has the lowest cost at comparable compliance; static is the
// most expensive (pays for the peak all day); the autoscaler churns and
// lags ramps; reactive churns most.
#include "common/stats.hpp"
#include "scenarios.hpp"

int main() {
  using namespace gp;

  auto scenario = bench::paper_scenario(3, 8, 1.5e-5);
  scenario.model.reconfig_cost.assign(3, 0.01);
  scenario.model.sla.reservation_ratio = 1.15;

  sim::SimulationConfig config;
  config.periods = 48;
  config.period_hours = 1.0;
  config.noisy_demand = true;
  config.seed = 2026;

  bench::print_series_header(
      "Ablation: controllers on the same 2-day noisy diurnal workload",
      {"controller", "total_cost", "churn", "mean_sla", "worst_sla"});

  auto report = [](const char* name, const sim::SimulationSummary& summary) {
    std::printf("%s,", name);
    bench::print_row({summary.total_cost, summary.total_churn, summary.mean_compliance,
                      summary.worst_compliance});
    return summary;
  };

  // MPC (the paper's controller).
  control::MpcSettings settings;
  settings.horizon = 4;
  control::MpcController mpc(scenario.model, settings, bench::make_predictor("seasonal"),
                             bench::make_predictor("seasonal"));
  sim::SimulationEngine engine1(scenario.model, scenario.demand, scenario.prices, config);
  const auto mpc_summary = report("mpc", engine1.run(sim::policy_from(mpc)));

  // Reactive (myopic LP).
  control::ReactiveController reactive(scenario.model);
  sim::SimulationEngine engine2(scenario.model, scenario.demand, scenario.prices, config);
  const auto reactive_summary = report("reactive", engine2.run(sim::policy_from(reactive)));

  // Threshold autoscaler.
  control::ThresholdAutoscaler autoscaler(scenario.model);
  sim::SimulationEngine engine3(scenario.model, scenario.demand, scenario.prices, config);
  const auto autoscaler_summary =
      report("autoscaler", engine3.run(sim::policy_from(autoscaler)));

  // Static peak provisioning.
  linalg::Vector peak(scenario.model.num_access_networks(), 0.0);
  for (double h = 0.0; h < 24.0; h += 1.0) {
    const auto rates = scenario.demand.mean_rates(h);
    for (std::size_t v = 0; v < peak.size(); ++v) peak[v] = std::max(peak[v], rates[v]);
  }
  sim::SimulationEngine engine4(scenario.model, scenario.demand, scenario.prices, config);
  control::StaticController static_controller(scenario.model, peak,
                                              engine4.observe_price(12.0));
  const auto static_summary = report("static", engine4.run(sim::policy_from(static_controller)));

  // The autoscaler's low bill is an artifact of under-provisioning (it
  // drops ~half the demand), so cost comparisons are made at comparable
  // compliance: MPC must beat static and reactive on cost while keeping
  // compliance high, and expose the autoscaler's compliance collapse.
  const bool ok = mpc_summary.total_cost < static_summary.total_cost &&
                  mpc_summary.total_cost < reactive_summary.total_cost &&
                  mpc_summary.mean_compliance > 0.9 &&
                  autoscaler_summary.mean_compliance < mpc_summary.mean_compliance - 0.2;
  std::printf("\n# shape check: mpc cost %.3f < static %.3f, < reactive %.3f at"
              " %.1f%% SLA; autoscaler SLA only %.1f%% -- %s\n",
              mpc_summary.total_cost, static_summary.total_cost,
              reactive_summary.total_cost, 100.0 * mpc_summary.mean_compliance,
              100.0 * autoscaler_summary.mean_compliance, ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
