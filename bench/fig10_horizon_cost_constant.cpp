// Reproduces Fig. 10: "Impact of prediction horizon length when price and
// demand are both constant" — the counterpart of Fig. 9: with perfectly
// predictable (constant) inputs, a longer window can only help. The
// mechanism is the de-provisioning transient: the run starts 3x
// over-provisioned (think: arriving out of a demand peak), and the
// quadratic reconfiguration penalty makes the optimal descent a planned,
// multi-period glide — which a short window must improvise step by step,
// while a long window schedules it optimally. The paper: "indeed solution
// quality improves with the length of prediction horizon".
//
// Expected shape: realized total cost is non-increasing in the horizon
// (with the big gains at small K, flattening once the descent is fully
// inside the window). Note the demand constraint pins the UP-ramp (next
// period's demand must be met regardless of W), so the informative
// transient is the downward one.
#include <cstdio>

#include "scenario/policy.hpp"
#include "scenario/registry.hpp"
#include "scenario/report.hpp"

int main() {
  using namespace gp;

  // Constant demand, frozen prices, 4x over-provisioned start.
  const auto spec = scenario::preset("fig10_constant");
  const auto bundle = scenario::build(spec);

  scenario::print_series_header(
      "Fig.10: realized total cost vs prediction horizon (constant demand & price)",
      {"horizon", "total_cost"});

  std::vector<double> costs;
  for (std::size_t horizon = 1; horizon <= 10; ++horizon) {
    auto engine = scenario::make_engine(bundle, spec);
    scenario::PolicySpec policy;
    policy.horizon = horizon;
    // LastValue on constant series IS a perfect predictor.
    policy.demand_predictor.kind = "last";
    policy.price_predictor.kind = "last";
    const auto handle = scenario::make_policy(bundle, spec, policy);
    const auto summary = engine.run(handle.policy());
    costs.push_back(summary.total_cost);
    scenario::print_row({static_cast<double>(horizon), costs.back()});
  }

  // Shape check: cost is (weakly) decreasing overall.
  // Monotone decreasing along the whole sweep, with a visible overall gain.
  bool monotone = true;
  for (std::size_t i = 1; i < costs.size(); ++i) {
    monotone = monotone && costs[i] <= costs[i - 1] * (1.0 + 1e-6);
  }
  const bool improved = costs.back() < 0.99 * costs.front();
  const bool ok = monotone && improved;
  std::printf("\n# shape check: cost(K=10)=%.4f < cost(K=1)=%.4f -- %s\n", costs.back(),
              costs.front(), ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
