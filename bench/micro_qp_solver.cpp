// Solver micro-benchmarks (google-benchmark): how the ADMM and IPM paths
// scale with the DSPP window dimensions (L data centers x V access networks
// x W periods), plus the sparse LDL^T kernel on a window KKT system.
//
// These justify the solver architecture: the sparse ADMM path is the
// production solver (near-linear in nonzeros per iteration after one
// factorization), the dense IPM is the small-problem cross-checker (cubic).
#include <benchmark/benchmark.h>

#include "dspp/window_program.hpp"
#include "linalg/sparse_ldlt.hpp"
#include "qp/admm_solver.hpp"
#include "qp/ipm_solver.hpp"
#include "scenario/registry.hpp"

namespace {

using namespace gp;

/// Builds a window program of the given dimensions on the paper scenario.
dspp::WindowProgram make_window(std::size_t num_dcs, std::size_t num_cities,
                                std::size_t horizon) {
  static std::vector<std::unique_ptr<scenario::ScenarioBundle>> keep_alive;  // owns models
  keep_alive.push_back(
      std::make_unique<scenario::ScenarioBundle>(scenario::build(scenario::section7_spec(num_dcs, num_cities, 1.5e-5))));
  auto& scenario = *keep_alive.back();
  // Loose SLA so every (l, v) pair is usable: maximizes the pair count for
  // a given (L, V), i.e. the hardest window program of those dimensions.
  scenario.model.sla.max_latency_ms = 60.0;
  const dspp::PairIndex pairs(scenario.model);
  dspp::WindowInputs inputs;
  inputs.initial_state.assign(pairs.num_pairs(), 1.0);
  for (std::size_t t = 0; t < horizon; ++t) {
    inputs.demand.push_back(scenario.demand.mean_rates(static_cast<double>(t)));
    inputs.price.push_back(scenario.prices.server_prices(static_cast<double>(t)));
  }
  return dspp::WindowProgram(scenario.model, pairs, std::move(inputs));
}

void BM_AdmmWindow(benchmark::State& state) {
  const auto num_dcs = static_cast<std::size_t>(state.range(0));
  const auto num_cities = static_cast<std::size_t>(state.range(1));
  const auto horizon = static_cast<std::size_t>(state.range(2));
  const auto program = make_window(num_dcs, num_cities, horizon);
  qp::AdmmSolver solver;
  for (auto _ : state) {
    auto solution = program.solve(solver);
    benchmark::DoNotOptimize(solution.objective);
    if (!solution.ok()) state.SkipWithError("ADMM failed");
  }
  state.counters["vars"] = static_cast<double>(program.problem().num_variables());
  state.counters["rows"] = static_cast<double>(program.problem().num_constraints());
}
BENCHMARK(BM_AdmmWindow)
    ->Args({1, 1, 5})
    ->Args({2, 6, 5})
    ->Args({4, 12, 5})
    ->Args({4, 24, 5})
    ->Args({4, 24, 10})
    ->Unit(benchmark::kMillisecond);

void BM_IpmWindow(benchmark::State& state) {
  const auto num_dcs = static_cast<std::size_t>(state.range(0));
  const auto num_cities = static_cast<std::size_t>(state.range(1));
  const auto horizon = static_cast<std::size_t>(state.range(2));
  const auto program = make_window(num_dcs, num_cities, horizon);
  qp::IpmSolver solver;
  for (auto _ : state) {
    auto solution = program.solve(solver);
    benchmark::DoNotOptimize(solution.objective);
    if (!solution.ok()) state.SkipWithError("IPM failed");
  }
  state.counters["vars"] = static_cast<double>(program.problem().num_variables());
}
BENCHMARK(BM_IpmWindow)
    ->Args({1, 1, 5})
    ->Args({2, 6, 5})
    ->Args({4, 12, 5})
    ->Unit(benchmark::kMillisecond);

void BM_SparseLdltFactor(benchmark::State& state) {
  const auto num_cities = static_cast<std::size_t>(state.range(0));
  const auto program = make_window(4, num_cities, 8);
  // Assemble the ADMM KKT upper triangle the way the solver does.
  const auto& problem = program.problem();
  const auto n = static_cast<std::int32_t>(problem.num_variables());
  const auto m = static_cast<std::int32_t>(problem.num_constraints());
  std::vector<linalg::Triplet> triplets;
  for (std::int32_t i = 0; i < n; ++i) triplets.push_back({i, i, 1e-6});
  const auto pu = problem.p.upper_triangle();
  for (std::int32_t c = 0; c < pu.cols(); ++c) {
    for (std::int32_t e = pu.col_ptr()[c]; e < pu.col_ptr()[c + 1]; ++e) {
      triplets.push_back({pu.row_idx()[e], c, pu.values()[e]});
    }
  }
  const auto at = problem.a.transposed();
  for (std::int32_t c = 0; c < at.cols(); ++c) {
    for (std::int32_t e = at.col_ptr()[c]; e < at.col_ptr()[c + 1]; ++e) {
      triplets.push_back({at.row_idx()[e], n + c, at.values()[e]});
    }
  }
  for (std::int32_t i = 0; i < m; ++i) triplets.push_back({n + i, n + i, -10.0});
  const auto kkt = linalg::SparseMatrix::from_triplets(n + m, n + m, triplets);
  for (auto _ : state) {
    linalg::SparseLdlt ldlt;
    const auto status = ldlt.factor(kkt);
    benchmark::DoNotOptimize(status);
    if (status != linalg::SparseLdlt::Status::kOk) state.SkipWithError("factor failed");
  }
  state.counters["dim"] = static_cast<double>(n + m);
}
BENCHMARK(BM_SparseLdltFactor)->Arg(6)->Arg(12)->Arg(24)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
