// Reproduces Fig. 3: "Prices of electricity used in the experiments" —
// hourly wholesale electricity prices ($/MWh) per region over one day, in
// each region's local time, plus the derived per-server prices for the
// paper's three VM flavors (30/70/140 W).
//
// Expected shape: California is generally the most expensive with a peak
// around 17:00 local; Texas is the cheapest; prices stay within the
// figure's ~$10-$115 envelope and every region has an afternoon peak.
#include "scenario/report.hpp"
#include "workload/price.hpp"

int main() {
  using namespace gp;
  const workload::ElectricityPriceModel model;
  const std::vector<std::pair<const char*, topology::Region>> regions = {
      {"SanJose_CA", topology::Region::kCalifornia},
      {"Houston_TX", topology::Region::kTexas},
      {"Atlanta_GA", topology::Region::kSoutheast},
      {"Chicago_IL", topology::Region::kMidwest},
  };

  scenario::print_series_header(
      "Fig.3: hourly electricity price [$ per MWh] per region (local time)",
      {"local_hour", "SanJose_CA", "Houston_TX", "Atlanta_GA", "Chicago_IL"});
  for (int hour = 0; hour < 24; ++hour) {
    std::vector<double> row{static_cast<double>(hour)};
    for (const auto& [name, region] : regions) {
      (void)name;
      row.push_back(model.price(region, static_cast<double>(hour)));
    }
    scenario::print_row(row);
  }

  std::printf("\n");
  scenario::print_series_header(
      "derived per-server price [$ per server-hour] at PUE 1.3, by VM flavor (CA curve)",
      {"local_hour", "small_30W", "medium_70W", "large_140W"});
  const auto sites = topology::default_datacenter_sites(1);  // San Jose
  for (int hour = 0; hour < 24; ++hour) {
    std::vector<double> row{static_cast<double>(hour)};
    for (auto vm : {workload::VmType::kSmall, workload::VmType::kMedium,
                    workload::VmType::kLarge}) {
      const workload::ServerPriceModel spm(sites, vm, model);
      // Convert local SJ hour to UTC for the API.
      const double utc = static_cast<double>(hour) - sites[0].location.utc_offset_hours;
      row.push_back(spm.server_price(0, utc));
    }
    scenario::print_row(row);
  }

  // Shape assertions (the bench fails loudly if the reproduction drifts).
  const double ca_peak = model.price(topology::Region::kCalifornia, 17.0);
  const double tx_same = model.price(topology::Region::kTexas, 17.0);
  const double ca_night = model.price(topology::Region::kCalifornia, 3.0);
  if (!(ca_peak > tx_same && ca_peak > 90.0 && ca_night < 40.0)) {
    std::printf("SHAPE CHECK FAILED\n");
    return 1;
  }
  std::printf("\n# shape check: CA 17:00 peak $%.1f > TX $%.1f, CA night $%.1f -- OK\n",
              ca_peak, tx_same, ca_night);
  return 0;
}
