// Reproduces Fig. 7: "Impact of number of players on the convergence rate"
// — the number of Algorithm-2 iterations needed to reach a relatively
// stable outcome as the number of competing providers grows from 1 to 10,
// for bottleneck capacities of 100, 200 and 300 servers at the cheapest
// data center (the paper throttles its Dallas TX site the same way).
//
// Setup: two data centers; the bottleneck is cheap and is the ONLY one able
// to serve access network an0 within the SLA, so its capacity is genuinely
// scarce. Our stabilized quota exchange (see competition.hpp) converges
// faster than the paper's raw update, so the stability threshold epsilon is
// tightened from the paper's 0.05 to 0.02 to resolve the same trend;
// absolute iteration counts are smaller but the ORDERING is the figure's:
// iterations grow with the number of players and with capacity tightness
// (100 >> 200 >> 300).
#include "game/competition.hpp"
#include "scenario/report.hpp"

int main() {
  using namespace gp;

  // an0 is 100 ms from dc-big: out of SLA reach for every provider (SLA
  // draws are 60-120 ms), so dc-cheap's capacity is the bottleneck.
  const topology::NetworkModel network({"dc-cheap", "dc-big"}, {"an0", "an1", "an2"},
                                       {{15.0, 25.0, 35.0}, {100.0, 20.0, 15.0}});

  const std::vector<double> bottlenecks{100.0, 200.0, 300.0};
  scenario::print_series_header(
      "Fig.7: Algorithm-2 iterations to a stable outcome vs number of players",
      {"players", "iters_cap100", "iters_cap200", "iters_cap300"});

  std::vector<std::vector<double>> iteration_table;  // [players-1][capacity]
  for (int players = 1; players <= 10; ++players) {
    std::vector<double> row{static_cast<double>(players)};
    std::vector<double> iters_row;
    for (const double bottleneck : bottlenecks) {
      // Average over seeds: single draws are noisy, the paper plots a trend.
      int total_iterations = 0;
      constexpr int kSeeds = 5;
      for (int seed = 0; seed < kSeeds; ++seed) {
        Rng rng(1000 + static_cast<std::uint64_t>(players * 17 + seed));
        game::RandomProviderParams params;
        params.horizon = 3;
        params.max_latency_min_ms = 60.0;
        params.max_latency_max_ms = 120.0;
        params.demand_min = 150.0;
        params.demand_max = 500.0;
        std::vector<game::ProviderConfig> providers;
        for (int i = 0; i < players; ++i) {
          providers.push_back(game::make_random_provider(network, params, rng));
          // The bottleneck really is the cheap site for everyone.
          for (auto& price : providers.back().price) price[0] = 0.4 * price[1];
        }
        game::GameSettings settings;
        settings.epsilon = 0.02;
        game::CompetitionGame game(std::move(providers),
                                   linalg::Vector{bottleneck, 3000.0}, settings);
        total_iterations += game.run().iterations;
      }
      const double mean_iterations =
          static_cast<double>(total_iterations) / static_cast<double>(kSeeds);
      row.push_back(mean_iterations);
      iters_row.push_back(mean_iterations);
    }
    iteration_table.push_back(iters_row);
    scenario::print_row(row);
  }

  // Shape checks on crowd averages (single cells are noisy, as in the
  // paper's own jagged curves): mean iterations over 8-10 players must be
  // (1) larger for cap-100 than cap-300 and (2) larger than the 1-player
  // case.
  auto tail_mean = [&](std::size_t capacity_index) {
    return (iteration_table[7][capacity_index] + iteration_table[8][capacity_index] +
            iteration_table[9][capacity_index]) /
           3.0;
  };
  const double tight_tail = tail_mean(0);
  const double loose_tail = tail_mean(2);
  const double single = iteration_table[0][0];
  const bool ok = tight_tail >= loose_tail && tight_tail > single;
  std::printf("\n# shape check: mean iters(8-10 players): cap100 %.1f >= cap300 %.1f, "
              "> 1 player %.1f -- %s\n",
              tight_tail, loose_tail, single, ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
