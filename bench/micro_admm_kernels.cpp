// Micro-benchmark of the ADMM hot-loop kernels (BENCH_admm.json).
//
// Three experiments on a fig06-scale window QP (the Section VII environment,
// 4 data centers x 24 cities, prediction horizon K = 20):
//
//  1. Kernel A/B: the pre-PR iteration body (per-iteration result-vector
//     allocations, CSC products, scalar loops with in-loop divisions) against
//     the fused workspace path (AdmmWorkspace buffers, vector_ops kernels,
//     mirror products), run once per AVAILABLE SIMD tier (scalar / avx2 /
//     avx512, forced via simd::set_active_tier and routed through the SELL
//     mirrors exactly like the solver). All runs consume identical synthetic
//     KKT-solve outputs — the triangular solve itself is excluded, it is
//     shared by both paths — so the final iterates must be BIT-identical on
//     EVERY tier; the speedup is the iteration-throughput gate (>= 1.3x).
//     dot_reassoc, the one documented-tolerance kernel, gets a cross-check
//     lane against the exact single-chain dot instead.
//  2. Full-solver timing: a cold solve (structure build) and a warm re-solve
//     (structure + factorization reuse) with ns/iteration and the alloc-probe
//     count of heap allocations inside the hot loop. This binary installs
//     operator new/delete hooks, so the warm count must be exactly zero.
//  3. SpMV bandwidth: cold CSC A^T y (allocating, column-gather) vs the CSR
//     mirror's A^T y (row-streaming) and A x (row-gather) vs the SELL
//     mirrors on each tier, in effective GB/s with
//     bytes = 12 * nnz + 8 * (rows + cols) per product. On hardware with a
//     vector tier, the best SELL tier must beat the scalar-mirror pair by
//     >= 1.25x (the floor travels as spmv.vector_speedup_min, 0.0 — i.e.
//     informational — when no vector ISA is available).
//
// The `wall_ms` / `gb_s` keys in BENCH_admm.json are the ones
// tools/bench_check.py gates on in pair mode, and the `*_min` keys are the
// machine-aware floors `bench_check.py --internal` enforces; other ratios
// and counters are informational.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <new>
#include <span>
#include <vector>

#include "common/alloc_probe.hpp"
#include "dspp/window_program.hpp"
#include "linalg/simd_dispatch.hpp"
#include "linalg/sparse_simd.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "qp/admm_solver.hpp"
#include "scenario/registry.hpp"
#include "scenario/report.hpp"

// Route every heap allocation through the alloc probe so hot-loop allocation
// counts are real measurements, not estimates. The library never installs
// these hooks itself; opting in is this binary's job.
void* operator new(std::size_t size) {
  gp::alloc_probe_bump();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  gp::alloc_probe_bump();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using Clock = std::chrono::steady_clock;
using gp::linalg::RowMajorMirror;
using gp::linalg::Vector;
using gp::qp::kInfinity;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// The fig06-scale window program: full Section VII environment at the
/// longest horizon family of Fig. 6 (K = 20).
gp::dspp::WindowProgram build_window(std::size_t horizon) {
  static gp::scenario::ScenarioBundle scenario =
      gp::scenario::build(gp::scenario::section7_spec(4, 24));
  const gp::dspp::PairIndex pairs(scenario.model);
  gp::dspp::WindowInputs inputs;
  inputs.initial_state = Vector(pairs.num_pairs(), 0.0);
  for (std::size_t t = 0; t < horizon; ++t) {
    const double utc_hour = 0.5 * static_cast<double>(t) + 0.5;
    inputs.demand.push_back(scenario.demand.mean_rates(utc_hour));
    inputs.price.push_back(scenario.prices.server_prices(utc_hour));
  }
  return {scenario.model, pairs, std::move(inputs)};
}

/// Deterministic synthetic KKT-solve output: what both kernel paths consume
/// in place of the (shared, excluded) triangular solve. splitmix64-style.
Vector synth_solution(std::size_t size, std::uint64_t seed) {
  Vector out(size);
  std::uint64_t s = seed;
  for (double& v : out) {
    s += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    v = static_cast<double>((z ^ (z >> 31)) >> 11) * 0x1.0p-53 - 0.5;
  }
  return out;
}

/// Pre-PR max-norm: single running maximum (a ~4-cycle loop-carried chain),
/// exactly as linalg::norm_inf was written before the multi-lane rewrite.
double legacy_norm_inf(const Vector& a) {
  double best = 0.0;
  for (double v : a) best = std::max(best, std::abs(v));
  return best;
}

/// Pre-PR CSC A^T x: per-term accumulation without the zero-term skip the
/// library kernels gained in this change (the values agree bitwise unless a
/// product underflows to a signed zero, which the bit-identity check below
/// would catch).
Vector legacy_multiply_transposed(const gp::linalg::SparseMatrix& a, const Vector& x) {
  Vector y(static_cast<std::size_t>(a.cols()), 0.0);
  const auto col_ptr = a.col_ptr();
  const auto row_idx = a.row_idx();
  const auto values = a.values();
  for (std::int32_t c = 0; c < a.cols(); ++c) {
    double acc = 0.0;
    for (std::int32_t p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
      acc += values[p] * x[static_cast<std::size_t>(row_idx[p])];
    }
    y[static_cast<std::size_t>(c)] = acc;
  }
  return y;
}

/// Final iterates plus a checksum over every residual/certificate scalar the
/// run produced; the legacy and fused runs must agree on all of it bitwise.
struct KernelRun {
  Vector x, z, y;
  double sink = 0.0;
  double wall_ms = 0.0;
  long long loop_allocs = 0;
  int iterations = 0;
};

bool bit_identical(const KernelRun& a, const KernelRun& b) {
  return a.x == b.x && a.z == b.z && a.y == b.y && a.sink == b.sink;
}

/// The pre-PR iteration body: a faithful transcription of the hot loop as it
/// stood before the workspace refactor — fresh result vectors from
/// SparseMatrix::multiply / multiply_transposed / project_box every
/// iteration, and residual scalings recomputed as 1/e_i, 1/d_j in-loop.
KernelRun run_legacy(const gp::qp::QpProblem& problem, const gp::qp::AdmmSettings& settings,
                     const Vector& rho, const Vector& e_scale, const Vector& d_scale,
                     double cost_scale, const std::vector<Vector>& solves, int iters) {
  namespace linalg = gp::linalg;
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();
  KernelRun run;
  Vector x(n, 0.0), z(m, 0.0), y(m, 0.0);
  Vector x_prev(n, 0.0), y_prev(m, 0.0);
  Vector rhs(n + m, 0.0);
  double sink = 0.0;

  const auto start = Clock::now();
  const long long allocs_before = gp::alloc_probe_count();
  for (int iteration = 0; iteration < iters; ++iteration) {
    x_prev = x;
    y_prev = y;

    for (std::size_t j = 0; j < n; ++j) rhs[j] = settings.sigma * x[j] - problem.q[j];
    for (std::size_t i = 0; i < m; ++i) rhs[n + i] = z[i] - y[i] / rho[i];
    // Stand-in for kkt.solve_in_place(rhs): identical bytes on both paths.
    const Vector& solved = solves[static_cast<std::size_t>(iteration) % solves.size()];
    std::copy(solved.begin(), solved.end(), rhs.begin());

    Vector z_tilde(m);
    for (std::size_t i = 0; i < m; ++i) z_tilde[i] = z[i] + (rhs[n + i] - y[i]) / rho[i];

    const double alpha = settings.alpha;
    for (std::size_t j = 0; j < n; ++j) x[j] = alpha * rhs[j] + (1.0 - alpha) * x[j];
    Vector z_candidate(m);
    for (std::size_t i = 0; i < m; ++i) {
      z_candidate[i] = alpha * z_tilde[i] + (1.0 - alpha) * z[i] + y[i] / rho[i];
    }
    const Vector z_next = linalg::project_box(z_candidate, problem.lower, problem.upper);
    for (std::size_t i = 0; i < m; ++i) y[i] = rho[i] * (z_candidate[i] - z_next[i]);
    z = z_next;

    // Residuals, every iteration (check cadence 1 keeps the A/B symmetric).
    const Vector ax = problem.a.multiply(x);
    const Vector px = problem.p.multiply(x);
    const Vector aty = legacy_multiply_transposed(problem.a, y);
    double prim_res = 0.0, prim_norm = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double inv_e = 1.0 / e_scale[i];
      prim_res = std::max(prim_res, std::abs(ax[i] - z[i]) * inv_e);
      prim_norm = std::max({prim_norm, std::abs(ax[i]) * inv_e, std::abs(z[i]) * inv_e});
    }
    double dual_res = 0.0, dual_norm = 0.0;
    const double inv_c = 1.0 / cost_scale;
    for (std::size_t j = 0; j < n; ++j) {
      const double inv_d = 1.0 / d_scale[j];
      dual_res = std::max(dual_res, std::abs(px[j] + problem.q[j] + aty[j]) * inv_d * inv_c);
      dual_norm = std::max({dual_norm, std::abs(px[j]) * inv_d * inv_c,
                            std::abs(aty[j]) * inv_d * inv_c,
                            std::abs(problem.q[j]) * inv_d * inv_c});
    }
    sink += prim_res + prim_norm + dual_res + dual_norm;

    // Infeasibility-certificate products (no early exit: checksum instead).
    Vector delta_y(m), delta_x(n);
    for (std::size_t i = 0; i < m; ++i) delta_y[i] = y[i] - y_prev[i];
    for (std::size_t j = 0; j < n; ++j) delta_x[j] = x[j] - x_prev[j];
    const double delta_y_norm = legacy_norm_inf(delta_y);
    if (delta_y_norm > settings.eps_infeasible) {
      const Vector at_dy = legacy_multiply_transposed(problem.a, delta_y);
      double support = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        const double dy = delta_y[i];
        if (dy > 0 && problem.upper[i] != kInfinity) support += problem.upper[i] * dy;
        if (dy < 0 && problem.lower[i] != -kInfinity) support += problem.lower[i] * dy;
      }
      sink += legacy_norm_inf(at_dy) + support;
    }
    const double delta_x_norm = legacy_norm_inf(delta_x);
    if (delta_x_norm > settings.eps_infeasible) {
      const Vector p_dx = problem.p.multiply(delta_x);
      const Vector a_dx = problem.a.multiply(delta_x);
      sink += legacy_norm_inf(p_dx) + legacy_norm_inf(a_dx) +
              linalg::dot(problem.q, delta_x);
    }
  }
  run.loop_allocs = gp::alloc_probe_count() - allocs_before;
  run.wall_ms = ms_since(start);
  run.x = std::move(x);
  run.z = std::move(z);
  run.y = std::move(y);
  run.sink = sink;
  run.iterations = iters;
  return run;
}

/// The post-PR iteration body: AdmmWorkspace buffers, fused vector_ops
/// kernels, CSR-mirror products, reciprocal scalings hoisted out of the loop.
/// Must reproduce run_legacy bit-for-bit.
KernelRun run_fused(const gp::qp::QpProblem& problem, const gp::qp::AdmmSettings& settings,
                    const Vector& rho, const Vector& e_scale, const Vector& d_scale,
                    double cost_scale, const std::vector<Vector>& solves, int iters) {
  namespace linalg = gp::linalg;
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();
  KernelRun run;
  gp::qp::AdmmWorkspace ws;
  ws.resize(n, m);
  const RowMajorMirror mirror(problem.a);
  // Route the A products exactly as the solver does: SELL mirrors on the
  // vector tiers, the CSR mirror on scalar (built OUTSIDE the timed loop).
  const bool vector_spmv =
      gp::linalg::simd::active_tier() != gp::linalg::simd::Tier::kScalar;
  gp::linalg::SellMirror a_sell, at_sell;
  if (vector_spmv) {
    a_sell.build(problem.a);
    at_sell.build_transposed(problem.a);
  }
  for (std::size_t j = 0; j < n; ++j) ws.inv_d[j] = 1.0 / d_scale[j];
  for (std::size_t i = 0; i < m; ++i) ws.inv_e[i] = 1.0 / e_scale[i];
  const double inv_c = 1.0 / cost_scale;
  const std::span<const double> rhs_x(ws.rhs.data(), n);
  const std::span<const double> rhs_nu(ws.rhs.data() + n, m);
  double sink = 0.0;

  const auto start = Clock::now();
  const long long allocs_before = gp::alloc_probe_count();
  for (int iteration = 0; iteration < iters; ++iteration) {
    for (std::size_t j = 0; j < n; ++j) ws.rhs[j] = settings.sigma * ws.x[j] - problem.q[j];
    for (std::size_t i = 0; i < m; ++i) {
      const double yr = ws.y[i] / rho[i];
      ws.y_over_rho[i] = yr;
      ws.rhs[n + i] = ws.z[i] - yr;
    }
    const Vector& solved = solves[static_cast<std::size_t>(iteration) % solves.size()];
    std::copy(solved.begin(), solved.end(), ws.rhs.begin());

    linalg::admm_z_tilde(ws.z, rhs_nu, ws.y, rho, ws.z_tilde);

    const double alpha = settings.alpha;
    const double delta_x_norm = linalg::axpby_delta(alpha, rhs_x, 1.0 - alpha, ws.x, ws.delta_x);
    linalg::admm_z_candidate_cached(alpha, ws.z_tilde, ws.z, ws.y_over_rho, ws.z_candidate);
    linalg::project_box_into(ws.z_candidate, problem.lower, problem.upper, ws.z_next);
    const double delta_y_norm =
        linalg::admm_dual_update_delta(rho, ws.z_candidate, ws.z_next, ws.y, ws.delta_y);
    std::swap(ws.z, ws.z_next);

    if (vector_spmv) {
      a_sell.multiply_into(1.0, ws.x, ws.ax);
    } else {
      mirror.multiply_into(1.0, ws.x, ws.ax);
    }
    std::fill(ws.px.begin(), ws.px.end(), 0.0);
    problem.p.multiply_accumulate(1.0, ws.x, ws.px);
    if (vector_spmv) {
      at_sell.multiply_into(1.0, ws.y, ws.aty);
    } else {
      std::fill(ws.aty.begin(), ws.aty.end(), 0.0);
      mirror.multiply_transposed_accumulate(1.0, ws.y, ws.aty);
    }

    double prim_res = 0.0, prim_norm = 0.0;
    linalg::inf_norm_scaled_residual(ws.ax, ws.z, ws.inv_e, prim_res, prim_norm);
    double dual_res = 0.0, dual_norm = 0.0;
    linalg::inf_norm_scaled_residual3(ws.px, problem.q, ws.aty, ws.inv_d, inv_c, dual_res,
                                      dual_norm);
    sink += prim_res + prim_norm + dual_res + dual_norm;

    if (delta_y_norm > settings.eps_infeasible) {
      if (vector_spmv) {
        at_sell.multiply_into(1.0, ws.delta_y, ws.at_dy);
      } else {
        std::fill(ws.at_dy.begin(), ws.at_dy.end(), 0.0);
        mirror.multiply_transposed_accumulate(1.0, ws.delta_y, ws.at_dy);
      }
      double support = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        const double dy = ws.delta_y[i];
        if (dy > 0 && problem.upper[i] != kInfinity) support += problem.upper[i] * dy;
        if (dy < 0 && problem.lower[i] != -kInfinity) support += problem.lower[i] * dy;
      }
      sink += linalg::norm_inf(ws.at_dy) + support;
    }
    if (delta_x_norm > settings.eps_infeasible) {
      std::fill(ws.p_dx.begin(), ws.p_dx.end(), 0.0);
      problem.p.multiply_accumulate(1.0, ws.delta_x, ws.p_dx);
      if (vector_spmv) {
        a_sell.multiply_into(1.0, ws.delta_x, ws.a_dx);
      } else {
        mirror.multiply_into(1.0, ws.delta_x, ws.a_dx);
      }
      sink += linalg::norm_inf(ws.p_dx) + linalg::norm_inf(ws.a_dx) +
              linalg::dot(problem.q, ws.delta_x);
    }
  }
  run.loop_allocs = gp::alloc_probe_count() - allocs_before;
  run.wall_ms = ms_since(start);
  run.x = ws.x;
  run.z = ws.z;
  run.y = ws.y;
  run.sink = sink;
  run.iterations = iters;
  return run;
}

/// Effective bandwidth of one sparse product in GB/s: values (8 B) and
/// column/row indices (4 B) per nonzero, plus reading the input and writing
/// the output vector once each.
double gbps(const gp::linalg::SparseMatrix& a, double wall_ms, int reps) {
  const double bytes = 12.0 * static_cast<double>(a.nnz()) +
                       8.0 * static_cast<double>(a.rows() + a.cols());
  return bytes * static_cast<double>(reps) / (wall_ms * 1e-3) / 1e9;
}

}  // namespace

int main() {
  namespace simd = gp::linalg::simd;
  constexpr std::size_t kHorizon = 20;
  constexpr int kIters = 300;
  constexpr int kReps = 5;
  constexpr int kSpmvReps = 400;

  // The tier the dispatcher picked at startup (GEOPLACE_SIMD respected);
  // every forced-tier experiment below restores it when done.
  const simd::Tier entry_tier = simd::active_tier();
  std::vector<simd::Tier> tiers;
  for (simd::Tier t : {simd::Tier::kScalar, simd::Tier::kAvx2, simd::Tier::kAvx512}) {
    if (simd::tier_available(t)) tiers.push_back(t);
  }

  const gp::dspp::WindowProgram program = build_window(kHorizon);
  const gp::qp::QpProblem& problem = program.problem();
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();

  gp::qp::AdmmSettings settings;
  // Per-row rho exactly as the solver initializes it.
  Vector rho(m, settings.rho);
  for (std::size_t i = 0; i < m; ++i) {
    const bool equality = problem.lower[i] == problem.upper[i];
    const bool unbounded = problem.lower[i] == -kInfinity && problem.upper[i] == kInfinity;
    if (equality) rho[i] = settings.rho * settings.rho_equality_scale;
    if (unbounded) rho[i] = settings.rho * 1e-3;
  }
  // Identity residual scaling: the legacy path still pays its in-loop
  // divisions, the fused path its hoisted reciprocals, and both agree.
  const Vector e_scale(m, 1.0), d_scale(n, 1.0);
  // A small bank of synthetic KKT-solve outputs keeps the iterates moving
  // without either path paying for an actual triangular solve.
  std::vector<Vector> solves;
  for (std::uint64_t k = 0; k < 8; ++k) solves.push_back(synth_solution(n + m, 41 + k));

  std::printf("# ADMM kernel micro-bench: fig06-scale window QP "
              "(4 DCs x 24 cities, K=%zu): n=%zu m=%zu nnz(A)=%lld nnz(P)=%lld\n",
              kHorizon, n, m, static_cast<long long>(problem.a.nnz()),
              static_cast<long long>(problem.p.nnz()));
  std::printf("# simd: detected %s, active %s, tiers:",
              simd::tier_name(simd::detected_tier()), simd::tier_name(entry_tier));
  for (simd::Tier t : tiers) std::printf(" %s", simd::tier_name(t));
  std::printf("\n");

  // --- 1. Kernel A/B, best of kReps timed runs of kIters iterations, the
  //        fused path once per available SIMD tier. Reps interleave the
  //        variants so they see the same cache/frequency conditions. ---
  struct TierAb {
    simd::Tier tier = simd::Tier::kScalar;
    KernelRun run;
  };
  KernelRun legacy;
  std::vector<TierAb> tier_ab(tiers.size());
  for (int rep = 0; rep < kReps; ++rep) {
    KernelRun l = run_legacy(problem, settings, rho, e_scale, d_scale, 1.0, solves, kIters);
    if (rep == 0 || l.wall_ms < legacy.wall_ms) legacy = std::move(l);
    for (std::size_t k = 0; k < tiers.size(); ++k) {
      simd::set_active_tier(tiers[k]);
      KernelRun f = run_fused(problem, settings, rho, e_scale, d_scale, 1.0, solves, kIters);
      tier_ab[k].tier = tiers[k];
      if (rep == 0 || f.wall_ms < tier_ab[k].run.wall_ms) tier_ab[k].run = std::move(f);
    }
  }
  simd::set_active_tier(entry_tier);

  // Every tier must reproduce the legacy iterates bit-for-bit.
  bool kernels_identical = std::isfinite(legacy.sink);
  for (const TierAb& ab : tier_ab) {
    kernels_identical = kernels_identical && bit_identical(legacy, ab.run);
  }
  // The headline fused numbers (and the 1.3x gate) use the ENTRY tier — the
  // path a real solve on this machine/configuration takes.
  const KernelRun* fused_ptr = &tier_ab.front().run;
  for (const TierAb& ab : tier_ab) {
    if (ab.tier == entry_tier) fused_ptr = &ab.run;
  }
  const KernelRun& fused = *fused_ptr;
  const double speedup = fused.wall_ms > 0.0 ? legacy.wall_ms / fused.wall_ms : 0.0;
  const double legacy_ns = legacy.wall_ms * 1e6 / kIters;
  const double fused_ns = fused.wall_ms * 1e6 / kIters;

  gp::scenario::print_series_header("kernel path: ns/iteration, allocs/iteration",
                                 {"path", "ns_per_iter", "allocs_per_iter"});
  std::printf("legacy,%.0f,%.1f\n", legacy_ns,
              static_cast<double>(legacy.loop_allocs) / kIters);
  for (const TierAb& ab : tier_ab) {
    std::printf("fused_%s,%.0f,%.1f\n", simd::tier_name(ab.tier),
                ab.run.wall_ms * 1e6 / kIters,
                static_cast<double>(ab.run.loop_allocs) / kIters);
  }
  std::printf("# speedup x%.2f (entry tier %s), bit_identical %s (all tiers)\n",
              speedup, simd::tier_name(entry_tier),
              kernels_identical ? "true" : "false");

  // --- 1b. dot_reassoc cross-check lane: the one reassociated (documented-
  //         tolerance) kernel, checked on every tier against the exact
  //         single-chain dot with the bound |err| <= n * eps * sum|a_i b_i|.
  const Vector dot_a = synth_solution(n + m, 101);
  const Vector dot_b = synth_solution(n + m, 202);
  const double dot_exact = gp::linalg::dot(dot_a, dot_b);
  double dot_abs_sum = 0.0;
  for (std::size_t i = 0; i < dot_a.size(); ++i) {
    dot_abs_sum += std::abs(dot_a[i] * dot_b[i]);
  }
  const double dot_tolerance = static_cast<double>(dot_a.size()) *
                               std::numeric_limits<double>::epsilon() * dot_abs_sum;
  double dot_max_err = 0.0;
  for (simd::Tier t : tiers) {
    simd::set_active_tier(t);
    dot_max_err = std::max(dot_max_err,
                           std::abs(gp::linalg::dot_reassoc(dot_a, dot_b) - dot_exact));
  }
  simd::set_active_tier(entry_tier);
  const bool dot_ok = dot_max_err <= dot_tolerance;
  std::printf("# dot_reassoc cross-check: max |err| %.3g <= tol %.3g across tiers -- %s\n",
              dot_max_err, dot_tolerance, dot_ok ? "ok" : "FAILED");

  // --- 2. Full solver: cold solve, then a warm structure-cache re-solve. ---
  gp::qp::AdmmSolver solver(settings);
  auto cold_start = Clock::now();
  const gp::qp::QpResult cold = solver.solve(problem);
  const double cold_ms = ms_since(cold_start);
  auto warm_start = Clock::now();
  const gp::qp::QpResult warm = solver.solve(problem);
  const double warm_ms = ms_since(warm_start);
  const bool solves_ok = cold.ok() && warm.ok();
  const double warm_ns_per_iter =
      warm.iterations > 0 ? warm_ms * 1e6 / warm.iterations : 0.0;

  // Instrumented re-solve: the obs counters the trace tooling watches.
  auto& registry = gp::obs::Registry::global();
  const bool registry_was_enabled = registry.enabled();
  registry.set_enabled(true);
  registry.reset_values();
  (void)solver.solve(problem);
  const long long obs_allocs = registry.counter("admm.allocs").value();
  const long long obs_spmv_ns = registry.counter("admm.spmv_ns").value();
  const double obs_spmv_gb_s = registry.gauge("admm.spmv_gb_s").value();
  registry.set_enabled(registry_was_enabled);

  std::printf("\n# solver: cold %.3f ms (%d iters, %lld hot-loop allocs), "
              "warm %.3f ms (%d iters, %lld hot-loop allocs, skip=%d)\n",
              cold_ms, cold.iterations, cold.info.hot_loop_allocations, warm_ms,
              warm.iterations, warm.info.hot_loop_allocations,
              warm.info.factorization_skipped ? 1 : 0);
  std::printf("# obs counters (instrumented warm solve): admm.allocs=%lld "
              "admm.spmv_ns=%lld admm.spmv_gb_s=%.2f\n",
              obs_allocs, obs_spmv_ns, obs_spmv_gb_s);

  // --- 3. SpMV bandwidth: cold CSC A^T vs the CSR mirror vs the SELL
  //        mirrors on every tier (both orientations, bitwise-checked). ---
  const RowMajorMirror mirror(problem.a);
  gp::linalg::SellMirror a_sell, at_sell;
  a_sell.build(problem.a);
  at_sell.build_transposed(problem.a);
  const Vector yv = synth_solution(m, 7);
  const Vector xv = synth_solution(n, 9);
  Vector acc_n(n, 0.0), acc_m(m, 0.0);
  Vector sell_n(n, 0.0), sell_m(m, 0.0);
  double guard = 0.0;

  auto t0 = Clock::now();
  for (int r = 0; r < kSpmvReps; ++r) {
    const Vector aty = problem.a.multiply_transposed(yv);
    guard += aty[static_cast<std::size_t>(r) % n];
  }
  const double csc_at_ms = ms_since(t0);
  t0 = Clock::now();
  for (int r = 0; r < kSpmvReps; ++r) {
    std::fill(acc_n.begin(), acc_n.end(), 0.0);
    mirror.multiply_transposed_accumulate(1.0, yv, acc_n);
    guard += acc_n[static_cast<std::size_t>(r) % n];
  }
  const double mirror_at_ms = ms_since(t0);
  t0 = Clock::now();
  for (int r = 0; r < kSpmvReps; ++r) {
    std::fill(acc_m.begin(), acc_m.end(), 0.0);
    mirror.multiply_accumulate(1.0, xv, acc_m);
    guard += acc_m[static_cast<std::size_t>(r) % m];
  }
  const double mirror_ax_ms = ms_since(t0);

  std::printf("\n# spmv (%d reps): csc A^T %.3f ms (%.2f GB/s), mirror A^T %.3f ms "
              "(%.2f GB/s), mirror Ax %.3f ms (%.2f GB/s) [guard %.3g]\n",
              kSpmvReps, csc_at_ms, gbps(problem.a, csc_at_ms, kSpmvReps), mirror_at_ms,
              gbps(problem.a, mirror_at_ms, kSpmvReps), mirror_ax_ms,
              gbps(problem.a, mirror_ax_ms, kSpmvReps), guard);

  // SELL per tier: the layout is tier-independent, only the kernel changes.
  struct TierSpmv {
    simd::Tier tier = simd::Tier::kScalar;
    double ax_ms = 0.0, at_ms = 0.0;
  };
  std::vector<TierSpmv> tier_spmv;
  bool sell_identical = true;
  for (simd::Tier t : tiers) {
    simd::set_active_tier(t);
    TierSpmv row;
    row.tier = t;
    a_sell.multiply_into(1.0, xv, sell_m);
    at_sell.multiply_into(1.0, yv, sell_n);
    sell_identical = sell_identical && sell_m == acc_m && sell_n == acc_n;
    t0 = Clock::now();
    for (int r = 0; r < kSpmvReps; ++r) {
      a_sell.multiply_into(1.0, xv, sell_m);
      guard += sell_m[static_cast<std::size_t>(r) % m];
    }
    row.ax_ms = ms_since(t0);
    t0 = Clock::now();
    for (int r = 0; r < kSpmvReps; ++r) {
      at_sell.multiply_into(1.0, yv, sell_n);
      guard += sell_n[static_cast<std::size_t>(r) % n];
    }
    row.at_ms = ms_since(t0);
    std::printf("# spmv sell[%s]: Ax %.3f ms (%.2f GB/s), A^T %.3f ms (%.2f GB/s)\n",
                simd::tier_name(t), row.ax_ms, gbps(problem.a, row.ax_ms, kSpmvReps),
                row.at_ms, gbps(problem.a, row.at_ms, kSpmvReps));
    tier_spmv.push_back(row);
  }
  simd::set_active_tier(entry_tier);

  // Machine-aware bandwidth gate: the best vector SELL tier against the
  // scalar CSR-mirror pair (one Ax + one A^T y — the per-check work the
  // solver's residual section does). 0.0 floor = informational only.
  const double mirror_pair_ms = mirror_ax_ms + mirror_at_ms;
  double best_vector_pair_ms = 0.0;
  for (const TierSpmv& row : tier_spmv) {
    if (row.tier == simd::Tier::kScalar) continue;
    const double pair = row.ax_ms + row.at_ms;
    if (best_vector_pair_ms == 0.0 || pair < best_vector_pair_ms) {
      best_vector_pair_ms = pair;
    }
  }
  const bool has_vector_tier = simd::tier_available(simd::Tier::kAvx2) ||
                               simd::tier_available(simd::Tier::kAvx512);
  const double vector_speedup =
      best_vector_pair_ms > 0.0 ? mirror_pair_ms / best_vector_pair_ms : 0.0;
  const double vector_speedup_min = has_vector_tier ? 1.25 : 0.0;
  std::printf("# spmv vector speedup x%.2f (best sell tier vs scalar mirror, "
              "floor %.2f%s) [guard %.3g]\n",
              vector_speedup, vector_speedup_min,
              has_vector_tier ? "" : " = informational", guard);

  std::FILE* json = std::fopen("BENCH_admm.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"manifest\": %s,\n",
                 gp::obs::RunManifest::capture("micro_admm_kernels").to_json_object().c_str());
    std::fprintf(json, "  \"problem\": {\"n\": %zu, \"m\": %zu, \"nnz_a\": %lld, "
                 "\"nnz_p\": %lld, \"horizon\": %zu},\n",
                 n, m, static_cast<long long>(problem.a.nnz()),
                 static_cast<long long>(problem.p.nnz()), kHorizon);
    std::fprintf(json, "  \"simd\": {\"detected\": \"%s\", \"active\": \"%s\"},\n",
                 simd::tier_name(simd::detected_tier()), simd::tier_name(entry_tier));
    std::fprintf(json, "  \"kernels\": {\n    \"iterations\": %d,\n", kIters);
    std::fprintf(json,
                 "    \"legacy\": {\"wall_ms\": %.3f, \"ns_per_iteration\": %.0f, "
                 "\"allocs_per_iteration\": %.1f},\n",
                 legacy.wall_ms, legacy_ns,
                 static_cast<double>(legacy.loop_allocs) / kIters);
    std::fprintf(json,
                 "    \"fused\": {\"wall_ms\": %.3f, \"ns_per_iteration\": %.0f, "
                 "\"allocs_per_iteration\": %.1f},\n",
                 fused.wall_ms, fused_ns, static_cast<double>(fused.loop_allocs) / kIters);
    std::fprintf(json, "    \"tiers\": {");
    for (std::size_t k = 0; k < tier_ab.size(); ++k) {
      std::fprintf(json,
                   "%s\n      \"%s\": {\"wall_ms\": %.3f, \"ns_per_iteration\": %.0f, "
                   "\"bit_identical\": %s}",
                   k > 0 ? "," : "", simd::tier_name(tier_ab[k].tier),
                   tier_ab[k].run.wall_ms, tier_ab[k].run.wall_ms * 1e6 / kIters,
                   bit_identical(legacy, tier_ab[k].run) ? "true" : "false");
    }
    std::fprintf(json, "\n    },\n");
    std::fprintf(json,
                 "    \"dot_reassoc\": {\"max_abs_err\": %.6g, \"tolerance\": %.6g, "
                 "\"within_tolerance\": %s},\n",
                 dot_max_err, dot_tolerance, dot_ok ? "true" : "false");
    std::fprintf(json, "    \"speedup\": %.3f,\n    \"bit_identical\": %s\n  },\n",
                 speedup, kernels_identical ? "true" : "false");
    std::fprintf(json,
                 "  \"solver\": {\n    \"cold\": {\"wall_ms\": %.3f, \"iterations\": %d, "
                 "\"hot_loop_allocations\": %lld},\n",
                 cold_ms, cold.iterations, cold.info.hot_loop_allocations);
    std::fprintf(json,
                 "    \"warm\": {\"wall_ms\": %.3f, \"iterations\": %d, "
                 "\"hot_loop_allocations\": %lld, \"ns_per_iteration\": %.0f, "
                 "\"factorization_skipped\": %s},\n",
                 warm_ms, warm.iterations, warm.info.hot_loop_allocations,
                 warm_ns_per_iter, warm.info.factorization_skipped ? "true" : "false");
    std::fprintf(json,
                 "    \"obs\": {\"admm_allocs\": %lld, \"admm_spmv_ns\": %lld, "
                 "\"admm_spmv_gb_s\": %.2f}\n  },\n",
                 obs_allocs, obs_spmv_ns, obs_spmv_gb_s);
    std::fprintf(json,
                 "  \"spmv\": {\"reps\": %d,\n    \"csc_at\": {\"wall_ms\": %.3f, "
                 "\"gb_s\": %.2f},\n",
                 kSpmvReps, csc_at_ms, gbps(problem.a, csc_at_ms, kSpmvReps));
    std::fprintf(json, "    \"mirror_at\": {\"wall_ms\": %.3f, \"gb_s\": %.2f},\n",
                 mirror_at_ms, gbps(problem.a, mirror_at_ms, kSpmvReps));
    std::fprintf(json, "    \"mirror_ax\": {\"wall_ms\": %.3f, \"gb_s\": %.2f},\n",
                 mirror_ax_ms, gbps(problem.a, mirror_ax_ms, kSpmvReps));
    std::fprintf(json, "    \"sell\": {");
    for (std::size_t k = 0; k < tier_spmv.size(); ++k) {
      std::fprintf(json,
                   "%s\n      \"%s\": {\"ax\": {\"wall_ms\": %.3f, \"gb_s\": %.2f}, "
                   "\"at\": {\"wall_ms\": %.3f, \"gb_s\": %.2f}}",
                   k > 0 ? "," : "", simd::tier_name(tier_spmv[k].tier),
                   tier_spmv[k].ax_ms, gbps(problem.a, tier_spmv[k].ax_ms, kSpmvReps),
                   tier_spmv[k].at_ms, gbps(problem.a, tier_spmv[k].at_ms, kSpmvReps));
    }
    std::fprintf(json, "\n    },\n    \"sell_bit_identical\": %s,\n",
                 sell_identical ? "true" : "false");
    std::fprintf(json,
                 "    \"vector_speedup\": %.3f,\n    \"vector_speedup_min\": %.2f\n  }\n}\n",
                 vector_speedup, vector_speedup_min);
    std::fclose(json);
  }

  // Gate: cross-tier bit-identity (A/B and SELL products), the >= 1.3x
  // kernel throughput target, the machine-aware vector SpMV floor (0.0 when
  // no vector ISA — then it never fails), the dot_reassoc tolerance lane,
  // zero fused hot-loop allocations (both in the A/B and in the real warm
  // solve), and both real solves reaching optimality.
  bool tier_allocs_zero = true;
  for (const TierAb& ab : tier_ab) {
    tier_allocs_zero = tier_allocs_zero && ab.run.loop_allocs == 0;
  }
  const bool ok = kernels_identical && sell_identical && dot_ok && speedup >= 1.3 &&
                  vector_speedup >= vector_speedup_min && tier_allocs_zero &&
                  warm.info.hot_loop_allocations == 0 && solves_ok;
  std::printf("\n# gate: speedup x%.2f (>= 1.3), spmv vector x%.2f (>= %.2f), "
              "fused loop allocs zero on all tiers %s, "
              "warm-solve hot-loop allocs %lld (== 0), bit_identical %s, "
              "sell_bit_identical %s, dot_reassoc %s, solves %s -- %s\n",
              speedup, vector_speedup, vector_speedup_min,
              tier_allocs_zero ? "true" : "false", warm.info.hot_loop_allocations,
              kernels_identical ? "true" : "false", sell_identical ? "true" : "false",
              dot_ok ? "ok" : "FAILED", solves_ok ? "ok" : "FAILED",
              ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
