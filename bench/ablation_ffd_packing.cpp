// Ablation: the "exact capacity" assumption of Section VI. The paper argues
// the assumption is realistic because GoGrid-style VM flavors (each exactly
// twice the previous) pack machines without waste under First-Fit-
// Decreasing. This bench quantifies that: FFD waste for a power-of-two
// flavor mix versus an arbitrary (non-divisible) flavor mix, across machine
// loads.
//
// Expected shape: the divisible-hierarchy mix packs with (near-)zero waste
// at every scale, while arbitrary sizes strand 10-25% of machine capacity.
#include <cmath>

#include "binpack/ffd.hpp"
#include "common/rng.hpp"
#include "scenario/report.hpp"

int main() {
  using namespace gp;

  constexpr double kMachineCapacity = 16.0;
  scenario::print_series_header(
      "Ablation: FFD packing waste, GoGrid power-of-two flavors vs arbitrary flavors",
      {"num_vms", "waste_pow2", "waste_arbitrary", "bins_pow2", "bins_lower_bound"});

  Rng rng(77);
  double final_pow2_waste = 0.0, final_arbitrary_waste = 0.0;
  for (const int num_vms : {50, 100, 200, 400, 800}) {
    std::vector<double> pow2, arbitrary;
    for (int i = 0; i < num_vms; ++i) {
      pow2.push_back(std::pow(2.0, rng.uniform_int(0, 4)));  // 1..16
      // Mid-sized arbitrary flavors (between 3/8 and 11/16 of a machine):
      // at most two fit per machine and pairs rarely fill it — the regime
      // where packing waste genuinely appears.
      arbitrary.push_back(rng.uniform(6.0, 11.0));
    }
    // Top up the power-of-two mix to a whole number of machines so a
    // perfect packing exists (the GoGrid premise: flavors fill machines).
    double total = 0.0;
    for (double s : pow2) total += s;
    while (std::fmod(total, kMachineCapacity) > 1e-9) {
      const double missing = kMachineCapacity - std::fmod(total, kMachineCapacity);
      pow2.push_back(std::min(missing, 1.0));
      total += pow2.back();
    }
    const auto packed_pow2 = binpack::first_fit_decreasing(pow2, kMachineCapacity);
    const auto packed_arbitrary = binpack::first_fit_decreasing(arbitrary, kMachineCapacity);
    final_pow2_waste = packed_pow2.waste_fraction;
    final_arbitrary_waste = packed_arbitrary.waste_fraction;
    scenario::print_row({static_cast<double>(num_vms), packed_pow2.waste_fraction,
                      packed_arbitrary.waste_fraction,
                      static_cast<double>(packed_pow2.bins_used),
                      static_cast<double>(binpack::capacity_lower_bound(pow2,
                                                                        kMachineCapacity))});
  }

  const bool ok = final_pow2_waste < 1e-9 && final_arbitrary_waste > 0.01;
  std::printf("\n# shape check: pow2 waste %.4f ~ 0, arbitrary waste %.4f > 1%% -- %s\n",
              final_pow2_waste, final_arbitrary_waste, ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
