// Reproduces Fig. 8: "Impact of prediction horizon length on the speed of
// convergence" — Algorithm-2 iterations to a stable outcome as the
// prediction window W of each provider's best-response DSPP grows.
//
// The paper's figure shows iterations FALLING (~55 to ~35) as the horizon
// grows to 10. In this implementation the dependence is flat within seed
// noise, and we report that honestly: the paper's declining trend is tied
// to its fixed-step quota update, whose effective step grows with the dual
// magnitude (duals sum over the window, so they scale with W — a larger
// horizon implicitly takes bigger negotiation steps). Our production
// exchange normalizes the step by the dual spread precisely to remove that
// scale dependence (see game::QuotaUpdateRule), which also removes the
// artifact. The weaker form of the paper's observation — longer horizons
// do NOT slow convergence — does hold and is what the shape check asserts.
// Both update rules can be compared in bench/ablation_quota_rule.
#include <algorithm>

#include "game/competition.hpp"
#include "scenario/report.hpp"

int main() {
  using namespace gp;

  // Same scarce-bottleneck environment as Fig. 7: an0 reachable only from
  // the throttled cheap data center.
  const topology::NetworkModel network({"dc-cheap", "dc-big"}, {"an0", "an1", "an2"},
                                       {{15.0, 25.0, 35.0}, {100.0, 20.0, 15.0}});

  scenario::print_series_header(
      "Fig.8: Algorithm-2 iterations vs prediction horizon (8 providers, bottleneck 150)",
      {"horizon", "iterations"});

  std::vector<double> iteration_series;
  for (std::size_t horizon = 1; horizon <= 10; ++horizon) {
    int total_iterations = 0;
    constexpr int kSeeds = 5;
    for (int seed = 0; seed < kSeeds; ++seed) {
      Rng rng(500 + static_cast<std::uint64_t>(seed));
      game::RandomProviderParams params;
      params.horizon = horizon;
      params.max_latency_min_ms = 60.0;
      params.max_latency_max_ms = 120.0;
      params.demand_min = 150.0;
      params.demand_max = 500.0;
      std::vector<game::ProviderConfig> providers;
      for (int i = 0; i < 8; ++i) {
        providers.push_back(make_random_provider(network, params, rng));
        for (auto& price : providers.back().price) price[0] = 0.4 * price[1];
      }
      game::GameSettings settings;
      settings.epsilon = 0.02;
      game::CompetitionGame game(std::move(providers), linalg::Vector{150.0, 3000.0},
                                 settings);
      total_iterations += game.run().iterations;
    }
    iteration_series.push_back(static_cast<double>(total_iterations) / kSeeds);
    scenario::print_row({static_cast<double>(horizon), iteration_series.back()});
  }

  // Shape check (weaker, honest form): the long-horizon tail needs no more
  // iterations than the short-horizon head, within a 1.6x noise allowance.
  const double head = (iteration_series[0] + iteration_series[1] + iteration_series[2]) / 3.0;
  const double tail = (iteration_series[7] + iteration_series[8] + iteration_series[9]) / 3.0;
  const bool ok = tail <= 1.6 * head;
  std::printf("\n# shape check: mean iters(W=8..10)=%.1f <= 1.6 x mean iters(W=1..3)=%.1f"
              " -- %s\n# NOTE: the paper's DECLINE does not reproduce under the"
              " scale-invariant quota exchange; see EXPERIMENTS.md.\n",
              tail, head, ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
