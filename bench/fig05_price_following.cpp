// Reproduces Fig. 5: "Impact of price on resource allocation" — multiple
// data centers serve demand with CONSTANT arrival rate; only the regional
// electricity price varies over the day. The paper observes: "the
// electricity price is generally higher in Mountain View than in Houston.
// The difference reaches its maximum around 5pm ... Consequently, our
// controller allocates less [servers] in the Mountain View data center in
// the afternoon."
//
// Setup mirrors the figure: Mountain View (CA, stand-in site San Jose),
// Houston (TX) and Atlanta (GA) data centers; constant demand from western,
// central and eastern cities. Expected shape: the California allocation
// dips in the CA afternoon price peak while Houston/Atlanta absorb the
// load, and recovers overnight when CA prices approach the Texas floor.
#include <algorithm>
#include <cstdio>

#include "scenario/policy.hpp"
#include "scenario/registry.hpp"
#include "scenario/report.hpp"

int main() {
  using namespace gp;

  // Constant arrival rate (the figure's setup): the fig05_price preset.
  const auto spec = scenario::preset("fig05_price");
  const auto bundle = scenario::build(spec);
  auto engine = scenario::make_engine(bundle, spec);

  // Perfect price foresight isolates the price-following behavior (the
  // paper's predictor has an easy job here: demand is constant and prices
  // repeat daily); make_policy feeds the oracles the bundle's mean traces.
  scenario::PolicySpec policy;
  policy.horizon = 6;
  policy.demand_predictor.kind = "oracle";
  policy.price_predictor.kind = "oracle";
  const auto handle = scenario::make_policy(bundle, spec, policy);

  const auto summary = engine.run(handle.policy());

  scenario::print_series_header(
      "Fig.5: servers per data center under constant demand, price-driven (day 2)",
      {"ca_local_hour", "servers_SanJoseCA", "servers_HoustonTX", "servers_AtlantaGA",
       "price_CA", "price_TX", "price_GA"});
  for (std::size_t k = 24; k < summary.periods.size(); ++k) {
    const auto& period = summary.periods[k];
    const double ca_local =
        workload::local_hour(period.utc_hour, bundle.sites[0].location.utc_offset_hours);
    scenario::print_row({ca_local, period.servers_per_dc[0], period.servers_per_dc[1],
                         period.servers_per_dc[2],
                         bundle.prices.electricity_price(0, period.utc_hour),
                         bundle.prices.electricity_price(1, period.utc_hour),
                         bundle.prices.electricity_price(2, period.utc_hour)});
  }

  // Shape check: CA allocation in the CA-afternoon price peak (15-19 local)
  // is lower than its overnight allocation (1-5 local).
  double ca_peak_servers = 0.0, ca_night_servers = 0.0;
  int peak_count = 0, night_count = 0;
  for (std::size_t k = 24; k < summary.periods.size(); ++k) {
    const auto& period = summary.periods[k];
    const double ca_local =
        workload::local_hour(period.utc_hour, bundle.sites[0].location.utc_offset_hours);
    if (ca_local >= 15.0 && ca_local < 19.0) {
      ca_peak_servers += period.servers_per_dc[0];
      ++peak_count;
    }
    if (ca_local >= 1.0 && ca_local < 5.0) {
      ca_night_servers += period.servers_per_dc[0];
      ++night_count;
    }
  }
  ca_peak_servers /= std::max(peak_count, 1);
  ca_night_servers /= std::max(night_count, 1);
  const bool ok = ca_peak_servers < 0.8 * ca_night_servers && summary.unsolved_periods == 0;
  std::printf("\n# shape check: CA servers afternoon %.2f < 0.8 x overnight %.2f -- %s\n",
              ca_peak_servers, ca_night_servers, ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
