// Reproduces Fig. 9: "Impact of prediction horizon length on the cost" —
// realized cost of the MPC controller as a function of the prediction
// window, when BOTH demand and price are volatile and the controller uses a
// simple AR predictor (the paper's setup). The paper finds the curve is not
// monotone: "long prediction horizon can worsen the solution quality. In
// particular, setting K = 2 achieves lowest cost for this scenario" —
// multi-step AR errors compound with lead time, so planning further on bad
// forecasts hurts.
//
// Cost accounting: rental+reconfiguration alone UNDERSTATES the damage of
// bad long-range plans, because under-provisioning against a mispredicted
// future saves rent while silently violating the SLA. Realized cost here
// therefore includes an SLA-violation charge of $0.004 per violating
// request-hour — the hosting-price equivalent of the capacity that should
// have served that demand (a_lv * p ~ 0.013 servers/req/s * $0.3/server-h).
//
// Expected shape: the best horizon is small (K in {1..3}) and the longest
// horizon pays a visible premium over it.
#include <algorithm>

#include "scenarios.hpp"

int main() {
  using namespace gp;

  auto scenario = bench::paper_scenario(2, 4, 1.2e-5);
  scenario.model.reconfig_cost.assign(2, 0.05);

  sim::SimulationConfig config;
  config.periods = 72;
  config.period_hours = 1.0;
  config.noisy_demand = true;      // volatile demand ...
  config.price_noise_std = 0.25;   // ... and volatile prices
  config.seed = 5;

  constexpr double kViolationPenalty = 0.004;  // $ per violating request-hour

  bench::print_series_header(
      "Fig.9: realized cost vs prediction horizon (AR predictor, volatile inputs)",
      {"horizon", "total_cost", "rental_and_reconfig", "violation_charge",
       "mean_sla_compliance"});

  std::vector<double> costs;
  for (std::size_t horizon = 1; horizon <= 10; ++horizon) {
    // Average over seeds; single volatile runs are noisy.
    double rental = 0.0, violation = 0.0, compliance = 0.0;
    constexpr int kSeeds = 3;
    for (int seed = 0; seed < kSeeds; ++seed) {
      sim::SimulationConfig run_config = config;
      run_config.seed = config.seed + static_cast<std::uint64_t>(seed);
      sim::SimulationEngine engine(scenario.model, scenario.demand, scenario.prices,
                                   run_config);
      control::MpcSettings settings;
      settings.horizon = horizon;
      control::MpcController controller(scenario.model, settings,
                                        bench::make_predictor("ar"),
                                        bench::make_predictor("ar"));
      const auto summary = engine.run(sim::policy_from(controller));
      rental += summary.total_cost;
      for (const auto& period : summary.periods) {
        violation += kViolationPenalty * (1.0 - period.sla_compliance) *
                     period.total_demand * run_config.period_hours;
      }
      compliance += summary.mean_compliance;
    }
    rental /= kSeeds;
    violation /= kSeeds;
    costs.push_back(rental + violation);
    bench::print_row({static_cast<double>(horizon), costs.back(), rental, violation,
                      compliance / kSeeds});
  }

  const std::size_t best =
      static_cast<std::size_t>(std::min_element(costs.begin(), costs.end()) - costs.begin());
  // Shape check: the optimum sits at a small horizon and long horizons pay
  // a visible premium over it.
  const bool ok = best <= 2 && costs.back() > 1.015 * costs[best];
  std::printf("\n# shape check: best horizon K=%zu (cost %.4f), K=10 cost %.4f"
              " (premium %.1f%%) -- %s\n",
              best + 1, costs[best], costs.back(),
              100.0 * (costs.back() / costs[best] - 1.0), ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
