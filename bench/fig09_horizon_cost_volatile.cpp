// Reproduces Fig. 9: "Impact of prediction horizon length on the cost" —
// realized cost of the MPC controller as a function of the prediction
// window, when BOTH demand and price are volatile and the controller uses a
// simple AR predictor (the paper's setup). The paper finds the curve is not
// monotone: "long prediction horizon can worsen the solution quality. In
// particular, setting K = 2 achieves lowest cost for this scenario" —
// multi-step AR errors compound with lead time, so planning further on bad
// forecasts hurts.
//
// Cost accounting: rental+reconfiguration alone UNDERSTATES the damage of
// bad long-range plans, because under-provisioning against a mispredicted
// future saves rent while silently violating the SLA. Realized cost here
// therefore includes an SLA-violation charge of $0.004 per violating
// request-hour — the hosting-price equivalent of the capacity that should
// have served that demand (a_lv * p ~ 0.013 servers/req/s * $0.3/server-h).
//
// The (horizon x seed) grid runs through the scenario layer's SweepRunner:
// one scenario, ten MPC policies, three explicit seeds — 30 runs fanned
// across the thread pool, bit-identical at any GEOPLACE_THREADS.
//
// Expected shape: the best horizon is small (K in {1..3}) and the longest
// horizon pays a visible premium over it.
#include <algorithm>
#include <cstdio>

#include "scenario/report.hpp"
#include "scenario/sweep.hpp"

int main() {
  using namespace gp;

  constexpr double kViolationPenalty = 0.004;  // $ per violating request-hour

  scenario::SweepGrid grid;
  grid.scenarios = {scenario::preset("fig09_volatile")};
  for (std::size_t horizon = 1; horizon <= 10; ++horizon) {
    scenario::PolicySpec policy;
    policy.name = "mpc_K" + std::to_string(horizon);
    policy.horizon = horizon;
    policy.demand_predictor.kind = "ar";
    policy.price_predictor.kind = "ar";
    grid.policies.push_back(policy);
  }
  grid.seeds = {5, 6, 7};  // average over seeds; single volatile runs are noisy

  scenario::SweepOptions options;
  options.keep_periods = true;  // the violation charge integrates period rows
  const auto result = scenario::SweepRunner(grid, options).run();

  scenario::print_series_header(
      "Fig.9: realized cost vs prediction horizon (AR predictor, volatile inputs)",
      {"horizon", "total_cost", "rental_and_reconfig", "violation_charge",
       "mean_sla_compliance"});

  const double period_hours = grid.scenarios[0].sim.period_hours;
  const std::size_t num_seeds = grid.seeds.size();
  std::vector<double> costs;
  for (std::size_t pi = 0; pi < grid.policies.size(); ++pi) {
    double rental = 0.0, violation = 0.0, compliance = 0.0;
    for (std::size_t ki = 0; ki < num_seeds; ++ki) {
      const auto& summary = result.runs[pi * num_seeds + ki].summary;
      rental += summary.total_cost;
      for (const auto& period : summary.periods) {
        violation += kViolationPenalty * (1.0 - period.sla_compliance) *
                     period.total_demand * period_hours;
      }
      compliance += summary.mean_compliance;
    }
    rental /= static_cast<double>(num_seeds);
    violation /= static_cast<double>(num_seeds);
    costs.push_back(rental + violation);
    scenario::print_row({static_cast<double>(pi + 1), costs.back(), rental, violation,
                         compliance / static_cast<double>(num_seeds)});
  }

  const std::size_t best =
      static_cast<std::size_t>(std::min_element(costs.begin(), costs.end()) - costs.begin());
  // Shape check: the optimum sits at a small horizon and long horizons pay
  // a visible premium over it.
  const bool ok = best <= 2 && costs.back() > 1.015 * costs[best];
  std::printf("\n# shape check: best horizon K=%zu (cost %.4f), K=10 cost %.4f"
              " (premium %.1f%%) -- %s\n",
              best + 1, costs[best], costs.back(),
              100.0 * (costs.back() / costs[best] - 1.0), ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
