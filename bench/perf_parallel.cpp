// Performance study of the parallel solve layer (BENCH_parallel.json).
//
// Two experiments:
//  1. Game convergence: an 8-provider competition with a contested bottleneck
//     run at 1/2/4/8 best-response lanes. Reports wall time, speedup over the
//     single-lane run, Algorithm-2 iterations, and verifies the determinism
//     contract: cost history and final quotas are BIT-identical at every
//     thread count.
//  2. A 96-step MPC run (4 data centers x 24 cities, horizon 5) with and
//     without solver-state reuse. Reports wall time, total ADMM iterations,
//     and the solver's setup-reuse counters (structure hits, numeric-only
//     refactorizations, factorizations skipped outright).
//
// Wall-clock speedup is reported honestly: on a box with a single hardware
// thread the lanes time-slice one core and the speedup hovers around 1.0;
// the determinism check and the caching/warm-start wins are the meaningful
// signal there. `cpus` in the JSON records what the machine offered.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "game/competition.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "scenario/policy.hpp"
#include "scenario/registry.hpp"
#include "scenario/report.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using gp::linalg::Vector;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

// 8 providers fighting over a cheap bottleneck site (the Fig. 7 setup).
std::vector<gp::game::ProviderConfig> game_providers() {
  const gp::topology::NetworkModel network({"dc-cheap", "dc-big"}, {"an0", "an1", "an2"},
                                           {{15.0, 25.0, 35.0}, {100.0, 20.0, 15.0}});
  gp::Rng rng(2024);
  gp::game::RandomProviderParams params;
  params.horizon = 4;
  params.max_latency_min_ms = 60.0;
  params.max_latency_max_ms = 120.0;
  params.demand_min = 150.0;
  params.demand_max = 500.0;
  std::vector<gp::game::ProviderConfig> providers;
  for (int i = 0; i < 8; ++i) {
    providers.push_back(gp::game::make_random_provider(network, params, rng));
    for (auto& price : providers.back().price) price[0] = 0.4 * price[1];
  }
  return providers;
}

struct GameRun {
  std::size_t threads = 0;
  double wall_ms = 0.0;
  int iterations = 0;
  gp::game::GameResult result;
};

GameRun run_game(std::size_t threads) {
  gp::game::GameSettings settings;
  settings.epsilon = 0.02;
  settings.num_threads = threads;
  gp::game::CompetitionGame game(game_providers(), Vector{200.0, 3000.0}, settings);
  GameRun run;
  run.threads = threads;
  const auto start = Clock::now();
  run.result = game.run();
  run.wall_ms = ms_since(start);
  run.iterations = run.result.iterations;
  return run;
}

bool identical(const gp::game::GameResult& a, const gp::game::GameResult& b) {
  if (a.cost_history != b.cost_history) return false;
  if (a.quotas.size() != b.quotas.size()) return false;
  for (std::size_t i = 0; i < a.quotas.size(); ++i) {
    if (a.quotas[i] != b.quotas[i]) return false;
  }
  return true;
}

struct MpcRun {
  double wall_ms = 0.0;
  long long admm_iterations = 0;
  int unsolved = 0;
  double total_cost = 0.0;
  gp::qp::AdmmCacheStats stats;
};

MpcRun run_mpc(bool reuse_solver_state) {
  const auto scenario = gp::scenario::build(gp::scenario::section7_spec(4, 24));
  gp::control::MpcSettings settings;
  settings.horizon = 5;
  settings.reuse_solver_state = reuse_solver_state;
  gp::control::MpcController controller(scenario.model, settings,
                                        gp::scenario::make_predictor("last"),
                                        gp::scenario::make_predictor("last"));

  constexpr std::size_t kSteps = 96;
  auto demand_at = [&](std::size_t k) {
    return scenario.demand.mean_rates(static_cast<double>(k) + 0.5);
  };
  auto price_at = [&](std::size_t k) {
    return scenario.prices.server_prices(static_cast<double>(k) + 0.5);
  };

  Vector state = controller.provision_for(demand_at(0), price_at(0));
  MpcRun run;
  const auto start = Clock::now();
  for (std::size_t k = 0; k < kSteps; ++k) {
    const auto step = controller.step(state, demand_at(k), price_at(k));
    run.admm_iterations += step.solver_iterations;
    if (!step.solved) ++run.unsolved;
    run.total_cost += step.window_objective;
    state = step.next_state;
  }
  run.wall_ms = ms_since(start);
  run.stats = controller.solver_cache_stats();
  return run;
}

}  // namespace

int main() {
  // Widen the global pool regardless of what the machine reports, so the
  // 2/4/8-lane runs genuinely exercise multi-threaded dispatch (the pool is
  // sized once, on first use).
  setenv("GEOPLACE_THREADS", "8", /*overwrite=*/0);
  const unsigned cpus = std::thread::hardware_concurrency();
  // Wall-clock speedup is only a meaningful ratio when the lanes can
  // actually run concurrently. On a single-hardware-thread host the runs
  // time-slice one core and the ratio is scheduler noise, so it is reported
  // as n/a (and flagged invalid in the JSON) rather than pretending 1.0x
  // is a measurement.
  const bool speedup_valid = cpus > 1;

  gp::scenario::print_series_header(
      "Parallel solve layer: 8-provider game wall time vs best-response lanes",
      {"threads", "wall_ms", "speedup", "iterations", "bit_identical"});
  if (!speedup_valid) {
    std::printf("# single hardware thread (cpus=1): speedup column is n/a\n");
  }

  std::vector<GameRun> runs;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) runs.push_back(run_game(threads));
  bool all_identical = true;
  for (const auto& run : runs) {
    const bool same = identical(run.result, runs.front().result);
    all_identical = all_identical && same;
    if (speedup_valid) {
      gp::scenario::print_row({static_cast<double>(run.threads), run.wall_ms,
                            runs.front().wall_ms / run.wall_ms,
                            static_cast<double>(run.iterations), same ? 1.0 : 0.0});
    } else {
      std::printf("%zu  %.3f  n/a  %d  %d\n", run.threads, run.wall_ms, run.iterations,
                  same ? 1 : 0);
    }
  }

  // Baseline runs with the metrics registry explicitly OFF: this is the
  // overhead-sensitive configuration (instrumented call sites reduce to one
  // relaxed atomic load), so `wall_ms` here is the number the 2% budget is
  // judged against.
  auto& registry = gp::obs::Registry::global();
  const bool registry_was_enabled = registry.enabled();
  registry.set_enabled(false);
  const long long counters_before = registry.counter("admm.solves").value();
  const MpcRun cold = run_mpc(false);
  const MpcRun cached = run_mpc(true);
  // Disabled means disabled: the baseline runs must not have touched the
  // registry at all.
  const bool disabled_is_silent =
      registry.counter("admm.solves").value() == counters_before;

  // Instrumented re-run of the cached variant: same work, registry ON, so
  // BENCH_parallel.json gains iteration/cache-hit-rate fields and a
  // measured metrics-overhead ratio.
  registry.set_enabled(true);
  registry.reset_values();
  const MpcRun instrumented = run_mpc(true);
  const long long obs_solves = registry.counter("admm.solves").value();
  const long long obs_hits = registry.counter("admm.structure_hits").value();
  const long long obs_skipped = registry.counter("admm.factorizations_skipped").value();
  const double cache_hit_rate =
      obs_solves > 0 ? static_cast<double>(obs_hits) / static_cast<double>(obs_solves) : 0.0;
  const double skip_rate =
      obs_solves > 0 ? static_cast<double>(obs_skipped) / static_cast<double>(obs_solves)
                     : 0.0;
  const auto iters_snapshot = registry.histogram("admm.iterations_per_solve").snapshot();
  const auto step_snapshot = registry.histogram("mpc.step_ms").snapshot();
  registry.set_enabled(registry_was_enabled);
  const double obs_overhead_ratio =
      cached.wall_ms > 0.0 ? instrumented.wall_ms / cached.wall_ms : 0.0;

  std::printf("\n# 96-step MPC (4 DCs x 24 cities, horizon 5)\n");
  gp::scenario::print_series_header("variant: wall_ms, admm_iterations, unsolved",
                                 {"reuse", "wall_ms", "admm_iterations", "unsolved"});
  gp::scenario::print_row({0.0, cold.wall_ms, static_cast<double>(cold.admm_iterations),
                        static_cast<double>(cold.unsolved)});
  gp::scenario::print_row({1.0, cached.wall_ms, static_cast<double>(cached.admm_iterations),
                        static_cast<double>(cached.unsolved)});
  std::printf("# cached-run solver setup: %lld solves, %lld structure hits, "
              "%lld full factors, %lld refactors, %lld factorizations skipped\n",
              cached.stats.solves, cached.stats.structure_hits,
              cached.stats.full_factorizations, cached.stats.refactorizations,
              cached.stats.factorizations_skipped);
  std::printf("# obs registry (instrumented cached run): cache hit rate %.3f, "
              "skip rate %.3f, iters/solve p50 %.1f p95 %.1f, "
              "mpc step ms p50 %.3f p95 %.3f p99 %.3f, overhead x%.3f\n",
              cache_hit_rate, skip_rate, iters_snapshot.p50, iters_snapshot.p95,
              step_snapshot.p50, step_snapshot.p95, step_snapshot.p99,
              obs_overhead_ratio);

  std::FILE* json = std::fopen("BENCH_parallel.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"manifest\": %s,\n",
                 gp::obs::RunManifest::capture("perf_parallel").to_json_object().c_str());
    std::fprintf(json, "  \"cpus\": %u,\n  \"game\": {\n", cpus);
    std::fprintf(json, "    \"providers\": 8,\n    \"bit_identical\": %s,\n",
                 all_identical ? "true" : "false");
    std::fprintf(json, "    \"speedup_valid\": %s,\n", speedup_valid ? "true" : "false");
    std::fprintf(json, "    \"runs\": [\n");
    for (std::size_t i = 0; i < runs.size(); ++i) {
      // The per-run speedup key is omitted entirely when invalid so that
      // downstream tooling cannot average a meaningless ratio by accident.
      if (speedup_valid) {
        std::fprintf(json,
                     "      {\"threads\": %zu, \"wall_ms\": %.3f, \"speedup\": %.3f, "
                     "\"iterations\": %d}%s\n",
                     runs[i].threads, runs[i].wall_ms, runs.front().wall_ms / runs[i].wall_ms,
                     runs[i].iterations, i + 1 < runs.size() ? "," : "");
      } else {
        std::fprintf(json,
                     "      {\"threads\": %zu, \"wall_ms\": %.3f, \"iterations\": %d}%s\n",
                     runs[i].threads, runs[i].wall_ms, runs[i].iterations,
                     i + 1 < runs.size() ? "," : "");
      }
    }
    std::fprintf(json, "    ]\n  },\n  \"mpc\": {\n    \"steps\": 96,\n");
    std::fprintf(json,
                 "    \"cold\": {\"wall_ms\": %.3f, \"admm_iterations\": %lld, "
                 "\"unsolved\": %d},\n",
                 cold.wall_ms, cold.admm_iterations, cold.unsolved);
    std::fprintf(json,
                 "    \"cached\": {\"wall_ms\": %.3f, \"admm_iterations\": %lld, "
                 "\"unsolved\": %d,\n",
                 cached.wall_ms, cached.admm_iterations, cached.unsolved);
    std::fprintf(json,
                 "      \"structure_hits\": %lld, \"full_factorizations\": %lld, "
                 "\"refactorizations\": %lld, \"factorizations_skipped\": %lld},\n",
                 cached.stats.structure_hits, cached.stats.full_factorizations,
                 cached.stats.refactorizations, cached.stats.factorizations_skipped);
    std::fprintf(json,
                 "    \"obs\": {\"cache_hit_rate\": %.3f, "
                 "\"factorization_skip_rate\": %.3f,\n",
                 cache_hit_rate, skip_rate);
    std::fprintf(json,
                 "      \"iterations_per_solve_p50\": %.1f, "
                 "\"iterations_per_solve_p95\": %.1f,\n",
                 iters_snapshot.p50, iters_snapshot.p95);
    std::fprintf(json,
                 "      \"step_ms_p50\": %.3f, \"step_ms_p95\": %.3f, "
                 "\"step_ms_p99\": %.3f,\n",
                 step_snapshot.p50, step_snapshot.p95, step_snapshot.p99);
    std::fprintf(json,
                 "      \"metrics_overhead_ratio\": %.3f, "
                 "\"disabled_is_silent\": %s},\n",
                 obs_overhead_ratio, disabled_is_silent ? "true" : "false");
    std::fprintf(json, "    \"iteration_ratio\": %.3f,\n",
                 cold.admm_iterations > 0
                     ? static_cast<double>(cached.admm_iterations) /
                           static_cast<double>(cold.admm_iterations)
                     : 0.0);
    std::fprintf(json, "    \"wall_ratio\": %.3f\n  }\n}\n",
                 cold.wall_ms > 0.0 ? cached.wall_ms / cold.wall_ms : 0.0);
    std::fclose(json);
  }

  // The run is healthy when determinism holds, solver-state reuse did not
  // cost iterations (it should cut them) nor break any step, the disabled
  // registry stayed untouched, and the instrumented run actually recorded.
  const bool ok = all_identical && cached.unsolved == cold.unsolved &&
                  cached.admm_iterations <= cold.admm_iterations &&
                  disabled_is_silent && obs_solves > 0;
  std::printf("\n# determinism %s, cached iterations %lld vs cold %lld, "
              "disabled registry %s -- %s\n",
              all_identical ? "holds" : "VIOLATED", cached.admm_iterations,
              cold.admm_iterations, disabled_is_silent ? "silent" : "NOT SILENT",
              ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
