file(REMOVE_RECURSE
  "CMakeFiles/dynamic_competition.dir/dynamic_competition.cpp.o"
  "CMakeFiles/dynamic_competition.dir/dynamic_competition.cpp.o.d"
  "dynamic_competition"
  "dynamic_competition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_competition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
