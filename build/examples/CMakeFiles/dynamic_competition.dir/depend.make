# Empty dependencies file for dynamic_competition.
# This may be replaced when dependencies are built.
