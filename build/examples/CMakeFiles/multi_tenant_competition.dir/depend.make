# Empty dependencies file for multi_tenant_competition.
# This may be replaced when dependencies are built.
