file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_competition.dir/multi_tenant_competition.cpp.o"
  "CMakeFiles/multi_tenant_competition.dir/multi_tenant_competition.cpp.o.d"
  "multi_tenant_competition"
  "multi_tenant_competition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_competition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
