file(REMOVE_RECURSE
  "CMakeFiles/dc_outage.dir/dc_outage.cpp.o"
  "CMakeFiles/dc_outage.dir/dc_outage.cpp.o.d"
  "dc_outage"
  "dc_outage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_outage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
