# Empty dependencies file for dc_outage.
# This may be replaced when dependencies are built.
