add_test([=[Pipeline.BackboneToSimulationToGame]=]  /root/repo/build/tests/test_pipeline [==[--gtest_filter=Pipeline.BackboneToSimulationToGame]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Pipeline.BackboneToSimulationToGame]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_pipeline_TESTS Pipeline.BackboneToSimulationToGame)
