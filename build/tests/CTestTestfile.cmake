# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_linalg_dense[1]_include.cmake")
include("/root/repo/build/tests/test_linalg_sparse[1]_include.cmake")
include("/root/repo/build/tests/test_qp[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_queueing_binpack[1]_include.cmake")
include("/root/repo/build/tests/test_dspp[1]_include.cmake")
include("/root/repo/build/tests/test_control[1]_include.cmake")
include("/root/repo/build/tests/test_game[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_integer[1]_include.cmake")
include("/root/repo/build/tests/test_mmc[1]_include.cmake")
include("/root/repo/build/tests/test_isp_map[1]_include.cmake")
include("/root/repo/build/tests/test_trace_io_autoscaler[1]_include.cmake")
include("/root/repo/build/tests/test_multi_provider[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_cg_anomaly[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_request_sim[1]_include.cmake")
include("/root/repo/build/tests/test_monitor_spikes[1]_include.cmake")
include("/root/repo/build/tests/test_coverage_extras[1]_include.cmake")
