file(REMOVE_RECURSE
  "CMakeFiles/test_trace_io_autoscaler.dir/test_trace_io_autoscaler.cpp.o"
  "CMakeFiles/test_trace_io_autoscaler.dir/test_trace_io_autoscaler.cpp.o.d"
  "test_trace_io_autoscaler"
  "test_trace_io_autoscaler.pdb"
  "test_trace_io_autoscaler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_io_autoscaler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
