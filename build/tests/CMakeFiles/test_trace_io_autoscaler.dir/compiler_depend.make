# Empty compiler generated dependencies file for test_trace_io_autoscaler.
# This may be replaced when dependencies are built.
