file(REMOVE_RECURSE
  "CMakeFiles/test_linalg_sparse.dir/test_linalg_sparse.cpp.o"
  "CMakeFiles/test_linalg_sparse.dir/test_linalg_sparse.cpp.o.d"
  "test_linalg_sparse"
  "test_linalg_sparse.pdb"
  "test_linalg_sparse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linalg_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
