# Empty compiler generated dependencies file for test_linalg_sparse.
# This may be replaced when dependencies are built.
