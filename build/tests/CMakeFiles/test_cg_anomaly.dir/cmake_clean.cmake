file(REMOVE_RECURSE
  "CMakeFiles/test_cg_anomaly.dir/test_cg_anomaly.cpp.o"
  "CMakeFiles/test_cg_anomaly.dir/test_cg_anomaly.cpp.o.d"
  "test_cg_anomaly"
  "test_cg_anomaly.pdb"
  "test_cg_anomaly[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cg_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
