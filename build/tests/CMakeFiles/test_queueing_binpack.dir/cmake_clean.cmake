file(REMOVE_RECURSE
  "CMakeFiles/test_queueing_binpack.dir/test_queueing_binpack.cpp.o"
  "CMakeFiles/test_queueing_binpack.dir/test_queueing_binpack.cpp.o.d"
  "test_queueing_binpack"
  "test_queueing_binpack.pdb"
  "test_queueing_binpack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queueing_binpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
