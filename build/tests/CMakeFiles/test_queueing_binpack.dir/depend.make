# Empty dependencies file for test_queueing_binpack.
# This may be replaced when dependencies are built.
