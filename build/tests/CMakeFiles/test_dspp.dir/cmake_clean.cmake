file(REMOVE_RECURSE
  "CMakeFiles/test_dspp.dir/test_dspp.cpp.o"
  "CMakeFiles/test_dspp.dir/test_dspp.cpp.o.d"
  "test_dspp"
  "test_dspp.pdb"
  "test_dspp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dspp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
