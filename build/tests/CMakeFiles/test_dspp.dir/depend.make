# Empty dependencies file for test_dspp.
# This may be replaced when dependencies are built.
