
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_control.cpp" "tests/CMakeFiles/test_control.dir/test_control.cpp.o" "gcc" "tests/CMakeFiles/test_control.dir/test_control.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/binpack/CMakeFiles/gp_binpack.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/gp_control.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/gp_game.dir/DependInfo.cmake"
  "/root/repo/build/src/dspp/CMakeFiles/gp_dspp.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/CMakeFiles/gp_qp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/gp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gp_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/gp_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
