# Empty dependencies file for test_mmc.
# This may be replaced when dependencies are built.
