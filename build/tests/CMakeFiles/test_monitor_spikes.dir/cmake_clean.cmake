file(REMOVE_RECURSE
  "CMakeFiles/test_monitor_spikes.dir/test_monitor_spikes.cpp.o"
  "CMakeFiles/test_monitor_spikes.dir/test_monitor_spikes.cpp.o.d"
  "test_monitor_spikes"
  "test_monitor_spikes.pdb"
  "test_monitor_spikes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monitor_spikes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
