# Empty dependencies file for test_monitor_spikes.
# This may be replaced when dependencies are built.
