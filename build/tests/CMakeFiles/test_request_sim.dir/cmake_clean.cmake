file(REMOVE_RECURSE
  "CMakeFiles/test_request_sim.dir/test_request_sim.cpp.o"
  "CMakeFiles/test_request_sim.dir/test_request_sim.cpp.o.d"
  "test_request_sim"
  "test_request_sim.pdb"
  "test_request_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_request_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
