file(REMOVE_RECURSE
  "CMakeFiles/test_isp_map.dir/test_isp_map.cpp.o"
  "CMakeFiles/test_isp_map.dir/test_isp_map.cpp.o.d"
  "test_isp_map"
  "test_isp_map.pdb"
  "test_isp_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isp_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
