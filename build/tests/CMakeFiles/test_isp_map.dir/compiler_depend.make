# Empty compiler generated dependencies file for test_isp_map.
# This may be replaced when dependencies are built.
