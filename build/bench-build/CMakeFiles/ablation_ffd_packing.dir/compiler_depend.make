# Empty compiler generated dependencies file for ablation_ffd_packing.
# This may be replaced when dependencies are built.
