file(REMOVE_RECURSE
  "../bench/ablation_ffd_packing"
  "../bench/ablation_ffd_packing.pdb"
  "CMakeFiles/ablation_ffd_packing.dir/ablation_ffd_packing.cpp.o"
  "CMakeFiles/ablation_ffd_packing.dir/ablation_ffd_packing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ffd_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
