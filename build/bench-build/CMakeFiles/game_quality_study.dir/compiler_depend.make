# Empty compiler generated dependencies file for game_quality_study.
# This may be replaced when dependencies are built.
