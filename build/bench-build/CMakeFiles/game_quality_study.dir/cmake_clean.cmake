file(REMOVE_RECURSE
  "../bench/game_quality_study"
  "../bench/game_quality_study.pdb"
  "CMakeFiles/game_quality_study.dir/game_quality_study.cpp.o"
  "CMakeFiles/game_quality_study.dir/game_quality_study.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_quality_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
