# Empty compiler generated dependencies file for ablation_reconfig_cost.
# This may be replaced when dependencies are built.
