file(REMOVE_RECURSE
  "../bench/ablation_reconfig_cost"
  "../bench/ablation_reconfig_cost.pdb"
  "CMakeFiles/ablation_reconfig_cost.dir/ablation_reconfig_cost.cpp.o"
  "CMakeFiles/ablation_reconfig_cost.dir/ablation_reconfig_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reconfig_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
