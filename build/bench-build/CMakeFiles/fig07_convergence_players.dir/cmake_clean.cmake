file(REMOVE_RECURSE
  "../bench/fig07_convergence_players"
  "../bench/fig07_convergence_players.pdb"
  "CMakeFiles/fig07_convergence_players.dir/fig07_convergence_players.cpp.o"
  "CMakeFiles/fig07_convergence_players.dir/fig07_convergence_players.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_convergence_players.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
