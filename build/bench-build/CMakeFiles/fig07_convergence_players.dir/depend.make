# Empty dependencies file for fig07_convergence_players.
# This may be replaced when dependencies are built.
