file(REMOVE_RECURSE
  "../bench/fig04_demand_tracking"
  "../bench/fig04_demand_tracking.pdb"
  "CMakeFiles/fig04_demand_tracking.dir/fig04_demand_tracking.cpp.o"
  "CMakeFiles/fig04_demand_tracking.dir/fig04_demand_tracking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_demand_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
