# Empty compiler generated dependencies file for fig04_demand_tracking.
# This may be replaced when dependencies are built.
