# Empty compiler generated dependencies file for fig06_horizon_allocation.
# This may be replaced when dependencies are built.
