file(REMOVE_RECURSE
  "../bench/fig06_horizon_allocation"
  "../bench/fig06_horizon_allocation.pdb"
  "CMakeFiles/fig06_horizon_allocation.dir/fig06_horizon_allocation.cpp.o"
  "CMakeFiles/fig06_horizon_allocation.dir/fig06_horizon_allocation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_horizon_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
