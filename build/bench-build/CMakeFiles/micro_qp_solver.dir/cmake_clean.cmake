file(REMOVE_RECURSE
  "../bench/micro_qp_solver"
  "../bench/micro_qp_solver.pdb"
  "CMakeFiles/micro_qp_solver.dir/micro_qp_solver.cpp.o"
  "CMakeFiles/micro_qp_solver.dir/micro_qp_solver.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_qp_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
