# Empty dependencies file for micro_qp_solver.
# This may be replaced when dependencies are built.
