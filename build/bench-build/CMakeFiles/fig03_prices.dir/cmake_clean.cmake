file(REMOVE_RECURSE
  "../bench/fig03_prices"
  "../bench/fig03_prices.pdb"
  "CMakeFiles/fig03_prices.dir/fig03_prices.cpp.o"
  "CMakeFiles/fig03_prices.dir/fig03_prices.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_prices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
