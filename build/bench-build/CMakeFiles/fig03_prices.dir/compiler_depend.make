# Empty compiler generated dependencies file for fig03_prices.
# This may be replaced when dependencies are built.
