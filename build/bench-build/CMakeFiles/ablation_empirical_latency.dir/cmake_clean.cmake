file(REMOVE_RECURSE
  "../bench/ablation_empirical_latency"
  "../bench/ablation_empirical_latency.pdb"
  "CMakeFiles/ablation_empirical_latency.dir/ablation_empirical_latency.cpp.o"
  "CMakeFiles/ablation_empirical_latency.dir/ablation_empirical_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_empirical_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
