# Empty dependencies file for ablation_empirical_latency.
# This may be replaced when dependencies are built.
