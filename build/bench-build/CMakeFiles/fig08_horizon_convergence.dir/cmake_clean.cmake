file(REMOVE_RECURSE
  "../bench/fig08_horizon_convergence"
  "../bench/fig08_horizon_convergence.pdb"
  "CMakeFiles/fig08_horizon_convergence.dir/fig08_horizon_convergence.cpp.o"
  "CMakeFiles/fig08_horizon_convergence.dir/fig08_horizon_convergence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_horizon_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
