# Empty compiler generated dependencies file for fig05_price_following.
# This may be replaced when dependencies are built.
