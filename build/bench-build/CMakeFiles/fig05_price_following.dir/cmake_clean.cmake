file(REMOVE_RECURSE
  "../bench/fig05_price_following"
  "../bench/fig05_price_following.pdb"
  "CMakeFiles/fig05_price_following.dir/fig05_price_following.cpp.o"
  "CMakeFiles/fig05_price_following.dir/fig05_price_following.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_price_following.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
