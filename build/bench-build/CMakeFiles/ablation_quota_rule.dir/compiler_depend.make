# Empty compiler generated dependencies file for ablation_quota_rule.
# This may be replaced when dependencies are built.
