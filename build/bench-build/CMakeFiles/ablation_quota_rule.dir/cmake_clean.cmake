file(REMOVE_RECURSE
  "../bench/ablation_quota_rule"
  "../bench/ablation_quota_rule.pdb"
  "CMakeFiles/ablation_quota_rule.dir/ablation_quota_rule.cpp.o"
  "CMakeFiles/ablation_quota_rule.dir/ablation_quota_rule.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_quota_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
