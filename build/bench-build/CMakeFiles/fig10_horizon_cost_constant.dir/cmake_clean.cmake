file(REMOVE_RECURSE
  "../bench/fig10_horizon_cost_constant"
  "../bench/fig10_horizon_cost_constant.pdb"
  "CMakeFiles/fig10_horizon_cost_constant.dir/fig10_horizon_cost_constant.cpp.o"
  "CMakeFiles/fig10_horizon_cost_constant.dir/fig10_horizon_cost_constant.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_horizon_cost_constant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
