# Empty compiler generated dependencies file for fig10_horizon_cost_constant.
# This may be replaced when dependencies are built.
