# Empty compiler generated dependencies file for ablation_queueing_model.
# This may be replaced when dependencies are built.
