file(REMOVE_RECURSE
  "../bench/ablation_queueing_model"
  "../bench/ablation_queueing_model.pdb"
  "CMakeFiles/ablation_queueing_model.dir/ablation_queueing_model.cpp.o"
  "CMakeFiles/ablation_queueing_model.dir/ablation_queueing_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_queueing_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
