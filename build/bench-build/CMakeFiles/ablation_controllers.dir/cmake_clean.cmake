file(REMOVE_RECURSE
  "../bench/ablation_controllers"
  "../bench/ablation_controllers.pdb"
  "CMakeFiles/ablation_controllers.dir/ablation_controllers.cpp.o"
  "CMakeFiles/ablation_controllers.dir/ablation_controllers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_controllers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
