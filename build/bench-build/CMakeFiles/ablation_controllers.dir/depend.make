# Empty dependencies file for ablation_controllers.
# This may be replaced when dependencies are built.
