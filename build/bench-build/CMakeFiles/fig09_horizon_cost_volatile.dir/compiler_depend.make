# Empty compiler generated dependencies file for fig09_horizon_cost_volatile.
# This may be replaced when dependencies are built.
