file(REMOVE_RECURSE
  "../bench/fig09_horizon_cost_volatile"
  "../bench/fig09_horizon_cost_volatile.pdb"
  "CMakeFiles/fig09_horizon_cost_volatile.dir/fig09_horizon_cost_volatile.cpp.o"
  "CMakeFiles/fig09_horizon_cost_volatile.dir/fig09_horizon_cost_volatile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_horizon_cost_volatile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
