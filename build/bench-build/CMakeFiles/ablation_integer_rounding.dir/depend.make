# Empty dependencies file for ablation_integer_rounding.
# This may be replaced when dependencies are built.
