file(REMOVE_RECURSE
  "../bench/ablation_integer_rounding"
  "../bench/ablation_integer_rounding.pdb"
  "CMakeFiles/ablation_integer_rounding.dir/ablation_integer_rounding.cpp.o"
  "CMakeFiles/ablation_integer_rounding.dir/ablation_integer_rounding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_integer_rounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
