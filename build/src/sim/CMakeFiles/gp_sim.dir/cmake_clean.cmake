file(REMOVE_RECURSE
  "CMakeFiles/gp_sim.dir/engine.cpp.o"
  "CMakeFiles/gp_sim.dir/engine.cpp.o.d"
  "CMakeFiles/gp_sim.dir/monitor.cpp.o"
  "CMakeFiles/gp_sim.dir/monitor.cpp.o.d"
  "CMakeFiles/gp_sim.dir/multi_provider.cpp.o"
  "CMakeFiles/gp_sim.dir/multi_provider.cpp.o.d"
  "CMakeFiles/gp_sim.dir/request_sim.cpp.o"
  "CMakeFiles/gp_sim.dir/request_sim.cpp.o.d"
  "libgp_sim.a"
  "libgp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
