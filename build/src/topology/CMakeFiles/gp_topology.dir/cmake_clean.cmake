file(REMOVE_RECURSE
  "CMakeFiles/gp_topology.dir/geo.cpp.o"
  "CMakeFiles/gp_topology.dir/geo.cpp.o.d"
  "CMakeFiles/gp_topology.dir/graph.cpp.o"
  "CMakeFiles/gp_topology.dir/graph.cpp.o.d"
  "CMakeFiles/gp_topology.dir/isp_map.cpp.o"
  "CMakeFiles/gp_topology.dir/isp_map.cpp.o.d"
  "CMakeFiles/gp_topology.dir/network.cpp.o"
  "CMakeFiles/gp_topology.dir/network.cpp.o.d"
  "CMakeFiles/gp_topology.dir/transit_stub.cpp.o"
  "CMakeFiles/gp_topology.dir/transit_stub.cpp.o.d"
  "libgp_topology.a"
  "libgp_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
