# Empty compiler generated dependencies file for gp_topology.
# This may be replaced when dependencies are built.
