file(REMOVE_RECURSE
  "libgp_topology.a"
)
