# Empty compiler generated dependencies file for gp_workload.
# This may be replaced when dependencies are built.
