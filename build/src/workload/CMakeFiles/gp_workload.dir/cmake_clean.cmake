file(REMOVE_RECURSE
  "CMakeFiles/gp_workload.dir/demand.cpp.o"
  "CMakeFiles/gp_workload.dir/demand.cpp.o.d"
  "CMakeFiles/gp_workload.dir/diurnal.cpp.o"
  "CMakeFiles/gp_workload.dir/diurnal.cpp.o.d"
  "CMakeFiles/gp_workload.dir/price.cpp.o"
  "CMakeFiles/gp_workload.dir/price.cpp.o.d"
  "CMakeFiles/gp_workload.dir/spikes.cpp.o"
  "CMakeFiles/gp_workload.dir/spikes.cpp.o.d"
  "CMakeFiles/gp_workload.dir/trace_io.cpp.o"
  "CMakeFiles/gp_workload.dir/trace_io.cpp.o.d"
  "libgp_workload.a"
  "libgp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
