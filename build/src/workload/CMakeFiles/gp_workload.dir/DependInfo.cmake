
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/demand.cpp" "src/workload/CMakeFiles/gp_workload.dir/demand.cpp.o" "gcc" "src/workload/CMakeFiles/gp_workload.dir/demand.cpp.o.d"
  "/root/repo/src/workload/diurnal.cpp" "src/workload/CMakeFiles/gp_workload.dir/diurnal.cpp.o" "gcc" "src/workload/CMakeFiles/gp_workload.dir/diurnal.cpp.o.d"
  "/root/repo/src/workload/price.cpp" "src/workload/CMakeFiles/gp_workload.dir/price.cpp.o" "gcc" "src/workload/CMakeFiles/gp_workload.dir/price.cpp.o.d"
  "/root/repo/src/workload/spikes.cpp" "src/workload/CMakeFiles/gp_workload.dir/spikes.cpp.o" "gcc" "src/workload/CMakeFiles/gp_workload.dir/spikes.cpp.o.d"
  "/root/repo/src/workload/trace_io.cpp" "src/workload/CMakeFiles/gp_workload.dir/trace_io.cpp.o" "gcc" "src/workload/CMakeFiles/gp_workload.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gp_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
