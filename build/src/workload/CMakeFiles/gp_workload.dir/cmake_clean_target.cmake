file(REMOVE_RECURSE
  "libgp_workload.a"
)
