
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/anomaly.cpp" "src/control/CMakeFiles/gp_control.dir/anomaly.cpp.o" "gcc" "src/control/CMakeFiles/gp_control.dir/anomaly.cpp.o.d"
  "/root/repo/src/control/autoscaler.cpp" "src/control/CMakeFiles/gp_control.dir/autoscaler.cpp.o" "gcc" "src/control/CMakeFiles/gp_control.dir/autoscaler.cpp.o.d"
  "/root/repo/src/control/baselines.cpp" "src/control/CMakeFiles/gp_control.dir/baselines.cpp.o" "gcc" "src/control/CMakeFiles/gp_control.dir/baselines.cpp.o.d"
  "/root/repo/src/control/mpc_controller.cpp" "src/control/CMakeFiles/gp_control.dir/mpc_controller.cpp.o" "gcc" "src/control/CMakeFiles/gp_control.dir/mpc_controller.cpp.o.d"
  "/root/repo/src/control/predictor.cpp" "src/control/CMakeFiles/gp_control.dir/predictor.cpp.o" "gcc" "src/control/CMakeFiles/gp_control.dir/predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dspp/CMakeFiles/gp_dspp.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/CMakeFiles/gp_qp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/gp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/gp_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gp_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
