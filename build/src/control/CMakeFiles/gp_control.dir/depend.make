# Empty dependencies file for gp_control.
# This may be replaced when dependencies are built.
