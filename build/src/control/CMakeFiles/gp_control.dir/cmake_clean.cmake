file(REMOVE_RECURSE
  "CMakeFiles/gp_control.dir/anomaly.cpp.o"
  "CMakeFiles/gp_control.dir/anomaly.cpp.o.d"
  "CMakeFiles/gp_control.dir/autoscaler.cpp.o"
  "CMakeFiles/gp_control.dir/autoscaler.cpp.o.d"
  "CMakeFiles/gp_control.dir/baselines.cpp.o"
  "CMakeFiles/gp_control.dir/baselines.cpp.o.d"
  "CMakeFiles/gp_control.dir/mpc_controller.cpp.o"
  "CMakeFiles/gp_control.dir/mpc_controller.cpp.o.d"
  "CMakeFiles/gp_control.dir/predictor.cpp.o"
  "CMakeFiles/gp_control.dir/predictor.cpp.o.d"
  "libgp_control.a"
  "libgp_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
