file(REMOVE_RECURSE
  "libgp_control.a"
)
