file(REMOVE_RECURSE
  "libgp_binpack.a"
)
