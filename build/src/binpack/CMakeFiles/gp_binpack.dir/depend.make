# Empty dependencies file for gp_binpack.
# This may be replaced when dependencies are built.
