file(REMOVE_RECURSE
  "CMakeFiles/gp_binpack.dir/ffd.cpp.o"
  "CMakeFiles/gp_binpack.dir/ffd.cpp.o.d"
  "libgp_binpack.a"
  "libgp_binpack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_binpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
