file(REMOVE_RECURSE
  "CMakeFiles/gp_queueing.dir/mm1.cpp.o"
  "CMakeFiles/gp_queueing.dir/mm1.cpp.o.d"
  "CMakeFiles/gp_queueing.dir/mmc.cpp.o"
  "CMakeFiles/gp_queueing.dir/mmc.cpp.o.d"
  "libgp_queueing.a"
  "libgp_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
