file(REMOVE_RECURSE
  "libgp_queueing.a"
)
