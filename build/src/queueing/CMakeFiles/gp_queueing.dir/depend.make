# Empty dependencies file for gp_queueing.
# This may be replaced when dependencies are built.
