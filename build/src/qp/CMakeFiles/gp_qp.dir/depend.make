# Empty dependencies file for gp_qp.
# This may be replaced when dependencies are built.
