file(REMOVE_RECURSE
  "CMakeFiles/gp_qp.dir/admm_solver.cpp.o"
  "CMakeFiles/gp_qp.dir/admm_solver.cpp.o.d"
  "CMakeFiles/gp_qp.dir/ipm_solver.cpp.o"
  "CMakeFiles/gp_qp.dir/ipm_solver.cpp.o.d"
  "CMakeFiles/gp_qp.dir/problem.cpp.o"
  "CMakeFiles/gp_qp.dir/problem.cpp.o.d"
  "CMakeFiles/gp_qp.dir/scaling.cpp.o"
  "CMakeFiles/gp_qp.dir/scaling.cpp.o.d"
  "CMakeFiles/gp_qp.dir/solver.cpp.o"
  "CMakeFiles/gp_qp.dir/solver.cpp.o.d"
  "libgp_qp.a"
  "libgp_qp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_qp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
