
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qp/admm_solver.cpp" "src/qp/CMakeFiles/gp_qp.dir/admm_solver.cpp.o" "gcc" "src/qp/CMakeFiles/gp_qp.dir/admm_solver.cpp.o.d"
  "/root/repo/src/qp/ipm_solver.cpp" "src/qp/CMakeFiles/gp_qp.dir/ipm_solver.cpp.o" "gcc" "src/qp/CMakeFiles/gp_qp.dir/ipm_solver.cpp.o.d"
  "/root/repo/src/qp/problem.cpp" "src/qp/CMakeFiles/gp_qp.dir/problem.cpp.o" "gcc" "src/qp/CMakeFiles/gp_qp.dir/problem.cpp.o.d"
  "/root/repo/src/qp/scaling.cpp" "src/qp/CMakeFiles/gp_qp.dir/scaling.cpp.o" "gcc" "src/qp/CMakeFiles/gp_qp.dir/scaling.cpp.o.d"
  "/root/repo/src/qp/solver.cpp" "src/qp/CMakeFiles/gp_qp.dir/solver.cpp.o" "gcc" "src/qp/CMakeFiles/gp_qp.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/gp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
