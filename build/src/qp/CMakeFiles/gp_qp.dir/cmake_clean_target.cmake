file(REMOVE_RECURSE
  "libgp_qp.a"
)
