
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/cg.cpp" "src/linalg/CMakeFiles/gp_linalg.dir/cg.cpp.o" "gcc" "src/linalg/CMakeFiles/gp_linalg.dir/cg.cpp.o.d"
  "/root/repo/src/linalg/dense_factor.cpp" "src/linalg/CMakeFiles/gp_linalg.dir/dense_factor.cpp.o" "gcc" "src/linalg/CMakeFiles/gp_linalg.dir/dense_factor.cpp.o.d"
  "/root/repo/src/linalg/dense_matrix.cpp" "src/linalg/CMakeFiles/gp_linalg.dir/dense_matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/gp_linalg.dir/dense_matrix.cpp.o.d"
  "/root/repo/src/linalg/ordering.cpp" "src/linalg/CMakeFiles/gp_linalg.dir/ordering.cpp.o" "gcc" "src/linalg/CMakeFiles/gp_linalg.dir/ordering.cpp.o.d"
  "/root/repo/src/linalg/sparse_ldlt.cpp" "src/linalg/CMakeFiles/gp_linalg.dir/sparse_ldlt.cpp.o" "gcc" "src/linalg/CMakeFiles/gp_linalg.dir/sparse_ldlt.cpp.o.d"
  "/root/repo/src/linalg/sparse_matrix.cpp" "src/linalg/CMakeFiles/gp_linalg.dir/sparse_matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/gp_linalg.dir/sparse_matrix.cpp.o.d"
  "/root/repo/src/linalg/vector_ops.cpp" "src/linalg/CMakeFiles/gp_linalg.dir/vector_ops.cpp.o" "gcc" "src/linalg/CMakeFiles/gp_linalg.dir/vector_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
