file(REMOVE_RECURSE
  "CMakeFiles/gp_linalg.dir/cg.cpp.o"
  "CMakeFiles/gp_linalg.dir/cg.cpp.o.d"
  "CMakeFiles/gp_linalg.dir/dense_factor.cpp.o"
  "CMakeFiles/gp_linalg.dir/dense_factor.cpp.o.d"
  "CMakeFiles/gp_linalg.dir/dense_matrix.cpp.o"
  "CMakeFiles/gp_linalg.dir/dense_matrix.cpp.o.d"
  "CMakeFiles/gp_linalg.dir/ordering.cpp.o"
  "CMakeFiles/gp_linalg.dir/ordering.cpp.o.d"
  "CMakeFiles/gp_linalg.dir/sparse_ldlt.cpp.o"
  "CMakeFiles/gp_linalg.dir/sparse_ldlt.cpp.o.d"
  "CMakeFiles/gp_linalg.dir/sparse_matrix.cpp.o"
  "CMakeFiles/gp_linalg.dir/sparse_matrix.cpp.o.d"
  "CMakeFiles/gp_linalg.dir/vector_ops.cpp.o"
  "CMakeFiles/gp_linalg.dir/vector_ops.cpp.o.d"
  "libgp_linalg.a"
  "libgp_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
