# Empty dependencies file for gp_linalg.
# This may be replaced when dependencies are built.
