file(REMOVE_RECURSE
  "libgp_linalg.a"
)
