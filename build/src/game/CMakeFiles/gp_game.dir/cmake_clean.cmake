file(REMOVE_RECURSE
  "CMakeFiles/gp_game.dir/competition.cpp.o"
  "CMakeFiles/gp_game.dir/competition.cpp.o.d"
  "CMakeFiles/gp_game.dir/provider.cpp.o"
  "CMakeFiles/gp_game.dir/provider.cpp.o.d"
  "libgp_game.a"
  "libgp_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
