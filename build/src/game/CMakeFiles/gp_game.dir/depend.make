# Empty dependencies file for gp_game.
# This may be replaced when dependencies are built.
