file(REMOVE_RECURSE
  "libgp_game.a"
)
