file(REMOVE_RECURSE
  "libgp_common.a"
)
