# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("linalg")
subdirs("qp")
subdirs("topology")
subdirs("workload")
subdirs("queueing")
subdirs("binpack")
subdirs("dspp")
subdirs("control")
subdirs("game")
subdirs("sim")
