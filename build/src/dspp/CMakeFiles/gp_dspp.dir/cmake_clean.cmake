file(REMOVE_RECURSE
  "CMakeFiles/gp_dspp.dir/assignment.cpp.o"
  "CMakeFiles/gp_dspp.dir/assignment.cpp.o.d"
  "CMakeFiles/gp_dspp.dir/integer.cpp.o"
  "CMakeFiles/gp_dspp.dir/integer.cpp.o.d"
  "CMakeFiles/gp_dspp.dir/model.cpp.o"
  "CMakeFiles/gp_dspp.dir/model.cpp.o.d"
  "CMakeFiles/gp_dspp.dir/provisioning.cpp.o"
  "CMakeFiles/gp_dspp.dir/provisioning.cpp.o.d"
  "CMakeFiles/gp_dspp.dir/window_program.cpp.o"
  "CMakeFiles/gp_dspp.dir/window_program.cpp.o.d"
  "libgp_dspp.a"
  "libgp_dspp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_dspp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
