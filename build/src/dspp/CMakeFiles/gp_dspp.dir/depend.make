# Empty dependencies file for gp_dspp.
# This may be replaced when dependencies are built.
