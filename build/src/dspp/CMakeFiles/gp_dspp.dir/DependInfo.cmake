
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dspp/assignment.cpp" "src/dspp/CMakeFiles/gp_dspp.dir/assignment.cpp.o" "gcc" "src/dspp/CMakeFiles/gp_dspp.dir/assignment.cpp.o.d"
  "/root/repo/src/dspp/integer.cpp" "src/dspp/CMakeFiles/gp_dspp.dir/integer.cpp.o" "gcc" "src/dspp/CMakeFiles/gp_dspp.dir/integer.cpp.o.d"
  "/root/repo/src/dspp/model.cpp" "src/dspp/CMakeFiles/gp_dspp.dir/model.cpp.o" "gcc" "src/dspp/CMakeFiles/gp_dspp.dir/model.cpp.o.d"
  "/root/repo/src/dspp/provisioning.cpp" "src/dspp/CMakeFiles/gp_dspp.dir/provisioning.cpp.o" "gcc" "src/dspp/CMakeFiles/gp_dspp.dir/provisioning.cpp.o.d"
  "/root/repo/src/dspp/window_program.cpp" "src/dspp/CMakeFiles/gp_dspp.dir/window_program.cpp.o" "gcc" "src/dspp/CMakeFiles/gp_dspp.dir/window_program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qp/CMakeFiles/gp_qp.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/gp_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gp_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/gp_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
