file(REMOVE_RECURSE
  "libgp_dspp.a"
)
