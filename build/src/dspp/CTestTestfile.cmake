# CMake generated Testfile for 
# Source directory: /root/repo/src/dspp
# Build directory: /root/repo/build/src/dspp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
