# Empty dependencies file for geoplace_cli.
# This may be replaced when dependencies are built.
