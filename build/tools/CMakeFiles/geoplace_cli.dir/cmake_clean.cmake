file(REMOVE_RECURSE
  "CMakeFiles/geoplace_cli.dir/geoplace_cli.cpp.o"
  "CMakeFiles/geoplace_cli.dir/geoplace_cli.cpp.o.d"
  "geoplace_cli"
  "geoplace_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geoplace_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
