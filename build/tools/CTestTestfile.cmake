# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_simulate "/root/repo/build/tools/geoplace_cli" "simulate" "--dcs" "2" "--cities" "4" "--periods" "6")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_provision "/root/repo/build/tools/geoplace_cli" "provision" "--dcs" "3" "--cities" "6" "--hour" "14")
set_tests_properties(cli_provision PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_game "/root/repo/build/tools/geoplace_cli" "game" "--players" "3" "--capacity" "300")
set_tests_properties(cli_game PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
