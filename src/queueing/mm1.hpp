// M/M/1 queueing formulas (Section IV-B of the paper) and the SLA
// coefficient a_lv that turns the latency constraint (8) into the linear
// constraint x >= a * sigma of (11).
#pragma once

namespace gp::queueing {

/// Utilization rho = lambda / mu. Requires mu > 0.
double utilization(double mu, double lambda);

/// True when the queue is stable (lambda < mu).
bool stable(double mu, double lambda);

/// Mean response (sojourn) time of an M/M/1 server: 1 / (mu - lambda).
/// Requires a stable queue. Units follow 1/mu.
double mean_response_time(double mu, double lambda);

/// Multiplier that converts the mean M/M/1 sojourn time into its
/// phi-percentile (exponential sojourn distribution): ln(1 / (1 - phi)).
/// The paper's Section IV-B suggests exactly this factor for 95th-percentile
/// SLAs. Requires phi in [0, 1).
double percentile_factor(double phi);

/// Parameters of the SLA latency constraint for one (data center, access
/// network) pair.
struct SlaParams {
  double mu = 1.0;                 ///< per-server service rate (req/s)
  double network_latency = 0.0;    ///< d_lv, seconds
  double max_latency = 0.1;        ///< dbar_lv, seconds
  double reservation_ratio = 1.0;  ///< r >= 1 over-provisioning cushion
  double percentile = 0.0;         ///< phi; 0 bounds the MEAN delay
};

/// The coefficient a_lv of constraint (11): servers required per unit of
/// assigned demand. Returns +infinity when the pair cannot meet the SLA at
/// any allocation (d_lv too close to or above dbar_lv), matching eq. (10).
double sla_coefficient(const SlaParams& params);

/// Convenience: whether the (l, v) pair is usable at all.
bool sla_feasible(const SlaParams& params);

}  // namespace gp::queueing
