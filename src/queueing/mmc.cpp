#include "queueing/mmc.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gp::queueing {

double erlang_b(std::int64_t c, double offered_load) {
  require(c >= 0, "erlang_b: negative server count");
  require(offered_load >= 0.0, "erlang_b: negative offered load");
  double b = 1.0;  // B(0, a) = 1
  for (std::int64_t k = 1; k <= c; ++k) {
    b = offered_load * b / (static_cast<double>(k) + offered_load * b);
  }
  return b;
}

double erlang_c(std::int64_t c, double offered_load) {
  require(c >= 1, "erlang_c: need at least one server");
  require(offered_load < static_cast<double>(c), "erlang_c: unstable (a >= c)");
  const double b = erlang_b(c, offered_load);
  const double rho = offered_load / static_cast<double>(c);
  return b / (1.0 - rho * (1.0 - b));
}

bool mmc_stable(std::int64_t c, double lambda, double mu) {
  require(mu > 0.0, "mmc_stable: mu must be > 0");
  require(c >= 1, "mmc_stable: need at least one server");
  return lambda < static_cast<double>(c) * mu;
}

double mmc_mean_response_time(std::int64_t c, double lambda, double mu) {
  require(mmc_stable(c, lambda, mu), "mmc_mean_response_time: unstable system");
  require(lambda >= 0.0, "mmc_mean_response_time: negative arrival rate");
  if (lambda == 0.0) return 1.0 / mu;
  const double a = lambda / mu;
  const double wait = erlang_c(c, a) / (static_cast<double>(c) * mu - lambda);
  return 1.0 / mu + wait;
}

std::int64_t mmc_required_servers(double lambda, double mu, double budget,
                                  std::int64_t max_servers) {
  require(mu > 0.0, "mmc_required_servers: mu must be > 0");
  require(lambda >= 0.0, "mmc_required_servers: negative arrival rate");
  require(budget > 0.0, "mmc_required_servers: budget must be > 0");
  if (budget <= 1.0 / mu) return -1;  // service time alone exceeds the budget
  // Lower bound from stability; then linear scan (the response time is
  // monotone decreasing in c, and the scan starts near the answer).
  auto first = static_cast<std::int64_t>(std::floor(lambda / mu)) + 1;
  if (first < 1) first = 1;
  for (std::int64_t c = first; c <= max_servers; ++c) {
    if (mmc_mean_response_time(c, lambda, mu) <= budget) return c;
  }
  return -1;
}

std::int64_t mm1_split_required_servers(double lambda, double mu, double budget) {
  require(mu > 0.0, "mm1_split_required_servers: mu must be > 0");
  require(lambda >= 0.0, "mm1_split_required_servers: negative arrival rate");
  require(budget > 0.0, "mm1_split_required_servers: budget must be > 0");
  const double margin = mu - 1.0 / budget;
  if (margin <= 0.0) return -1;
  if (lambda == 0.0) return 0;
  return static_cast<std::int64_t>(std::ceil(lambda / margin - 1e-12));
}

}  // namespace gp::queueing
