#include "queueing/mm1.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace gp::queueing {

double utilization(double mu, double lambda) {
  require(mu > 0.0, "utilization: mu must be > 0");
  require(lambda >= 0.0, "utilization: lambda must be >= 0");
  return lambda / mu;
}

bool stable(double mu, double lambda) {
  require(mu > 0.0, "stable: mu must be > 0");
  return lambda < mu;
}

double mean_response_time(double mu, double lambda) {
  require(stable(mu, lambda), "mean_response_time: queue is unstable (lambda >= mu)");
  return 1.0 / (mu - lambda);
}

double percentile_factor(double phi) {
  require(phi >= 0.0 && phi < 1.0, "percentile_factor: phi must be in [0, 1)");
  if (phi == 0.0) return 1.0;  // bound the mean
  return std::log(1.0 / (1.0 - phi));
}

double sla_coefficient(const SlaParams& params) {
  require(params.mu > 0.0, "sla_coefficient: mu must be > 0");
  require(params.network_latency >= 0.0, "sla_coefficient: negative network latency");
  require(params.max_latency > 0.0, "sla_coefficient: max latency must be > 0");
  require(params.reservation_ratio >= 1.0, "sla_coefficient: reservation ratio must be >= 1");

  const double budget = params.max_latency - params.network_latency;
  if (budget <= 0.0) return std::numeric_limits<double>::infinity();
  // Constraint (8) with the percentile factor kappa:
  //   d + kappa / (mu - sigma/x) <= dbar  =>  sigma/x <= mu - kappa / budget.
  const double kappa = percentile_factor(params.percentile);
  const double max_per_server_rate = params.mu - kappa / budget;
  if (max_per_server_rate <= 0.0) return std::numeric_limits<double>::infinity();
  return params.reservation_ratio / max_per_server_rate;
}

bool sla_feasible(const SlaParams& params) {
  return std::isfinite(sla_coefficient(params));
}

}  // namespace gp::queueing
