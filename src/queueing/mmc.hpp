// M/M/c (Erlang-C) queueing — the "other queueing models" extension the
// paper's Section IV-B anticipates.
//
// The paper models each server as an independent M/M/1 queue fed an equal
// share of the assigned demand. A data center that POOLS its x servers
// behind one queue is an M/M/c system, which performs strictly better at
// the same load (resource pooling). This module provides the Erlang-C
// machinery plus the pooled equivalent of the DSPP sizing rule, so the
// conservativeness of the paper's per-server-split model can be quantified
// (see bench/ablation_queueing_model).
#pragma once

#include <cstdint>

namespace gp::queueing {

/// Erlang-B blocking probability for offered load `a = lambda/mu` and `c`
/// servers, computed with the numerically stable recurrence.
double erlang_b(std::int64_t c, double offered_load);

/// Erlang-C probability that an arriving job waits (M/M/c, offered load
/// a = lambda/mu < c). Requires a stable system.
double erlang_c(std::int64_t c, double offered_load);

/// True when lambda < c * mu.
bool mmc_stable(std::int64_t c, double lambda, double mu);

/// Mean sojourn (response) time of an M/M/c queue: 1/mu + C(c,a)/(c mu - lambda).
/// Requires a stable system.
double mmc_mean_response_time(std::int64_t c, double lambda, double mu);

/// Smallest number of pooled servers whose mean response time meets
/// `budget` (seconds) at arrival rate lambda — the M/M/c analogue of the
/// paper's x >= a_lv * sigma sizing rule. Returns -1 when even the
/// `max_servers` cap cannot meet the budget (budget <= 1/mu is infeasible
/// for any c).
std::int64_t mmc_required_servers(double lambda, double mu, double budget,
                                  std::int64_t max_servers = 1 << 20);

/// Servers required by the paper's per-server-split M/M/1 rule for the same
/// inputs: ceil(sigma / (mu - 1/budget)); -1 when infeasible. Provided here
/// for side-by-side comparison with mmc_required_servers.
std::int64_t mm1_split_required_servers(double lambda, double mu, double budget);

}  // namespace gp::queueing
