// Width-generic bodies for the vectorized kernel tiers. Included ONLY by the
// per-ISA translation units (simd_kernels_avx2.cpp, simd_kernels_avx512.cpp),
// each of which supplies a trait struct V:
//
//   struct V {
//     using vec = ...;                       // native vector of doubles
//     static constexpr std::size_t width;    // lanes per vector
//     static vec load(const double*);        // unaligned
//     static void store(double*, vec);       // unaligned
//     static vec broadcast(double); static vec zero();
//     static vec add(vec, vec); static vec sub(vec, vec);
//     static vec mul(vec, vec); static vec div(vec, vec);
//     static vec abs(vec);                   // clears the sign bit
//     static vec max_std(vec a, vec b);      // per-lane std::max(a, b)
//     static vec min_std(vec a, vec b);      // per-lane std::min(a, b)
//     static vec gather(const double* base, const std::int32_t* idx);
//     static double reduce_max(vec);         // exact (lanes are never -0)
//     static double reduce_sum(vec);         // reassociates (dot_reassoc only)
//   };
//
// Bit-identity contract: every kernel here except dot_reassoc_t computes, per
// element, the same IEEE operation sequence as the scalar tier, and reduces
// maxima over the same candidate set. Max over values that are never -0 (all
// lanes start at +0 and only non-negative candidates can replace them) is
// exact and partition-independent, so W-lane accumulators reduce to the same
// bits as the scalar code's 4 lanes. The TUs compile with -ffp-contract=off:
// a fused multiply-add would change rounding and break the contract.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "linalg/simd_kernels.hpp"

namespace gp::linalg::simd {

template <class V>
double norm_inf_t(const double* a, std::size_t n) {
  typename V::vec m = V::zero();
  std::size_t i = 0;
  for (; i + V::width <= n; i += V::width) m = V::max_std(m, V::abs(V::load(a + i)));
  double best = V::reduce_max(m);
  for (; i < n; ++i) best = std::max(best, std::abs(a[i]));
  return best;
}

template <class V>
double inf_norm_scaled_t(const double* a, const double* scale, std::size_t n) {
  typename V::vec m = V::zero();
  std::size_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    m = V::max_std(m, V::mul(V::abs(V::load(a + i)), V::load(scale + i)));
  }
  double best = V::reduce_max(m);
  for (; i < n; ++i) best = std::max(best, std::abs(a[i]) * scale[i]);
  return best;
}

template <class V>
double inf_norm_scaled_diff_t(const double* a, const double* b, const double* scale,
                              std::size_t n) {
  typename V::vec m = V::zero();
  std::size_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    const typename V::vec d = V::sub(V::load(a + i), V::load(b + i));
    m = V::max_std(m, V::mul(V::abs(d), V::load(scale + i)));
  }
  double best = V::reduce_max(m);
  for (; i < n; ++i) best = std::max(best, std::abs(a[i] - b[i]) * scale[i]);
  return best;
}

template <class V>
double inf_norm_scaled_sum3_t(const double* a, const double* b, const double* c,
                              const double* scale, double post, std::size_t n) {
  const typename V::vec vpost = V::broadcast(post);
  typename V::vec m = V::zero();
  std::size_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    const typename V::vec s = V::add(V::add(V::load(a + i), V::load(b + i)), V::load(c + i));
    m = V::max_std(m, V::mul(V::mul(V::abs(s), V::load(scale + i)), vpost));
  }
  double best = V::reduce_max(m);
  for (; i < n; ++i) best = std::max(best, std::abs(a[i] + b[i] + c[i]) * scale[i] * post);
  return best;
}

template <class V>
double diff_norm_inf_t(const double* a, const double* b, double* out, std::size_t n) {
  typename V::vec m = V::zero();
  std::size_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    const typename V::vec d = V::sub(V::load(a + i), V::load(b + i));
    V::store(out + i, d);
    m = V::max_std(m, V::abs(d));
  }
  double best = V::reduce_max(m);
  for (; i < n; ++i) {
    out[i] = a[i] - b[i];
    best = std::max(best, std::abs(out[i]));
  }
  return best;
}

template <class V>
void inf_norm_scaled_residual_t(const double* a, const double* b, const double* scale,
                                std::size_t n, double* res, double* norm) {
  typename V::vec mr = V::zero();
  typename V::vec mn = V::zero();
  std::size_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    const typename V::vec va = V::load(a + i);
    const typename V::vec vb = V::load(b + i);
    const typename V::vec vs = V::load(scale + i);
    mr = V::max_std(mr, V::mul(V::abs(V::sub(va, vb)), vs));
    mn = V::max_std(mn, V::mul(V::max_std(V::abs(va), V::abs(vb)), vs));
  }
  double r = V::reduce_max(mr);
  double m = V::reduce_max(mn);
  for (; i < n; ++i) {
    r = std::max(r, std::abs(a[i] - b[i]) * scale[i]);
    m = std::max(m, std::max(std::abs(a[i]), std::abs(b[i])) * scale[i]);
  }
  *res = r;
  *norm = m;
}

template <class V>
void inf_norm_scaled_residual3_t(const double* a, const double* b, const double* c,
                                 const double* scale, double post, std::size_t n, double* res,
                                 double* norm) {
  const typename V::vec vpost = V::broadcast(post);
  typename V::vec mr = V::zero();
  typename V::vec mn = V::zero();
  std::size_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    const typename V::vec va = V::load(a + i);
    const typename V::vec vb = V::load(b + i);
    const typename V::vec vc = V::load(c + i);
    const typename V::vec vs = V::load(scale + i);
    const typename V::vec s = V::add(V::add(va, vb), vc);
    mr = V::max_std(mr, V::mul(V::mul(V::abs(s), vs), vpost));
    mn = V::max_std(mn, V::mul(V::max_std(V::max_std(V::abs(va), V::abs(vb)), V::abs(vc)), vs));
  }
  double r = V::reduce_max(mr);
  double m = V::reduce_max(mn);
  for (; i < n; ++i) {
    r = std::max(r, std::abs(a[i] + b[i] + c[i]) * scale[i] * post);
    m = std::max(m,
                 std::max(std::max(std::abs(a[i]), std::abs(b[i])), std::abs(c[i])) * scale[i]);
  }
  *res = r;
  // Same max-then-scale-by-post form as the scalar kernel (bitwise equal to
  // scale-then-max for post > 0: rounding under a positive multiply is
  // monotone).
  *norm = m * post;
}

template <class V>
void axpby_t(double av, const double* x, double bv, double* y, std::size_t n) {
  const typename V::vec va = V::broadcast(av);
  const typename V::vec vb = V::broadcast(bv);
  std::size_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    V::store(y + i, V::add(V::mul(va, V::load(x + i)), V::mul(vb, V::load(y + i))));
  }
  for (; i < n; ++i) y[i] = av * x[i] + bv * y[i];
}

template <class V>
double axpby_delta_t(double av, const double* src, double bv, double* x, double* delta,
                     std::size_t n) {
  const typename V::vec va = V::broadcast(av);
  const typename V::vec vb = V::broadcast(bv);
  typename V::vec m = V::zero();
  std::size_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    const typename V::vec old = V::load(x + i);
    const typename V::vec next = V::add(V::mul(va, V::load(src + i)), V::mul(vb, old));
    const typename V::vec d = V::sub(next, old);
    V::store(delta + i, d);
    V::store(x + i, next);
    m = V::max_std(m, V::abs(d));
  }
  double best = V::reduce_max(m);
  for (; i < n; ++i) {
    const double next = av * src[i] + bv * x[i];
    delta[i] = next - x[i];
    x[i] = next;
    best = std::max(best, std::abs(delta[i]));
  }
  return best;
}

template <class V>
void project_box_into_t(const double* x, const double* lo, const double* hi, double* out,
                        std::size_t n) {
  std::size_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    V::store(out + i, V::min_std(V::max_std(V::load(x + i), V::load(lo + i)), V::load(hi + i)));
  }
  for (; i < n; ++i) out[i] = std::min(std::max(x[i], lo[i]), hi[i]);
}

template <class V>
void admm_z_tilde_t(const double* z, const double* nu, const double* y, const double* rho,
                    double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    const typename V::vec q = V::div(V::sub(V::load(nu + i), V::load(y + i)), V::load(rho + i));
    V::store(out + i, V::add(V::load(z + i), q));
  }
  for (; i < n; ++i) out[i] = z[i] + (nu[i] - y[i]) / rho[i];
}

template <class V>
void admm_z_candidate_cached_t(double alpha, const double* z_tilde, const double* z,
                               const double* y_over_rho, double* out, std::size_t n) {
  const double beta = 1.0 - alpha;
  const typename V::vec va = V::broadcast(alpha);
  const typename V::vec vb = V::broadcast(beta);
  std::size_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    const typename V::vec t =
        V::add(V::mul(va, V::load(z_tilde + i)), V::mul(vb, V::load(z + i)));
    V::store(out + i, V::add(t, V::load(y_over_rho + i)));
  }
  for (; i < n; ++i) out[i] = alpha * z_tilde[i] + beta * z[i] + y_over_rho[i];
}

template <class V>
void admm_dual_update_t(const double* rho, const double* zc, const double* zn, double* y,
                        std::size_t n) {
  std::size_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    V::store(y + i, V::mul(V::load(rho + i), V::sub(V::load(zc + i), V::load(zn + i))));
  }
  for (; i < n; ++i) y[i] = rho[i] * (zc[i] - zn[i]);
}

template <class V>
double admm_dual_update_delta_t(const double* rho, const double* zc, const double* zn,
                                double* y, double* delta, std::size_t n) {
  typename V::vec m = V::zero();
  std::size_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    const typename V::vec next =
        V::mul(V::load(rho + i), V::sub(V::load(zc + i), V::load(zn + i)));
    const typename V::vec d = V::sub(next, V::load(y + i));
    V::store(delta + i, d);
    V::store(y + i, next);
    m = V::max_std(m, V::abs(d));
  }
  double best = V::reduce_max(m);
  for (; i < n; ++i) {
    const double next = rho[i] * (zc[i] - zn[i]);
    delta[i] = next - y[i];
    y[i] = next;
    best = std::max(best, std::abs(delta[i]));
  }
  return best;
}

// The one deliberately reassociated kernel: W partial sums reduced
// horizontally. NOT bit-identical to linalg::dot's single chain (documented
// tolerance ~ n * eps * sum|a_i b_i|); kept out of the solver hot path and
// cross-checked against the exact dot in micro_admm_kernels.
template <class V>
double dot_reassoc_t(const double* a, const double* b, std::size_t n) {
  typename V::vec acc = V::zero();
  std::size_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    acc = V::add(acc, V::mul(V::load(a + i), V::load(b + i)));
  }
  double total = V::reduce_sum(acc);
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

// SELL SpMV: chunks of kSellChunk rows, entries j-major, zero-value pads
// (sparse_simd.cpp documents why the pads are bitwise no-ops). Gathers x per
// lane; per lane the term sequence and its association acc += v * (alpha * x)
// match the scalar CSR mirror exactly.
template <class V>
void sell_multiply_into_t(const SellView& m, double alpha, const double* x, double* y) {
  constexpr int kW = static_cast<int>(V::width);
  constexpr int kGroups = kSellChunk / kW;
  static_assert(kGroups * kW == kSellChunk, "chunk must be a multiple of the vector width");
  const typename V::vec valpha = V::broadcast(alpha);
  const std::int32_t full_chunks = m.rows / kSellChunk;
  for (std::int32_t c = 0; c < m.num_chunks; ++c) {
    const std::int64_t base = m.chunk_ptr[c];
    const std::int64_t width = (m.chunk_ptr[c + 1] - base) / kSellChunk;
    typename V::vec acc[kGroups];
    for (int g = 0; g < kGroups; ++g) acc[g] = V::zero();
    for (std::int64_t j = 0; j < width; ++j) {
      const std::int64_t e = base + j * kSellChunk;
      for (int g = 0; g < kGroups; ++g) {
        const typename V::vec xc = V::mul(valpha, V::gather(x, m.col_idx + e + g * kW));
        acc[g] = V::add(acc[g], V::mul(V::load(m.values + e + g * kW), xc));
      }
    }
    const std::int32_t r0 = c * kSellChunk;
    if (c < full_chunks) {
      for (int g = 0; g < kGroups; ++g) V::store(y + r0 + g * kW, acc[g]);
    } else {
      double tmp[kSellChunk];
      for (int g = 0; g < kGroups; ++g) V::store(tmp + g * kW, acc[g]);
      const std::int32_t live = m.rows - r0;
      for (std::int32_t l = 0; l < live; ++l) y[r0 + l] = tmp[l];
    }
  }
}

template <class V>
KernelTable make_table() {
  KernelTable t;
  t.norm_inf = &norm_inf_t<V>;
  t.inf_norm_scaled = &inf_norm_scaled_t<V>;
  t.inf_norm_scaled_diff = &inf_norm_scaled_diff_t<V>;
  t.inf_norm_scaled_sum3 = &inf_norm_scaled_sum3_t<V>;
  t.diff_norm_inf = &diff_norm_inf_t<V>;
  t.inf_norm_scaled_residual = &inf_norm_scaled_residual_t<V>;
  t.inf_norm_scaled_residual3 = &inf_norm_scaled_residual3_t<V>;
  t.axpby = &axpby_t<V>;
  t.axpby_delta = &axpby_delta_t<V>;
  t.project_box_into = &project_box_into_t<V>;
  t.admm_z_tilde = &admm_z_tilde_t<V>;
  t.admm_z_candidate_cached = &admm_z_candidate_cached_t<V>;
  t.admm_dual_update = &admm_dual_update_t<V>;
  t.admm_dual_update_delta = &admm_dual_update_delta_t<V>;
  t.dot_reassoc = &dot_reassoc_t<V>;
  t.sell_multiply_into = &sell_multiply_into_t<V>;
  return t;
}

}  // namespace gp::linalg::simd
