#include "linalg/sparse_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/dense_matrix.hpp"

namespace gp::linalg {

SparseMatrix SparseMatrix::from_triplets(std::int32_t rows, std::int32_t cols,
                                         std::span<const Triplet> triplets) {
  require(rows >= 0 && cols >= 0, "from_triplets: negative dimension");
  SparseMatrix a;
  a.rows_ = rows;
  a.cols_ = cols;
  a.col_ptr_.assign(static_cast<std::size_t>(cols) + 1, 0);

  std::vector<Triplet> sorted(triplets.begin(), triplets.end());
  for (const auto& t : sorted) {
    require(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols,
            "from_triplets: index out of range");
  }
  std::sort(sorted.begin(), sorted.end(), [](const Triplet& x, const Triplet& y) {
    return x.col != y.col ? x.col < y.col : x.row < y.row;
  });

  a.row_idx_.reserve(sorted.size());
  a.values_.reserve(sorted.size());
  std::int32_t last_col = -1;
  std::int32_t last_row = -1;
  for (const auto& t : sorted) {
    if (t.col == last_col && t.row == last_row) {
      a.values_.back() += t.value;  // sum duplicates
      continue;
    }
    a.row_idx_.push_back(t.row);
    a.values_.push_back(t.value);
    a.col_ptr_[static_cast<std::size_t>(t.col) + 1] =
        static_cast<std::int32_t>(a.row_idx_.size());
    last_col = t.col;
    last_row = t.row;
  }
  // Fill column pointers for empty columns (carry forward).
  for (std::size_t c = 1; c <= static_cast<std::size_t>(cols); ++c) {
    a.col_ptr_[c] = std::max(a.col_ptr_[c], a.col_ptr_[c - 1]);
  }
  return a;
}

SparseMatrix SparseMatrix::identity(std::int32_t n, double value) {
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) triplets.push_back({i, i, value});
  return from_triplets(n, n, triplets);
}

SparseMatrix SparseMatrix::diagonal(std::span<const double> diag) {
  std::vector<Triplet> triplets;
  triplets.reserve(diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) {
    triplets.push_back({static_cast<std::int32_t>(i), static_cast<std::int32_t>(i), diag[i]});
  }
  const auto n = static_cast<std::int32_t>(diag.size());
  return from_triplets(n, n, triplets);
}

Vector SparseMatrix::multiply(std::span<const double> x) const {
  Vector y(static_cast<std::size_t>(rows_), 0.0);
  multiply_accumulate(1.0, x, y);
  return y;
}

Vector SparseMatrix::multiply_transposed(std::span<const double> x) const {
  Vector y(static_cast<std::size_t>(cols_), 0.0);
  multiply_transposed_accumulate(1.0, x, y);
  return y;
}

void SparseMatrix::multiply_accumulate(double alpha, std::span<const double> x,
                                       std::span<double> y) const {
  require(x.size() == static_cast<std::size_t>(cols_), "multiply: x size mismatch");
  require(y.size() == static_cast<std::size_t>(rows_), "multiply: y size mismatch");
  for (std::int32_t c = 0; c < cols_; ++c) {
    const double xc = alpha * x[static_cast<std::size_t>(c)];
    if (xc == 0.0) continue;
    for (std::int32_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
      y[static_cast<std::size_t>(row_idx_[p])] += values_[p] * xc;
    }
  }
}

void SparseMatrix::multiply_transposed_accumulate(double alpha, std::span<const double> x,
                                                  std::span<double> y) const {
  require(x.size() == static_cast<std::size_t>(rows_), "multiply_transposed: x size mismatch");
  require(y.size() == static_cast<std::size_t>(cols_), "multiply_transposed: y size mismatch");
  for (std::int32_t c = 0; c < cols_; ++c) {
    double total = 0.0;
    for (std::int32_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
      total += values_[p] * x[static_cast<std::size_t>(row_idx_[p])];
    }
    y[static_cast<std::size_t>(c)] += alpha * total;
  }
}

SparseMatrix SparseMatrix::transposed() const {
  SparseMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.col_ptr_.assign(static_cast<std::size_t>(rows_) + 1, 0);
  t.row_idx_.resize(values_.size());
  t.values_.resize(values_.size());
  // Count entries per row of this = per column of t.
  for (std::int32_t idx : row_idx_) ++t.col_ptr_[static_cast<std::size_t>(idx) + 1];
  for (std::size_t c = 1; c <= static_cast<std::size_t>(rows_); ++c) {
    t.col_ptr_[c] += t.col_ptr_[c - 1];
  }
  std::vector<std::int32_t> next(t.col_ptr_.begin(), t.col_ptr_.end() - 1);
  for (std::int32_t c = 0; c < cols_; ++c) {
    for (std::int32_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
      const std::int32_t dst = next[static_cast<std::size_t>(row_idx_[p])]++;
      t.row_idx_[dst] = c;
      t.values_[dst] = values_[p];
    }
  }
  return t;
}

SparseMatrix SparseMatrix::multiply(const SparseMatrix& other) const {
  require(cols_ == other.rows_, "multiply: inner dimension mismatch");
  std::vector<Triplet> triplets;
  Vector accum(static_cast<std::size_t>(rows_), 0.0);
  std::vector<std::int32_t> touched;
  for (std::int32_t c = 0; c < other.cols_; ++c) {
    touched.clear();
    for (std::int32_t p = other.col_ptr_[c]; p < other.col_ptr_[c + 1]; ++p) {
      const std::int32_t k = other.row_idx_[p];
      const double bkc = other.values_[p];
      for (std::int32_t q = col_ptr_[k]; q < col_ptr_[k + 1]; ++q) {
        const auto r = static_cast<std::size_t>(row_idx_[q]);
        if (accum[r] == 0.0) touched.push_back(row_idx_[q]);
        accum[r] += values_[q] * bkc;
      }
    }
    for (std::int32_t r : touched) {
      triplets.push_back({r, c, accum[static_cast<std::size_t>(r)]});
      accum[static_cast<std::size_t>(r)] = 0.0;
    }
  }
  return from_triplets(rows_, other.cols_, triplets);
}

SparseMatrix SparseMatrix::upper_triangle() const {
  require(rows_ == cols_, "upper_triangle: matrix must be square");
  std::vector<Triplet> triplets;
  for (std::int32_t c = 0; c < cols_; ++c) {
    for (std::int32_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
      if (row_idx_[p] <= c) triplets.push_back({row_idx_[p], c, values_[p]});
    }
  }
  return from_triplets(rows_, cols_, triplets);
}

double SparseMatrix::coefficient(std::int32_t row, std::int32_t col) const {
  require(row >= 0 && row < rows_ && col >= 0 && col < cols_, "coefficient: out of range");
  const auto begin = row_idx_.begin() + col_ptr_[col];
  const auto end = row_idx_.begin() + col_ptr_[col + 1];
  const auto it = std::lower_bound(begin, end, row);
  if (it == end || *it != row) return 0.0;
  return values_[static_cast<std::size_t>(it - row_idx_.begin())];
}

DenseMatrix SparseMatrix::to_dense() const {
  DenseMatrix d(static_cast<std::size_t>(rows_), static_cast<std::size_t>(cols_));
  for (std::int32_t c = 0; c < cols_; ++c) {
    for (std::int32_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
      d(static_cast<std::size_t>(row_idx_[p]), static_cast<std::size_t>(c)) = values_[p];
    }
  }
  return d;
}

void SparseMatrix::scale_rows_cols(std::span<const double> row_scale,
                                   std::span<const double> col_scale) {
  require(row_scale.size() == static_cast<std::size_t>(rows_), "scale: row size mismatch");
  require(col_scale.size() == static_cast<std::size_t>(cols_), "scale: col size mismatch");
  for (std::int32_t c = 0; c < cols_; ++c) {
    for (std::int32_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
      values_[p] *= row_scale[static_cast<std::size_t>(row_idx_[p])] *
                    col_scale[static_cast<std::size_t>(c)];
    }
  }
}

Vector SparseMatrix::column_inf_norms() const {
  Vector norms(static_cast<std::size_t>(cols_), 0.0);
  for (std::int32_t c = 0; c < cols_; ++c) {
    for (std::int32_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
      norms[static_cast<std::size_t>(c)] =
          std::max(norms[static_cast<std::size_t>(c)], std::abs(values_[p]));
    }
  }
  return norms;
}

Vector SparseMatrix::row_inf_norms() const {
  Vector norms(static_cast<std::size_t>(rows_), 0.0);
  for (std::int32_t c = 0; c < cols_; ++c) {
    for (std::int32_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
      auto& entry = norms[static_cast<std::size_t>(row_idx_[p])];
      entry = std::max(entry, std::abs(values_[p]));
    }
  }
  return norms;
}

}  // namespace gp::linalg
