#include "linalg/sparse_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/dense_matrix.hpp"

namespace gp::linalg {

SparseMatrix SparseMatrix::from_triplets(std::int32_t rows, std::int32_t cols,
                                         std::span<const Triplet> triplets) {
  require(rows >= 0 && cols >= 0, "from_triplets: negative dimension");
  SparseMatrix a;
  a.rows_ = rows;
  a.cols_ = cols;
  a.col_ptr_.assign(static_cast<std::size_t>(cols) + 1, 0);

  std::vector<Triplet> sorted(triplets.begin(), triplets.end());
  for (const auto& t : sorted) {
    require(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols,
            "from_triplets: index out of range");
  }
  std::sort(sorted.begin(), sorted.end(), [](const Triplet& x, const Triplet& y) {
    return x.col != y.col ? x.col < y.col : x.row < y.row;
  });

  a.row_idx_.reserve(sorted.size());
  a.values_.reserve(sorted.size());
  std::int32_t last_col = -1;
  std::int32_t last_row = -1;
  for (const auto& t : sorted) {
    if (t.col == last_col && t.row == last_row) {
      a.values_.back() += t.value;  // sum duplicates
      continue;
    }
    a.row_idx_.push_back(t.row);
    a.values_.push_back(t.value);
    a.col_ptr_[static_cast<std::size_t>(t.col) + 1] =
        static_cast<std::int32_t>(a.row_idx_.size());
    last_col = t.col;
    last_row = t.row;
  }
  // Fill column pointers for empty columns (carry forward).
  for (std::size_t c = 1; c <= static_cast<std::size_t>(cols); ++c) {
    a.col_ptr_[c] = std::max(a.col_ptr_[c], a.col_ptr_[c - 1]);
  }
  return a;
}

SparseMatrix SparseMatrix::identity(std::int32_t n, double value) {
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) triplets.push_back({i, i, value});
  return from_triplets(n, n, triplets);
}

SparseMatrix SparseMatrix::diagonal(std::span<const double> diag) {
  std::vector<Triplet> triplets;
  triplets.reserve(diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) {
    triplets.push_back({static_cast<std::int32_t>(i), static_cast<std::int32_t>(i), diag[i]});
  }
  const auto n = static_cast<std::int32_t>(diag.size());
  return from_triplets(n, n, triplets);
}

Vector SparseMatrix::multiply(std::span<const double> x) const {
  Vector y(static_cast<std::size_t>(rows_), 0.0);
  multiply_accumulate(1.0, x, y);
  return y;
}

Vector SparseMatrix::multiply_transposed(std::span<const double> x) const {
  Vector y(static_cast<std::size_t>(cols_), 0.0);
  multiply_transposed_accumulate(1.0, x, y);
  return y;
}

void SparseMatrix::multiply_accumulate(double alpha, std::span<const double> x,
                                       std::span<double> y) const {
  require(x.size() == static_cast<std::size_t>(cols_), "multiply: x size mismatch");
  require(y.size() == static_cast<std::size_t>(rows_), "multiply: y size mismatch");
  for (std::int32_t c = 0; c < cols_; ++c) {
    const double xc = alpha * x[static_cast<std::size_t>(c)];
    if (xc == 0.0) continue;
    for (std::int32_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
      y[static_cast<std::size_t>(row_idx_[p])] += values_[p] * xc;
    }
  }
}

void SparseMatrix::multiply_transposed_accumulate(double alpha, std::span<const double> x,
                                                  std::span<double> y) const {
  require(x.size() == static_cast<std::size_t>(rows_), "multiply_transposed: x size mismatch");
  require(y.size() == static_cast<std::size_t>(cols_), "multiply_transposed: y size mismatch");
  // Per-term accumulation (acc += v * (alpha * x_r), rows ascending) so the
  // result is bit-identical to RowMajorMirror::multiply_transposed_accumulate,
  // which consumes the same terms in the same per-column order. Terms with
  // alpha * x_r == 0.0 are skipped on BOTH paths (the mirror skips the whole
  // row): ADMM dual vectors are zero on every inactive row, so this saves
  // most of the A^T y and A^T delta_y work mid-solve.
  for (std::int32_t c = 0; c < cols_; ++c) {
    double acc = y[static_cast<std::size_t>(c)];
    for (std::int32_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
      const double xr = alpha * x[static_cast<std::size_t>(row_idx_[p])];
      if (xr == 0.0) continue;
      acc += values_[p] * xr;
    }
    y[static_cast<std::size_t>(c)] = acc;
  }
}

SparseMatrix SparseMatrix::transposed() const {
  SparseMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.col_ptr_.assign(static_cast<std::size_t>(rows_) + 1, 0);
  t.row_idx_.resize(values_.size());
  t.values_.resize(values_.size());
  // Count entries per row of this = per column of t.
  for (std::int32_t idx : row_idx_) ++t.col_ptr_[static_cast<std::size_t>(idx) + 1];
  for (std::size_t c = 1; c <= static_cast<std::size_t>(rows_); ++c) {
    t.col_ptr_[c] += t.col_ptr_[c - 1];
  }
  std::vector<std::int32_t> next(t.col_ptr_.begin(), t.col_ptr_.end() - 1);
  for (std::int32_t c = 0; c < cols_; ++c) {
    for (std::int32_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
      const std::int32_t dst = next[static_cast<std::size_t>(row_idx_[p])]++;
      t.row_idx_[dst] = c;
      t.values_[dst] = values_[p];
    }
  }
  return t;
}

SparseMatrix SparseMatrix::multiply(const SparseMatrix& other) const {
  require(cols_ == other.rows_, "multiply: inner dimension mismatch");
  std::vector<Triplet> triplets;
  Vector accum(static_cast<std::size_t>(rows_), 0.0);
  std::vector<std::int32_t> touched;
  for (std::int32_t c = 0; c < other.cols_; ++c) {
    touched.clear();
    for (std::int32_t p = other.col_ptr_[c]; p < other.col_ptr_[c + 1]; ++p) {
      const std::int32_t k = other.row_idx_[p];
      const double bkc = other.values_[p];
      for (std::int32_t q = col_ptr_[k]; q < col_ptr_[k + 1]; ++q) {
        const auto r = static_cast<std::size_t>(row_idx_[q]);
        if (accum[r] == 0.0) touched.push_back(row_idx_[q]);
        accum[r] += values_[q] * bkc;
      }
    }
    for (std::int32_t r : touched) {
      triplets.push_back({r, c, accum[static_cast<std::size_t>(r)]});
      accum[static_cast<std::size_t>(r)] = 0.0;
    }
  }
  return from_triplets(rows_, other.cols_, triplets);
}

SparseMatrix SparseMatrix::upper_triangle() const {
  require(rows_ == cols_, "upper_triangle: matrix must be square");
  std::vector<Triplet> triplets;
  for (std::int32_t c = 0; c < cols_; ++c) {
    for (std::int32_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
      if (row_idx_[p] <= c) triplets.push_back({row_idx_[p], c, values_[p]});
    }
  }
  return from_triplets(rows_, cols_, triplets);
}

double SparseMatrix::coefficient(std::int32_t row, std::int32_t col) const {
  require(row >= 0 && row < rows_ && col >= 0 && col < cols_, "coefficient: out of range");
  const auto begin = row_idx_.begin() + col_ptr_[col];
  const auto end = row_idx_.begin() + col_ptr_[col + 1];
  const auto it = std::lower_bound(begin, end, row);
  if (it == end || *it != row) return 0.0;
  return values_[static_cast<std::size_t>(it - row_idx_.begin())];
}

DenseMatrix SparseMatrix::to_dense() const {
  DenseMatrix d(static_cast<std::size_t>(rows_), static_cast<std::size_t>(cols_));
  for (std::int32_t c = 0; c < cols_; ++c) {
    for (std::int32_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
      d(static_cast<std::size_t>(row_idx_[p]), static_cast<std::size_t>(c)) = values_[p];
    }
  }
  return d;
}

void SparseMatrix::scale_rows_cols(std::span<const double> row_scale,
                                   std::span<const double> col_scale) {
  require(row_scale.size() == static_cast<std::size_t>(rows_), "scale: row size mismatch");
  require(col_scale.size() == static_cast<std::size_t>(cols_), "scale: col size mismatch");
  for (std::int32_t c = 0; c < cols_; ++c) {
    for (std::int32_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
      values_[p] *= row_scale[static_cast<std::size_t>(row_idx_[p])] *
                    col_scale[static_cast<std::size_t>(c)];
    }
  }
}

Vector SparseMatrix::column_inf_norms() const {
  Vector norms(static_cast<std::size_t>(cols_), 0.0);
  for (std::int32_t c = 0; c < cols_; ++c) {
    for (std::int32_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
      norms[static_cast<std::size_t>(c)] =
          std::max(norms[static_cast<std::size_t>(c)], std::abs(values_[p]));
    }
  }
  return norms;
}

Vector SparseMatrix::row_inf_norms() const {
  Vector norms(static_cast<std::size_t>(rows_), 0.0);
  for (std::int32_t c = 0; c < cols_; ++c) {
    for (std::int32_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
      auto& entry = norms[static_cast<std::size_t>(row_idx_[p])];
      entry = std::max(entry, std::abs(values_[p]));
    }
  }
  return norms;
}

// ------------------------------------------------------------ RowMajorMirror

void RowMajorMirror::build(const SparseMatrix& a) {
  rows_ = a.rows();
  cols_ = a.cols();
  const auto col_ptr = a.col_ptr();
  const auto row_idx = a.row_idx();
  const auto values = a.values();
  const auto nnz = static_cast<std::size_t>(a.nnz());

  src_col_ptr_.assign(col_ptr.begin(), col_ptr.end());
  src_row_idx_.assign(row_idx.begin(), row_idx.end());

  row_ptr_.assign(static_cast<std::size_t>(rows_) + 1, 0);
  col_idx_.resize(nnz);
  values_.resize(nnz);
  csc_pos_.resize(nnz);

  // Count entries per row, prefix-sum, then place column-by-column — the
  // standard CSC -> CSR transposition. Within a row, columns come out
  // ascending because the CSC columns are visited in order.
  for (std::size_t p = 0; p < nnz; ++p) {
    ++row_ptr_[static_cast<std::size_t>(row_idx[p]) + 1];
  }
  for (std::size_t r = 1; r <= static_cast<std::size_t>(rows_); ++r) {
    row_ptr_[r] += row_ptr_[r - 1];
  }
  std::vector<std::int32_t> next(row_ptr_.begin(), row_ptr_.end() - 1);
  for (std::int32_t c = 0; c < cols_; ++c) {
    for (std::int32_t p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
      const auto dst = static_cast<std::size_t>(next[static_cast<std::size_t>(row_idx[p])]++);
      col_idx_[dst] = c;
      values_[dst] = values[p];
      csc_pos_[dst] = p;
    }
  }
}

bool RowMajorMirror::pattern_matches(const SparseMatrix& a) const {
  if (!built() || a.rows() != rows_ || a.cols() != cols_) return false;
  const auto col_ptr = a.col_ptr();
  const auto row_idx = a.row_idx();
  return std::equal(col_ptr.begin(), col_ptr.end(), src_col_ptr_.begin(),
                    src_col_ptr_.end()) &&
         std::equal(row_idx.begin(), row_idx.end(), src_row_idx_.begin(), src_row_idx_.end());
}

void RowMajorMirror::update_values(const SparseMatrix& a) {
  require(a.nnz() == nnz() && a.rows() == rows_ && a.cols() == cols_,
          "RowMajorMirror::update_values: shape mismatch");
  const auto values = a.values();
  for (std::size_t k = 0; k < values_.size(); ++k) {
    values_[k] = values[static_cast<std::size_t>(csc_pos_[k])];
  }
}

void RowMajorMirror::multiply_accumulate(double alpha, std::span<const double> x,
                                         std::span<double> y) const {
  require(x.size() == static_cast<std::size_t>(cols_), "mirror multiply: x size mismatch");
  require(y.size() == static_cast<std::size_t>(rows_), "mirror multiply: y size mismatch");
  // Row gather. Per output element, terms arrive in ascending column order
  // with the same zero-skip and the same v * (alpha * x_c) association as
  // the CSC scatter path — hence bit-identical results.
  for (std::int32_t r = 0; r < rows_; ++r) {
    double acc = y[static_cast<std::size_t>(r)];
    for (std::int32_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      const double xc = alpha * x[static_cast<std::size_t>(col_idx_[p])];
      if (xc == 0.0) continue;
      acc += values_[p] * xc;
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
}

void RowMajorMirror::multiply_into(double alpha, std::span<const double> x,
                                   std::span<double> y) const {
  require(x.size() == static_cast<std::size_t>(cols_), "mirror multiply: x size mismatch");
  require(y.size() == static_cast<std::size_t>(rows_), "mirror multiply: y size mismatch");
  // Identical arithmetic to multiply_accumulate on a zeroed output (each
  // row's accumulator starts at 0.0 either way); only the fill is saved.
  for (std::int32_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::int32_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      const double xc = alpha * x[static_cast<std::size_t>(col_idx_[p])];
      if (xc == 0.0) continue;
      acc += values_[p] * xc;
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
}

void RowMajorMirror::multiply_transposed_accumulate(double alpha, std::span<const double> x,
                                                    std::span<double> y) const {
  require(x.size() == static_cast<std::size_t>(rows_), "mirror transposed: x size mismatch");
  require(y.size() == static_cast<std::size_t>(cols_), "mirror transposed: y size mismatch");
  // Stream the rows of A: one sequential read of x, accumulation into the
  // column-indexed output (hot in cache when cols << rows, the constraint-
  // matrix case). Per output column, terms arrive in ascending row order
  // with the same v * (alpha * x_r) association and the same xr == 0.0
  // term skip as the CSC path — here the skip drops whole rows, which is
  // where the mirror earns its keep on ADMM duals (zero on inactive rows).
  for (std::int32_t r = 0; r < rows_; ++r) {
    const double xr = alpha * x[static_cast<std::size_t>(r)];
    if (xr == 0.0) continue;
    for (std::int32_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      y[static_cast<std::size_t>(col_idx_[p])] += values_[p] * xr;
    }
  }
}

}  // namespace gp::linalg
