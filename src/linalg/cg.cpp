#include "linalg/cg.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gp::linalg {

CgResult conjugate_gradient(const SparseMatrix& a, std::span<const double> b, Vector& x,
                            const CgSettings& settings) {
  require(a.rows() == a.cols(), "conjugate_gradient: matrix must be square");
  const auto n = static_cast<std::size_t>(a.rows());
  require(b.size() == n, "conjugate_gradient: rhs size mismatch");
  require(x.size() == n, "conjugate_gradient: x size mismatch");
  require(settings.max_iterations >= 1, "conjugate_gradient: max_iterations must be >= 1");
  require(settings.tolerance > 0.0, "conjugate_gradient: tolerance must be > 0");

  // Jacobi preconditioner: M^{-1} = 1 / diag(A) (identity where the
  // diagonal vanishes).
  Vector inv_diag(n, 1.0);
  if (settings.jacobi_preconditioner) {
    for (std::size_t i = 0; i < n; ++i) {
      const double d = a.coefficient(static_cast<std::int32_t>(i),
                                     static_cast<std::int32_t>(i));
      inv_diag[i] = std::abs(d) > 1e-300 ? 1.0 / d : 1.0;
    }
  }
  auto apply_preconditioner = [&](const Vector& r) {
    Vector z(n);
    for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    return z;
  };

  const double b_norm = norm2(b);
  CgResult result;
  if (b_norm == 0.0) {
    x.assign(n, 0.0);
    result.converged = true;
    return result;
  }

  Vector r = sub(b, a.multiply(x));
  Vector z = apply_preconditioner(r);
  Vector direction = z;
  double rho = dot(r, z);

  for (int iteration = 0; iteration < settings.max_iterations; ++iteration) {
    result.iterations = iteration + 1;
    const Vector a_direction = a.multiply(direction);
    const double curvature = dot(direction, a_direction);
    if (curvature <= 0.0) {
      // Not positive definite along this direction: report non-convergence.
      result.relative_residual = norm2(r) / b_norm;
      return result;
    }
    const double alpha = rho / curvature;
    axpy(alpha, direction, x);
    axpy(-alpha, a_direction, r);
    const double residual = norm2(r) / b_norm;
    if (residual <= settings.tolerance) {
      result.converged = true;
      result.relative_residual = residual;
      return result;
    }
    z = apply_preconditioner(r);
    const double rho_next = dot(r, z);
    const double beta = rho_next / rho;
    rho = rho_next;
    for (std::size_t i = 0; i < n; ++i) direction[i] = z[i] + beta * direction[i];
  }
  result.relative_residual = norm2(r) / b_norm;
  return result;
}

}  // namespace gp::linalg
