// SELL-C row-tiled mirror of a CSC SparseMatrix for vectorized SpMV.
//
// Rows are grouped into chunks of kSellChunk (= 8); within a chunk, entries
// are stored j-major (entry j of every row, then entry j+1, ...), so one
// vector load picks up entry j of W adjacent rows and one gather fetches
// their x operands. Rows shorter than their chunk's widest row are padded
// with value 0.0 and an in-range column index.
//
// Bit-identity with the scalar CSR mirror (RowMajorMirror::multiply_into on
// the same matrix): per row, terms are consumed in the same ascending-column
// order with the same acc += v * (alpha * x_c) association, and the two
// paths differ only in terms that are exactly ±0 — the pads (v = 0.0) here,
// and the skipped alpha * x_c == 0.0 terms there. Adding ±0 never changes an
// accumulator that starts at +0 (it can never become -0: a sum rounds to -0
// only when both operands are -0), so for finite inputs the stored bits are
// identical. The same argument covers the transposed orientation against
// zero-fill + multiply_transposed_accumulate.
//
// The multiply kernels dispatch on the active SIMD tier (simd_dispatch.hpp)
// and are bit-identical across tiers: each lane runs the same IEEE sequence,
// and the per-ISA TUs compile with -ffp-contract=off.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/simd_kernels.hpp"
#include "linalg/sparse_matrix.hpp"

namespace gp::linalg {

class SellMirror {
 public:
  SellMirror() = default;

  /// Builds the SELL layout of `a` (y = alpha * A x products). Allocates;
  /// once per structure.
  void build(const SparseMatrix& a);

  /// Builds the SELL layout of A^T from `a` without materializing the
  /// transpose (y = alpha * A^T x products). The CSC columns of A are the
  /// rows of A^T, already in ascending-column order.
  void build_transposed(const SparseMatrix& a);

  /// True when `a` has exactly the pattern this mirror was built from (same
  /// source-matrix pattern; orientation is fixed by which build ran).
  bool pattern_matches(const SparseMatrix& a) const;

  /// Refreshes values from `a`, which must satisfy pattern_matches(a).
  /// Allocation-free; pad slots stay 0.0.
  void update_values(const SparseMatrix& a);

  bool built() const { return rows_ >= 0; }
  /// Output dimension (rows of A, or cols of A when built transposed).
  std::int32_t rows() const { return rows_; }
  /// Input dimension.
  std::int32_t cols() const { return cols_; }
  /// Stored entries INCLUDING padding (the bytes SpMV actually streams).
  std::int64_t stored_entries() const { return static_cast<std::int64_t>(values_.size()); }

  /// y = alpha * M x on the active SIMD tier (M = A or A^T per the build).
  /// Inputs must be finite: pads multiply 0.0 by a gathered x element, and
  /// 0 * inf / 0 * NaN would poison the row. Allocation-free.
  void multiply_into(double alpha, std::span<const double> x, std::span<double> y) const;

  /// Borrowed layout view for the dispatch kernels and the tests.
  simd::SellView view() const;

 private:
  void build_from_rows(std::int32_t rows, std::int32_t cols,
                       std::span<const std::int32_t> row_start,
                       std::span<const std::int32_t> entry_col,
                       std::span<const std::int32_t> entry_pos);

  std::int32_t rows_ = -1;  // -1 until build(); distinguishes a 0 x 0 build
  bool transposed_ = false;
  std::int32_t cols_ = 0;
  std::int32_t num_chunks_ = 0;
  std::vector<std::int64_t> chunk_ptr_;  // size num_chunks+1, entry offsets
  std::vector<std::int32_t> col_idx_;    // per entry; pads point in range
  std::vector<double> values_;           // per entry; pads are 0.0
  std::vector<std::int32_t> csc_pos_;    // entry -> index into a.values(); -1 = pad
  // Source CSC pattern for pattern_matches().
  std::vector<std::int32_t> src_col_ptr_;
  std::vector<std::int32_t> src_row_idx_;
};

}  // namespace gp::linalg
