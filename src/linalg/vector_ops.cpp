#include "linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gp::linalg {

double dot(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "dot: size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) total += a[i] * b[i];
  return total;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

double norm_inf(std::span<const double> a) {
  double best = 0.0;
  for (double v : a) best = std::max(best, std::abs(v));
  return best;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  require(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

Vector add(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "add: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector sub(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "sub: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector hadamard(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "hadamard: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

Vector constant(std::size_t size, double value) { return Vector(size, value); }

Vector project_box(std::span<const double> x, std::span<const double> lo,
                   std::span<const double> hi) {
  require(x.size() == lo.size() && x.size() == hi.size(), "project_box: size mismatch");
  Vector out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = std::min(std::max(x[i], lo[i]), hi[i]);
  return out;
}

}  // namespace gp::linalg
