#include "linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/simd_kernels.hpp"

// Every kernel with a vectorized variant routes through the active tier's
// table (simd_dispatch.hpp): one relaxed atomic load plus an indirect call,
// amortized over the O(n) loop. The scalar tier lives in
// simd_kernels_scalar.cpp; the AVX2/AVX-512 tiers are bit-identical to it
// for every kernel except dot_reassoc (documented tolerance).

namespace gp::linalg {

double dot(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "dot: size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) total += a[i] * b[i];
  return total;
}

double dot_reassoc(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "dot_reassoc: size mismatch");
  return simd::kernels().dot_reassoc(a.data(), b.data(), a.size());
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

double norm_inf(std::span<const double> a) {
  return simd::kernels().norm_inf(a.data(), a.size());
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  require(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

Vector add(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "add: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector sub(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "sub: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector hadamard(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "hadamard: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

Vector constant(std::size_t size, double value) { return Vector(size, value); }

Vector project_box(std::span<const double> x, std::span<const double> lo,
                   std::span<const double> hi) {
  require(x.size() == lo.size() && x.size() == hi.size(), "project_box: size mismatch");
  Vector out(x.size());
  project_box_into(x, lo, hi, out);
  return out;
}

void axpby(double a, std::span<const double> x, double b, std::span<double> y) {
  require(x.size() == y.size(), "axpby: size mismatch");
  simd::kernels().axpby(a, x.data(), b, y.data(), x.size());
}

double diff_norm_inf(std::span<const double> a, std::span<const double> b,
                     std::span<double> out) {
  require(a.size() == b.size() && a.size() == out.size(), "diff_norm_inf: size mismatch");
  return simd::kernels().diff_norm_inf(a.data(), b.data(), out.data(), a.size());
}

void project_box_into(std::span<const double> x, std::span<const double> lo,
                      std::span<const double> hi, std::span<double> out) {
  require(x.size() == lo.size() && x.size() == hi.size() && x.size() == out.size(),
          "project_box_into: size mismatch");
  simd::kernels().project_box_into(x.data(), lo.data(), hi.data(), out.data(), x.size());
}

double inf_norm_scaled(std::span<const double> a, std::span<const double> scale) {
  require(a.size() == scale.size(), "inf_norm_scaled: size mismatch");
  return simd::kernels().inf_norm_scaled(a.data(), scale.data(), a.size());
}

double inf_norm_scaled_diff(std::span<const double> a, std::span<const double> b,
                            std::span<const double> scale) {
  require(a.size() == b.size() && a.size() == scale.size(),
          "inf_norm_scaled_diff: size mismatch");
  return simd::kernels().inf_norm_scaled_diff(a.data(), b.data(), scale.data(), a.size());
}

double inf_norm_scaled_sum3(std::span<const double> a, std::span<const double> b,
                            std::span<const double> c, std::span<const double> scale,
                            double post) {
  require(a.size() == b.size() && a.size() == c.size() && a.size() == scale.size(),
          "inf_norm_scaled_sum3: size mismatch");
  return simd::kernels().inf_norm_scaled_sum3(a.data(), b.data(), c.data(), scale.data(), post,
                                              a.size());
}

void inf_norm_scaled_residual(std::span<const double> a, std::span<const double> b,
                              std::span<const double> scale, double& res, double& norm) {
  require(a.size() == b.size() && a.size() == scale.size(),
          "inf_norm_scaled_residual: size mismatch");
  simd::kernels().inf_norm_scaled_residual(a.data(), b.data(), scale.data(), a.size(), &res,
                                           &norm);
}

void inf_norm_scaled_residual3(std::span<const double> a, std::span<const double> b,
                               std::span<const double> c, std::span<const double> scale,
                               double post, double& res, double& norm) {
  require(a.size() == b.size() && a.size() == c.size() && a.size() == scale.size(),
          "inf_norm_scaled_residual3: size mismatch");
  simd::kernels().inf_norm_scaled_residual3(a.data(), b.data(), c.data(), scale.data(), post,
                                            a.size(), &res, &norm);
}

void admm_z_tilde(std::span<const double> z, std::span<const double> nu,
                  std::span<const double> y, std::span<const double> rho,
                  std::span<double> out) {
  require(z.size() == nu.size() && z.size() == y.size() && z.size() == rho.size() &&
              z.size() == out.size(),
          "admm_z_tilde: size mismatch");
  simd::kernels().admm_z_tilde(z.data(), nu.data(), y.data(), rho.data(), out.data(),
                               z.size());
}

void admm_z_candidate(double alpha, std::span<const double> z_tilde,
                      std::span<const double> z, std::span<const double> y,
                      std::span<const double> rho, std::span<double> out) {
  require(z_tilde.size() == z.size() && z_tilde.size() == y.size() &&
              z_tilde.size() == rho.size() && z_tilde.size() == out.size(),
          "admm_z_candidate: size mismatch");
  for (std::size_t i = 0; i < z.size(); ++i) {
    out[i] = alpha * z_tilde[i] + (1.0 - alpha) * z[i] + y[i] / rho[i];
  }
}

void admm_z_candidate_cached(double alpha, std::span<const double> z_tilde,
                             std::span<const double> z,
                             std::span<const double> y_over_rho, std::span<double> out) {
  require(z_tilde.size() == z.size() && z_tilde.size() == y_over_rho.size() &&
              z_tilde.size() == out.size(),
          "admm_z_candidate_cached: size mismatch");
  simd::kernels().admm_z_candidate_cached(alpha, z_tilde.data(), z.data(), y_over_rho.data(),
                                          out.data(), z.size());
}

void admm_dual_update(std::span<const double> rho, std::span<const double> z_candidate,
                      std::span<const double> z_next, std::span<double> y) {
  require(rho.size() == z_candidate.size() && rho.size() == z_next.size() &&
              rho.size() == y.size(),
          "admm_dual_update: size mismatch");
  simd::kernels().admm_dual_update(rho.data(), z_candidate.data(), z_next.data(), y.data(),
                                   y.size());
}

double axpby_delta(double a, std::span<const double> src, double b, std::span<double> x,
                   std::span<double> delta) {
  require(src.size() == x.size() && src.size() == delta.size(),
          "axpby_delta: size mismatch");
  return simd::kernels().axpby_delta(a, src.data(), b, x.data(), delta.data(), x.size());
}

double admm_dual_update_delta(std::span<const double> rho, std::span<const double> z_candidate,
                              std::span<const double> z_next, std::span<double> y,
                              std::span<double> delta) {
  require(rho.size() == z_candidate.size() && rho.size() == z_next.size() &&
              rho.size() == y.size() && rho.size() == delta.size(),
          "admm_dual_update_delta: size mismatch");
  return simd::kernels().admm_dual_update_delta(rho.data(), z_candidate.data(), z_next.data(),
                                                y.data(), delta.data(), y.size());
}

}  // namespace gp::linalg
