#include "linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gp::linalg {

double dot(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "dot: size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) total += a[i] * b[i];
  return total;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

// The max-norm reductions below run four independent running maxima and
// combine them at the end. A single running maximum is a loop-carried
// dependence of ~4-5 cycles per element (FP max cannot be auto-vectorized
// without -ffast-math because of its NaN ordering); four lanes make the loop
// throughput-bound instead. The reassociation is EXACT: max over
// non-negative values is associative and commutative and introduces no
// rounding, and NaN operands are dropped by std::max(best, x) in every lane
// exactly as in the single-chain loop — so results are bit-identical.

double norm_inf(std::span<const double> a) {
  double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= a.size(); i += 4) {
    m0 = std::max(m0, std::abs(a[i]));
    m1 = std::max(m1, std::abs(a[i + 1]));
    m2 = std::max(m2, std::abs(a[i + 2]));
    m3 = std::max(m3, std::abs(a[i + 3]));
  }
  for (; i < a.size(); ++i) m0 = std::max(m0, std::abs(a[i]));
  return std::max(std::max(m0, m1), std::max(m2, m3));
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  require(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

Vector add(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "add: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector sub(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "sub: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector hadamard(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "hadamard: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

Vector constant(std::size_t size, double value) { return Vector(size, value); }

Vector project_box(std::span<const double> x, std::span<const double> lo,
                   std::span<const double> hi) {
  require(x.size() == lo.size() && x.size() == hi.size(), "project_box: size mismatch");
  Vector out(x.size());
  project_box_into(x, lo, hi, out);
  return out;
}

void axpby(double a, std::span<const double> x, double b, std::span<double> y) {
  require(x.size() == y.size(), "axpby: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = a * x[i] + b * y[i];
}

double diff_norm_inf(std::span<const double> a, std::span<const double> b,
                     std::span<double> out) {
  require(a.size() == b.size() && a.size() == out.size(), "diff_norm_inf: size mismatch");
  double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= a.size(); i += 4) {
    out[i] = a[i] - b[i];
    out[i + 1] = a[i + 1] - b[i + 1];
    out[i + 2] = a[i + 2] - b[i + 2];
    out[i + 3] = a[i + 3] - b[i + 3];
    m0 = std::max(m0, std::abs(out[i]));
    m1 = std::max(m1, std::abs(out[i + 1]));
    m2 = std::max(m2, std::abs(out[i + 2]));
    m3 = std::max(m3, std::abs(out[i + 3]));
  }
  for (; i < a.size(); ++i) {
    out[i] = a[i] - b[i];
    m0 = std::max(m0, std::abs(out[i]));
  }
  return std::max(std::max(m0, m1), std::max(m2, m3));
}

void project_box_into(std::span<const double> x, std::span<const double> lo,
                      std::span<const double> hi, std::span<double> out) {
  require(x.size() == lo.size() && x.size() == hi.size() && x.size() == out.size(),
          "project_box_into: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = std::min(std::max(x[i], lo[i]), hi[i]);
}

double inf_norm_scaled(std::span<const double> a, std::span<const double> scale) {
  require(a.size() == scale.size(), "inf_norm_scaled: size mismatch");
  double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= a.size(); i += 4) {
    m0 = std::max(m0, std::abs(a[i]) * scale[i]);
    m1 = std::max(m1, std::abs(a[i + 1]) * scale[i + 1]);
    m2 = std::max(m2, std::abs(a[i + 2]) * scale[i + 2]);
    m3 = std::max(m3, std::abs(a[i + 3]) * scale[i + 3]);
  }
  for (; i < a.size(); ++i) m0 = std::max(m0, std::abs(a[i]) * scale[i]);
  return std::max(std::max(m0, m1), std::max(m2, m3));
}

double inf_norm_scaled_diff(std::span<const double> a, std::span<const double> b,
                            std::span<const double> scale) {
  require(a.size() == b.size() && a.size() == scale.size(),
          "inf_norm_scaled_diff: size mismatch");
  double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= a.size(); i += 4) {
    m0 = std::max(m0, std::abs(a[i] - b[i]) * scale[i]);
    m1 = std::max(m1, std::abs(a[i + 1] - b[i + 1]) * scale[i + 1]);
    m2 = std::max(m2, std::abs(a[i + 2] - b[i + 2]) * scale[i + 2]);
    m3 = std::max(m3, std::abs(a[i + 3] - b[i + 3]) * scale[i + 3]);
  }
  for (; i < a.size(); ++i) m0 = std::max(m0, std::abs(a[i] - b[i]) * scale[i]);
  return std::max(std::max(m0, m1), std::max(m2, m3));
}

double inf_norm_scaled_sum3(std::span<const double> a, std::span<const double> b,
                            std::span<const double> c, std::span<const double> scale,
                            double post) {
  require(a.size() == b.size() && a.size() == c.size() && a.size() == scale.size(),
          "inf_norm_scaled_sum3: size mismatch");
  double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= a.size(); i += 4) {
    m0 = std::max(m0, std::abs(a[i] + b[i] + c[i]) * scale[i] * post);
    m1 = std::max(m1, std::abs(a[i + 1] + b[i + 1] + c[i + 1]) * scale[i + 1] * post);
    m2 = std::max(m2, std::abs(a[i + 2] + b[i + 2] + c[i + 2]) * scale[i + 2] * post);
    m3 = std::max(m3, std::abs(a[i + 3] + b[i + 3] + c[i + 3]) * scale[i + 3] * post);
  }
  for (; i < a.size(); ++i) m0 = std::max(m0, std::abs(a[i] + b[i] + c[i]) * scale[i] * post);
  return std::max(std::max(m0, m1), std::max(m2, m3));
}

void inf_norm_scaled_residual(std::span<const double> a, std::span<const double> b,
                              std::span<const double> scale, double& res, double& norm) {
  require(a.size() == b.size() && a.size() == scale.size(),
          "inf_norm_scaled_residual: size mismatch");
  double r0 = 0.0, r1 = 0.0, r2 = 0.0, r3 = 0.0;
  double n0 = 0.0, n1 = 0.0, n2 = 0.0, n3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= a.size(); i += 4) {
    r0 = std::max(r0, std::abs(a[i] - b[i]) * scale[i]);
    r1 = std::max(r1, std::abs(a[i + 1] - b[i + 1]) * scale[i + 1]);
    r2 = std::max(r2, std::abs(a[i + 2] - b[i + 2]) * scale[i + 2]);
    r3 = std::max(r3, std::abs(a[i + 3] - b[i + 3]) * scale[i + 3]);
    n0 = std::max(n0, std::max(std::abs(a[i]), std::abs(b[i])) * scale[i]);
    n1 = std::max(n1, std::max(std::abs(a[i + 1]), std::abs(b[i + 1])) * scale[i + 1]);
    n2 = std::max(n2, std::max(std::abs(a[i + 2]), std::abs(b[i + 2])) * scale[i + 2]);
    n3 = std::max(n3, std::max(std::abs(a[i + 3]), std::abs(b[i + 3])) * scale[i + 3]);
  }
  for (; i < a.size(); ++i) {
    r0 = std::max(r0, std::abs(a[i] - b[i]) * scale[i]);
    n0 = std::max(n0, std::max(std::abs(a[i]), std::abs(b[i])) * scale[i]);
  }
  res = std::max(std::max(r0, r1), std::max(r2, r3));
  norm = std::max(std::max(n0, n1), std::max(n2, n3));
}

void inf_norm_scaled_residual3(std::span<const double> a, std::span<const double> b,
                               std::span<const double> c, std::span<const double> scale,
                               double post, double& res, double& norm) {
  require(a.size() == b.size() && a.size() == c.size() && a.size() == scale.size(),
          "inf_norm_scaled_residual3: size mismatch");
  double r0 = 0.0, r1 = 0.0, r2 = 0.0, r3 = 0.0;
  double n0 = 0.0, n1 = 0.0, n2 = 0.0, n3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= a.size(); i += 4) {
    r0 = std::max(r0, std::abs(a[i] + b[i] + c[i]) * scale[i] * post);
    r1 = std::max(r1, std::abs(a[i + 1] + b[i + 1] + c[i + 1]) * scale[i + 1] * post);
    r2 = std::max(r2, std::abs(a[i + 2] + b[i + 2] + c[i + 2]) * scale[i + 2] * post);
    r3 = std::max(r3, std::abs(a[i + 3] + b[i + 3] + c[i + 3]) * scale[i + 3] * post);
    n0 = std::max(n0, std::max(std::max(std::abs(a[i]), std::abs(b[i])), std::abs(c[i])) *
                          scale[i]);
    n1 = std::max(n1,
                  std::max(std::max(std::abs(a[i + 1]), std::abs(b[i + 1])),
                           std::abs(c[i + 1])) *
                      scale[i + 1]);
    n2 = std::max(n2,
                  std::max(std::max(std::abs(a[i + 2]), std::abs(b[i + 2])),
                           std::abs(c[i + 2])) *
                      scale[i + 2]);
    n3 = std::max(n3,
                  std::max(std::max(std::abs(a[i + 3]), std::abs(b[i + 3])),
                           std::abs(c[i + 3])) *
                      scale[i + 3]);
  }
  for (; i < a.size(); ++i) {
    r0 = std::max(r0, std::abs(a[i] + b[i] + c[i]) * scale[i] * post);
    n0 = std::max(n0, std::max(std::max(std::abs(a[i]), std::abs(b[i])), std::abs(c[i])) *
                          scale[i]);
  }
  res = std::max(std::max(r0, r1), std::max(r2, r3));
  // max-then-scale equals scale-then-max bitwise for post > 0 (monotone
  // rounding), matching the unfused per-element |.| * scale * post form.
  norm = std::max(std::max(n0, n1), std::max(n2, n3)) * post;
}

void admm_z_tilde(std::span<const double> z, std::span<const double> nu,
                  std::span<const double> y, std::span<const double> rho,
                  std::span<double> out) {
  require(z.size() == nu.size() && z.size() == y.size() && z.size() == rho.size() &&
              z.size() == out.size(),
          "admm_z_tilde: size mismatch");
  for (std::size_t i = 0; i < z.size(); ++i) out[i] = z[i] + (nu[i] - y[i]) / rho[i];
}

void admm_z_candidate(double alpha, std::span<const double> z_tilde,
                      std::span<const double> z, std::span<const double> y,
                      std::span<const double> rho, std::span<double> out) {
  require(z_tilde.size() == z.size() && z_tilde.size() == y.size() &&
              z_tilde.size() == rho.size() && z_tilde.size() == out.size(),
          "admm_z_candidate: size mismatch");
  for (std::size_t i = 0; i < z.size(); ++i) {
    out[i] = alpha * z_tilde[i] + (1.0 - alpha) * z[i] + y[i] / rho[i];
  }
}

void admm_z_candidate_cached(double alpha, std::span<const double> z_tilde,
                             std::span<const double> z,
                             std::span<const double> y_over_rho, std::span<double> out) {
  require(z_tilde.size() == z.size() && z_tilde.size() == y_over_rho.size() &&
              z_tilde.size() == out.size(),
          "admm_z_candidate_cached: size mismatch");
  for (std::size_t i = 0; i < z.size(); ++i) {
    out[i] = alpha * z_tilde[i] + (1.0 - alpha) * z[i] + y_over_rho[i];
  }
}

void admm_dual_update(std::span<const double> rho, std::span<const double> z_candidate,
                      std::span<const double> z_next, std::span<double> y) {
  require(rho.size() == z_candidate.size() && rho.size() == z_next.size() &&
              rho.size() == y.size(),
          "admm_dual_update: size mismatch");
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = rho[i] * (z_candidate[i] - z_next[i]);
}

double axpby_delta(double a, std::span<const double> src, double b, std::span<double> x,
                   std::span<double> delta) {
  require(src.size() == x.size() && src.size() == delta.size(),
          "axpby_delta: size mismatch");
  double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= x.size(); i += 4) {
    const double n0 = a * src[i] + b * x[i];
    const double n1 = a * src[i + 1] + b * x[i + 1];
    const double n2 = a * src[i + 2] + b * x[i + 2];
    const double n3 = a * src[i + 3] + b * x[i + 3];
    delta[i] = n0 - x[i];
    delta[i + 1] = n1 - x[i + 1];
    delta[i + 2] = n2 - x[i + 2];
    delta[i + 3] = n3 - x[i + 3];
    x[i] = n0;
    x[i + 1] = n1;
    x[i + 2] = n2;
    x[i + 3] = n3;
    m0 = std::max(m0, std::abs(delta[i]));
    m1 = std::max(m1, std::abs(delta[i + 1]));
    m2 = std::max(m2, std::abs(delta[i + 2]));
    m3 = std::max(m3, std::abs(delta[i + 3]));
  }
  for (; i < x.size(); ++i) {
    const double next = a * src[i] + b * x[i];
    delta[i] = next - x[i];
    x[i] = next;
    m0 = std::max(m0, std::abs(delta[i]));
  }
  return std::max(std::max(m0, m1), std::max(m2, m3));
}

double admm_dual_update_delta(std::span<const double> rho, std::span<const double> z_candidate,
                              std::span<const double> z_next, std::span<double> y,
                              std::span<double> delta) {
  require(rho.size() == z_candidate.size() && rho.size() == z_next.size() &&
              rho.size() == y.size() && rho.size() == delta.size(),
          "admm_dual_update_delta: size mismatch");
  double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= y.size(); i += 4) {
    const double n0 = rho[i] * (z_candidate[i] - z_next[i]);
    const double n1 = rho[i + 1] * (z_candidate[i + 1] - z_next[i + 1]);
    const double n2 = rho[i + 2] * (z_candidate[i + 2] - z_next[i + 2]);
    const double n3 = rho[i + 3] * (z_candidate[i + 3] - z_next[i + 3]);
    delta[i] = n0 - y[i];
    delta[i + 1] = n1 - y[i + 1];
    delta[i + 2] = n2 - y[i + 2];
    delta[i + 3] = n3 - y[i + 3];
    y[i] = n0;
    y[i + 1] = n1;
    y[i + 2] = n2;
    y[i + 3] = n3;
    m0 = std::max(m0, std::abs(delta[i]));
    m1 = std::max(m1, std::abs(delta[i + 1]));
    m2 = std::max(m2, std::abs(delta[i + 2]));
    m3 = std::max(m3, std::abs(delta[i + 3]));
  }
  for (; i < y.size(); ++i) {
    const double next = rho[i] * (z_candidate[i] - z_next[i]);
    delta[i] = next - y[i];
    y[i] = next;
    m0 = std::max(m0, std::abs(delta[i]));
  }
  return std::max(std::max(m0, m1), std::max(m2, m3));
}

}  // namespace gp::linalg
