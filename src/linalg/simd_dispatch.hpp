// Runtime SIMD dispatch for the linalg kernel layer.
//
// The library ships one portable scalar build plus explicitly vectorized
// kernel variants compiled in per-ISA translation units (simd_kernels_*.cpp,
// each with its own -m flags). At runtime the highest tier the CPU supports
// is selected once via CPUID; `GEOPLACE_SIMD=scalar|avx2|avx512` pins a tier
// for testing and cross-machine reproducibility (requests above what the
// hardware or the build supports clamp down, mirroring GEOPLACE_THREADS'
// leniency).
//
// The kernel contract (DESIGN.md §6): every production kernel — the inf-norm
// family, the fused ADMM element-wise updates, and the SELL SpMV — is
// BIT-IDENTICAL across tiers. Reductions that reassociate for speed
// (dot_reassoc) are not used in the solver and carry a documented tolerance
// instead; micro_admm_kernels cross-checks them per tier.
#pragma once

#include <string_view>

namespace gp::linalg::simd {

/// Vectorization tiers, ordered. Numeric values are meaningful: a tier can
/// serve any request at or below it.
enum class Tier : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Highest tier the CPU supports (CPUID-probed once; kScalar off x86-64).
/// Independent of what this build compiled in — see tier_available().
Tier detected_tier();

/// True when `t` can actually execute here: the CPU supports it AND the
/// per-ISA translation unit was compiled in. kScalar is always available.
bool tier_available(Tier t);

/// The tier kernels currently dispatch to. Initialized on first use from
/// detected_tier(), clamped by GEOPLACE_SIMD when set.
Tier active_tier();

/// Pins the dispatch tier (clamped to the highest available tier <= t).
/// Returns the tier actually activated. For per-tier property tests and
/// benchmarks; the env override is the out-of-process face of this knob.
Tier set_active_tier(Tier t);

/// "scalar" | "avx2" | "avx512".
const char* tier_name(Tier t);

/// Inverse of tier_name; throws gp::Error on any other spelling.
Tier tier_from_name(std::string_view name);

/// Value of GEOPLACE_SIMD captured when dispatch initialized ("" if unset).
/// Recorded in RunManifest so artifacts carry vectorization provenance.
std::string_view env_override();

}  // namespace gp::linalg::simd
