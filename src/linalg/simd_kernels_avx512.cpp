// AVX-512 kernel tier. Compiled with -mavx512f -mavx512dq -ffp-contract=off
// (DQ supplies the 512-bit VANDPD used for |x|; contraction to FMA would
// break the cross-tier bit-identity contract). Degrades to a null table when
// the build lacks the ISA, and dispatch clamps to the next tier down.
#include "linalg/simd_kernels.hpp"

#if defined(__AVX512F__) && defined(__AVX512DQ__) && !defined(GEOPLACE_SIMD_DISABLE_AVX512)

#include <immintrin.h>

#include "linalg/simd_kernels_vec_body.hpp"

namespace gp::linalg::simd {
namespace {

struct V8 {
  using vec = __m512d;
  static constexpr std::size_t width = 8;
  static vec load(const double* p) { return _mm512_loadu_pd(p); }
  static void store(double* p, vec v) { _mm512_storeu_pd(p, v); }
  static vec broadcast(double x) { return _mm512_set1_pd(x); }
  static vec zero() { return _mm512_setzero_pd(); }
  static vec add(vec a, vec b) { return _mm512_add_pd(a, b); }
  static vec sub(vec a, vec b) { return _mm512_sub_pd(a, b); }
  static vec mul(vec a, vec b) { return _mm512_mul_pd(a, b); }
  static vec div(vec a, vec b) { return _mm512_div_pd(a, b); }
  static vec abs(vec a) { return _mm512_andnot_pd(_mm512_set1_pd(-0.0), a); }
  // Argument swap reproduces std::max/std::min lane-wise (see the AVX2 TU).
  static vec max_std(vec a, vec b) { return _mm512_max_pd(b, a); }
  static vec min_std(vec a, vec b) { return _mm512_min_pd(b, a); }
  static vec gather(const double* base, const std::int32_t* idx) {
    return _mm512_i32gather_pd(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx)),
                               base, 8);
  }
  // Exact for the reduction lanes (never -0, never NaN — see the body
  // header); the 8-lane candidate set equals the scalar code's 4-lane one,
  // so the combined maximum is bit-identical.
  static double reduce_max(vec v) {
    alignas(64) double lane[8];
    _mm512_store_pd(lane, v);
    const double lo = std::max(std::max(lane[0], lane[1]), std::max(lane[2], lane[3]));
    const double hi = std::max(std::max(lane[4], lane[5]), std::max(lane[6], lane[7]));
    return std::max(lo, hi);
  }
  // Reassociates (dot_reassoc only).
  static double reduce_sum(vec v) {
    alignas(64) double lane[8];
    _mm512_store_pd(lane, v);
    const double lo = (lane[0] + lane[1]) + (lane[2] + lane[3]);
    const double hi = (lane[4] + lane[5]) + (lane[6] + lane[7]);
    return lo + hi;
  }
};

}  // namespace

const KernelTable* avx512_table() {
  static const KernelTable table = make_table<V8>();
  return &table;
}

}  // namespace gp::linalg::simd

#else  // !AVX-512

namespace gp::linalg::simd {
const KernelTable* avx512_table() { return nullptr; }
}  // namespace gp::linalg::simd

#endif
