#include "linalg/sparse_simd.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "linalg/simd_dispatch.hpp"

namespace gp::linalg {

namespace {
constexpr int kChunk = simd::kSellChunk;
}

void SellMirror::build(const SparseMatrix& a) {
  // CSC -> CSR transposition (count, prefix-sum, place), as in
  // RowMajorMirror::build; the CSR arrays are scratch here — build_from_rows
  // repacks them into the SELL layout.
  const auto col_ptr = a.col_ptr();
  const auto row_idx = a.row_idx();
  const auto nnz = static_cast<std::size_t>(a.nnz());

  std::vector<std::int32_t> row_start(static_cast<std::size_t>(a.rows()) + 1, 0);
  for (std::size_t p = 0; p < nnz; ++p) {
    ++row_start[static_cast<std::size_t>(row_idx[p]) + 1];
  }
  for (std::size_t r = 1; r < row_start.size(); ++r) row_start[r] += row_start[r - 1];
  std::vector<std::int32_t> entry_col(nnz);
  std::vector<std::int32_t> entry_pos(nnz);
  std::vector<std::int32_t> next(row_start.begin(), row_start.end() - 1);
  for (std::int32_t c = 0; c < a.cols(); ++c) {
    for (std::int32_t p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
      const auto dst = static_cast<std::size_t>(next[static_cast<std::size_t>(row_idx[p])]++);
      entry_col[dst] = c;  // ascending within a row: columns visited in order
      entry_pos[dst] = p;
    }
  }

  transposed_ = false;
  src_col_ptr_.assign(col_ptr.begin(), col_ptr.end());
  src_row_idx_.assign(row_idx.begin(), row_idx.end());
  build_from_rows(a.rows(), a.cols(), row_start, entry_col, entry_pos);
  update_values(a);
}

void SellMirror::build_transposed(const SparseMatrix& a) {
  // Row r of A^T is CSC column r of A, entries already in ascending-column
  // (of A^T) order because row indices ascend within a CSC column.
  const auto col_ptr = a.col_ptr();
  const auto row_idx = a.row_idx();
  const auto nnz = static_cast<std::size_t>(a.nnz());

  std::vector<std::int32_t> row_start(col_ptr.begin(), col_ptr.end());
  std::vector<std::int32_t> entry_pos(nnz);
  for (std::size_t p = 0; p < nnz; ++p) entry_pos[p] = static_cast<std::int32_t>(p);

  transposed_ = true;
  src_col_ptr_.assign(col_ptr.begin(), col_ptr.end());
  src_row_idx_.assign(row_idx.begin(), row_idx.end());
  build_from_rows(a.cols(), a.rows(), row_start, row_idx, entry_pos);
  update_values(a);
}

void SellMirror::build_from_rows(std::int32_t rows, std::int32_t cols,
                                 std::span<const std::int32_t> row_start,
                                 std::span<const std::int32_t> entry_col,
                                 std::span<const std::int32_t> entry_pos) {
  rows_ = rows;
  cols_ = cols;
  num_chunks_ = (rows + kChunk - 1) / kChunk;
  chunk_ptr_.assign(static_cast<std::size_t>(num_chunks_) + 1, 0);

  for (std::int32_t c = 0; c < num_chunks_; ++c) {
    std::int32_t width = 0;
    const std::int32_t live = std::min<std::int32_t>(kChunk, rows - c * kChunk);
    for (std::int32_t l = 0; l < live; ++l) {
      const auto r = static_cast<std::size_t>(c * kChunk + l);
      width = std::max(width, row_start[r + 1] - row_start[r]);
    }
    chunk_ptr_[static_cast<std::size_t>(c) + 1] =
        chunk_ptr_[static_cast<std::size_t>(c)] +
        static_cast<std::int64_t>(width) * kChunk;
  }

  const auto total = static_cast<std::size_t>(chunk_ptr_[static_cast<std::size_t>(num_chunks_)]);
  col_idx_.assign(total, 0);
  values_.assign(total, 0.0);
  csc_pos_.assign(total, -1);

  for (std::int32_t c = 0; c < num_chunks_; ++c) {
    const std::int64_t base = chunk_ptr_[static_cast<std::size_t>(c)];
    const auto width = static_cast<std::int32_t>(
        (chunk_ptr_[static_cast<std::size_t>(c) + 1] - base) / kChunk);
    const std::int32_t live = std::min<std::int32_t>(kChunk, rows - c * kChunk);
    for (std::int32_t l = 0; l < kChunk; ++l) {
      const std::int32_t r = c * kChunk + l;
      const std::int32_t len =
          l < live ? row_start[static_cast<std::size_t>(r) + 1] -
                         row_start[static_cast<std::size_t>(r)]
                   : 0;
      // Pads repeat the row's last column (or column 0) so the gather stays
      // in range; their 0.0 value makes them arithmetic no-ops.
      std::int32_t pad_col = 0;
      for (std::int32_t j = 0; j < width; ++j) {
        const auto e = static_cast<std::size_t>(base + std::int64_t{j} * kChunk + l);
        if (j < len) {
          const auto src = static_cast<std::size_t>(
              row_start[static_cast<std::size_t>(r)] + j);
          col_idx_[e] = entry_col[src];
          csc_pos_[e] = entry_pos[src];
          pad_col = entry_col[src];
        } else {
          col_idx_[e] = pad_col;
        }
      }
    }
  }
  // Real values land via update_values() (shared with the refresh path);
  // pad slots keep the 0.0 from the assign above.
}

bool SellMirror::pattern_matches(const SparseMatrix& a) const {
  if (!built()) return false;
  const std::int32_t out_dim = transposed_ ? a.cols() : a.rows();
  const std::int32_t in_dim = transposed_ ? a.rows() : a.cols();
  if (out_dim != rows_ || in_dim != cols_) return false;
  const auto col_ptr = a.col_ptr();
  const auto row_idx = a.row_idx();
  return std::equal(col_ptr.begin(), col_ptr.end(), src_col_ptr_.begin(),
                    src_col_ptr_.end()) &&
         std::equal(row_idx.begin(), row_idx.end(), src_row_idx_.begin(), src_row_idx_.end());
}

void SellMirror::update_values(const SparseMatrix& a) {
  require(built() && a.nnz() == static_cast<std::int64_t>(src_row_idx_.size()),
          "SellMirror::update_values: shape mismatch");
  const auto values = a.values();
  for (std::size_t e = 0; e < values_.size(); ++e) {
    const std::int32_t pos = csc_pos_[e];
    if (pos >= 0) values_[e] = values[static_cast<std::size_t>(pos)];
  }
}

void SellMirror::multiply_into(double alpha, std::span<const double> x,
                               std::span<double> y) const {
  require(built(), "SellMirror::multiply_into: not built");
  require(x.size() == static_cast<std::size_t>(cols_), "sell multiply: x size mismatch");
  require(y.size() == static_cast<std::size_t>(rows_), "sell multiply: y size mismatch");
  simd::kernels().sell_multiply_into(view(), alpha, x.data(), y.data());
}

simd::SellView SellMirror::view() const {
  simd::SellView v;
  v.chunk_ptr = chunk_ptr_.data();
  v.col_idx = col_idx_.data();
  v.values = values_.data();
  v.rows = rows_ < 0 ? 0 : rows_;
  v.num_chunks = num_chunks_;
  return v;
}

}  // namespace gp::linalg
