// Row-major dense matrix used by the interior-point solver, AR model
// fitting, and tests. Sizes in this library are small enough (a few
// thousand) that a straightforward dense implementation is appropriate.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace gp::linalg {

/// Dense row-major matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// rows x cols matrix, zero-initialized.
  DenseMatrix(std::size_t rows, std::size_t cols);

  /// rows x cols matrix filled from row-major data (size must match).
  DenseMatrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  static DenseMatrix identity(std::size_t n);

  /// Diagonal matrix from a vector.
  static DenseMatrix diagonal(std::span<const double> diag);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::span<double> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const double> row(std::size_t r) const { return {data_.data() + r * cols_, cols_}; }

  std::span<const double> data() const { return data_; }

  /// y = this * x.
  Vector multiply(std::span<const double> x) const;

  /// y = this^T * x.
  Vector multiply_transposed(std::span<const double> x) const;

  DenseMatrix transposed() const;

  /// this + other (same shape).
  DenseMatrix operator+(const DenseMatrix& other) const;

  /// this - other (same shape).
  DenseMatrix operator-(const DenseMatrix& other) const;

  /// this * other (inner dimensions must agree).
  DenseMatrix operator*(const DenseMatrix& other) const;

  DenseMatrix& operator*=(double scalar);

  /// Max |a_ij|.
  double norm_inf() const;

  bool same_shape(const DenseMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace gp::linalg
