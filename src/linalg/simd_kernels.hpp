// Internal kernel table shared between the dispatcher (simd_dispatch.cpp),
// the per-ISA translation units (simd_kernels_{scalar,avx2,avx512}.cpp) and
// the dispatching wrappers (vector_ops.cpp, sparse_simd.cpp). Not part of
// the public linalg surface.
//
// Signatures are raw-pointer + length so the per-ISA TUs stay free of any
// header that might inline code compiled with the wrong ISA flags.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gp::linalg::simd {

/// Borrowed view of a SellMirror's layout (sparse_simd.hpp) for the SpMV
/// kernels. Chunks of kSellChunk rows; entries j-major within a chunk
/// (entry (j, lane) at chunk_ptr[c] + j * kSellChunk + lane), padded with
/// value 0.0 and an in-range column index.
inline constexpr int kSellChunk = 8;

struct SellView {
  const std::int64_t* chunk_ptr = nullptr;  // size num_chunks + 1, entry offsets
  const std::int32_t* col_idx = nullptr;
  const double* values = nullptr;
  std::int32_t rows = 0;
  std::int32_t num_chunks = 0;
};

struct KernelTable {
  double (*norm_inf)(const double* a, std::size_t n);
  double (*inf_norm_scaled)(const double* a, const double* scale, std::size_t n);
  double (*inf_norm_scaled_diff)(const double* a, const double* b, const double* scale,
                                 std::size_t n);
  double (*inf_norm_scaled_sum3)(const double* a, const double* b, const double* c,
                                 const double* scale, double post, std::size_t n);
  double (*diff_norm_inf)(const double* a, const double* b, double* out, std::size_t n);
  void (*inf_norm_scaled_residual)(const double* a, const double* b, const double* scale,
                                   std::size_t n, double* res, double* norm);
  void (*inf_norm_scaled_residual3)(const double* a, const double* b, const double* c,
                                    const double* scale, double post, std::size_t n,
                                    double* res, double* norm);
  void (*axpby)(double av, const double* x, double bv, double* y, std::size_t n);
  double (*axpby_delta)(double av, const double* src, double bv, double* x, double* delta,
                        std::size_t n);
  void (*project_box_into)(const double* x, const double* lo, const double* hi, double* out,
                           std::size_t n);
  void (*admm_z_tilde)(const double* z, const double* nu, const double* y, const double* rho,
                       double* out, std::size_t n);
  void (*admm_z_candidate_cached)(double alpha, const double* z_tilde, const double* z,
                                  const double* y_over_rho, double* out, std::size_t n);
  void (*admm_dual_update)(const double* rho, const double* zc, const double* zn, double* y,
                           std::size_t n);
  double (*admm_dual_update_delta)(const double* rho, const double* zc, const double* zn,
                                   double* y, double* delta, std::size_t n);
  double (*dot_reassoc)(const double* a, const double* b, std::size_t n);
  void (*sell_multiply_into)(const SellView& m, double alpha, const double* x, double* y);
};

/// Per-tier tables. The scalar table always exists; the vector tables are
/// null when their TU was compiled without the ISA (non-x86 target or a
/// compiler lacking the -m flags).
const KernelTable& scalar_table();
const KernelTable* avx2_table();
const KernelTable* avx512_table();

/// Table for active_tier(); the hot-path entry point for the wrappers.
const KernelTable& kernels();

}  // namespace gp::linalg::simd
