// AVX2 kernel tier. Compiled with -mavx2 -ffp-contract=off (contraction to
// FMA would change rounding and break the cross-tier bit-identity contract).
// When the build lacks AVX2 (non-x86 target, or a compiler without the flag)
// the TU degrades to a null table and dispatch clamps to scalar.
#include "linalg/simd_kernels.hpp"

#if defined(__AVX2__) && !defined(GEOPLACE_SIMD_DISABLE_AVX2)

#include <immintrin.h>

#include "linalg/simd_kernels_vec_body.hpp"

namespace gp::linalg::simd {
namespace {

struct V4 {
  using vec = __m256d;
  static constexpr std::size_t width = 4;
  static vec load(const double* p) { return _mm256_loadu_pd(p); }
  static void store(double* p, vec v) { _mm256_storeu_pd(p, v); }
  static vec broadcast(double x) { return _mm256_set1_pd(x); }
  static vec zero() { return _mm256_setzero_pd(); }
  static vec add(vec a, vec b) { return _mm256_add_pd(a, b); }
  static vec sub(vec a, vec b) { return _mm256_sub_pd(a, b); }
  static vec mul(vec a, vec b) { return _mm256_mul_pd(a, b); }
  static vec div(vec a, vec b) { return _mm256_div_pd(a, b); }
  static vec abs(vec a) { return _mm256_andnot_pd(_mm256_set1_pd(-0.0), a); }
  // std::max(a, b) returns a unless b > a (NaN b and -0-vs-+0 ties keep a).
  // VMAXPD(src1, src2) returns src2 unless src1 > src2 — so swapping the
  // arguments reproduces std::max lane-wise, bit for bit. Same for min.
  static vec max_std(vec a, vec b) { return _mm256_max_pd(b, a); }
  static vec min_std(vec a, vec b) { return _mm256_min_pd(b, a); }
  static vec gather(const double* base, const std::int32_t* idx) {
    return _mm256_i32gather_pd(base,
                               _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx)), 8);
  }
  // Exact: reduction lanes start at +0 and only non-negative candidates
  // replace them, so max over lanes is order-independent.
  static double reduce_max(vec v) {
    alignas(32) double lane[4];
    _mm256_store_pd(lane, v);
    return std::max(std::max(lane[0], lane[1]), std::max(lane[2], lane[3]));
  }
  // Reassociates (dot_reassoc only).
  static double reduce_sum(vec v) {
    alignas(32) double lane[4];
    _mm256_store_pd(lane, v);
    return (lane[0] + lane[1]) + (lane[2] + lane[3]);
  }
};

}  // namespace

const KernelTable* avx2_table() {
  static const KernelTable table = make_table<V4>();
  return &table;
}

}  // namespace gp::linalg::simd

#else  // !__AVX2__

namespace gp::linalg::simd {
const KernelTable* avx2_table() { return nullptr; }
}  // namespace gp::linalg::simd

#endif
