#include "linalg/dense_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gp::linalg {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  require(data_.size() == rows * cols, "DenseMatrix: data size does not match shape");
}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix eye(n, n);
  for (std::size_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  return eye;
}

DenseMatrix DenseMatrix::diagonal(std::span<const double> diag) {
  DenseMatrix out(diag.size(), diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) out(i, i) = diag[i];
  return out;
}

Vector DenseMatrix::multiply(std::span<const double> x) const {
  require(x.size() == cols_, "multiply: size mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = data_.data() + r * cols_;
    double total = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) total += row_ptr[c] * x[c];
    y[r] = total;
  }
  return y;
}

Vector DenseMatrix::multiply_transposed(std::span<const double> x) const {
  require(x.size() == rows_, "multiply_transposed: size mismatch");
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = data_.data() + r * cols_;
    const double xr = x[r];
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row_ptr[c] * xr;
  }
  return y;
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

DenseMatrix DenseMatrix::operator+(const DenseMatrix& other) const {
  require(same_shape(other), "operator+: shape mismatch");
  DenseMatrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

DenseMatrix DenseMatrix::operator-(const DenseMatrix& other) const {
  require(same_shape(other), "operator-: shape mismatch");
  DenseMatrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

DenseMatrix DenseMatrix::operator*(const DenseMatrix& other) const {
  require(cols_ == other.rows_, "operator*: inner dimension mismatch");
  DenseMatrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      const double* other_row = other.data_.data() + k * other.cols_;
      double* out_row = out.data_.data() + r * out.cols_;
      for (std::size_t c = 0; c < other.cols_; ++c) out_row[c] += a * other_row[c];
    }
  }
  return out;
}

DenseMatrix& DenseMatrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

double DenseMatrix::norm_inf() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::abs(v));
  return best;
}

}  // namespace gp::linalg
