// Free-function kernels on dense vectors (std::vector<double>).
//
// The library represents dense vectors as plain std::vector<double>; these
// kernels are the shared BLAS-1 layer for the dense and sparse solvers.
#pragma once

#include <span>
#include <vector>

namespace gp::linalg {

using Vector = std::vector<double>;

/// Dot product. Requires equal sizes. Single accumulation chain: the result
/// is the portable reference every build and SIMD tier reproduces exactly.
double dot(std::span<const double> a, std::span<const double> b);

/// Reassociated dot product (multiple partial sums, vectorized on the active
/// SIMD tier). Faster than dot() but NOT bit-stable across tiers: results
/// agree with dot() only within |err| <= n * eps * sum_i |a_i * b_i|. Kept
/// out of the solver hot paths; micro_admm_kernels cross-checks the bound
/// per tier. Use when throughput matters and bit-reproducibility does not.
double dot_reassoc(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
double norm2(std::span<const double> a);

/// Infinity norm (max |a_i|); 0 for empty input.
double norm_inf(std::span<const double> a);

/// y += alpha * x. Requires equal sizes.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void scale(double alpha, std::span<double> x);

/// Element-wise out = a + b.
Vector add(std::span<const double> a, std::span<const double> b);

/// Element-wise out = a - b.
Vector sub(std::span<const double> a, std::span<const double> b);

/// Element-wise product.
Vector hadamard(std::span<const double> a, std::span<const double> b);

/// Constant vector of the given size.
Vector constant(std::size_t size, double value);

/// Element-wise projection of x onto the box [lo, hi] (vectors of equal
/// size). Named distinctly from std::clamp, which ADL would otherwise find
/// for std::vector arguments and clamp lexicographically.
Vector project_box(std::span<const double> x, std::span<const double> lo,
                   std::span<const double> hi);

// ---------------------------------------------------------------------------
// Fused single-pass kernels for the ADMM hot loop (qp/admm_solver). Each one
// is the literal element-wise expression of the scalar loop it replaces, so
// results are BIT-identical to the unfused path — a requirement of the
// deterministic-parallelism contract (DESIGN.md §6). All write into
// caller-owned storage; none allocates.
// ---------------------------------------------------------------------------

/// y = a * x + b * y (one pass; the ADMM over-relaxed x update with
/// a = alpha, b = 1 - alpha). Requires equal sizes.
void axpby(double a, std::span<const double> x, double b, std::span<double> y);

/// out = a - b and returns ||out||_inf in the same pass (the ADMM
/// infeasibility-certificate deltas and their norms).
double diff_norm_inf(std::span<const double> a, std::span<const double> b,
                     std::span<double> out);

/// Allocation-free project_box: out = clamp(x, lo, hi) element-wise.
void project_box_into(std::span<const double> x, std::span<const double> lo,
                      std::span<const double> hi, std::span<double> out);

/// max_i |a_i| * scale_i (exact: scaling and max introduce no reordering).
double inf_norm_scaled(std::span<const double> a, std::span<const double> scale);

/// max_i |a_i - b_i| * scale_i — the ADMM primal residual ||Ax - z|| in
/// unscaled row units, one pass.
double inf_norm_scaled_diff(std::span<const double> a, std::span<const double> b,
                            std::span<const double> scale);

/// max_i |a_i + b_i + c_i| * scale_i * post — the ADMM dual residual
/// ||Px + q + A^T y|| in unscaled column units, one pass.
double inf_norm_scaled_sum3(std::span<const double> a, std::span<const double> b,
                            std::span<const double> c, std::span<const double> scale,
                            double post);

/// One-pass primal-residual pair: res = max_i |a_i - b_i| * scale_i and
/// norm = max_i max(|a_i| * scale_i, |b_i| * scale_i). Exactly the two maxima
/// the ADMM termination check needs over (Ax, z), computed reading each input
/// once instead of three times.
void inf_norm_scaled_residual(std::span<const double> a, std::span<const double> b,
                              std::span<const double> scale, double& res, double& norm);

/// One-pass dual-residual pair: res = max_i |a_i + b_i + c_i| * scale_i * post
/// and norm = max_i max(|a_i|, |b_i|, |c_i|) * scale_i, scaled by post after
/// the reduction (max-then-scale equals scale-then-max bitwise for post > 0:
/// rounding under multiplication by a positive constant is monotone).
void inf_norm_scaled_residual3(std::span<const double> a, std::span<const double> b,
                               std::span<const double> c, std::span<const double> scale,
                               double post, double& res, double& norm);

/// out = z + (nu - y) / rho — the z~ step of the ADMM iteration.
void admm_z_tilde(std::span<const double> z, std::span<const double> nu,
                  std::span<const double> y, std::span<const double> rho,
                  std::span<double> out);

/// out = alpha * z_tilde + (1 - alpha) * z + y / rho — the over-relaxed
/// three-term z candidate.
void admm_z_candidate(double alpha, std::span<const double> z_tilde,
                      std::span<const double> z, std::span<const double> y,
                      std::span<const double> rho, std::span<double> out);

/// admm_z_candidate with the y / rho quotients already computed (the KKT
/// right-hand side build forms the same quotients earlier in the iteration;
/// reusing them drops one full vector of divisions per iteration, and the
/// result is bit-identical because it is the same operation on the same
/// operands).
void admm_z_candidate_cached(double alpha, std::span<const double> z_tilde,
                             std::span<const double> z,
                             std::span<const double> y_over_rho, std::span<double> out);

/// y = rho * (z_candidate - z_next) — the ADMM dual update.
void admm_dual_update(std::span<const double> rho, std::span<const double> z_candidate,
                      std::span<const double> z_next, std::span<double> y);

/// axpby fused with the certificate delta: x <- a * src + b * x,
/// delta = x_new - x_old, returns ||delta||_inf. Bit-identical to running
/// axpby, then subtracting a saved copy of the old iterate — without the
/// copy or the extra pass. For residual-check iterations.
double axpby_delta(double a, std::span<const double> src, double b, std::span<double> x,
                   std::span<double> delta);

/// admm_dual_update fused with the certificate delta: y <- rho * (zc - zn),
/// delta = y_new - y_old, returns ||delta||_inf. Same contract as
/// axpby_delta. For residual-check iterations.
double admm_dual_update_delta(std::span<const double> rho, std::span<const double> z_candidate,
                              std::span<const double> z_next, std::span<double> y,
                              std::span<double> delta);

}  // namespace gp::linalg
