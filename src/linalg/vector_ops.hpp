// Free-function kernels on dense vectors (std::vector<double>).
//
// The library represents dense vectors as plain std::vector<double>; these
// kernels are the shared BLAS-1 layer for the dense and sparse solvers.
#pragma once

#include <span>
#include <vector>

namespace gp::linalg {

using Vector = std::vector<double>;

/// Dot product. Requires equal sizes.
double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
double norm2(std::span<const double> a);

/// Infinity norm (max |a_i|); 0 for empty input.
double norm_inf(std::span<const double> a);

/// y += alpha * x. Requires equal sizes.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void scale(double alpha, std::span<double> x);

/// Element-wise out = a + b.
Vector add(std::span<const double> a, std::span<const double> b);

/// Element-wise out = a - b.
Vector sub(std::span<const double> a, std::span<const double> b);

/// Element-wise product.
Vector hadamard(std::span<const double> a, std::span<const double> b);

/// Constant vector of the given size.
Vector constant(std::size_t size, double value);

/// Element-wise projection of x onto the box [lo, hi] (vectors of equal
/// size). Named distinctly from std::clamp, which ADL would otherwise find
/// for std::vector arguments and clamp lexicographically.
Vector project_box(std::span<const double> x, std::span<const double> lo,
                   std::span<const double> hi);

}  // namespace gp::linalg
