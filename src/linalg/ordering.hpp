// Fill-reducing orderings and symmetric permutation for sparse LDL^T.
//
// A classic minimum-degree ordering (greedy, quotient-free) is provided; it
// is O(n^2) in the worst case but more than adequate for the KKT systems this
// library factors (a few thousand unknowns, very sparse). An identity
// ordering is available for tests and ablations.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/sparse_matrix.hpp"

namespace gp::linalg {

/// Permutation vector semantics: perm[new_index] = old_index.
using Permutation = std::vector<std::int32_t>;

/// Identity permutation of size n.
Permutation identity_permutation(std::int32_t n);

/// Inverse permutation: inv[perm[i]] = i.
Permutation invert_permutation(const Permutation& perm);

/// Greedy minimum-degree ordering of the symmetric sparsity pattern of A
/// (the pattern of A + A^T is used; values are ignored). A must be square.
Permutation minimum_degree_ordering(const SparseMatrix& a);

/// Symmetric permutation of a square symmetric matrix given by its UPPER
/// triangle: returns the upper triangle of P A P^T where row/col old index
/// perm[i] maps to new index i.
SparseMatrix symmetric_permute_upper(const SparseMatrix& upper, const Permutation& perm);

/// Applies a permutation to a vector: out[i] = x[perm[i]].
Vector permute(std::span<const double> x, const Permutation& perm);

/// Applies the inverse permutation: out[perm[i]] = x[i].
Vector permute_inverse(std::span<const double> x, const Permutation& perm);

}  // namespace gp::linalg
