// Sparse LDL^T factorization for symmetric quasi-definite matrices.
//
// Up-looking factorization in the style of Davis' LDL / QDLDL: a symbolic
// pass computes the elimination tree and exact column counts, then the
// numeric pass fills L and the signed diagonal D. Quasi-definite inputs
// (e.g. ADMM KKT matrices [[P + sigma I, A^T], [A, -rho^{-1} I]]) factor
// without pivoting for any symmetric permutation, which is what makes this
// the right kernel for the QP solver.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/ordering.hpp"
#include "linalg/sparse_matrix.hpp"

namespace gp::linalg {

/// Sparse LDL^T with a caller-supplied (or minimum-degree) fill-reducing
/// ordering. The matrix is supplied as the UPPER triangle (diagonal
/// included) of the full symmetric matrix.
class SparseLdlt {
 public:
  enum class Status { kOk, kZeroPivot, kNotFactored, kPatternMismatch };

  /// Chooses a minimum-degree ordering, then factors.
  Status factor(const SparseMatrix& upper);

  /// Factors with an explicit ordering (perm[new] = old).
  Status factor(const SparseMatrix& upper, Permutation perm);

  /// Re-factors a matrix with the SAME sparsity pattern as the previous
  /// successful factor() call, reusing the symbolic analysis (elimination
  /// tree, column counts, ordering). The pattern (col_ptr/row_idx of the
  /// permuted upper triangle) is CHECKED against the one that was factored;
  /// a changed pattern returns kPatternMismatch and leaves the previous
  /// factorization intact — callers must fall back to a fresh factor().
  Status refactor(const SparseMatrix& upper);

  /// Solves A x = b in place; requires a successful factor(). Uses a
  /// persistent permutation scratch buffer, so after the first call at a
  /// given size the solve performs no heap allocation (the ADMM hot loop
  /// calls this once per iteration).
  void solve_in_place(Vector& b) const;

  /// Convenience out-of-place solve.
  Vector solve(std::span<const double> b) const;

  Status status() const { return status_; }

  /// Number of nonzeros in L (excluding the unit diagonal).
  std::int64_t l_nnz() const;

  /// Signed diagonal D (in permuted order); useful for inertia checks.
  std::span<const double> d() const { return d_; }

 private:
  Status numeric_factor(const SparseMatrix& permuted_upper);

  std::int32_t n_ = 0;
  Permutation perm_;
  Permutation inv_perm_;
  // Symbolic data.
  std::vector<std::int32_t> parent_;
  std::vector<std::int32_t> l_col_ptr_;
  // Pattern of the permuted upper triangle the symbolic analysis was run
  // on; refactor() validates against it.
  std::vector<std::int32_t> pattern_col_ptr_;
  std::vector<std::int32_t> pattern_row_idx_;
  // Numeric data.
  std::vector<std::int32_t> l_row_idx_;
  std::vector<double> l_values_;
  Vector d_;
  mutable Vector solve_scratch_;  // permuted RHS; reused across solves
  Status status_ = Status::kNotFactored;
};

}  // namespace gp::linalg
