// Compressed-sparse-column (CSC) matrix.
//
// This is the workhorse representation for the QP constraint matrices and
// the quasi-definite KKT systems factored by SparseLdlt. Construction is via
// triplets (duplicates are summed, as in every mainstream sparse toolkit).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/dense_matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace gp::linalg {

/// One (row, col, value) coordinate entry.
struct Triplet {
  std::int32_t row = 0;
  std::int32_t col = 0;
  double value = 0.0;
};

/// Immutable-shape CSC sparse matrix. Row indices within each column are
/// strictly increasing; duplicate triplets are summed at construction.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Builds from triplets. Indices must lie inside [0, rows) x [0, cols).
  static SparseMatrix from_triplets(std::int32_t rows, std::int32_t cols,
                                    std::span<const Triplet> triplets);

  /// Brace-list convenience overload.
  static SparseMatrix from_triplets(std::int32_t rows, std::int32_t cols,
                                    std::initializer_list<Triplet> triplets) {
    return from_triplets(rows, cols,
                         std::span<const Triplet>(triplets.begin(), triplets.size()));
  }

  /// n x n identity scaled by `value`.
  static SparseMatrix identity(std::int32_t n, double value = 1.0);

  /// Diagonal matrix from a vector.
  static SparseMatrix diagonal(std::span<const double> diag);

  std::int32_t rows() const { return rows_; }
  std::int32_t cols() const { return cols_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(values_.size()); }

  std::span<const std::int32_t> col_ptr() const { return col_ptr_; }
  std::span<const std::int32_t> row_idx() const { return row_idx_; }
  std::span<const double> values() const { return values_; }
  std::span<double> mutable_values() { return values_; }

  /// y = A x.
  Vector multiply(std::span<const double> x) const;

  /// y = A^T x.
  Vector multiply_transposed(std::span<const double> x) const;

  /// y += alpha * A x.
  void multiply_accumulate(double alpha, std::span<const double> x, std::span<double> y) const;

  /// y += alpha * A^T x.
  void multiply_transposed_accumulate(double alpha, std::span<const double> x,
                                      std::span<double> y) const;

  SparseMatrix transposed() const;

  /// General sparse product this * other.
  SparseMatrix multiply(const SparseMatrix& other) const;

  /// Upper triangle (including diagonal) of a square matrix.
  SparseMatrix upper_triangle() const;

  /// Entry lookup (binary search within the column); 0 when absent.
  double coefficient(std::int32_t row, std::int32_t col) const;

  /// Dense conversion for tests / debugging.
  DenseMatrix to_dense() const;

  /// Scales row i by row_scale[i] and column j by col_scale[j] in place.
  void scale_rows_cols(std::span<const double> row_scale, std::span<const double> col_scale);

  /// Max |a_ij| per column; columns with no entries report 0.
  Vector column_inf_norms() const;

  /// Max |a_ij| per row; rows with no entries report 0.
  Vector row_inf_norms() const;

 private:
  std::int32_t rows_ = 0;
  std::int32_t cols_ = 0;
  std::vector<std::int32_t> col_ptr_;  // size cols+1
  std::vector<std::int32_t> row_idx_;  // size nnz, ascending within a column
  std::vector<double> values_;         // size nnz
};

/// Row-major (CSR) mirror of a CSC SparseMatrix, for the memory-access
/// patterns CSC serves badly: A x as a per-row gather (unit-stride writes,
/// no scatter) and A^T x as a stream over the rows of A (one sequential
/// read of x, accumulation into the small column-indexed output).
///
/// The pattern is built once per structure (build()); when only the values
/// change — the ADMM structure-cache case — update_values() refreshes the
/// mirror in place with no allocation. Products are BIT-identical to the
/// CSC SparseMatrix::multiply{,_transposed}_accumulate paths: per output
/// element, terms are consumed in the same order with the same per-term
/// operations (verified to 0 ULP by tests/test_perf_kernels).
class RowMajorMirror {
 public:
  RowMajorMirror() = default;
  explicit RowMajorMirror(const SparseMatrix& a) { build(a); }

  /// Rebuilds pattern + values from `a` (allocates; once per structure).
  void build(const SparseMatrix& a);

  /// True when `a` has exactly the pattern this mirror was built from.
  bool pattern_matches(const SparseMatrix& a) const;

  /// Refreshes values from `a`, which must satisfy pattern_matches(a).
  /// Allocation-free.
  void update_values(const SparseMatrix& a);

  bool built() const { return rows_ >= 0; }
  std::int32_t rows() const { return rows_; }
  std::int32_t cols() const { return cols_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(values_.size()); }

  std::span<const std::int32_t> row_ptr() const { return row_ptr_; }
  std::span<const std::int32_t> col_idx() const { return col_idx_; }
  std::span<const double> values() const { return values_; }

  /// y += alpha * A x, gathering along rows (unit-stride writes to y).
  void multiply_accumulate(double alpha, std::span<const double> x, std::span<double> y) const;

  /// y = alpha * A x, overwriting y. Each row's gather starts from 0.0 —
  /// exactly what zero-fill-then-multiply_accumulate computes, minus the
  /// fill pass over y.
  void multiply_into(double alpha, std::span<const double> x, std::span<double> y) const;

  /// y += alpha * A^T x, streaming the rows of A (unit-stride read of x).
  void multiply_transposed_accumulate(double alpha, std::span<const double> x,
                                      std::span<double> y) const;

 private:
  std::int32_t rows_ = -1;  // -1 until build(); distinguishes a 0 x 0 build
  std::int32_t cols_ = 0;
  std::vector<std::int32_t> row_ptr_;   // size rows+1
  std::vector<std::int32_t> col_idx_;   // size nnz, ascending within a row
  std::vector<double> values_;          // size nnz
  std::vector<std::int32_t> csc_pos_;   // mirror entry -> index into a.values()
  // Source CSC pattern, for pattern_matches() (robust against callers whose
  // own cache state is stale).
  std::vector<std::int32_t> src_col_ptr_;
  std::vector<std::int32_t> src_row_idx_;
};

}  // namespace gp::linalg
