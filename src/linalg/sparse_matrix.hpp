// Compressed-sparse-column (CSC) matrix.
//
// This is the workhorse representation for the QP constraint matrices and
// the quasi-definite KKT systems factored by SparseLdlt. Construction is via
// triplets (duplicates are summed, as in every mainstream sparse toolkit).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/dense_matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace gp::linalg {

/// One (row, col, value) coordinate entry.
struct Triplet {
  std::int32_t row = 0;
  std::int32_t col = 0;
  double value = 0.0;
};

/// Immutable-shape CSC sparse matrix. Row indices within each column are
/// strictly increasing; duplicate triplets are summed at construction.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Builds from triplets. Indices must lie inside [0, rows) x [0, cols).
  static SparseMatrix from_triplets(std::int32_t rows, std::int32_t cols,
                                    std::span<const Triplet> triplets);

  /// Brace-list convenience overload.
  static SparseMatrix from_triplets(std::int32_t rows, std::int32_t cols,
                                    std::initializer_list<Triplet> triplets) {
    return from_triplets(rows, cols,
                         std::span<const Triplet>(triplets.begin(), triplets.size()));
  }

  /// n x n identity scaled by `value`.
  static SparseMatrix identity(std::int32_t n, double value = 1.0);

  /// Diagonal matrix from a vector.
  static SparseMatrix diagonal(std::span<const double> diag);

  std::int32_t rows() const { return rows_; }
  std::int32_t cols() const { return cols_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(values_.size()); }

  std::span<const std::int32_t> col_ptr() const { return col_ptr_; }
  std::span<const std::int32_t> row_idx() const { return row_idx_; }
  std::span<const double> values() const { return values_; }
  std::span<double> mutable_values() { return values_; }

  /// y = A x.
  Vector multiply(std::span<const double> x) const;

  /// y = A^T x.
  Vector multiply_transposed(std::span<const double> x) const;

  /// y += alpha * A x.
  void multiply_accumulate(double alpha, std::span<const double> x, std::span<double> y) const;

  /// y += alpha * A^T x.
  void multiply_transposed_accumulate(double alpha, std::span<const double> x,
                                      std::span<double> y) const;

  SparseMatrix transposed() const;

  /// General sparse product this * other.
  SparseMatrix multiply(const SparseMatrix& other) const;

  /// Upper triangle (including diagonal) of a square matrix.
  SparseMatrix upper_triangle() const;

  /// Entry lookup (binary search within the column); 0 when absent.
  double coefficient(std::int32_t row, std::int32_t col) const;

  /// Dense conversion for tests / debugging.
  DenseMatrix to_dense() const;

  /// Scales row i by row_scale[i] and column j by col_scale[j] in place.
  void scale_rows_cols(std::span<const double> row_scale, std::span<const double> col_scale);

  /// Max |a_ij| per column; columns with no entries report 0.
  Vector column_inf_norms() const;

  /// Max |a_ij| per row; rows with no entries report 0.
  Vector row_inf_norms() const;

 private:
  std::int32_t rows_ = 0;
  std::int32_t cols_ = 0;
  std::vector<std::int32_t> col_ptr_;  // size cols+1
  std::vector<std::int32_t> row_idx_;  // size nnz, ascending within a column
  std::vector<double> values_;         // size nnz
};

}  // namespace gp::linalg
