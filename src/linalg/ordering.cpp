#include "linalg/ordering.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gp::linalg {

Permutation identity_permutation(std::int32_t n) {
  Permutation perm(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  return perm;
}

Permutation invert_permutation(const Permutation& perm) {
  Permutation inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    inv[static_cast<std::size_t>(perm[i])] = static_cast<std::int32_t>(i);
  }
  return inv;
}

Permutation minimum_degree_ordering(const SparseMatrix& a) {
  require(a.rows() == a.cols(), "minimum_degree_ordering: matrix must be square");
  const std::int32_t n = a.rows();
  // Build symmetric adjacency (pattern of A + A^T, no self-loops), as sorted
  // unique neighbour lists.
  std::vector<std::vector<std::int32_t>> adj(static_cast<std::size_t>(n));
  const auto col_ptr = a.col_ptr();
  const auto row_idx = a.row_idx();
  for (std::int32_t c = 0; c < n; ++c) {
    for (std::int32_t p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
      const std::int32_t r = row_idx[p];
      if (r == c) continue;
      adj[static_cast<std::size_t>(r)].push_back(c);
      adj[static_cast<std::size_t>(c)].push_back(r);
    }
  }
  for (auto& neighbours : adj) {
    std::sort(neighbours.begin(), neighbours.end());
    neighbours.erase(std::unique(neighbours.begin(), neighbours.end()), neighbours.end());
  }

  std::vector<bool> eliminated(static_cast<std::size_t>(n), false);
  Permutation perm;
  perm.reserve(static_cast<std::size_t>(n));

  // Bucketed degrees with lazy revalidation.
  std::vector<std::int32_t> degree(static_cast<std::size_t>(n));
  for (std::int32_t v = 0; v < n; ++v) {
    degree[static_cast<std::size_t>(v)] =
        static_cast<std::int32_t>(adj[static_cast<std::size_t>(v)].size());
  }

  auto prune = [&](std::vector<std::int32_t>& neighbours) {
    neighbours.erase(std::remove_if(neighbours.begin(), neighbours.end(),
                                    [&](std::int32_t v) {
                                      return eliminated[static_cast<std::size_t>(v)];
                                    }),
                     neighbours.end());
  };

  for (std::int32_t step = 0; step < n; ++step) {
    // Find the live vertex of minimum (up-to-date) degree.
    std::int32_t best = -1;
    std::int32_t best_degree = n + 1;
    for (std::int32_t v = 0; v < n; ++v) {
      if (eliminated[static_cast<std::size_t>(v)]) continue;
      if (degree[static_cast<std::size_t>(v)] < best_degree) {
        best = v;
        best_degree = degree[static_cast<std::size_t>(v)];
      }
    }
    ensure(best >= 0, "minimum_degree_ordering: no live vertex found");

    auto& neighbours = adj[static_cast<std::size_t>(best)];
    prune(neighbours);
    eliminated[static_cast<std::size_t>(best)] = true;
    perm.push_back(best);

    // Form the elimination clique among the surviving neighbours.
    for (std::int32_t u : neighbours) {
      auto& list = adj[static_cast<std::size_t>(u)];
      prune(list);
      // Merge (sorted) the clique into u's adjacency, skipping u itself.
      std::vector<std::int32_t> merged;
      merged.reserve(list.size() + neighbours.size());
      std::merge(list.begin(), list.end(), neighbours.begin(), neighbours.end(),
                 std::back_inserter(merged));
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      merged.erase(std::remove(merged.begin(), merged.end(), u), merged.end());
      list = std::move(merged);
      degree[static_cast<std::size_t>(u)] = static_cast<std::int32_t>(list.size());
    }
    neighbours.clear();
    neighbours.shrink_to_fit();
  }
  return perm;
}

SparseMatrix symmetric_permute_upper(const SparseMatrix& upper, const Permutation& perm) {
  require(upper.rows() == upper.cols(), "symmetric_permute_upper: matrix must be square");
  require(static_cast<std::int32_t>(perm.size()) == upper.rows(),
          "symmetric_permute_upper: permutation size mismatch");
  const Permutation inv = invert_permutation(perm);
  const auto col_ptr = upper.col_ptr();
  const auto row_idx = upper.row_idx();
  const auto values = upper.values();
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(upper.nnz()));
  for (std::int32_t c = 0; c < upper.cols(); ++c) {
    for (std::int32_t p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
      const std::int32_t r = row_idx[p];
      ensure(r <= c, "symmetric_permute_upper: input must be upper triangular");
      std::int32_t new_r = inv[static_cast<std::size_t>(r)];
      std::int32_t new_c = inv[static_cast<std::size_t>(c)];
      if (new_r > new_c) std::swap(new_r, new_c);
      triplets.push_back({new_r, new_c, values[p]});
    }
  }
  return SparseMatrix::from_triplets(upper.rows(), upper.cols(), triplets);
}

Vector permute(std::span<const double> x, const Permutation& perm) {
  require(x.size() == perm.size(), "permute: size mismatch");
  Vector out(x.size());
  for (std::size_t i = 0; i < perm.size(); ++i) out[i] = x[static_cast<std::size_t>(perm[i])];
  return out;
}

Vector permute_inverse(std::span<const double> x, const Permutation& perm) {
  require(x.size() == perm.size(), "permute_inverse: size mismatch");
  Vector out(x.size());
  for (std::size_t i = 0; i < perm.size(); ++i) out[static_cast<std::size_t>(perm[i])] = x[i];
  return out;
}

}  // namespace gp::linalg
