// Preconditioned conjugate gradient for sparse symmetric positive-definite
// systems.
//
// The direct sparse LDL^T is the library's workhorse, but very large window
// programs (many data centers x access networks x long horizons) can push
// the factorization's fill beyond memory. CG needs only matrix-vector
// products, making it the scalable fallback; a Jacobi (diagonal)
// preconditioner is built in because the DSPP normal-equation systems are
// strongly diagonally weighted.
#pragma once

#include "linalg/sparse_matrix.hpp"

namespace gp::linalg {

/// Options for conjugate_gradient.
struct CgSettings {
  int max_iterations = 1000;
  double tolerance = 1e-10;     ///< on ||r|| / ||b||
  bool jacobi_preconditioner = true;
};

/// Outcome of a CG solve.
struct CgResult {
  bool converged = false;
  int iterations = 0;
  double relative_residual = 0.0;  ///< final ||b - A x|| / ||b||
};

/// Solves A x = b for symmetric positive-definite A, starting from the
/// provided x (warm starts welcome; pass zeros otherwise). The full matrix
/// must be supplied (not just a triangle).
CgResult conjugate_gradient(const SparseMatrix& a, std::span<const double> b, Vector& x,
                            const CgSettings& settings = {});

}  // namespace gp::linalg
