#include "linalg/dense_factor.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gp::linalg {

FactorStatus Cholesky::factor(const DenseMatrix& a) {
  require(a.rows() == a.cols(), "Cholesky: matrix must be square");
  const std::size_t n = a.rows();
  l_ = DenseMatrix(n, n);
  factored_ = false;
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    if (diag <= 0.0) return FactorStatus::kNotPositiveDefinite;
    const double ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double value = a(i, j);
      for (std::size_t k = 0; k < j; ++k) value -= l_(i, k) * l_(j, k);
      l_(i, j) = value / ljj;
    }
  }
  factored_ = true;
  return FactorStatus::kOk;
}

Vector Cholesky::solve(std::span<const double> b) const {
  require(factored_, "Cholesky::solve before successful factor()");
  const std::size_t n = l_.rows();
  require(b.size() == n, "Cholesky::solve: size mismatch");
  Vector x(b.begin(), b.end());
  // Forward substitution L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double value = x[i];
    for (std::size_t k = 0; k < i; ++k) value -= l_(i, k) * x[k];
    x[i] = value / l_(i, i);
  }
  // Back substitution L^T x = y.
  for (std::size_t i = n; i-- > 0;) {
    double value = x[i];
    for (std::size_t k = i + 1; k < n; ++k) value -= l_(k, i) * x[k];
    x[i] = value / l_(i, i);
  }
  return x;
}

FactorStatus Ldlt::factor(const DenseMatrix& a, double pivot_tolerance) {
  require(a.rows() == a.cols(), "Ldlt: matrix must be square");
  const std::size_t n = a.rows();
  l_ = DenseMatrix(n, n);
  d_.assign(n, 0.0);
  factored_ = false;
  for (std::size_t j = 0; j < n; ++j) {
    double dj = a(j, j);
    for (std::size_t k = 0; k < j; ++k) dj -= l_(j, k) * l_(j, k) * d_[k];
    if (std::abs(dj) < pivot_tolerance) return FactorStatus::kZeroPivot;
    d_[j] = dj;
    l_(j, j) = 1.0;
    for (std::size_t i = j + 1; i < n; ++i) {
      double value = a(i, j);
      for (std::size_t k = 0; k < j; ++k) value -= l_(i, k) * l_(j, k) * d_[k];
      l_(i, j) = value / dj;
    }
  }
  factored_ = true;
  return FactorStatus::kOk;
}

Vector Ldlt::solve(std::span<const double> b) const {
  require(factored_, "Ldlt::solve before successful factor()");
  const std::size_t n = l_.rows();
  require(b.size() == n, "Ldlt::solve: size mismatch");
  Vector x(b.begin(), b.end());
  for (std::size_t i = 0; i < n; ++i) {
    double value = x[i];
    for (std::size_t k = 0; k < i; ++k) value -= l_(i, k) * x[k];
    x[i] = value;  // L has unit diagonal
  }
  for (std::size_t i = 0; i < n; ++i) x[i] /= d_[i];
  for (std::size_t i = n; i-- > 0;) {
    double value = x[i];
    for (std::size_t k = i + 1; k < n; ++k) value -= l_(k, i) * x[k];
    x[i] = value;
  }
  return x;
}

FactorStatus HouseholderQr::factor(const DenseMatrix& a, double rank_tolerance) {
  require(a.rows() >= a.cols(), "HouseholderQr: requires rows >= cols");
  qr_ = a;
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  beta_.assign(n, 0.0);
  factored_ = false;
  for (std::size_t j = 0; j < n; ++j) {
    // Build the Householder reflector for column j.
    double norm_sq = 0.0;
    for (std::size_t i = j; i < m; ++i) norm_sq += qr_(i, j) * qr_(i, j);
    const double norm = std::sqrt(norm_sq);
    if (norm < rank_tolerance) return FactorStatus::kRankDeficient;
    const double alpha = qr_(j, j) >= 0.0 ? -norm : norm;
    const double v0 = qr_(j, j) - alpha;
    // v = (v0, qr(j+1..m-1, j)); beta = 2 / (v^T v).
    double vtv = v0 * v0;
    for (std::size_t i = j + 1; i < m; ++i) vtv += qr_(i, j) * qr_(i, j);
    if (vtv < rank_tolerance * rank_tolerance) {
      beta_[j] = 0.0;  // column already triangular
      qr_(j, j) = alpha;
      continue;
    }
    beta_[j] = 2.0 / vtv;
    // Apply the reflector to the trailing columns.
    for (std::size_t c = j + 1; c < n; ++c) {
      double proj = v0 * qr_(j, c);
      for (std::size_t i = j + 1; i < m; ++i) proj += qr_(i, j) * qr_(i, c);
      proj *= beta_[j];
      qr_(j, c) -= proj * v0;
      for (std::size_t i = j + 1; i < m; ++i) qr_(i, c) -= proj * qr_(i, j);
    }
    qr_(j, j) = alpha;
    // Store v (below diagonal); v0 is kept in a scaled form: normalize so the
    // stored sub-diagonal entries are v_i / v0 and fold v0 into beta.
    if (v0 != 0.0) {
      for (std::size_t i = j + 1; i < m; ++i) qr_(i, j) /= v0;
      beta_[j] *= v0 * v0;
    } else {
      beta_[j] = 0.0;
    }
  }
  factored_ = true;
  return FactorStatus::kOk;
}

Vector HouseholderQr::solve_least_squares(std::span<const double> b) const {
  require(factored_, "HouseholderQr::solve before successful factor()");
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  require(b.size() == m, "HouseholderQr::solve: size mismatch");
  Vector y(b.begin(), b.end());
  // Apply Q^T = H_{n-1} ... H_0 to b. Stored v has implicit v_j = 1.
  for (std::size_t j = 0; j < n; ++j) {
    if (beta_[j] == 0.0) continue;
    double proj = y[j];
    for (std::size_t i = j + 1; i < m; ++i) proj += qr_(i, j) * y[i];
    proj *= beta_[j];
    y[j] -= proj;
    for (std::size_t i = j + 1; i < m; ++i) y[i] -= proj * qr_(i, j);
  }
  // Back-substitute R x = y[0..n).
  Vector x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double value = y[i];
    for (std::size_t k = i + 1; k < n; ++k) value -= qr_(i, k) * x[k];
    x[i] = value / qr_(i, i);
  }
  return x;
}

std::optional<Vector> least_squares(const DenseMatrix& a, std::span<const double> b) {
  HouseholderQr qr;
  if (qr.factor(a) != FactorStatus::kOk) return std::nullopt;
  return qr.solve_least_squares(b);
}

}  // namespace gp::linalg
