// Scalar kernel tier: the portable reference implementations every vector
// tier must match bit for bit (dot_reassoc excepted — documented tolerance).
//
// The max-norm reductions run four independent running maxima and combine
// them at the end. A single running maximum is a loop-carried dependence of
// ~4-5 cycles per element (FP max cannot be auto-vectorized without
// -ffast-math because of its NaN ordering); four lanes make the loop
// throughput-bound instead. The reassociation is EXACT: max over
// non-negative values is associative and commutative and introduces no
// rounding, and NaN operands are dropped by std::max(best, x) in every lane
// exactly as in the single-chain loop — so results are bit-identical, and
// identical again under any other lane count (the vector tiers use 4 or 8).
#include <algorithm>
#include <cmath>
#include <cstddef>

#include "linalg/simd_kernels.hpp"

namespace gp::linalg::simd {
namespace {

double s_norm_inf(const double* a, std::size_t n) {
  double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    m0 = std::max(m0, std::abs(a[i]));
    m1 = std::max(m1, std::abs(a[i + 1]));
    m2 = std::max(m2, std::abs(a[i + 2]));
    m3 = std::max(m3, std::abs(a[i + 3]));
  }
  for (; i < n; ++i) m0 = std::max(m0, std::abs(a[i]));
  return std::max(std::max(m0, m1), std::max(m2, m3));
}

double s_inf_norm_scaled(const double* a, const double* scale, std::size_t n) {
  double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    m0 = std::max(m0, std::abs(a[i]) * scale[i]);
    m1 = std::max(m1, std::abs(a[i + 1]) * scale[i + 1]);
    m2 = std::max(m2, std::abs(a[i + 2]) * scale[i + 2]);
    m3 = std::max(m3, std::abs(a[i + 3]) * scale[i + 3]);
  }
  for (; i < n; ++i) m0 = std::max(m0, std::abs(a[i]) * scale[i]);
  return std::max(std::max(m0, m1), std::max(m2, m3));
}

double s_inf_norm_scaled_diff(const double* a, const double* b, const double* scale,
                              std::size_t n) {
  double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    m0 = std::max(m0, std::abs(a[i] - b[i]) * scale[i]);
    m1 = std::max(m1, std::abs(a[i + 1] - b[i + 1]) * scale[i + 1]);
    m2 = std::max(m2, std::abs(a[i + 2] - b[i + 2]) * scale[i + 2]);
    m3 = std::max(m3, std::abs(a[i + 3] - b[i + 3]) * scale[i + 3]);
  }
  for (; i < n; ++i) m0 = std::max(m0, std::abs(a[i] - b[i]) * scale[i]);
  return std::max(std::max(m0, m1), std::max(m2, m3));
}

double s_inf_norm_scaled_sum3(const double* a, const double* b, const double* c,
                              const double* scale, double post, std::size_t n) {
  double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    m0 = std::max(m0, std::abs(a[i] + b[i] + c[i]) * scale[i] * post);
    m1 = std::max(m1, std::abs(a[i + 1] + b[i + 1] + c[i + 1]) * scale[i + 1] * post);
    m2 = std::max(m2, std::abs(a[i + 2] + b[i + 2] + c[i + 2]) * scale[i + 2] * post);
    m3 = std::max(m3, std::abs(a[i + 3] + b[i + 3] + c[i + 3]) * scale[i + 3] * post);
  }
  for (; i < n; ++i) m0 = std::max(m0, std::abs(a[i] + b[i] + c[i]) * scale[i] * post);
  return std::max(std::max(m0, m1), std::max(m2, m3));
}

double s_diff_norm_inf(const double* a, const double* b, double* out, std::size_t n) {
  double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    out[i] = a[i] - b[i];
    out[i + 1] = a[i + 1] - b[i + 1];
    out[i + 2] = a[i + 2] - b[i + 2];
    out[i + 3] = a[i + 3] - b[i + 3];
    m0 = std::max(m0, std::abs(out[i]));
    m1 = std::max(m1, std::abs(out[i + 1]));
    m2 = std::max(m2, std::abs(out[i + 2]));
    m3 = std::max(m3, std::abs(out[i + 3]));
  }
  for (; i < n; ++i) {
    out[i] = a[i] - b[i];
    m0 = std::max(m0, std::abs(out[i]));
  }
  return std::max(std::max(m0, m1), std::max(m2, m3));
}

void s_inf_norm_scaled_residual(const double* a, const double* b, const double* scale,
                                std::size_t n, double* res, double* norm) {
  double r0 = 0.0, r1 = 0.0, r2 = 0.0, r3 = 0.0;
  double n0 = 0.0, n1 = 0.0, n2 = 0.0, n3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    r0 = std::max(r0, std::abs(a[i] - b[i]) * scale[i]);
    r1 = std::max(r1, std::abs(a[i + 1] - b[i + 1]) * scale[i + 1]);
    r2 = std::max(r2, std::abs(a[i + 2] - b[i + 2]) * scale[i + 2]);
    r3 = std::max(r3, std::abs(a[i + 3] - b[i + 3]) * scale[i + 3]);
    n0 = std::max(n0, std::max(std::abs(a[i]), std::abs(b[i])) * scale[i]);
    n1 = std::max(n1, std::max(std::abs(a[i + 1]), std::abs(b[i + 1])) * scale[i + 1]);
    n2 = std::max(n2, std::max(std::abs(a[i + 2]), std::abs(b[i + 2])) * scale[i + 2]);
    n3 = std::max(n3, std::max(std::abs(a[i + 3]), std::abs(b[i + 3])) * scale[i + 3]);
  }
  for (; i < n; ++i) {
    r0 = std::max(r0, std::abs(a[i] - b[i]) * scale[i]);
    n0 = std::max(n0, std::max(std::abs(a[i]), std::abs(b[i])) * scale[i]);
  }
  *res = std::max(std::max(r0, r1), std::max(r2, r3));
  *norm = std::max(std::max(n0, n1), std::max(n2, n3));
}

void s_inf_norm_scaled_residual3(const double* a, const double* b, const double* c,
                                 const double* scale, double post, std::size_t n, double* res,
                                 double* norm) {
  double r0 = 0.0, r1 = 0.0, r2 = 0.0, r3 = 0.0;
  double n0 = 0.0, n1 = 0.0, n2 = 0.0, n3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    r0 = std::max(r0, std::abs(a[i] + b[i] + c[i]) * scale[i] * post);
    r1 = std::max(r1, std::abs(a[i + 1] + b[i + 1] + c[i + 1]) * scale[i + 1] * post);
    r2 = std::max(r2, std::abs(a[i + 2] + b[i + 2] + c[i + 2]) * scale[i + 2] * post);
    r3 = std::max(r3, std::abs(a[i + 3] + b[i + 3] + c[i + 3]) * scale[i + 3] * post);
    n0 = std::max(n0, std::max(std::max(std::abs(a[i]), std::abs(b[i])), std::abs(c[i])) *
                          scale[i]);
    n1 = std::max(n1,
                  std::max(std::max(std::abs(a[i + 1]), std::abs(b[i + 1])),
                           std::abs(c[i + 1])) *
                      scale[i + 1]);
    n2 = std::max(n2,
                  std::max(std::max(std::abs(a[i + 2]), std::abs(b[i + 2])),
                           std::abs(c[i + 2])) *
                      scale[i + 2]);
    n3 = std::max(n3,
                  std::max(std::max(std::abs(a[i + 3]), std::abs(b[i + 3])),
                           std::abs(c[i + 3])) *
                      scale[i + 3]);
  }
  for (; i < n; ++i) {
    r0 = std::max(r0, std::abs(a[i] + b[i] + c[i]) * scale[i] * post);
    n0 = std::max(n0, std::max(std::max(std::abs(a[i]), std::abs(b[i])), std::abs(c[i])) *
                          scale[i]);
  }
  *res = std::max(std::max(r0, r1), std::max(r2, r3));
  // max-then-scale equals scale-then-max bitwise for post > 0 (monotone
  // rounding), matching the unfused per-element |.| * scale * post form.
  *norm = std::max(std::max(n0, n1), std::max(n2, n3)) * post;
}

void s_axpby(double av, const double* x, double bv, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = av * x[i] + bv * y[i];
}

double s_axpby_delta(double av, const double* src, double bv, double* x, double* delta,
                     std::size_t n) {
  double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double n0 = av * src[i] + bv * x[i];
    const double n1 = av * src[i + 1] + bv * x[i + 1];
    const double n2 = av * src[i + 2] + bv * x[i + 2];
    const double n3 = av * src[i + 3] + bv * x[i + 3];
    delta[i] = n0 - x[i];
    delta[i + 1] = n1 - x[i + 1];
    delta[i + 2] = n2 - x[i + 2];
    delta[i + 3] = n3 - x[i + 3];
    x[i] = n0;
    x[i + 1] = n1;
    x[i + 2] = n2;
    x[i + 3] = n3;
    m0 = std::max(m0, std::abs(delta[i]));
    m1 = std::max(m1, std::abs(delta[i + 1]));
    m2 = std::max(m2, std::abs(delta[i + 2]));
    m3 = std::max(m3, std::abs(delta[i + 3]));
  }
  for (; i < n; ++i) {
    const double next = av * src[i] + bv * x[i];
    delta[i] = next - x[i];
    x[i] = next;
    m0 = std::max(m0, std::abs(delta[i]));
  }
  return std::max(std::max(m0, m1), std::max(m2, m3));
}

void s_project_box_into(const double* x, const double* lo, const double* hi, double* out,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::min(std::max(x[i], lo[i]), hi[i]);
}

void s_admm_z_tilde(const double* z, const double* nu, const double* y, const double* rho,
                    double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = z[i] + (nu[i] - y[i]) / rho[i];
}

void s_admm_z_candidate_cached(double alpha, const double* z_tilde, const double* z,
                               const double* y_over_rho, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = alpha * z_tilde[i] + (1.0 - alpha) * z[i] + y_over_rho[i];
  }
}

void s_admm_dual_update(const double* rho, const double* zc, const double* zn, double* y,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = rho[i] * (zc[i] - zn[i]);
}

double s_admm_dual_update_delta(const double* rho, const double* zc, const double* zn,
                                double* y, double* delta, std::size_t n) {
  double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double n0 = rho[i] * (zc[i] - zn[i]);
    const double n1 = rho[i + 1] * (zc[i + 1] - zn[i + 1]);
    const double n2 = rho[i + 2] * (zc[i + 2] - zn[i + 2]);
    const double n3 = rho[i + 3] * (zc[i + 3] - zn[i + 3]);
    delta[i] = n0 - y[i];
    delta[i + 1] = n1 - y[i + 1];
    delta[i + 2] = n2 - y[i + 2];
    delta[i + 3] = n3 - y[i + 3];
    y[i] = n0;
    y[i + 1] = n1;
    y[i + 2] = n2;
    y[i + 3] = n3;
    m0 = std::max(m0, std::abs(delta[i]));
    m1 = std::max(m1, std::abs(delta[i + 1]));
    m2 = std::max(m2, std::abs(delta[i + 2]));
    m3 = std::max(m3, std::abs(delta[i + 3]));
  }
  for (; i < n; ++i) {
    const double next = rho[i] * (zc[i] - zn[i]);
    delta[i] = next - y[i];
    y[i] = next;
    m0 = std::max(m0, std::abs(delta[i]));
  }
  return std::max(std::max(m0, m1), std::max(m2, m3));
}

// Reassociated dot (4 stride-4 partial sums). Results differ from
// linalg::dot's single chain — and from the 4/8-lane vector tiers — within
// the documented |err| <= n * eps * sum|a_i b_i| bound. Bench cross-check
// lane only; the solver uses the exact dot.
double s_dot_reassoc(const double* a, const double* b, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  double total = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

// Scalar SELL SpMV: the portable reference the vector tiers match bit for
// bit (identical per-lane term sequences; the pads contribute ±0 no-ops).
void s_sell_multiply_into(const SellView& m, double alpha, const double* x, double* y) {
  for (std::int32_t c = 0; c < m.num_chunks; ++c) {
    const std::int64_t base = m.chunk_ptr[c];
    const std::int64_t width = (m.chunk_ptr[c + 1] - base) / kSellChunk;
    const std::int32_t r0 = c * kSellChunk;
    const std::int32_t live = std::min<std::int32_t>(kSellChunk, m.rows - r0);
    for (std::int32_t l = 0; l < live; ++l) {
      double acc = 0.0;
      for (std::int64_t j = 0; j < width; ++j) {
        const std::int64_t e = base + j * kSellChunk + l;
        const double xc = alpha * x[m.col_idx[e]];
        acc += m.values[e] * xc;
      }
      y[r0 + l] = acc;
    }
  }
}

}  // namespace

const KernelTable& scalar_table() {
  static const KernelTable table = [] {
    KernelTable t;
    t.norm_inf = &s_norm_inf;
    t.inf_norm_scaled = &s_inf_norm_scaled;
    t.inf_norm_scaled_diff = &s_inf_norm_scaled_diff;
    t.inf_norm_scaled_sum3 = &s_inf_norm_scaled_sum3;
    t.diff_norm_inf = &s_diff_norm_inf;
    t.inf_norm_scaled_residual = &s_inf_norm_scaled_residual;
    t.inf_norm_scaled_residual3 = &s_inf_norm_scaled_residual3;
    t.axpby = &s_axpby;
    t.axpby_delta = &s_axpby_delta;
    t.project_box_into = &s_project_box_into;
    t.admm_z_tilde = &s_admm_z_tilde;
    t.admm_z_candidate_cached = &s_admm_z_candidate_cached;
    t.admm_dual_update = &s_admm_dual_update;
    t.admm_dual_update_delta = &s_admm_dual_update_delta;
    t.dot_reassoc = &s_dot_reassoc;
    t.sell_multiply_into = &s_sell_multiply_into;
    return t;
  }();
  return table;
}

}  // namespace gp::linalg::simd
