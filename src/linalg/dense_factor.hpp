// Dense factorizations: Cholesky (SPD), LDL^T (symmetric quasi-definite),
// and Householder QR least squares.
//
// These back the dense interior-point QP solver and the AR(p) predictor fit.
#pragma once

#include <optional>

#include "linalg/dense_matrix.hpp"

namespace gp::linalg {

/// Result status for factorizations (expected run-time outcomes, per the
/// library's error-handling convention).
enum class FactorStatus {
  kOk,
  kNotPositiveDefinite,  // Cholesky hit a non-positive pivot
  kZeroPivot,            // LDL^T hit a (near-)zero pivot
  kRankDeficient,        // QR found a (near-)zero diagonal of R
};

/// Dense Cholesky factorization A = L L^T of a symmetric positive-definite
/// matrix. Only the lower triangle of the input is referenced.
class Cholesky {
 public:
  FactorStatus factor(const DenseMatrix& a);

  /// Solves A x = b; requires a successful factor(). Returns x.
  Vector solve(std::span<const double> b) const;

  const DenseMatrix& l() const { return l_; }

 private:
  DenseMatrix l_;
  bool factored_ = false;
};

/// Dense LDL^T factorization without pivoting. Intended for symmetric
/// quasi-definite matrices (e.g. regularized KKT systems), where the
/// factorization exists with a signed diagonal D.
class Ldlt {
 public:
  /// pivot_tolerance: |d_k| below this is reported as kZeroPivot.
  FactorStatus factor(const DenseMatrix& a, double pivot_tolerance = 1e-13);

  /// Solves A x = b; requires a successful factor(). Returns x.
  Vector solve(std::span<const double> b) const;

  std::span<const double> d() const { return d_; }

 private:
  DenseMatrix l_;
  Vector d_;
  bool factored_ = false;
};

/// Householder QR of an m x n matrix with m >= n.
class HouseholderQr {
 public:
  FactorStatus factor(const DenseMatrix& a, double rank_tolerance = 1e-12);

  /// Minimizes ||A x - b||_2; requires a successful factor(). Returns x (size n).
  Vector solve_least_squares(std::span<const double> b) const;

 private:
  DenseMatrix qr_;   // Householder vectors below the diagonal, R on/above
  Vector beta_;      // Householder scalars
  bool factored_ = false;
};

/// Convenience: least-squares solution of A x ~= b via Householder QR.
/// Returns nullopt when A is numerically rank-deficient.
std::optional<Vector> least_squares(const DenseMatrix& a, std::span<const double> b);

}  // namespace gp::linalg
