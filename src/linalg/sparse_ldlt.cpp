#include "linalg/sparse_ldlt.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gp::linalg {

namespace {
constexpr double kPivotTolerance = 1e-14;
}

SparseLdlt::Status SparseLdlt::factor(const SparseMatrix& upper) {
  return factor(upper, minimum_degree_ordering(upper));
}

SparseLdlt::Status SparseLdlt::factor(const SparseMatrix& upper, Permutation perm) {
  require(upper.rows() == upper.cols(), "SparseLdlt: matrix must be square");
  require(static_cast<std::int32_t>(perm.size()) == upper.rows(),
          "SparseLdlt: permutation size mismatch");
  n_ = upper.rows();
  perm_ = std::move(perm);
  inv_perm_ = invert_permutation(perm_);

  const SparseMatrix permuted = symmetric_permute_upper(upper, perm_);
  pattern_col_ptr_.assign(permuted.col_ptr().begin(), permuted.col_ptr().end());
  pattern_row_idx_.assign(permuted.row_idx().begin(), permuted.row_idx().end());

  // --- Symbolic: elimination tree and exact column counts of L. ---
  parent_.assign(static_cast<std::size_t>(n_), -1);
  std::vector<std::int32_t> l_nnz_per_col(static_cast<std::size_t>(n_), 0);
  std::vector<std::int32_t> flag(static_cast<std::size_t>(n_), -1);
  const auto col_ptr = permuted.col_ptr();
  const auto row_idx = permuted.row_idx();
  for (std::int32_t k = 0; k < n_; ++k) {
    parent_[static_cast<std::size_t>(k)] = -1;
    flag[static_cast<std::size_t>(k)] = k;
    for (std::int32_t p = col_ptr[k]; p < col_ptr[k + 1]; ++p) {
      std::int32_t i = row_idx[p];
      // Upper-triangular input guarantees i <= k.
      while (flag[static_cast<std::size_t>(i)] != k) {
        if (parent_[static_cast<std::size_t>(i)] == -1) parent_[static_cast<std::size_t>(i)] = k;
        ++l_nnz_per_col[static_cast<std::size_t>(i)];  // L(k, i) exists
        flag[static_cast<std::size_t>(i)] = k;
        i = parent_[static_cast<std::size_t>(i)];
      }
    }
  }
  l_col_ptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (std::int32_t c = 0; c < n_; ++c) {
    l_col_ptr_[static_cast<std::size_t>(c) + 1] =
        l_col_ptr_[static_cast<std::size_t>(c)] + l_nnz_per_col[static_cast<std::size_t>(c)];
  }

  return numeric_factor(permuted);
}

SparseLdlt::Status SparseLdlt::refactor(const SparseMatrix& upper) {
  if (l_col_ptr_.empty()) return Status::kNotFactored;
  require(upper.rows() == n_ && upper.cols() == n_, "SparseLdlt::refactor: shape mismatch");
  const SparseMatrix permuted = symmetric_permute_upper(upper, perm_);
  // The symbolic analysis is only valid for the exact pattern it was run on;
  // a changed pattern would silently corrupt L, so it is rejected here (the
  // previous factorization stays usable).
  const auto col_ptr = permuted.col_ptr();
  const auto row_idx = permuted.row_idx();
  if (!std::equal(col_ptr.begin(), col_ptr.end(), pattern_col_ptr_.begin(),
                  pattern_col_ptr_.end()) ||
      !std::equal(row_idx.begin(), row_idx.end(), pattern_row_idx_.begin(),
                  pattern_row_idx_.end())) {
    return Status::kPatternMismatch;
  }
  return numeric_factor(permuted);
}

SparseLdlt::Status SparseLdlt::numeric_factor(const SparseMatrix& permuted_upper) {
  const auto col_ptr = permuted_upper.col_ptr();
  const auto row_idx = permuted_upper.row_idx();
  const auto values = permuted_upper.values();

  l_row_idx_.assign(static_cast<std::size_t>(l_col_ptr_.back()), 0);
  l_values_.assign(static_cast<std::size_t>(l_col_ptr_.back()), 0.0);
  d_.assign(static_cast<std::size_t>(n_), 0.0);

  std::vector<std::int32_t> l_next(l_col_ptr_.begin(), l_col_ptr_.end() - 1);
  std::vector<std::int32_t> flag(static_cast<std::size_t>(n_), -1);
  std::vector<std::int32_t> pattern(static_cast<std::size_t>(n_), 0);
  Vector work(static_cast<std::size_t>(n_), 0.0);

  for (std::int32_t k = 0; k < n_; ++k) {
    // Scatter column k of the (permuted) upper triangle into the workspace
    // and compute the nonzero pattern of row k of L via etree paths.
    std::int32_t top = n_;
    flag[static_cast<std::size_t>(k)] = k;
    for (std::int32_t p = col_ptr[k]; p < col_ptr[k + 1]; ++p) {
      std::int32_t i = row_idx[p];
      work[static_cast<std::size_t>(i)] += values[p];
      std::int32_t len = 0;
      while (flag[static_cast<std::size_t>(i)] != k) {
        pattern[static_cast<std::size_t>(len++)] = i;
        flag[static_cast<std::size_t>(i)] = k;
        i = parent_[static_cast<std::size_t>(i)];
      }
      while (len > 0) pattern[static_cast<std::size_t>(--top)] = pattern[static_cast<std::size_t>(--len)];
    }

    double dk = work[static_cast<std::size_t>(k)];
    work[static_cast<std::size_t>(k)] = 0.0;

    // Up-looking sparse triangular solve over the pattern (in etree order).
    for (; top < n_; ++top) {
      const std::int32_t i = pattern[static_cast<std::size_t>(top)];
      const double yi = work[static_cast<std::size_t>(i)];
      work[static_cast<std::size_t>(i)] = 0.0;
      for (std::int32_t p = l_col_ptr_[static_cast<std::size_t>(i)];
           p < l_next[static_cast<std::size_t>(i)]; ++p) {
        work[static_cast<std::size_t>(l_row_idx_[static_cast<std::size_t>(p)])] -=
            l_values_[static_cast<std::size_t>(p)] * yi;
      }
      const double lki = yi / d_[static_cast<std::size_t>(i)];
      dk -= lki * yi;
      const auto slot = static_cast<std::size_t>(l_next[static_cast<std::size_t>(i)]++);
      l_row_idx_[slot] = k;
      l_values_[slot] = lki;
    }

    if (std::abs(dk) < kPivotTolerance) {
      status_ = Status::kZeroPivot;
      return status_;
    }
    d_[static_cast<std::size_t>(k)] = dk;
  }
  status_ = Status::kOk;
  return status_;
}

void SparseLdlt::solve_in_place(Vector& b) const {
  require(status_ == Status::kOk, "SparseLdlt::solve before successful factor()");
  require(b.size() == static_cast<std::size_t>(n_), "SparseLdlt::solve: size mismatch");
  // Permute into the persistent scratch (allocation-free after first use).
  solve_scratch_.resize(static_cast<std::size_t>(n_));
  Vector& x = solve_scratch_;
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = b[static_cast<std::size_t>(perm_[i])];
  }
  // L y = x (unit lower triangular, stored by columns).
  for (std::int32_t c = 0; c < n_; ++c) {
    const double xc = x[static_cast<std::size_t>(c)];
    if (xc == 0.0) continue;
    for (std::int32_t p = l_col_ptr_[static_cast<std::size_t>(c)];
         p < l_col_ptr_[static_cast<std::size_t>(c) + 1]; ++p) {
      x[static_cast<std::size_t>(l_row_idx_[static_cast<std::size_t>(p)])] -=
          l_values_[static_cast<std::size_t>(p)] * xc;
    }
  }
  // D z = y.
  for (std::int32_t i = 0; i < n_; ++i) x[static_cast<std::size_t>(i)] /= d_[static_cast<std::size_t>(i)];
  // L^T w = z.
  for (std::int32_t c = n_; c-- > 0;) {
    double total = x[static_cast<std::size_t>(c)];
    for (std::int32_t p = l_col_ptr_[static_cast<std::size_t>(c)];
         p < l_col_ptr_[static_cast<std::size_t>(c) + 1]; ++p) {
      total -= l_values_[static_cast<std::size_t>(p)] *
               x[static_cast<std::size_t>(l_row_idx_[static_cast<std::size_t>(p)])];
    }
    x[static_cast<std::size_t>(c)] = total;
  }
  // Inverse-permute back into the caller's vector (perm_[new] = old).
  for (std::size_t i = 0; i < x.size(); ++i) {
    b[static_cast<std::size_t>(perm_[i])] = x[i];
  }
}

Vector SparseLdlt::solve(std::span<const double> b) const {
  Vector x(b.begin(), b.end());
  solve_in_place(x);
  return x;
}

std::int64_t SparseLdlt::l_nnz() const { return static_cast<std::int64_t>(l_values_.size()); }

}  // namespace gp::linalg
