#include "linalg/simd_dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/error.hpp"
#include "linalg/simd_kernels.hpp"

namespace gp::linalg::simd {

namespace {

Tier probe_cpu() {
#if defined(__x86_64__) || defined(_M_X64)
  __builtin_cpu_init();
  // AVX-512 kernels use 512-bit and/or for |x| (VANDPD zmm is AVX512DQ).
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq")) {
    return Tier::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
#endif
  return Tier::kScalar;
}

/// Highest available tier <= request (availability = CPU + build support).
Tier clamp_to_available(Tier request) {
  for (int t = static_cast<int>(request); t > 0; --t) {
    if (tier_available(static_cast<Tier>(t))) return static_cast<Tier>(t);
  }
  return Tier::kScalar;
}

std::string& override_storage() {
  static std::string value;
  return value;
}

// -1 until the first active_tier() call resolves CPUID + GEOPLACE_SIMD. The
// first-use race is benign: every initializer computes the same value.
std::atomic<int> g_active{-1};

int init_active_tier() {
  Tier request = detected_tier();
  if (const char* env = std::getenv("GEOPLACE_SIMD")) {
    override_storage() = env;
    request = tier_from_name(env);
  }
  return static_cast<int>(clamp_to_available(request));
}

}  // namespace

Tier detected_tier() {
  static const Tier tier = probe_cpu();
  return tier;
}

bool tier_available(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
      return detected_tier() >= Tier::kAvx2 && avx2_table() != nullptr;
    case Tier::kAvx512:
      return detected_tier() >= Tier::kAvx512 && avx512_table() != nullptr;
  }
  return false;
}

Tier active_tier() {
  int t = g_active.load(std::memory_order_relaxed);
  if (t < 0) {
    t = init_active_tier();
    g_active.store(t, std::memory_order_relaxed);
  }
  return static_cast<Tier>(t);
}

Tier set_active_tier(Tier t) {
  const Tier chosen = clamp_to_available(t);
  g_active.store(static_cast<int>(chosen), std::memory_order_relaxed);
  return chosen;
}

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
  }
  return "scalar";
}

Tier tier_from_name(std::string_view name) {
  if (name == "scalar") return Tier::kScalar;
  if (name == "avx2") return Tier::kAvx2;
  if (name == "avx512") return Tier::kAvx512;
  require(false, "GEOPLACE_SIMD: unknown tier '" + std::string(name) +
                     "' (expected scalar|avx2|avx512)");
  return Tier::kScalar;
}

std::string_view env_override() {
  active_tier();  // ensure the env var has been read
  return override_storage();
}

const KernelTable& kernels() {
  switch (active_tier()) {
    case Tier::kAvx512:
      return *avx512_table();
    case Tier::kAvx2:
      return *avx2_table();
    case Tier::kScalar:
      break;
  }
  return scalar_table();
}

}  // namespace gp::linalg::simd
