// First-Fit-Decreasing bin packing.
//
// Section VI of the paper justifies treating data-center capacity as exact:
// "When VM sizes are multiples of each other, bin-packing can be solved
// optimally using First-Fit-Decrease (FFD) policy, and no resource is wasted
// during the process" (the GoGrid example, where each VM flavor is exactly
// twice the previous one). This module implements FFD so that claim can be
// validated empirically (see the ablation bench) and so the simulation can
// quantify packing waste for arbitrary VM mixes.
#pragma once

#include <vector>

namespace gp::binpack {

/// Result of packing items into fixed-capacity bins.
struct PackingResult {
  std::size_t bins_used = 0;
  std::vector<std::size_t> assignment;  ///< item index -> bin index
  std::vector<double> bin_loads;        ///< per-bin total size
  double waste_fraction = 0.0;          ///< unused capacity / total capacity used
};

/// Packs `sizes` into bins of capacity `capacity` using First-Fit-Decreasing.
/// Every size must satisfy 0 < size <= capacity.
PackingResult first_fit_decreasing(const std::vector<double>& sizes, double capacity);

/// Simple lower bound on the optimal bin count: ceil(total size / capacity).
std::size_t capacity_lower_bound(const std::vector<double>& sizes, double capacity);

/// True when every size divides the capacity and sizes form a divisibility
/// chain (each larger size is an integer multiple of each smaller one), the
/// structure under which FFD is optimal and waste-free for full loads
/// (GoGrid's power-of-two flavors are the motivating instance).
bool divisible_hierarchy(const std::vector<double>& sizes, double capacity);

}  // namespace gp::binpack
