#include "binpack/ffd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace gp::binpack {

PackingResult first_fit_decreasing(const std::vector<double>& sizes, double capacity) {
  require(capacity > 0.0, "first_fit_decreasing: capacity must be > 0");
  for (double s : sizes) {
    require(s > 0.0 && s <= capacity, "first_fit_decreasing: size must be in (0, capacity]");
  }
  // Sort item indices by decreasing size.
  std::vector<std::size_t> order(sizes.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return sizes[a] > sizes[b]; });

  PackingResult result;
  result.assignment.assign(sizes.size(), 0);
  constexpr double kEps = 1e-9;
  for (std::size_t item : order) {
    bool placed = false;
    for (std::size_t bin = 0; bin < result.bin_loads.size(); ++bin) {
      if (result.bin_loads[bin] + sizes[item] <= capacity + kEps) {
        result.bin_loads[bin] += sizes[item];
        result.assignment[item] = bin;
        placed = true;
        break;
      }
    }
    if (!placed) {
      result.bin_loads.push_back(sizes[item]);
      result.assignment[item] = result.bin_loads.size() - 1;
    }
  }
  result.bins_used = result.bin_loads.size();
  const double used_capacity = static_cast<double>(result.bins_used) * capacity;
  const double total_size = std::accumulate(sizes.begin(), sizes.end(), 0.0);
  result.waste_fraction =
      used_capacity > 0.0 ? (used_capacity - total_size) / used_capacity : 0.0;
  return result;
}

std::size_t capacity_lower_bound(const std::vector<double>& sizes, double capacity) {
  require(capacity > 0.0, "capacity_lower_bound: capacity must be > 0");
  const double total = std::accumulate(sizes.begin(), sizes.end(), 0.0);
  return static_cast<std::size_t>(std::ceil(total / capacity - 1e-12));
}

bool divisible_hierarchy(const std::vector<double>& sizes, double capacity) {
  require(capacity > 0.0, "divisible_hierarchy: capacity must be > 0");
  constexpr double kEps = 1e-9;
  auto divides = [&](double small, double large) {
    const double ratio = large / small;
    return std::abs(ratio - std::round(ratio)) < kEps;
  };
  std::vector<double> sorted = sizes;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] <= 0.0) return false;
    if (!divides(sorted[i], capacity)) return false;
    if (i + 1 < sorted.size() && !divides(sorted[i], sorted[i + 1])) return false;
  }
  return true;
}

}  // namespace gp::binpack
