#include "game/provider.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gp::game {

using linalg::Vector;

ProviderConfig make_random_provider(const topology::NetworkModel& network,
                                    const RandomProviderParams& params, Rng& rng) {
  require(params.horizon >= 1, "make_random_provider: horizon must be >= 1");
  require(!params.server_sizes.empty(), "make_random_provider: no server sizes");
  ProviderConfig config;
  config.model.network = network;
  // Redraw the SLA until every access network is reachable (a tight random
  // dbar may cut off distant networks entirely).
  for (int attempt = 0;; ++attempt) {
    config.model.sla.mu = rng.uniform(params.mu_min, params.mu_max);
    config.model.sla.max_latency_ms =
        rng.uniform(params.max_latency_min_ms, params.max_latency_max_ms);
    bool all_reachable = true;
    for (std::size_t v = 0; v < network.num_access_networks() && all_reachable; ++v) {
      bool reachable = false;
      for (std::size_t l = 0; l < network.num_datacenters() && !reachable; ++l) {
        reachable = std::isfinite(config.model.sla_coefficient(l, v));
      }
      all_reachable = reachable;
    }
    if (all_reachable) break;
    require(attempt < 200, "make_random_provider: cannot find a feasible SLA draw");
  }
  const std::size_t num_l = network.num_datacenters();
  const std::size_t num_v = network.num_access_networks();
  config.model.reconfig_cost.resize(num_l);
  for (double& c : config.model.reconfig_cost) {
    c = rng.uniform(params.reconfig_min, params.reconfig_max);
  }
  config.model.capacity.assign(num_l, 1e12);  // overridden by quotas in the game
  config.model.server_size = params.server_sizes[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(params.server_sizes.size()) - 1))];

  // Demand: random level per access network with a mild random walk in t.
  Vector level(num_v);
  for (double& d : level) d = rng.uniform(params.demand_min, params.demand_max);
  config.demand.assign(params.horizon, Vector(num_v, 0.0));
  for (std::size_t t = 0; t < params.horizon; ++t) {
    for (std::size_t v = 0; v < num_v; ++v) {
      if (t > 0) level[v] = std::max(1.0, level[v] * rng.uniform(0.9, 1.1));
      config.demand[t][v] = level[v];
    }
  }
  // Prices: constant per data center over the window.
  Vector price(num_l);
  for (double& p : price) p = rng.uniform(params.price_min, params.price_max);
  config.price.assign(params.horizon, price);

  const dspp::PairIndex pairs(config.model);
  config.initial_state.assign(pairs.num_pairs(), 0.0);
  return config;
}

}  // namespace gp::game
