// The resource-competition game and its equilibrium computation
// (Section VI, Algorithm 2 of the paper).
//
// N providers share data centers with capacities C^l. Each iteration, every
// provider solves its best-response DSPP against its current capacity quota
// C^i and reports the dual variable lambda^{il} of each capacity constraint.
// The coordinator then raises quotas where a provider's dual (congestion
// price) is high and renormalizes so per-DC quotas sum to C^l:
//
//     Cbar^i = C^i + alpha * lambda^i,      C^i := Cbar^i * C / sum_j Cbar^j
//
// iterating until total cost changes by less than epsilon (relative), the
// paper's stability criterion. Quota-infeasible intermediate states are
// handled with unserved-demand slacks (soft demand), so every best response
// is well-defined.
//
// The social-welfare problem (SWP) — the same joint program with a single
// shared capacity constraint — is solved directly as one QP; comparing its
// cost with the equilibrium cost gives the empirical price of anarchy /
// stability of Definitions 3 (Theorem 1 predicts PoS = 1).
#pragma once

#include <optional>

#include "game/provider.hpp"
#include "qp/admm_solver.hpp"

namespace gp::game {

/// Which quota update Algorithm 2's coordinator applies each iteration.
enum class QuotaUpdateRule {
  /// The paper's literal rule: Cbar^i = C^i + alpha * lambda^i with a FIXED
  /// alpha, then multiplicative renormalization onto the capacity simplex.
  /// Its effective step grows with the dual magnitude (and therefore with
  /// the prediction-window length), which is what produces the paper's
  /// Fig. 8 trend — and also why it can oscillate on hard instances.
  kPaperFixedStep,
  /// Stabilized exchange: capacity moves along mean-centred duals with a
  /// spread-normalized, diminishing step. Scale-invariant and provably
  /// convergent for the piecewise-linear dual landscape; the production
  /// default.
  kStabilized,
};

/// Knobs for Algorithm 2.
struct GameSettings {
  QuotaUpdateRule update_rule = QuotaUpdateRule::kStabilized;
  double epsilon = 0.05;            ///< relative cost-change convergence threshold
  double step_size = 0.2;           ///< kStabilized: max fraction of C^l exchanged per iter
  double step_decay = 0.08;         ///< kStabilized: alpha_t = alpha/(1 + decay*t)
                                    ///< (duals are piecewise-constant in the quota, so a
                                    ///< constant-step subgradient exchange oscillates)
  double paper_step_size = 0.05;    ///< kPaperFixedStep: the fixed alpha on raw duals
  int stable_iterations_required = 3;  ///< consecutive sub-epsilon changes before declaring
                                       ///< convergence (guards against early cost plateaus
                                       ///< while quotas are still being exchanged)
  int max_iterations = 500;
  double soft_demand_penalty = 5.0; ///< $ per unserved req/s (transient infeasibility)
  double min_quota_fraction = 1e-3; ///< quota floor as a fraction of C / N
  /// Parallel lanes for the per-iteration best responses (a Jacobi round:
  /// every response depends only on the quotas fixed at the top of the
  /// iteration, so they are computed concurrently). 0 = the global thread
  /// pool's width (GEOPLACE_THREADS / hardware concurrency). Results are
  /// bit-identical at any setting — each provider has its own solver and
  /// results land by provider index.
  std::size_t num_threads = 0;
  qp::AdmmSettings solver;
};

/// Outcome of the iterative equilibrium computation.
struct GameResult {
  bool converged = false;
  int iterations = 0;
  double total_cost = 0.0;                    ///< sum_i J^i at the final iterate
  std::vector<double> provider_costs;         ///< J^i
  std::vector<linalg::Vector> quotas;         ///< [i][l] final capacity split
  std::vector<dspp::WindowSolution> solutions;///< final best responses
  std::vector<double> cost_history;           ///< total cost after each iteration
  double total_unserved = 0.0;                ///< residual unserved demand (req/s-periods)
};

/// Solution of the social-welfare problem.
struct SocialWelfareResult {
  bool solved = false;
  double total_cost = 0.0;
  std::vector<double> provider_costs;
  std::vector<std::vector<linalg::Vector>> x;  ///< [i][t][pair]
};

/// The game itself (see file comment).
class CompetitionGame {
 public:
  /// All providers must share the window length; `capacity` is C^l for the
  /// shared data centers (same L as every provider's network).
  CompetitionGame(std::vector<ProviderConfig> providers, linalg::Vector capacity,
                  GameSettings settings = {});

  /// Runs Algorithm 2. Quotas start from `initial_quotas` when given
  /// ([i][l], each column summing to C^l) — the dynamic simulation warm-
  /// starts each period from the previous equilibrium — and from the equal
  /// split C/N otherwise.
  GameResult run(std::optional<std::vector<linalg::Vector>> initial_quotas = std::nullopt);

  /// Solves the SWP as a single joint QP (soft demand with the same penalty,
  /// so costs are comparable with run()).
  SocialWelfareResult solve_social_welfare();

  std::size_t num_providers() const { return providers_.size(); }
  const dspp::PairIndex& pairs(std::size_t i) const { return pair_index_[i]; }

 private:
  /// Best response of provider i under its quota; returns the solution.
  /// Thread-safe across DISTINCT i: each provider has its own persistent
  /// program and solver, so Jacobi rounds run concurrently and each solver
  /// keeps its own warm-start iterate and cached KKT structure across game
  /// iterations.
  dspp::WindowSolution best_response(std::size_t i, const linalg::Vector& quota);

  std::vector<ProviderConfig> providers_;
  std::vector<dspp::PairIndex> pair_index_;
  linalg::Vector capacity_;
  GameSettings settings_;
  std::size_t horizon_ = 0;
  /// One solver per provider: consecutive solves on a shared solver would
  /// belong to different providers' problems, which both poisons warm
  /// starts and defeats the structure cache.
  std::vector<qp::AdmmSolver> solvers_;
  /// Persistent best-response programs; quota changes are parameter updates.
  std::vector<std::optional<dspp::WindowProgram>> programs_;
  qp::AdmmSolver welfare_solver_;
};

/// Empirical efficiency ratio sum_i J^i(NE) / J(SWP) — the price of
/// anarchy/stability estimate of Definition 3 (>= 1 up to solver tolerance).
double efficiency_ratio(const GameResult& equilibrium, const SocialWelfareResult& welfare);

}  // namespace gp::game
