// A service provider participating in the resource-competition game
// (Section VI of the paper): its own SLA parameters (mu^i, dbar^i), server
// size s^i, reconfiguration weights c^{il}, demand forecast D^i and initial
// placement — everything needed to solve its best-response DSPP given a
// capacity quota.
#pragma once

#include "common/rng.hpp"
#include "dspp/window_program.hpp"

namespace gp::game {

/// One provider's private data. The model's `capacity` field is ignored by
/// the game (quotas override it); `server_size` is the s^i of eq. (16).
struct ProviderConfig {
  dspp::DsppModel model;
  linalg::Vector initial_state;          ///< per usable pair of this provider
  std::vector<linalg::Vector> demand;    ///< [t][v] over the game window
  std::vector<linalg::Vector> price;     ///< [t][l] over the game window
};

/// Parameters for sampling random providers (the paper generates
/// (mu^i, D^i_k, s^i, c^{il}, dbar^i) randomly for its Figs. 7-8).
struct RandomProviderParams {
  std::size_t horizon = 3;
  double mu_min = 50.0, mu_max = 150.0;
  double max_latency_min_ms = 80.0, max_latency_max_ms = 200.0;
  double demand_min = 50.0, demand_max = 300.0;     ///< per access network, req/s
  double reconfig_min = 0.1, reconfig_max = 2.0;    ///< c^{il}
  std::vector<double> server_sizes = {1.0, 2.0, 4.0};  ///< s^i drawn uniformly
  double price_min = 0.02, price_max = 0.12;        ///< $/server/period
};

/// Samples a provider over the given shared network. Demands follow a mild
/// random walk across the window; prices are constant per (provider, DC).
ProviderConfig make_random_provider(const topology::NetworkModel& network,
                                    const RandomProviderParams& params, Rng& rng);

}  // namespace gp::game
