#include "game/competition.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"

namespace gp::game {

using linalg::Triplet;
using linalg::Vector;

namespace {

/// Best responses are polished to near-exact KKT points: the quota exchange
/// is driven by the capacity duals.
qp::AdmmSettings best_response_settings(const GameSettings& settings) {
  qp::AdmmSettings solver_settings = settings.solver;
  solver_settings.polish = true;
  return solver_settings;
}

}  // namespace

CompetitionGame::CompetitionGame(std::vector<ProviderConfig> providers, Vector capacity,
                                 GameSettings settings)
    : providers_(std::move(providers)), capacity_(std::move(capacity)), settings_(settings),
      solvers_(providers_.size(), qp::AdmmSolver(best_response_settings(settings))),
      programs_(providers_.size()),
      welfare_solver_(best_response_settings(settings)) {
  require(!providers_.empty(), "CompetitionGame: need at least one provider");
  require(settings_.epsilon > 0.0, "CompetitionGame: epsilon must be > 0");
  require(settings_.step_size > 0.0, "CompetitionGame: step size must be > 0");
  require(settings_.soft_demand_penalty > 0.0,
          "CompetitionGame: soft demand penalty must be > 0 (quotas can be infeasible)");
  horizon_ = providers_.front().demand.size();
  const std::size_t num_l = providers_.front().model.num_datacenters();
  require(capacity_.size() == num_l, "CompetitionGame: capacity size != L");
  for (double c : capacity_) require(c > 0.0, "CompetitionGame: capacity must be > 0");
  pair_index_.reserve(providers_.size());
  for (const auto& provider : providers_) {
    require(provider.demand.size() == horizon_, "CompetitionGame: providers disagree on W");
    require(provider.price.size() == horizon_, "CompetitionGame: price horizon mismatch");
    require(provider.model.num_datacenters() == num_l,
            "CompetitionGame: providers disagree on the data-center set");
    pair_index_.emplace_back(provider.model);
    require(provider.initial_state.size() == pair_index_.back().num_pairs(),
            "CompetitionGame: initial state size mismatch");
  }
}

dspp::WindowSolution CompetitionGame::best_response(std::size_t i, const Vector& quota) {
  // Runs on a pool lane during Jacobi rounds: the span records which thread
  // served provider i, nested under the round's span on the caller.
  obs::Span span("game.best_response", static_cast<double>(i));
  const auto& provider = providers_[i];
  dspp::WindowInputs inputs;
  inputs.initial_state = provider.initial_state;
  inputs.demand = provider.demand;
  inputs.price = provider.price;
  inputs.capacity_override = quota;
  inputs.soft_demand_penalty = settings_.soft_demand_penalty;
  // Across game iterations only the quota changes, so after the first build
  // each call is a parameter update; with the solver's structure cache the
  // per-iteration setup cost (scaling, ordering, factorization) disappears.
  if (programs_[i]) {
    programs_[i]->update(provider.model, pair_index_[i], inputs);
  } else {
    programs_[i].emplace(provider.model, pair_index_[i], std::move(inputs));
  }
  dspp::WindowSolution solution = programs_[i]->solve(solvers_[i]);
  if (obs::metrics_enabled()) {
    obs::Registry::global().histogram("game.best_response_ms").record(span.elapsed_ms());
  }
  return solution;
}

GameResult CompetitionGame::run(std::optional<std::vector<Vector>> initial_quotas) {
  obs::Span run_span("game.run", static_cast<double>(providers_.size()));
  const std::size_t n = providers_.size();
  const std::size_t num_l = capacity_.size();

  // Quotas: caller-provided warm start, or the equal split C^i = C / N.
  std::vector<Vector> quotas;
  if (initial_quotas) {
    quotas = std::move(*initial_quotas);
    require(quotas.size() == n, "run: initial quota count != providers");
    for (const auto& quota : quotas) {
      require(quota.size() == num_l, "run: initial quota size != L");
      for (double q : quota) require(q > 0.0, "run: initial quotas must be > 0");
    }
  } else {
    quotas.assign(n, Vector(num_l, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t l = 0; l < num_l; ++l) {
        quotas[i][l] = capacity_[l] / static_cast<double>(n);
      }
    }
  }
  const double quota_floor_scale = settings_.min_quota_fraction / static_cast<double>(n);

  GameResult result;
  result.provider_costs.assign(n, 0.0);
  result.solutions.resize(n);
  double previous_cost = std::numeric_limits<double>::infinity();
  int stable_streak = 0;

  for (int iteration = 0; iteration < settings_.max_iterations; ++iteration) {
    obs::Span round_span("game.round", static_cast<double>(iteration));
    // --- Best responses and duals: a Jacobi round. Every response depends
    // only on the quotas fixed above, so the N solves run concurrently,
    // each on its own solver/program; results land by provider index so the
    // outcome is bit-identical at any thread count. ---
    parallel_for(
        0, n, [&](std::size_t i) { result.solutions[i] = best_response(i, quotas[i]); },
        settings_.num_threads);
    double total_cost = 0.0;
    std::vector<Vector> duals(n);
    for (std::size_t i = 0; i < n; ++i) {
      // A soft best response is always feasible; accept a max-iterations
      // iterate (the ADMM solution is a usable approximation and its duals
      // still point the quota update in the right direction), but a
      // certificate of infeasibility or a numerical failure is a bug.
      const auto status = result.solutions[i].status;
      ensure(status == qp::SolveStatus::kOptimal || status == qp::SolveStatus::kMaxIterations,
             "CompetitionGame: best response of provider " + std::to_string(i) +
                 " failed with status " + qp::to_string(status));
      result.provider_costs[i] = result.solutions[i].objective;
      total_cost += result.provider_costs[i];
      duals[i] = result.solutions[i].capacity_price();
    }
    result.cost_history.push_back(total_cost);
    result.iterations = iteration + 1;
    result.total_cost = total_cost;
    if (obs::tracing_enabled()) {
      obs::Tracer::global().counter("game.total_cost", total_cost);
    }
    if (obs::recording_enabled()) {
      obs::ConvergenceRecorder::local().push(
          "game.round", iteration + 1, total_cost,
          std::isfinite(previous_cost) ? total_cost - previous_cost : 0.0);
    }
    if (obs::audit::enabled() && std::isfinite(previous_cost)) {
      // Algorithm 2's descent property: a Jacobi round should not INCREASE
      // total cost beyond the convergence tolerance (quota exchange can
      // plateau, never climb, once responses are exact).
      const double slack = 10.0 * settings_.epsilon * std::abs(previous_cost) + 1e-9;
      obs::audit::check("game_monotone_cost", total_cost <= previous_cost + slack, total_cost,
                        previous_cost + slack);
    }
    if (obs::metrics_enabled() && std::isfinite(previous_cost)) {
      // Per-round best-response delta: how far the Jacobi round moved the
      // total cost, relative — the quantity the convergence test watches.
      obs::Registry::global()
          .histogram("game.round_cost_delta_rel")
          .record(std::abs(total_cost - previous_cost) /
                  std::max(std::abs(previous_cost), 1e-12));
    }

    // --- Convergence check: the paper's relative-cost criterion, demanded
    // for several consecutive iterations (one quiet iteration can be an
    // early plateau while quotas are still being exchanged). ---
    if (std::isfinite(previous_cost) &&
        std::abs(total_cost - previous_cost) <= settings_.epsilon * std::abs(previous_cost)) {
      ++stable_streak;
      if (stable_streak >= settings_.stable_iterations_required) {
        result.converged = true;
        break;
      }
    } else {
      stable_streak = 0;
    }
    previous_cost = total_cost;

    // --- Quota update (Algorithm 2, lines 7-8); see QuotaUpdateRule. ---
    for (std::size_t l = 0; l < num_l; ++l) {
      const double floor = quota_floor_scale * capacity_[l];
      if (settings_.update_rule == QuotaUpdateRule::kPaperFixedStep) {
        // Cbar^i = C^i + alpha lambda^i; C^i := Cbar^i * C / sum_j Cbar^j.
        double column_sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          quotas[i][l] =
              std::max(floor, quotas[i][l] + settings_.paper_step_size * duals[i][l]);
          column_sum += quotas[i][l];
        }
        ensure(column_sum > 0.0, "CompetitionGame: quota column collapsed");
        for (std::size_t i = 0; i < n; ++i) {
          quotas[i][l] = std::max(floor, quotas[i][l] * capacity_[l] / column_sum);
        }
        continue;
      }
      // kStabilized: move capacity along MEAN-CENTRED duals (from providers
      // whose marginal value lambda^{il} is below average to those above),
      // with the step normalized by the dual spread so at most `step_size`
      // of C^l moves per iteration, and diminishing over iterations. The
      // fixed point — equal duals across providers — is the socially
      // optimal split behind Theorem 1.
      double mean_dual = 0.0, max_dual = 0.0, min_dual = std::numeric_limits<double>::max();
      for (std::size_t i = 0; i < n; ++i) {
        mean_dual += duals[i][l];
        max_dual = std::max(max_dual, duals[i][l]);
        min_dual = std::min(min_dual, duals[i][l]);
      }
      mean_dual /= static_cast<double>(n);
      const double spread = max_dual - min_dual;
      if (spread <= 1e-12) continue;  // all marginal values equal: at rest
      const double step =
          settings_.step_size / (1.0 + settings_.step_decay * static_cast<double>(iteration));
      const double alpha = step * capacity_[l] / spread;
      double column_sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        quotas[i][l] = std::max(floor, quotas[i][l] + alpha * (duals[i][l] - mean_dual));
        column_sum += quotas[i][l];
      }
      // Flooring can perturb the sum; renormalize back onto the simplex.
      for (std::size_t i = 0; i < n; ++i) {
        quotas[i][l] = std::max(floor, quotas[i][l] * capacity_[l] / column_sum);
      }
    }
  }

  if (obs::recording_enabled() && !result.converged) {
    obs::ConvergenceRecorder::local().push("game.max_rounds", result.iterations,
                                           result.total_cost);
    obs::ConvergenceRecorder::dump_failure("game.max_rounds");
  }
  result.quotas = std::move(quotas);
  for (const auto& solution : result.solutions) {
    for (const auto& per_period : solution.unserved) {
      for (double value : per_period) result.total_unserved += value;
    }
  }
  auto& registry = obs::Registry::global();
  if (registry.enabled()) {
    registry.counter("game.runs").add(1);
    registry.counter("game.rounds").add(result.iterations);
    registry.histogram("game.rounds_to_equilibrium").record(result.iterations);
    registry.gauge("game.converged").set(result.converged ? 1.0 : 0.0);
  }
  return result;
}

SocialWelfareResult CompetitionGame::solve_social_welfare() {
  obs::Span span("game.social_welfare", static_cast<double>(providers_.size()));
  const std::size_t n = providers_.size();
  const std::size_t num_l = capacity_.size();

  // Per-provider window programs with effectively unconstrained private
  // capacity; the shared capacity rows are appended jointly below. The
  // builds are independent, so they run concurrently.
  std::vector<std::optional<dspp::WindowProgram>> programs(n);
  parallel_for(
      0, n,
      [&](std::size_t i) {
        dspp::WindowInputs inputs;
        inputs.initial_state = providers_[i].initial_state;
        inputs.demand = providers_[i].demand;
        inputs.price = providers_[i].price;
        inputs.capacity_override = Vector(num_l, 1e12);
        inputs.soft_demand_penalty = settings_.soft_demand_penalty;
        programs[i].emplace(providers_[i].model, pair_index_[i], std::move(inputs));
      },
      settings_.num_threads);

  // --- Assemble the joint QP: block-diagonal stack + shared capacity rows.
  std::size_t total_vars = 0, total_rows = 0;
  std::vector<std::size_t> var_offset(n), row_offset(n);
  for (std::size_t i = 0; i < n; ++i) {
    var_offset[i] = total_vars;
    row_offset[i] = total_rows;
    total_vars += programs[i]->problem().num_variables();
    total_rows += programs[i]->problem().num_constraints();
  }
  const std::size_t shared_rows = horizon_ * num_l;

  qp::QpProblem joint;
  joint.q.assign(total_vars, 0.0);
  joint.lower.assign(total_rows + shared_rows, 0.0);
  joint.upper.assign(total_rows + shared_rows, 0.0);
  // Each provider's triplet block is produced into its own slot (and its
  // q/bounds slices are disjoint), so the blocks assemble concurrently; the
  // sequential concatenation below keeps the triplet order — and therefore
  // the assembled matrices — independent of the thread count.
  std::vector<std::vector<Triplet>> p_blocks(n), a_blocks(n);
  parallel_for(
      0, n,
      [&](std::size_t i) {
        const auto& block = programs[i]->problem();
        const auto voff = static_cast<std::int32_t>(var_offset[i]);
        const auto roff = static_cast<std::int32_t>(row_offset[i]);
        // P block.
        const auto pc = block.p.col_ptr();
        const auto pr = block.p.row_idx();
        const auto pv = block.p.values();
        p_blocks[i].reserve(static_cast<std::size_t>(block.p.nnz()));
        for (std::int32_t c = 0; c < block.p.cols(); ++c) {
          for (std::int32_t e = pc[c]; e < pc[c + 1]; ++e) {
            p_blocks[i].push_back({pr[e] + voff, c + voff, pv[e]});
          }
        }
        for (std::size_t j = 0; j < block.q.size(); ++j) {
          joint.q[var_offset[i] + j] = block.q[j];
        }
        // A block.
        const auto ac = block.a.col_ptr();
        const auto ar = block.a.row_idx();
        const auto av = block.a.values();
        a_blocks[i].reserve(static_cast<std::size_t>(block.a.nnz()));
        for (std::int32_t c = 0; c < block.a.cols(); ++c) {
          for (std::int32_t e = ac[c]; e < ac[c + 1]; ++e) {
            a_blocks[i].push_back({ar[e] + roff, c + voff, av[e]});
          }
        }
        for (std::size_t r = 0; r < block.num_constraints(); ++r) {
          joint.lower[row_offset[i] + r] = block.lower[r];
          joint.upper[row_offset[i] + r] = block.upper[r];
        }
      },
      settings_.num_threads);
  std::vector<Triplet> p_triplets, a_triplets;
  for (std::size_t i = 0; i < n; ++i) {
    p_triplets.insert(p_triplets.end(), p_blocks[i].begin(), p_blocks[i].end());
    a_triplets.insert(a_triplets.end(), a_blocks[i].begin(), a_blocks[i].end());
  }
  // Shared capacity rows: sum_i sum_{pairs in l} s^i x^i_{t, pair} <= C^l.
  for (std::size_t t = 0; t < horizon_; ++t) {
    for (std::size_t l = 0; l < num_l; ++l) {
      const auto row = static_cast<std::int32_t>(total_rows + t * num_l + l);
      for (std::size_t i = 0; i < n; ++i) {
        for (const std::size_t pair : pair_index_[i].pairs_of_datacenter(l)) {
          a_triplets.push_back(
              {row, static_cast<std::int32_t>(var_offset[i] + programs[i]->x_variable(t, pair)),
               providers_[i].model.server_size});
        }
      }
      joint.lower[total_rows + t * num_l + l] = -qp::kInfinity;
      joint.upper[total_rows + t * num_l + l] = capacity_[l];
    }
  }
  joint.p = linalg::SparseMatrix::from_triplets(static_cast<std::int32_t>(total_vars),
                                                static_cast<std::int32_t>(total_vars),
                                                p_triplets);
  joint.a = linalg::SparseMatrix::from_triplets(
      static_cast<std::int32_t>(total_rows + shared_rows),
      static_cast<std::int32_t>(total_vars), a_triplets);

  const qp::QpResult raw = welfare_solver_.solve(joint);
  SocialWelfareResult result;
  if (!raw.ok()) return result;
  result.solved = true;
  result.total_cost = raw.objective;
  result.provider_costs.assign(n, 0.0);
  result.x.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    // Slice this provider's variables and re-evaluate its own objective.
    const auto& block = programs[i]->problem();
    Vector xi(block.num_variables());
    for (std::size_t j = 0; j < xi.size(); ++j) xi[j] = raw.x[var_offset[i] + j];
    result.provider_costs[i] = block.objective(xi);
    qp::QpResult sliced;
    sliced.status = qp::SolveStatus::kOptimal;
    sliced.x = std::move(xi);
    sliced.objective = result.provider_costs[i];
    result.x[i] = programs[i]->extract(sliced).x;
  }
  return result;
}

double efficiency_ratio(const GameResult& equilibrium, const SocialWelfareResult& welfare) {
  require(welfare.solved, "efficiency_ratio: SWP not solved");
  require(welfare.total_cost > 0.0, "efficiency_ratio: non-positive SWP cost");
  return equilibrium.total_cost / welfare.total_cost;
}

}  // namespace gp::game
