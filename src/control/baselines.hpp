// Baseline placement controllers used by the ablation benches.
//
// The paper's contribution is the *dynamic* MPC controller; these baselines
// embody the strategies it implicitly argues against:
//   - StaticController: provision once (for a reference demand, e.g. the
//     peak) and never reconfigure — the classic static replica placement.
//   - ReactiveController: re-solve a one-period cost-minimal placement for
//     the demand observed right now, with no prediction and no
//     reconfiguration penalty (a myopic W = 1, c = 0 policy).
#pragma once

#include "dspp/window_program.hpp"
#include "qp/admm_solver.hpp"

namespace gp::control {

/// Common minimal interface shared with MpcController::step semantics:
/// given x_k, observed demand and price, produce u_k.
struct BaselineStepResult {
  bool solved = false;
  linalg::Vector control;
  linalg::Vector next_state;
};

/// Provisions a fixed allocation once and holds it (see file comment).
class StaticController {
 public:
  /// The fixed target is the cheapest placement for `reference_demand` at
  /// `reference_price`, computed at construction.
  StaticController(dspp::DsppModel model, const linalg::Vector& reference_demand,
                   const linalg::Vector& reference_price);

  /// Moves the state to the fixed target in one step (first call), then
  /// holds (u = 0 forever after).
  BaselineStepResult step(const linalg::Vector& state, const linalg::Vector& demand,
                          const linalg::Vector& price);

  const dspp::PairIndex& pairs() const { return pairs_; }
  const linalg::Vector& target() const { return target_; }

 private:
  dspp::DsppModel model_;
  dspp::PairIndex pairs_;
  linalg::Vector target_;
};

/// Myopically matches the currently observed demand at minimal cost.
class ReactiveController {
 public:
  explicit ReactiveController(dspp::DsppModel model);

  BaselineStepResult step(const linalg::Vector& state, const linalg::Vector& demand,
                          const linalg::Vector& price);

  const dspp::PairIndex& pairs() const { return pairs_; }

 private:
  dspp::DsppModel model_;  ///< with reconfiguration costs zeroed
  dspp::PairIndex pairs_;
  qp::AdmmSolver solver_;
};

}  // namespace gp::control
