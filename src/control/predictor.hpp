// Demand / price prediction models for the analysis-and-prediction module
// (Section III of the paper).
//
// The paper's controller is "generic and can work with any demand prediction
// techniques"; it evaluates an autoregressive (AR) model in Figs. 8-10 and
// mentions seasonal/historical prediction for daily patterns. SeriesPredictor
// is the common interface: observe() feeds one measurement per control
// period, forecast(h) returns the next h periods.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace gp::control {

/// Interface for multivariate time-series predictors (see file comment).
/// Forecast values are clamped to be non-negative (rates and prices).
class SeriesPredictor {
 public:
  virtual ~SeriesPredictor() = default;

  /// Feeds the measurement of the current period.
  virtual void observe(const linalg::Vector& value) = 0;

  /// Predicts the next `horizon` periods. Requires at least one prior
  /// observe() call. Result is [t][dimension], t = 0 the next period.
  virtual std::vector<linalg::Vector> forecast(std::size_t horizon) = 0;

  /// Deep copy (providers in the game each own an independent predictor).
  virtual std::unique_ptr<SeriesPredictor> clone() const = 0;
};

/// Perfect foresight: constructed with the full true trace, returns the
/// actual future values. The number of observe() calls defines "now".
/// Forecasts beyond the trace end repeat the final value (or wrap when
/// `wrap` is set, natural for cyclic daily traces).
class OraclePredictor final : public SeriesPredictor {
 public:
  explicit OraclePredictor(std::vector<linalg::Vector> trace, bool wrap = false);

  void observe(const linalg::Vector& value) override;
  std::vector<linalg::Vector> forecast(std::size_t horizon) override;
  std::unique_ptr<SeriesPredictor> clone() const override;

 private:
  std::vector<linalg::Vector> trace_;
  bool wrap_;
  std::size_t cursor_ = 0;  ///< number of observations so far
};

/// Naive persistence: predicts every future period equal to the last
/// observation.
class LastValuePredictor final : public SeriesPredictor {
 public:
  void observe(const linalg::Vector& value) override;
  std::vector<linalg::Vector> forecast(std::size_t horizon) override;
  std::unique_ptr<SeriesPredictor> clone() const override;

 private:
  linalg::Vector last_;
  bool seen_ = false;
};

/// Seasonal naive: predicts the value observed one season (e.g. one day)
/// ago; falls back to the last value until a full season of history exists.
/// This is the "predicted using historical traces" model of Section III.
class SeasonalNaivePredictor final : public SeriesPredictor {
 public:
  /// season_length: periods per season (e.g. 24 for hourly periods).
  explicit SeasonalNaivePredictor(std::size_t season_length);

  void observe(const linalg::Vector& value) override;
  std::vector<linalg::Vector> forecast(std::size_t horizon) override;
  std::unique_ptr<SeriesPredictor> clone() const override;

 private:
  std::size_t season_;
  std::vector<linalg::Vector> history_;
};

/// Autoregressive AR(p) model with intercept, refit by ridge-regularized
/// least squares over a sliding window at every forecast and iterated for
/// multi-step prediction (the predictor evaluated in the paper's
/// Figs. 8-10). Falls back to persistence until 2p + 2 observations exist.
///
/// Multi-step forecasts are DAMPED toward the last observation
/// (forecast_t = last + (raw_t - last) * damping^t): diurnal series fit
/// near-unit-root AR coefficients whose iterated extrapolation badly
/// overshoots at ramps; geometric damping is the standard remedy (damped
/// trend exponential smoothing uses the same device).
class ArPredictor final : public SeriesPredictor {
 public:
  /// order: p; window: observations kept for fitting (>= 2 * order + 2);
  /// damping in (0, 1], 1 = undamped; non_negative clamps forecasts at 0
  /// (rates/prices) — disable when modelling signed series (residuals).
  explicit ArPredictor(std::size_t order = 2, std::size_t window = 48,
                       double damping = 0.85, bool non_negative = true);

  void observe(const linalg::Vector& value) override;
  std::vector<linalg::Vector> forecast(std::size_t horizon) override;
  std::unique_ptr<SeriesPredictor> clone() const override;

 private:
  std::size_t order_;
  std::size_t window_;
  double damping_;
  bool non_negative_;
  std::deque<linalg::Vector> history_;
};

/// Seasonal + AR hybrid: forecasts the seasonal-naive baseline (the value
/// one season ago) plus an AR(p) model of the DESEASONALIZED residuals —
/// the natural upgrade for diurnal cloud demand, where the daily pattern
/// carries most of the signal and the AR captures short-term deviations
/// from it. Falls back to plain AR until a full season of history exists.
class SeasonalArPredictor final : public SeriesPredictor {
 public:
  explicit SeasonalArPredictor(std::size_t season_length, std::size_t order = 2,
                               std::size_t window = 48, double damping = 0.85);

  void observe(const linalg::Vector& value) override;
  std::vector<linalg::Vector> forecast(std::size_t horizon) override;
  std::unique_ptr<SeriesPredictor> clone() const override;

 private:
  std::size_t season_;
  ArPredictor residual_model_;
  SeasonalNaivePredictor seasonal_;
  std::vector<linalg::Vector> history_;
};

}  // namespace gp::control
