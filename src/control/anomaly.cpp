#include "control/anomaly.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gp::control {

AnomalyDetector::AnomalyDetector(double alpha, double threshold, std::size_t warmup)
    : alpha_(alpha), threshold_(threshold), warmup_(warmup) {
  require(alpha > 0.0 && alpha < 1.0, "AnomalyDetector: alpha must be in (0, 1)");
  require(threshold > 0.0, "AnomalyDetector: threshold must be > 0");
}

bool AnomalyDetector::observe(const linalg::Vector& value) {
  if (level_.empty()) {
    level_ = value;
    deviation_.assign(value.size(), 0.0);
    flags_.assign(value.size(), false);
    count_ = 1;
    anomalous_ = false;
    return false;
  }
  require(value.size() == level_.size(), "AnomalyDetector: dimension mismatch");
  ++count_;
  anomalous_ = false;
  for (std::size_t d = 0; d < value.size(); ++d) {
    const double residual = value[d] - level_[d];
    // Floor the deviation at a small fraction of the level so a perfectly
    // flat history does not flag microscopic jitter.
    const double scale = std::max(deviation_[d], 0.02 * std::abs(level_[d]) + 1e-9);
    const bool flagged = count_ > warmup_ && residual > threshold_ * scale;
    flags_[d] = flagged;
    anomalous_ = anomalous_ || flagged;
    // Anomalous samples update with reduced weight: a sustained surge is
    // adopted gradually instead of instantly poisoning the baseline.
    const double weight = flagged ? alpha_ * 0.25 : alpha_;
    level_[d] += weight * residual;
    deviation_[d] += weight * (std::abs(residual) - deviation_[d]);
  }
  return anomalous_;
}

}  // namespace gp::control
