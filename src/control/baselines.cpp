#include "control/baselines.hpp"

#include "common/error.hpp"
#include "dspp/provisioning.hpp"

namespace gp::control {

using linalg::Vector;

namespace {

dspp::DsppModel without_reconfig_cost(dspp::DsppModel model) {
  for (double& c : model.reconfig_cost) c = 0.0;
  return model;
}

}  // namespace

StaticController::StaticController(dspp::DsppModel model, const Vector& reference_demand,
                                   const Vector& reference_price)
    : model_(without_reconfig_cost(std::move(model))), pairs_(model_) {
  qp::AdmmSolver solver;
  target_ = dspp::min_cost_placement(model_, pairs_, reference_demand, reference_price, solver);
}

BaselineStepResult StaticController::step(const Vector& state, const Vector& demand,
                                          const Vector& price) {
  (void)demand;
  (void)price;
  require(state.size() == pairs_.num_pairs(), "StaticController::step: state size mismatch");
  BaselineStepResult result;
  result.solved = true;
  result.control = linalg::sub(target_, state);
  result.next_state = target_;
  return result;
}

ReactiveController::ReactiveController(dspp::DsppModel model)
    : model_(without_reconfig_cost(std::move(model))), pairs_(model_) {}

BaselineStepResult ReactiveController::step(const Vector& state, const Vector& demand,
                                            const Vector& price) {
  require(state.size() == pairs_.num_pairs(), "ReactiveController::step: state size mismatch");
  require(demand.size() == model_.num_access_networks(),
          "ReactiveController::step: demand size mismatch");
  require(price.size() == model_.num_datacenters(),
          "ReactiveController::step: price size mismatch");
  BaselineStepResult result;
  const Vector target = dspp::min_cost_placement(model_, pairs_, demand, price, solver_);
  result.solved = true;
  result.control = linalg::sub(target, state);
  result.next_state = target;
  return result;
}

}  // namespace gp::control
