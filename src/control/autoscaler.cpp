#include "control/autoscaler.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gp::control {

using linalg::Vector;

ThresholdAutoscaler::ThresholdAutoscaler(dspp::DsppModel model, AutoscalerSettings settings)
    : model_(std::move(model)), pairs_(model_), settings_(settings),
      cooldown_(pairs_.num_pairs(), 0) {
  require(settings_.high_utilization > settings_.low_utilization,
          "ThresholdAutoscaler: high watermark must exceed low watermark");
  require(settings_.high_utilization < 1.0 && settings_.low_utilization > 0.0,
          "ThresholdAutoscaler: watermarks must be inside (0, 1)");
  require(settings_.scale_out_factor > 1.0, "ThresholdAutoscaler: scale-out factor <= 1");
  require(settings_.scale_in_factor > 0.0 && settings_.scale_in_factor < 1.0,
          "ThresholdAutoscaler: scale-in factor outside (0, 1)");
  require(settings_.cooldown_periods >= 0, "ThresholdAutoscaler: negative cooldown");
}

ThresholdAutoscaler::StepResult ThresholdAutoscaler::step(const Vector& state,
                                                          const Vector& demand,
                                                          const Vector& price) {
  require(state.size() == pairs_.num_pairs(), "ThresholdAutoscaler: state size mismatch");
  require(demand.size() == model_.num_access_networks(),
          "ThresholdAutoscaler: demand size mismatch");
  require(price.size() == model_.num_datacenters(),
          "ThresholdAutoscaler: price size mismatch");

  Vector next = state;
  // Bootstrap: any access network with zero total allocation gets the
  // SLA-minimal allocation at its cheapest feasible pair.
  for (std::size_t v = 0; v < pairs_.num_access_networks(); ++v) {
    if (demand[v] <= 0.0) continue;
    double total_weight = 0.0;
    for (const std::size_t p : pairs_.pairs_of_access_network(v)) total_weight += next[p];
    if (total_weight > 0.0) continue;
    std::size_t cheapest = pairs_.pairs_of_access_network(v).front();
    for (const std::size_t p : pairs_.pairs_of_access_network(v)) {
      if (price[pairs_.datacenter_of(p)] < price[pairs_.datacenter_of(cheapest)]) cheapest = p;
    }
    next[cheapest] = std::max(1.0, pairs_.coefficient(cheapest) * demand[v]);
  }

  // Route on the (bootstrapped) allocation, then apply the thresholds.
  const dspp::Assignment assignment = dspp::assign_demand(pairs_, next, demand);
  for (std::size_t p = 0; p < pairs_.num_pairs(); ++p) {
    if (cooldown_[p] > 0) {
      --cooldown_[p];
      continue;
    }
    const double servers = next[p];
    if (servers <= 0.0) continue;
    const double utilization = assignment.rate[p] / (servers * model_.sla.mu);
    if (utilization > settings_.high_utilization) {
      next[p] = servers * settings_.scale_out_factor;
      cooldown_[p] = settings_.cooldown_periods;
    } else if (utilization < settings_.low_utilization) {
      next[p] = std::max({settings_.min_servers, servers * settings_.scale_in_factor,
                          assignment.rate[p] > 0.0 ? 1e-3 : 0.0});
      cooldown_[p] = settings_.cooldown_periods;
    }
  }

  // Respect data-center capacity: proportional trim per DC if exceeded.
  for (std::size_t l = 0; l < pairs_.num_datacenters(); ++l) {
    double used = 0.0;
    for (const std::size_t p : pairs_.pairs_of_datacenter(l)) {
      used += model_.server_size * next[p];
    }
    if (used > model_.capacity[l]) {
      const double shrink = model_.capacity[l] / used;
      for (const std::size_t p : pairs_.pairs_of_datacenter(l)) next[p] *= shrink;
    }
  }

  StepResult result;
  result.next_state = next;
  result.control = linalg::sub(next, state);
  return result;
}

}  // namespace gp::control
