// Demand anomaly detection for the monitoring module.
//
// Section III of the paper: "there are occasions where both demand and
// resource price can behave in an unexpectedly manner, e.g., flash-crowd
// effect or system failure" — and historical predictors are blind to them.
// AnomalyDetector keeps robust online statistics (EWMA level + EWMA
// absolute deviation per dimension) and flags observations that sit many
// deviations above the learned level. The guard reaction is simple and
// effective: while an anomaly is active, the controller plans against an
// inflated demand (an emergency cushion), which is algebraically the same
// as raising the paper's reservation ratio r for the duration.
#pragma once

#include "linalg/vector_ops.hpp"

namespace gp::control {

/// Online flash-crowd / spike detector (see file comment).
class AnomalyDetector {
 public:
  /// alpha: EWMA smoothing in (0, 1); threshold: deviations above the level
  /// that count as anomalous; warmup: observations before any flagging.
  explicit AnomalyDetector(double alpha = 0.25, double threshold = 4.0,
                           std::size_t warmup = 6);

  /// Feeds one observation; returns true when ANY dimension is anomalous.
  /// Anomalous observations update the statistics with a reduced weight so
  /// a sustained surge is eventually adopted as the new normal.
  bool observe(const linalg::Vector& value);

  /// Whether the last observation was anomalous.
  bool anomalous() const { return anomalous_; }

  /// Dimensions flagged by the last observation.
  const std::vector<bool>& anomalous_dimensions() const { return flags_; }

  std::size_t observations() const { return count_; }

 private:
  double alpha_;
  double threshold_;
  std::size_t warmup_;
  std::size_t count_ = 0;
  bool anomalous_ = false;
  linalg::Vector level_;      ///< EWMA mean per dimension
  linalg::Vector deviation_;  ///< EWMA absolute deviation per dimension
  std::vector<bool> flags_;
};

}  // namespace gp::control
