// The resource controller: Model Predictive Control for DSPP (Algorithm 1).
//
// At the start of each control period the controller observes the current
// demand and server prices, updates its predictors, builds the window
// program over the prediction horizon W, solves it, and applies only the
// first control u_{k|k} — exactly the receding-horizon loop of Algorithm 1.
#pragma once

#include <memory>
#include <optional>

#include "control/predictor.hpp"
#include "dspp/window_program.hpp"
#include "qp/admm_solver.hpp"

namespace gp::control {

/// Configuration of the MPC resource controller.
struct MpcSettings {
  std::size_t horizon = 5;            ///< W, prediction window length
  double soft_demand_penalty = 0.0;   ///< > 0 adds unserved-demand slacks
  /// Reuse solver state across control periods: the window program is kept
  /// and parameter-updated in place, the solver warm-starts from the
  /// previous solution, and the KKT structure cache (scaling, ordering,
  /// symbolic analysis) is carried over — consecutive windows share their
  /// sparsity pattern, so each MPC step becomes a parameter update plus a
  /// warm-started, refactorization-only (often factorization-free) solve.
  /// Disable only for benchmarking cold solves.
  bool reuse_solver_state = true;
  qp::AdmmSettings solver;            ///< underlying QP solver settings
};

/// Outcome of one control period.
struct MpcStepResult {
  bool solved = false;
  qp::SolveStatus status = qp::SolveStatus::kNumericalError;
  linalg::Vector control;      ///< u_{k|k} per pair (applied)
  linalg::Vector next_state;   ///< x_{k+1} = x_k + u_{k|k}
  double window_objective = 0.0;
  linalg::Vector capacity_price;  ///< max capacity dual per DC over the window
  double unserved_next = 0.0;     ///< planned unserved demand at k+1 (soft mode)
  int solver_iterations = 0;
};

/// Receding-horizon controller (see file comment). Thread-compatible: one
/// instance per control loop.
class MpcController {
 public:
  /// The controller copies `model`. Predictors are owned. The demand
  /// predictor forecasts V-dimensional rates; the price predictor forecasts
  /// L-dimensional $/server/period prices.
  MpcController(dspp::DsppModel model, MpcSettings settings,
                std::unique_ptr<SeriesPredictor> demand_predictor,
                std::unique_ptr<SeriesPredictor> price_predictor);

  /// One iteration of Algorithm 1. `state` is x_k per pair, `demand` the
  /// observed D_k (size V), `price` the observed p_k (size L).
  MpcStepResult step(const linalg::Vector& state, const linalg::Vector& demand,
                     const linalg::Vector& price);

  /// Restricts the capacity available to this provider (the game's quota
  /// C^i); nullopt restores the model's full capacity.
  void set_capacity_quota(std::optional<linalg::Vector> quota);

  const dspp::PairIndex& pairs() const { return pairs_; }
  const dspp::DsppModel& model() const { return model_; }
  const MpcSettings& settings() const { return settings_; }

  /// Setup-reuse counters of the underlying ADMM solver (how many steps
  /// reused the cached KKT structure / skipped factorization outright).
  const qp::AdmmCacheStats& solver_cache_stats() const { return solver_.cache_stats(); }

  /// Minimal feasible allocation for a demand vector (cheapest placement
  /// with no reconfiguration cost) — useful for initializing x_0.
  linalg::Vector provision_for(const linalg::Vector& demand, const linalg::Vector& price);

 private:
  dspp::DsppModel model_;
  dspp::PairIndex pairs_;
  MpcSettings settings_;
  std::unique_ptr<SeriesPredictor> demand_predictor_;
  std::unique_ptr<SeriesPredictor> price_predictor_;
  std::optional<linalg::Vector> quota_;
  qp::AdmmSolver solver_;
  /// Persistent window program (reuse_solver_state): built on the first
  /// step, parameter-updated on every later one.
  std::optional<dspp::WindowProgram> program_;
  /// One-step-ahead demand forecast from the previous step (empty before the
  /// first step); compared against the observed demand to measure predictor
  /// error when metrics are enabled.
  linalg::Vector last_demand_forecast_;
};

}  // namespace gp::control
