#include "control/predictor.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/dense_factor.hpp"

namespace gp::control {

using linalg::Vector;

// --- OraclePredictor ---

OraclePredictor::OraclePredictor(std::vector<Vector> trace, bool wrap)
    : trace_(std::move(trace)), wrap_(wrap) {
  require(!trace_.empty(), "OraclePredictor: empty trace");
  const std::size_t dim = trace_.front().size();
  for (const auto& value : trace_) {
    require(value.size() == dim, "OraclePredictor: ragged trace");
  }
}

void OraclePredictor::observe(const Vector& value) {
  require(value.size() == trace_.front().size(), "OraclePredictor: dimension mismatch");
  ++cursor_;
}

std::vector<Vector> OraclePredictor::forecast(std::size_t horizon) {
  require(cursor_ >= 1, "OraclePredictor: forecast before any observation");
  std::vector<Vector> out;
  out.reserve(horizon);
  for (std::size_t t = 0; t < horizon; ++t) {
    std::size_t index = cursor_ + t;  // next period after cursor_-1 observations is trace_[cursor_]
    if (index >= trace_.size()) {
      index = wrap_ ? index % trace_.size() : trace_.size() - 1;
    }
    out.push_back(trace_[index]);
  }
  return out;
}

std::unique_ptr<SeriesPredictor> OraclePredictor::clone() const {
  return std::make_unique<OraclePredictor>(*this);
}

// --- LastValuePredictor ---

void LastValuePredictor::observe(const Vector& value) {
  last_ = value;
  seen_ = true;
}

std::vector<Vector> LastValuePredictor::forecast(std::size_t horizon) {
  require(seen_, "LastValuePredictor: forecast before any observation");
  return std::vector<Vector>(horizon, last_);
}

std::unique_ptr<SeriesPredictor> LastValuePredictor::clone() const {
  return std::make_unique<LastValuePredictor>(*this);
}

// --- SeasonalNaivePredictor ---

SeasonalNaivePredictor::SeasonalNaivePredictor(std::size_t season_length)
    : season_(season_length) {
  require(season_length >= 1, "SeasonalNaivePredictor: season must be >= 1");
}

void SeasonalNaivePredictor::observe(const Vector& value) {
  if (!history_.empty()) {
    require(value.size() == history_.front().size(),
            "SeasonalNaivePredictor: dimension mismatch");
  }
  history_.push_back(value);
}

std::vector<Vector> SeasonalNaivePredictor::forecast(std::size_t horizon) {
  require(!history_.empty(), "SeasonalNaivePredictor: forecast before any observation");
  std::vector<Vector> out;
  out.reserve(horizon);
  for (std::size_t t = 0; t < horizon; ++t) {
    // Future period index (0-based since the start of history).
    const std::size_t future = history_.size() + t;
    if (future >= season_) {
      // Use the most recent observation at the same phase of the season.
      std::size_t same_phase = future - season_;
      while (same_phase >= history_.size()) same_phase -= season_;
      out.push_back(history_[same_phase]);
    } else {
      out.push_back(history_.back());
    }
  }
  return out;
}

std::unique_ptr<SeriesPredictor> SeasonalNaivePredictor::clone() const {
  return std::make_unique<SeasonalNaivePredictor>(*this);
}

// --- ArPredictor ---

ArPredictor::ArPredictor(std::size_t order, std::size_t window, double damping,
                         bool non_negative)
    : order_(order), window_(window), damping_(damping), non_negative_(non_negative) {
  require(order >= 1, "ArPredictor: order must be >= 1");
  require(window >= 2 * order + 2, "ArPredictor: window must be >= 2 * order + 2");
  require(damping > 0.0 && damping <= 1.0, "ArPredictor: damping must be in (0, 1]");
}

void ArPredictor::observe(const Vector& value) {
  if (!history_.empty()) {
    require(value.size() == history_.front().size(), "ArPredictor: dimension mismatch");
  }
  history_.push_back(value);
  while (history_.size() > window_) history_.pop_front();
}

std::vector<Vector> ArPredictor::forecast(std::size_t horizon) {
  require(!history_.empty(), "ArPredictor: forecast before any observation");
  const std::size_t dim = history_.front().size();
  std::vector<Vector> out(horizon, Vector(dim, 0.0));

  const std::size_t samples =
      history_.size() > order_ ? history_.size() - order_ : 0;
  for (std::size_t d = 0; d < dim; ++d) {
    // Extract the scalar series for this dimension.
    Vector series(history_.size());
    for (std::size_t i = 0; i < history_.size(); ++i) series[i] = history_[i][d];

    Vector coefficients;  // [intercept, phi_1 .. phi_p]
    bool fitted = false;
    if (samples >= order_ + 2) {
      linalg::DenseMatrix design(samples, order_ + 1);
      Vector target(samples);
      for (std::size_t row = 0; row < samples; ++row) {
        design(row, 0) = 1.0;
        for (std::size_t lag = 1; lag <= order_; ++lag) {
          design(row, lag) = series[row + order_ - lag];
        }
        target[row] = series[row + order_];
      }
      // Ridge-regularized normal equations: lag matrices of trending or
      // periodic series are frequently (near-)collinear, which plain least
      // squares rejects as rank-deficient; a tiny ridge keeps the fit
      // well-posed without visibly biasing the coefficients.
      const std::size_t cols = order_ + 1;
      linalg::DenseMatrix gram(cols, cols);
      Vector rhs(cols, 0.0);
      double scale = 0.0;
      for (std::size_t i = 0; i < cols; ++i) {
        for (std::size_t j = 0; j < cols; ++j) {
          double total = 0.0;
          for (std::size_t row = 0; row < samples; ++row) total += design(row, i) * design(row, j);
          gram(i, j) = total;
          if (i == j) scale = std::max(scale, total);
        }
        double total = 0.0;
        for (std::size_t row = 0; row < samples; ++row) total += design(row, i) * target[row];
        rhs[i] = total;
      }
      const double ridge = 1e-8 * std::max(scale, 1.0);
      for (std::size_t i = 0; i < cols; ++i) gram(i, i) += ridge;
      linalg::Cholesky chol;
      if (chol.factor(gram) == linalg::FactorStatus::kOk) {
        coefficients = chol.solve(rhs);
        fitted = true;
      }
    }
    if (!fitted) {
      // Persistence fallback.
      const double fallback =
          non_negative_ ? std::max(0.0, series.back()) : series.back();
      for (std::size_t t = 0; t < horizon; ++t) out[t][d] = fallback;
      continue;
    }
    // Iterated multi-step forecast. Iterating a fitted AR can diverge when
    // the estimated roots fall outside the unit circle (common on short
    // windows of ramping data), so forecasts are clamped into an envelope
    // around the observed range — a standard stability safeguard.
    double max_observed = 0.0;
    for (double value : series) max_observed = std::max(max_observed, std::abs(value));
    const double ceiling = 3.0 * std::max(max_observed, 1e-12);
    Vector lags(order_);
    for (std::size_t lag = 1; lag <= order_; ++lag) {
      lags[lag - 1] = series[series.size() - lag];  // lags[0] = most recent
    }
    const double floor = non_negative_ ? 0.0 : -ceiling;
    const double last_observed = series.back();
    double damp = 1.0;  // damping^t, t = 0 for the first step
    for (std::size_t t = 0; t < horizon; ++t) {
      double next = coefficients[0];
      for (std::size_t lag = 1; lag <= order_; ++lag) next += coefficients[lag] * lags[lag - 1];
      next = std::min(std::max(floor, next), ceiling);
      // Iterate the raw AR state, but REPORT the damped forecast.
      for (std::size_t lag = order_; lag-- > 1;) lags[lag] = lags[lag - 1];
      lags[0] = next;
      out[t][d] = std::max(floor, last_observed + (next - last_observed) * damp);
      damp *= damping_;
    }
  }
  return out;
}

std::unique_ptr<SeriesPredictor> ArPredictor::clone() const {
  return std::make_unique<ArPredictor>(*this);
}

// --- SeasonalArPredictor ---

SeasonalArPredictor::SeasonalArPredictor(std::size_t season_length, std::size_t order,
                                         std::size_t window, double damping)
    : season_(season_length),
      residual_model_(order, window, damping, /*non_negative=*/false),
      seasonal_(season_length) {
  require(season_length >= 2, "SeasonalArPredictor: season must be >= 2");
}

void SeasonalArPredictor::observe(const Vector& value) {
  if (!history_.empty()) {
    require(value.size() == history_.front().size(),
            "SeasonalArPredictor: dimension mismatch");
  }
  seasonal_.observe(value);
  // The residual model only sees observations with a same-phase baseline:
  // residuals from the warm-up season would be raw values and would poison
  // the fit (iterated raw AR overshoots at demand ramps).
  if (history_.size() >= season_) {
    Vector residual = value;
    const Vector& baseline = history_[history_.size() - season_];
    for (std::size_t d = 0; d < residual.size(); ++d) residual[d] -= baseline[d];
    residual_model_.observe(residual);
  }
  history_.push_back(value);
}

std::vector<Vector> SeasonalArPredictor::forecast(std::size_t horizon) {
  require(!history_.empty(), "SeasonalArPredictor: forecast before any observation");
  const auto seasonal_forecast = seasonal_.forecast(horizon);
  if (history_.size() < season_ + 2) {
    // Warm-up: persistence (the safe default until the baseline and a few
    // residual samples exist).
    return std::vector<Vector>(horizon, history_.back());
  }
  auto residual_forecast = residual_model_.forecast(horizon);
  std::vector<Vector> out(horizon);
  for (std::size_t t = 0; t < horizon; ++t) {
    out[t] = seasonal_forecast[t];
    for (std::size_t d = 0; d < out[t].size(); ++d) {
      out[t][d] = std::max(0.0, out[t][d] + residual_forecast[t][d]);
    }
  }
  return out;
}

std::unique_ptr<SeriesPredictor> SeasonalArPredictor::clone() const {
  return std::make_unique<SeasonalArPredictor>(*this);
}

}  // namespace gp::control
