// Threshold autoscaler baseline — the rule-based scaling loop cloud
// platforms shipped for years (scale out when utilization crosses a high
// water mark, scale in below a low water mark, with multiplicative steps
// and a cooldown). It neither predicts nor optimizes prices, which is
// exactly what the paper's MPC controller improves on; the ablation bench
// compares them head to head.
#pragma once

#include "dspp/assignment.hpp"
#include "dspp/model.hpp"

namespace gp::control {

/// Tuning of the threshold loop (defaults mirror common cloud presets).
struct AutoscalerSettings {
  double high_utilization = 0.80;  ///< scale out above this (rho = lambda/mu)
  double low_utilization = 0.40;   ///< scale in below this
  double scale_out_factor = 1.5;   ///< multiplicative grow step
  double scale_in_factor = 0.8;    ///< multiplicative shrink step
  int cooldown_periods = 1;        ///< periods to wait between actions per pair
  double min_servers = 0.0;        ///< floor per loaded pair
};

/// Reactive utilization-threshold controller with the same step() shape as
/// the other baselines. Routing follows eq. (13) on the current allocation;
/// each (l, v) pair scales independently on its own utilization.
class ThresholdAutoscaler {
 public:
  ThresholdAutoscaler(dspp::DsppModel model, AutoscalerSettings settings = {});

  struct StepResult {
    linalg::Vector control;
    linalg::Vector next_state;
  };

  /// One control period: route `demand` over `state`, compare pair
  /// utilizations against the thresholds, scale. An access network with no
  /// allocation anywhere is bootstrapped at its cheapest feasible pair.
  StepResult step(const linalg::Vector& state, const linalg::Vector& demand,
                  const linalg::Vector& price);

  const dspp::PairIndex& pairs() const { return pairs_; }

 private:
  dspp::DsppModel model_;
  dspp::PairIndex pairs_;
  AutoscalerSettings settings_;
  std::vector<int> cooldown_;  ///< per pair, periods until next allowed action
};

}  // namespace gp::control
