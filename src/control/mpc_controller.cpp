#include "control/mpc_controller.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dspp/provisioning.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace gp::control {

using linalg::Vector;

MpcController::MpcController(dspp::DsppModel model, MpcSettings settings,
                             std::unique_ptr<SeriesPredictor> demand_predictor,
                             std::unique_ptr<SeriesPredictor> price_predictor)
    : model_(std::move(model)),
      pairs_(model_),
      settings_(settings),
      demand_predictor_(std::move(demand_predictor)),
      price_predictor_(std::move(price_predictor)),
      solver_([&settings] {
        // Consecutive windows share their sparsity pattern and differ only
        // in forecasts, so warm-starting from the previous solution is
        // always safe here and typically cuts iterations severalfold; the
        // structure cache turns the per-step setup into a refactorization
        // (or skips it outright when the KKT data is unchanged).
        qp::AdmmSettings solver_settings = settings.solver;
        solver_settings.auto_warm_start = settings.reuse_solver_state;
        solver_settings.cache_structure = settings.reuse_solver_state;
        return solver_settings;
      }()) {
  require(settings_.horizon >= 1, "MpcController: horizon must be >= 1");
  require(demand_predictor_ != nullptr, "MpcController: null demand predictor");
  require(price_predictor_ != nullptr, "MpcController: null price predictor");
}

void MpcController::set_capacity_quota(std::optional<Vector> quota) {
  if (quota) {
    require(quota->size() == model_.num_datacenters(),
            "set_capacity_quota: quota size != L");
    for (double q : *quota) require(q > 0.0, "set_capacity_quota: quota must be > 0");
  }
  quota_ = std::move(quota);
}

MpcStepResult MpcController::step(const Vector& state, const Vector& demand,
                                  const Vector& price) {
  require(state.size() == pairs_.num_pairs(), "MpcController::step: state size != pairs");
  require(demand.size() == model_.num_access_networks(),
          "MpcController::step: demand size != V");
  require(price.size() == model_.num_datacenters(), "MpcController::step: price size != L");

  obs::Span span("mpc.step");
  const bool metrics_on = obs::metrics_enabled();
  obs::TelemetryFrame* frame = obs::timeline_frame();
  if ((metrics_on || frame != nullptr) && !last_demand_forecast_.empty()) {
    // One-step-ahead predictor error: the forecast made last period for
    // "now" versus the demand just observed (relative L2).
    double err_sq = 0.0, ref_sq = 0.0;
    for (std::size_t v = 0; v < demand.size(); ++v) {
      const double diff = last_demand_forecast_[v] - demand[v];
      err_sq += diff * diff;
      ref_sq += demand[v] * demand[v];
    }
    const double rel_err = std::sqrt(err_sq) / std::max(std::sqrt(ref_sq), 1e-12);
    if (metrics_on) {
      obs::Registry::global().histogram("mpc.demand_forecast_rel_err").record(rel_err);
    }
    if (obs::tracing_enabled()) {
      obs::Tracer::global().counter("mpc.demand_forecast_rel_err", rel_err);
    }
    if (frame != nullptr) frame->forecast_rel_err = rel_err;
  }

  demand_predictor_->observe(demand);
  price_predictor_->observe(price);

  dspp::WindowInputs inputs;
  inputs.initial_state = state;
  inputs.demand = demand_predictor_->forecast(settings_.horizon);
  inputs.price = price_predictor_->forecast(settings_.horizon);
  inputs.capacity_override = quota_;
  inputs.soft_demand_penalty = settings_.soft_demand_penalty;
  if ((metrics_on || frame != nullptr) && !inputs.demand.empty()) {
    last_demand_forecast_ = inputs.demand.front();
  }

  // Fast path: the window shape is fixed for the controller's lifetime, so
  // after the first step only the parameters (forecasts, initial state,
  // quota) change — rewrite them in place instead of re-assembling the QP.
  if (settings_.reuse_solver_state && program_) {
    program_->update(model_, pairs_, inputs);
  } else {
    program_.emplace(model_, pairs_, std::move(inputs));
  }
  const dspp::WindowSolution solution = program_->solve(solver_);

  MpcStepResult result;
  result.status = solution.status;
  result.solver_iterations = solution.solver_iterations;
  if (!solution.ok()) {
    // Keep the previous allocation when the window program fails; the
    // caller can inspect `status` (e.g. primal infeasible under a quota).
    result.control.assign(pairs_.num_pairs(), 0.0);
    result.next_state = state;
  } else {
    result.solved = true;
    result.window_objective = solution.objective;
    result.control = solution.u.front();
    result.next_state = linalg::add(state, result.control);
    // Clamp solver noise: states are non-negative by construction.
    for (double& x : result.next_state) x = std::max(0.0, x);
    result.capacity_price = solution.capacity_price();
    if (!solution.unserved.empty()) {
      for (double value : solution.unserved.front()) result.unserved_next += value;
    }
  }
  if (frame != nullptr) {
    // Planned SLA-penalty cost for the applied period: the soft-constraint
    // price of the unserved demand the window solution accepts at k+1
    // (stays 0 under hard demand constraints).
    frame->cost_sla_penalty = settings_.soft_demand_penalty * result.unserved_next;
  }
  if (metrics_on) {
    auto& registry = obs::Registry::global();
    registry.counter("mpc.steps").add(1);
    if (!result.solved) registry.counter("mpc.failed_steps").add(1);
    registry.histogram("mpc.step_ms").record(span.elapsed_ms());
    registry.histogram("mpc.solver_iterations_per_step").record(result.solver_iterations);
  }
  return result;
}

Vector MpcController::provision_for(const Vector& demand, const Vector& price) {
  require(demand.size() == model_.num_access_networks(), "provision_for: demand size != V");
  require(price.size() == model_.num_datacenters(), "provision_for: price size != L");
  dspp::DsppModel scoped = model_;
  if (quota_) scoped.capacity = *quota_;
  return dspp::min_cost_placement(scoped, pairs_, demand, price, solver_);
}

}  // namespace gp::control
