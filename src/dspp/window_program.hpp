// Assembly of the DSPP window program (Section IV-D / V of the paper) as a
// sparse QP, plus extraction of the structured solution.
//
// For a window of W future periods, the decision vector is
//   z = [ x_1 .. x_W | u_0 .. u_{W-1} | (xi_1 .. xi_W) ]
// over the usable (l, v) pairs, where x_t are the allocations in effect
// during future period t, u_t the reconfigurations, and xi optional
// unserved-demand slacks (enabled by soft_demand_penalty > 0, used by the
// competition game where a provider's quota may be transiently infeasible).
//
// Objective:  sum_t  p_t . x_t  +  sum_t  c_l u_t^2  (+ penalty * xi)
// Constraints per period t:
//   state      x_t - x_{t-1} - u_{t-1} = 0        (x_0 = initial state)
//   demand     sum_l x_t^{lv} / a_lv (+ xi_t^v) >= D_t^v
//   capacity   sum_v s x_t^{lv} <= C^l
//   sign       x >= 0, xi >= 0 (u free)
//
// The capacity-row duals lambda_{t,l} >= 0 are exposed: they are the prices
// Algorithm 2 uses to negotiate quotas between providers.
#pragma once

#include <optional>

#include "dspp/model.hpp"
#include "qp/solver.hpp"

namespace gp::dspp {

/// Inputs that change every control period.
struct WindowInputs {
  linalg::Vector initial_state;             ///< x_0 per pair
  std::vector<linalg::Vector> demand;       ///< [t][v], t = 0..W-1 (periods k+1..k+W)
  std::vector<linalg::Vector> price;        ///< [t][l], $ per server per period
  std::optional<linalg::Vector> capacity_override;  ///< quota per DC (game); default C^l
  double soft_demand_penalty = 0.0;         ///< $ per unserved req/s per period; 0 = hard
};

/// Structured solution of a window program.
struct WindowSolution {
  qp::SolveStatus status = qp::SolveStatus::kNumericalError;
  std::vector<linalg::Vector> x;               ///< [t][pair]
  std::vector<linalg::Vector> u;               ///< [t][pair]
  std::vector<linalg::Vector> capacity_duals;  ///< [t][l], >= 0
  std::vector<linalg::Vector> unserved;        ///< [t][v] slack (empty when hard)
  double objective = 0.0;
  int solver_iterations = 0;

  bool ok() const { return status == qp::SolveStatus::kOptimal; }

  /// Marginal value of one unit of quota per data center: the sum of the
  /// capacity duals across the window (the congestion price lambda^{il}
  /// Algorithm 2 reports to the coordinator).
  linalg::Vector capacity_price() const;
};

/// Builds the QP once; solve with any qp::QpSolver and map back.
///
/// Receding-horizon and best-response callers solve the SAME program shape
/// every period with new data: update() rewrites only the parameters
/// (q, lower, upper) in place, keeping the P/A sparsity structure — which
/// lets a caching solver (AdmmSolver with cache_structure) skip scaling,
/// ordering and symbolic analysis, and often the factorization itself.
class WindowProgram {
 public:
  /// The PairIndex must have been built from the same model.
  WindowProgram(const DsppModel& model, const PairIndex& pairs, WindowInputs inputs);

  /// Parameter-only update: rewrites q, lower and upper for new inputs
  /// without re-assembling P or A. `model` and `pairs` must be the ones the
  /// program was built from (same pairs, horizon, reconfiguration costs,
  /// server size and soft/hard demand mode); new initial state, demand and
  /// price forecasts, capacity quota and penalty values are applied.
  void update(const DsppModel& model, const PairIndex& pairs, const WindowInputs& inputs);

  const qp::QpProblem& problem() const { return problem_; }
  std::size_t horizon() const { return horizon_; }
  std::size_t num_pairs() const { return num_pairs_; }

  /// Index of the x_{t, pair} variable within problem(). Used by the
  /// social-welfare builder to couple providers through shared capacity.
  std::size_t x_variable(std::size_t t, std::size_t pair) const;

  /// Index of the u_{t, pair} variable within problem().
  std::size_t u_variable(std::size_t t, std::size_t pair) const;

  /// Maps a raw solver result back into the structured window solution.
  WindowSolution extract(const qp::QpResult& result) const;

  /// Convenience: solve with the given solver and extract.
  WindowSolution solve(qp::QpSolver& solver) const;

 private:
  /// Shared parameter writer: fills q and the constraint bounds from the
  /// inputs (everything except the P/A structure). Inputs must be validated.
  void write_parameters(const DsppModel& model, const PairIndex& pairs,
                        const WindowInputs& inputs);
  /// Shape/value checks shared by the constructor and update().
  void validate_inputs(const WindowInputs& inputs) const;

  std::size_t num_pairs_ = 0;
  std::size_t num_l_ = 0;
  std::size_t num_v_ = 0;
  std::size_t horizon_ = 0;
  bool soft_ = false;
  // Variable offsets.
  std::size_t x_offset_ = 0;
  std::size_t u_offset_ = 0;
  std::size_t slack_offset_ = 0;
  // Constraint-row offsets.
  std::size_t demand_row_offset_ = 0;
  std::size_t capacity_row_offset_ = 0;
  qp::QpProblem problem_;
};

}  // namespace gp::dspp
