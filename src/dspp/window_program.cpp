#include "dspp/window_program.hpp"

#include <algorithm>
#include <span>

#include "common/error.hpp"

namespace gp::dspp {

using linalg::Triplet;
using linalg::Vector;

linalg::Vector WindowSolution::capacity_price() const {
  if (capacity_duals.empty()) return {};
  // The quota applies to every period of the window, so its marginal value
  // is the SUM of the per-period capacity duals (dJ*/dC^l).
  Vector price(capacity_duals.front().size(), 0.0);
  for (const auto& duals : capacity_duals) {
    for (std::size_t l = 0; l < price.size(); ++l) price[l] += duals[l];
  }
  return price;
}

void WindowProgram::validate_inputs(const WindowInputs& inputs) const {
  require(inputs.price.size() == horizon_, "WindowProgram: price horizon != demand horizon");
  require(inputs.initial_state.size() == num_pairs_,
          "WindowProgram: initial state size != pair count");
  for (const auto& d : inputs.demand) {
    require(d.size() == num_v_, "WindowProgram: demand vector size != V");
    for (double value : d) require(value >= 0.0, "WindowProgram: negative demand");
  }
  for (const auto& p : inputs.price) {
    require(p.size() == num_l_, "WindowProgram: price vector size != L");
  }
  require(inputs.soft_demand_penalty >= 0.0, "WindowProgram: negative demand penalty");
}

WindowProgram::WindowProgram(const DsppModel& model, const PairIndex& pairs,
                             WindowInputs inputs) {
  model.validate();
  num_pairs_ = pairs.num_pairs();
  num_l_ = pairs.num_datacenters();
  num_v_ = pairs.num_access_networks();
  horizon_ = inputs.demand.size();
  soft_ = inputs.soft_demand_penalty > 0.0;

  require(horizon_ >= 1, "WindowProgram: empty demand forecast");
  validate_inputs(inputs);

  const std::size_t w = horizon_;
  const std::size_t p_count = num_pairs_;
  x_offset_ = 0;
  u_offset_ = w * p_count;
  slack_offset_ = 2 * w * p_count;
  const std::size_t n = 2 * w * p_count + (soft_ ? w * num_v_ : 0);

  // Row layout: [states | demand | capacity | x >= 0 | slack >= 0].
  const std::size_t state_rows = w * p_count;
  demand_row_offset_ = state_rows;
  capacity_row_offset_ = demand_row_offset_ + w * num_v_;
  const std::size_t sign_row_offset = capacity_row_offset_ + w * num_l_;
  const std::size_t slack_row_offset = sign_row_offset + w * p_count;
  const std::size_t m = slack_row_offset + (soft_ ? w * num_v_ : 0);

  auto x_var = [&](std::size_t t, std::size_t pair) {
    return static_cast<std::int32_t>(x_offset_ + t * p_count + pair);
  };
  auto u_var = [&](std::size_t t, std::size_t pair) {
    return static_cast<std::int32_t>(u_offset_ + t * p_count + pair);
  };
  auto slack_var = [&](std::size_t t, std::size_t v) {
    return static_cast<std::int32_t>(slack_offset_ + t * num_v_ + v);
  };

  // --- Structure: P and A sparsity (values fixed by model/pairs). ---
  std::vector<Triplet> p_triplets;
  for (std::size_t t = 0; t < w; ++t) {
    for (std::size_t pair = 0; pair < p_count; ++pair) {
      const double c = model.reconfig_cost[pairs.datacenter_of(pair)];
      if (c > 0.0) {
        // (1/2) z'Pz with P_uu = 2c gives the paper's c * u^2.
        p_triplets.push_back({u_var(t, pair), u_var(t, pair), 2.0 * c});
      }
    }
  }
  problem_.p = linalg::SparseMatrix::from_triplets(static_cast<std::int32_t>(n),
                                                   static_cast<std::int32_t>(n), p_triplets);

  std::vector<Triplet> a_triplets;
  // State equations.
  for (std::size_t t = 0; t < w; ++t) {
    for (std::size_t pair = 0; pair < p_count; ++pair) {
      const auto row = static_cast<std::int32_t>(t * p_count + pair);
      a_triplets.push_back({row, x_var(t, pair), 1.0});
      a_triplets.push_back({row, u_var(t, pair), -1.0});
      if (t > 0) a_triplets.push_back({row, x_var(t - 1, pair), -1.0});
    }
  }
  // Demand rows: sum_l x / a (+ slack) >= D.
  for (std::size_t t = 0; t < w; ++t) {
    for (std::size_t v = 0; v < num_v_; ++v) {
      const auto row = static_cast<std::int32_t>(demand_row_offset_ + t * num_v_ + v);
      for (const std::size_t pair : pairs.pairs_of_access_network(v)) {
        a_triplets.push_back({row, x_var(t, pair), 1.0 / pairs.coefficient(pair)});
      }
      if (soft_) a_triplets.push_back({row, slack_var(t, v), 1.0});
    }
  }
  // Capacity rows: sum_v s * x <= C.
  for (std::size_t t = 0; t < w; ++t) {
    for (std::size_t l = 0; l < num_l_; ++l) {
      const auto row = static_cast<std::int32_t>(capacity_row_offset_ + t * num_l_ + l);
      for (const std::size_t pair : pairs.pairs_of_datacenter(l)) {
        a_triplets.push_back({row, x_var(t, pair), model.server_size});
      }
    }
  }
  // Sign constraints on x.
  for (std::size_t t = 0; t < w; ++t) {
    for (std::size_t pair = 0; pair < p_count; ++pair) {
      a_triplets.push_back({static_cast<std::int32_t>(sign_row_offset + t * p_count + pair),
                            x_var(t, pair), 1.0});
    }
  }
  // Sign constraints on slack.
  if (soft_) {
    for (std::size_t t = 0; t < w; ++t) {
      for (std::size_t v = 0; v < num_v_; ++v) {
        a_triplets.push_back({static_cast<std::int32_t>(slack_row_offset + t * num_v_ + v),
                              slack_var(t, v), 1.0});
      }
    }
  }
  problem_.a = linalg::SparseMatrix::from_triplets(static_cast<std::int32_t>(m),
                                                   static_cast<std::int32_t>(n), a_triplets);

  // --- Parameters: q and the bounds. ---
  problem_.q.assign(n, 0.0);
  problem_.lower.assign(m, 0.0);
  problem_.upper.assign(m, 0.0);
  write_parameters(model, pairs, inputs);
  problem_.validate();
}

void WindowProgram::update(const DsppModel& model, const PairIndex& pairs,
                           const WindowInputs& inputs) {
  require(pairs.num_pairs() == num_pairs_ && pairs.num_datacenters() == num_l_ &&
              pairs.num_access_networks() == num_v_,
          "WindowProgram::update: pair index does not match the built program");
  require(inputs.demand.size() == horizon_, "WindowProgram::update: horizon changed");
  require((inputs.soft_demand_penalty > 0.0) == soft_,
          "WindowProgram::update: soft/hard demand mode changed (rebuild required)");
  validate_inputs(inputs);
  write_parameters(model, pairs, inputs);
}

void WindowProgram::write_parameters(const DsppModel& model, const PairIndex& pairs,
                                     const WindowInputs& inputs) {
  // View, not copy: update() runs once per MPC step per player, and the
  // value_or form materialized a capacity vector on every call.
  const std::span<const double> capacity = inputs.capacity_override.has_value()
                                               ? std::span<const double>(*inputs.capacity_override)
                                               : std::span<const double>(model.capacity);
  require(capacity.size() == num_l_, "WindowProgram: capacity override size != L");

  const std::size_t w = horizon_;
  const std::size_t p_count = num_pairs_;
  const std::size_t sign_row_offset = capacity_row_offset_ + w * num_l_;
  const std::size_t slack_row_offset = sign_row_offset + w * p_count;

  // Objective: p_t on x, the penalty on slacks, nothing on u (the quadratic
  // reconfiguration term lives in P, which is structural).
  for (std::size_t t = 0; t < w; ++t) {
    for (std::size_t pair = 0; pair < p_count; ++pair) {
      problem_.q[x_offset_ + t * p_count + pair] =
          inputs.price[t][pairs.datacenter_of(pair)];
      problem_.q[u_offset_ + t * p_count + pair] = 0.0;
    }
    if (soft_) {
      for (std::size_t v = 0; v < num_v_; ++v) {
        problem_.q[slack_offset_ + t * num_v_ + v] = inputs.soft_demand_penalty;
      }
    }
  }
  // State equations: x_0 pins to the initial state, later rows to 0.
  for (std::size_t t = 0; t < w; ++t) {
    for (std::size_t pair = 0; pair < p_count; ++pair) {
      const std::size_t row = t * p_count + pair;
      const double rhs = t == 0 ? inputs.initial_state[pair] : 0.0;
      problem_.lower[row] = rhs;
      problem_.upper[row] = rhs;
    }
  }
  // Demand rows.
  for (std::size_t t = 0; t < w; ++t) {
    for (std::size_t v = 0; v < num_v_; ++v) {
      const std::size_t row = demand_row_offset_ + t * num_v_ + v;
      problem_.lower[row] = inputs.demand[t][v];
      problem_.upper[row] = qp::kInfinity;
    }
  }
  // Capacity rows.
  for (std::size_t t = 0; t < w; ++t) {
    for (std::size_t l = 0; l < num_l_; ++l) {
      const std::size_t row = capacity_row_offset_ + t * num_l_ + l;
      problem_.lower[row] = -qp::kInfinity;
      problem_.upper[row] = capacity[l];
    }
  }
  // Sign rows on x (and slack): [0, inf).
  for (std::size_t row = sign_row_offset; row < slack_row_offset; ++row) {
    problem_.lower[row] = 0.0;
    problem_.upper[row] = qp::kInfinity;
  }
  if (soft_) {
    for (std::size_t row = slack_row_offset; row < slack_row_offset + w * num_v_; ++row) {
      problem_.lower[row] = 0.0;
      problem_.upper[row] = qp::kInfinity;
    }
  }
}

std::size_t WindowProgram::x_variable(std::size_t t, std::size_t pair) const {
  require(t < horizon_ && pair < num_pairs_, "x_variable: index out of range");
  return x_offset_ + t * num_pairs_ + pair;
}

std::size_t WindowProgram::u_variable(std::size_t t, std::size_t pair) const {
  require(t < horizon_ && pair < num_pairs_, "u_variable: index out of range");
  return u_offset_ + t * num_pairs_ + pair;
}

WindowSolution WindowProgram::extract(const qp::QpResult& result) const {
  WindowSolution solution;
  solution.status = result.status;
  solution.objective = result.objective;
  solution.solver_iterations = result.iterations;
  if (result.x.size() != problem_.num_variables()) return solution;

  solution.x.assign(horizon_, Vector(num_pairs_, 0.0));
  solution.u.assign(horizon_, Vector(num_pairs_, 0.0));
  for (std::size_t t = 0; t < horizon_; ++t) {
    for (std::size_t pair = 0; pair < num_pairs_; ++pair) {
      // Clamp tiny ADMM negatives so downstream consumers see feasible x.
      solution.x[t][pair] = std::max(0.0, result.x[x_offset_ + t * num_pairs_ + pair]);
      solution.u[t][pair] = result.x[u_offset_ + t * num_pairs_ + pair];
    }
  }
  if (soft_) {
    solution.unserved.assign(horizon_, Vector(num_v_, 0.0));
    for (std::size_t t = 0; t < horizon_; ++t) {
      for (std::size_t v = 0; v < num_v_; ++v) {
        solution.unserved[t][v] = std::max(0.0, result.x[slack_offset_ + t * num_v_ + v]);
      }
    }
  }
  solution.capacity_duals.assign(horizon_, Vector(num_l_, 0.0));
  if (result.y.size() == problem_.num_constraints()) {
    for (std::size_t t = 0; t < horizon_; ++t) {
      for (std::size_t l = 0; l < num_l_; ++l) {
        // Capacity rows are upper bounds: duals are >= 0 at optimum; clamp
        // solver noise.
        solution.capacity_duals[t][l] =
            std::max(0.0, result.y[capacity_row_offset_ + t * num_l_ + l]);
      }
    }
  }
  return solution;
}

WindowSolution WindowProgram::solve(qp::QpSolver& solver) const {
  return extract(solver.solve(problem_));
}

}  // namespace gp::dspp
