// One-shot provisioning: the cheapest SLA-feasible placement for a single
// demand vector, ignoring reconfiguration. Used to initialize simulations,
// by the static/reactive baselines, and by MpcController::provision_for.
#pragma once

#include "dspp/window_program.hpp"

namespace gp::dspp {

/// Solves min p.x s.t. demand, capacity, x >= 0 for one period and returns
/// x per pair. Throws InvariantError when the solver fails (the problem is
/// feasible whenever total capacity can carry the demand).
linalg::Vector min_cost_placement(const DsppModel& model, const PairIndex& pairs,
                                  const linalg::Vector& demand, const linalg::Vector& price,
                                  qp::QpSolver& solver);

}  // namespace gp::dspp
