#include "dspp/model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gp::dspp {

void DsppModel::validate() const {
  const std::size_t num_l = network.num_datacenters();
  require(num_l >= 1, "DsppModel: need at least one data center");
  require(network.num_access_networks() >= 1, "DsppModel: need at least one access network");
  require(reconfig_cost.size() == num_l, "DsppModel: reconfig_cost size != L");
  require(capacity.size() == num_l, "DsppModel: capacity size != L");
  for (double c : reconfig_cost) require(c >= 0.0, "DsppModel: negative reconfiguration cost");
  for (double cap : capacity) require(cap > 0.0, "DsppModel: capacity must be > 0");
  require(server_size > 0.0, "DsppModel: server size must be > 0");
  require(sla.mu > 0.0, "DsppModel: mu must be > 0");
  require(sla.max_latency_ms > 0.0, "DsppModel: max latency must be > 0");
  require(sla.reservation_ratio >= 1.0, "DsppModel: reservation ratio must be >= 1");
  require(sla.percentile >= 0.0 && sla.percentile < 1.0, "DsppModel: percentile in [0, 1)");
  if (!max_latency_override_ms.empty()) {
    require(max_latency_override_ms.size() == num_l,
            "DsppModel: latency override row count != L");
    for (const auto& row : max_latency_override_ms) {
      require(row.size() == network.num_access_networks(),
              "DsppModel: latency override row size != V");
    }
  }
}

double DsppModel::max_latency_ms_for(std::size_t l, std::size_t v) const {
  if (l < max_latency_override_ms.size() && v < max_latency_override_ms[l].size() &&
      max_latency_override_ms[l][v] > 0.0) {
    return max_latency_override_ms[l][v];
  }
  return sla.max_latency_ms;
}

double DsppModel::sla_coefficient(std::size_t l, std::size_t v) const {
  queueing::SlaParams params;
  params.mu = sla.mu;
  params.network_latency = network.latency_ms(l, v) / 1000.0;
  params.max_latency = max_latency_ms_for(l, v) / 1000.0;
  params.reservation_ratio = sla.reservation_ratio;
  params.percentile = sla.percentile;
  return queueing::sla_coefficient(params);
}

PairIndex::PairIndex(const DsppModel& model) {
  model.validate();
  num_l_ = model.num_datacenters();
  num_v_ = model.num_access_networks();
  pair_of_.assign(num_l_, std::vector<std::int32_t>(num_v_, -1));
  by_access_network_.assign(num_v_, {});
  by_datacenter_.assign(num_l_, {});
  for (std::size_t l = 0; l < num_l_; ++l) {
    for (std::size_t v = 0; v < num_v_; ++v) {
      const double a = model.sla_coefficient(l, v);
      if (!std::isfinite(a)) continue;
      const std::size_t id = pairs_.size();
      pairs_.emplace_back(l, v);
      a_.push_back(a);
      pair_of_[l][v] = static_cast<std::int32_t>(id);
      by_access_network_[v].push_back(id);
      by_datacenter_[l].push_back(id);
    }
  }
  for (std::size_t v = 0; v < num_v_; ++v) {
    require(!by_access_network_[v].empty(),
            "PairIndex: access network " + std::to_string(v) +
                " has no data center able to meet the SLA");
  }
}

std::optional<std::size_t> PairIndex::pair_of(std::size_t l, std::size_t v) const {
  require(l < num_l_ && v < num_v_, "pair_of: index out of range");
  const std::int32_t id = pair_of_[l][v];
  if (id < 0) return std::nullopt;
  return static_cast<std::size_t>(id);
}

const std::vector<std::size_t>& PairIndex::pairs_of_access_network(std::size_t v) const {
  require(v < num_v_, "pairs_of_access_network: out of range");
  return by_access_network_[v];
}

const std::vector<std::size_t>& PairIndex::pairs_of_datacenter(std::size_t l) const {
  require(l < num_l_, "pairs_of_datacenter: out of range");
  return by_datacenter_[l];
}

}  // namespace gp::dspp
