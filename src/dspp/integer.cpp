#include "dspp/integer.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/error.hpp"

namespace gp::dspp {

using linalg::Triplet;
using linalg::Vector;

namespace {

constexpr double kIntegralEps = 1e-9;

double placement_cost(const PairIndex& pairs, const Vector& x, const Vector& price) {
  double cost = 0.0;
  for (std::size_t p = 0; p < pairs.num_pairs(); ++p) {
    cost += price[pairs.datacenter_of(p)] * x[p];
  }
  return cost;
}

/// Demand slack per access network: sum_l x/a - D (negative = violated).
Vector demand_slack(const PairIndex& pairs, const Vector& x, const Vector& demand) {
  Vector slack(pairs.num_access_networks(), 0.0);
  for (std::size_t v = 0; v < pairs.num_access_networks(); ++v) {
    double served = 0.0;
    for (const std::size_t p : pairs.pairs_of_access_network(v)) {
      served += x[p] / pairs.coefficient(p);
    }
    slack[v] = served - demand[v];
  }
  return slack;
}

}  // namespace

IntegerizeResult round_up_allocation(const DsppModel& model, const PairIndex& pairs,
                                     const Vector& continuous, const Vector& demand,
                                     const Vector& price) {
  require(continuous.size() == pairs.num_pairs(), "round_up_allocation: allocation size");
  require(demand.size() == pairs.num_access_networks(), "round_up_allocation: demand size");
  require(price.size() == pairs.num_datacenters(), "round_up_allocation: price size");

  IntegerizeResult result;
  result.continuous_objective = placement_cost(pairs, continuous, price);

  // --- Consolidate slivers first. A continuous optimum may spread tiny
  // fractions of a server across many pairs; ceiling each one would open a
  // whole server per sliver (catastrophic at small scale). Instead, move
  // any allocation below half a server onto the access network's largest
  // pair, scaled by the coefficient ratio so the SERVED demand x/a is
  // exactly preserved.
  Vector consolidated = continuous;
  for (std::size_t p = 0; p < pairs.num_pairs(); ++p) {
    require(continuous[p] >= -1e-9, "round_up_allocation: negative allocation");
    consolidated[p] = std::max(0.0, consolidated[p]);
  }
  for (std::size_t v = 0; v < pairs.num_access_networks(); ++v) {
    const auto& candidates = pairs.pairs_of_access_network(v);
    std::size_t anchor = candidates.front();
    for (const std::size_t p : candidates) {
      if (consolidated[p] > consolidated[anchor]) anchor = p;
    }
    if (consolidated[anchor] <= 0.0) continue;
    for (const std::size_t p : candidates) {
      if (p == anchor || consolidated[p] >= 0.5 || consolidated[p] <= 0.0) continue;
      consolidated[anchor] +=
          consolidated[p] * pairs.coefficient(anchor) / pairs.coefficient(p);
      consolidated[p] = 0.0;
    }
  }

  // Ceil (values already integral within tolerance stay put).
  Vector x(pairs.num_pairs(), 0.0);
  for (std::size_t p = 0; p < pairs.num_pairs(); ++p) {
    x[p] = std::ceil(consolidated[p] - kIntegralEps);
  }

  // Capacity repair: floor pairs while demand slack allows.
  Vector slack = demand_slack(pairs, x, demand);
  for (std::size_t l = 0; l < pairs.num_datacenters(); ++l) {
    double used = 0.0;
    for (const std::size_t p : pairs.pairs_of_datacenter(l)) used += model.server_size * x[p];
    while (used > model.capacity[l] + 1e-9) {
      // Candidate: the pair in this DC whose removal of one server leaves
      // the most demand slack.
      std::size_t best_pair = pairs.num_pairs();
      double best_margin = -1.0;
      for (const std::size_t p : pairs.pairs_of_datacenter(l)) {
        if (x[p] < 1.0 - kIntegralEps) continue;
        const std::size_t v = pairs.access_network_of(p);
        const double margin = slack[v] - 1.0 / pairs.coefficient(p);
        if (margin >= -1e-9 && margin > best_margin) {
          best_margin = margin;
          best_pair = p;
        }
      }
      if (best_pair == pairs.num_pairs()) {
        return result;  // infeasible: cannot shed capacity without demand loss
      }
      x[best_pair] -= 1.0;
      slack[pairs.access_network_of(best_pair)] -= 1.0 / pairs.coefficient(best_pair);
      used -= model.server_size;
    }
  }

  // Final feasibility audit.
  slack = demand_slack(pairs, x, demand);
  for (double s : slack) {
    if (s < -1e-6) return result;
  }
  result.feasible = true;
  result.allocation = std::move(x);
  result.objective = placement_cost(pairs, result.allocation, price);
  return result;
}

namespace {

/// Builds the single-period LP (as a QpProblem with P = 0) with per-variable
/// bounds appended as identity rows [n demand+capacity rows | n bound rows].
qp::QpProblem build_relaxation(const DsppModel& model, const PairIndex& pairs,
                               const Vector& demand, const Vector& price,
                               const Vector& lower_bounds, const Vector& upper_bounds) {
  const std::size_t n = pairs.num_pairs();
  const std::size_t num_v = pairs.num_access_networks();
  const std::size_t num_l = pairs.num_datacenters();
  qp::QpProblem problem;
  problem.p = linalg::SparseMatrix::from_triplets(static_cast<std::int32_t>(n),
                                                  static_cast<std::int32_t>(n), {});
  problem.q.assign(n, 0.0);
  for (std::size_t p = 0; p < n; ++p) problem.q[p] = price[pairs.datacenter_of(p)];

  std::vector<Triplet> triplets;
  const std::size_t m = num_v + num_l + n;
  problem.lower.assign(m, 0.0);
  problem.upper.assign(m, 0.0);
  for (std::size_t v = 0; v < num_v; ++v) {
    for (const std::size_t p : pairs.pairs_of_access_network(v)) {
      triplets.push_back({static_cast<std::int32_t>(v), static_cast<std::int32_t>(p),
                          1.0 / pairs.coefficient(p)});
    }
    problem.lower[v] = demand[v];
    problem.upper[v] = qp::kInfinity;
  }
  for (std::size_t l = 0; l < num_l; ++l) {
    for (const std::size_t p : pairs.pairs_of_datacenter(l)) {
      triplets.push_back({static_cast<std::int32_t>(num_v + l), static_cast<std::int32_t>(p),
                          model.server_size});
    }
    problem.lower[num_v + l] = -qp::kInfinity;
    problem.upper[num_v + l] = model.capacity[l];
  }
  for (std::size_t p = 0; p < n; ++p) {
    triplets.push_back({static_cast<std::int32_t>(num_v + num_l + p),
                        static_cast<std::int32_t>(p), 1.0});
    problem.lower[num_v + num_l + p] = lower_bounds[p];
    problem.upper[num_v + num_l + p] = upper_bounds[p];
  }
  problem.a = linalg::SparseMatrix::from_triplets(static_cast<std::int32_t>(m),
                                                  static_cast<std::int32_t>(n), triplets);
  return problem;
}

struct Node {
  Vector lower, upper;
  double bound = 0.0;  // parent LP objective (priority)
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const { return a.bound > b.bound; }
};

}  // namespace

IntegerPlacementResult solve_integer_placement(const DsppModel& model, const PairIndex& pairs,
                                               const Vector& demand, const Vector& price,
                                               qp::QpSolver& solver,
                                               const BranchAndBoundSettings& settings) {
  require(demand.size() == pairs.num_access_networks(), "solve_integer_placement: demand");
  require(price.size() == pairs.num_datacenters(), "solve_integer_placement: price");
  const std::size_t n = pairs.num_pairs();

  IntegerPlacementResult result;
  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
  open.push({Vector(n, 0.0), Vector(n, qp::kInfinity), 0.0});

  double incumbent = std::numeric_limits<double>::infinity();
  Vector incumbent_x;
  double proven_bound = std::numeric_limits<double>::infinity();

  while (!open.empty() && result.nodes_explored < settings.max_nodes) {
    Node node = open.top();
    open.pop();
    ++result.nodes_explored;
    if (node.bound >= incumbent - settings.optimality_gap) break;  // best-first: done

    const qp::QpProblem relaxation =
        build_relaxation(model, pairs, demand, price, node.lower, node.upper);
    const qp::QpResult lp = solver.solve(relaxation);
    if (lp.status == qp::SolveStatus::kPrimalInfeasible) continue;
    if (!lp.ok()) continue;  // treat numerical trouble as pruned (bound kept by parent)
    proven_bound = std::min(proven_bound, std::max(node.bound, lp.objective));
    if (lp.objective >= incumbent - settings.optimality_gap) continue;

    // Most fractional variable.
    std::size_t branch_var = n;
    double worst_fraction = settings.integrality_tolerance;
    for (std::size_t p = 0; p < n; ++p) {
      const double value = std::max(0.0, lp.x[p]);
      const double fraction = std::abs(value - std::round(value));
      if (fraction > worst_fraction) {
        worst_fraction = fraction;
        branch_var = p;
      }
    }
    if (branch_var == n) {
      // Integral: candidate incumbent (snap tiny noise).
      Vector x(n, 0.0);
      for (std::size_t p = 0; p < n; ++p) x[p] = std::round(std::max(0.0, lp.x[p]));
      const double objective = [&] {
        double total = 0.0;
        for (std::size_t p = 0; p < n; ++p) total += price[pairs.datacenter_of(p)] * x[p];
        return total;
      }();
      if (objective < incumbent) {
        incumbent = objective;
        incumbent_x = std::move(x);
      }
      continue;
    }

    const double value = lp.x[branch_var];
    Node down = node;
    down.bound = lp.objective;
    down.upper[branch_var] = std::floor(value);
    if (down.upper[branch_var] >= down.lower[branch_var] - 1e-12) open.push(std::move(down));
    Node up = node;
    up.bound = lp.objective;
    up.lower[branch_var] = std::ceil(value);
    open.push(std::move(up));
  }

  if (!std::isfinite(incumbent)) {
    result.status = open.empty() ? IntegerPlacementResult::Status::kInfeasible
                                 : IntegerPlacementResult::Status::kNodeLimit;
    return result;
  }
  result.allocation = std::move(incumbent_x);
  result.objective = incumbent;
  result.lower_bound = std::isfinite(proven_bound) ? std::min(proven_bound, incumbent)
                                                   : incumbent;
  result.status = (open.empty() || result.nodes_explored < settings.max_nodes)
                      ? IntegerPlacementResult::Status::kOptimal
                      : IntegerPlacementResult::Status::kNodeLimit;
  return result;
}

}  // namespace gp::dspp
