#include "dspp/assignment.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "queueing/mm1.hpp"

namespace gp::dspp {

double Assignment::total_unserved() const {
  double total = 0.0;
  for (double value : unserved) total += value;
  return total;
}

Assignment assign_demand(const PairIndex& pairs, const linalg::Vector& allocation,
                         const linalg::Vector& demand) {
  require(allocation.size() == pairs.num_pairs(), "assign_demand: allocation size mismatch");
  require(demand.size() == pairs.num_access_networks(), "assign_demand: demand size mismatch");
  Assignment assignment;
  assignment.rate.assign(pairs.num_pairs(), 0.0);
  assignment.unserved.assign(pairs.num_access_networks(), 0.0);
  for (std::size_t v = 0; v < pairs.num_access_networks(); ++v) {
    require(demand[v] >= 0.0, "assign_demand: negative demand");
    const auto& candidates = pairs.pairs_of_access_network(v);
    double weight_sum = 0.0;
    for (const std::size_t pair : candidates) {
      weight_sum += allocation[pair] / pairs.coefficient(pair);
    }
    if (weight_sum <= 0.0) {
      assignment.unserved[v] = demand[v];
      continue;
    }
    for (const std::size_t pair : candidates) {
      const double weight = allocation[pair] / pairs.coefficient(pair);
      assignment.rate[pair] = demand[v] * weight / weight_sum;
    }
  }
  return assignment;
}

SlaReport evaluate_sla(const DsppModel& model, const PairIndex& pairs,
                       const linalg::Vector& allocation, const Assignment& assignment,
                       double relative_tolerance) {
  require(relative_tolerance >= 0.0, "evaluate_sla: negative tolerance");
  require(allocation.size() == pairs.num_pairs(), "evaluate_sla: allocation size mismatch");
  require(assignment.rate.size() == pairs.num_pairs(), "evaluate_sla: assignment size mismatch");
  SlaReport report;
  double weighted_latency = 0.0;
  double finite_latency_rate = 0.0;  // served demand with a finite latency
  for (std::size_t pair = 0; pair < pairs.num_pairs(); ++pair) {
    const double rate = assignment.rate[pair];
    if (rate <= 0.0) continue;
    report.total_rate += rate;
    const std::size_t l = pairs.datacenter_of(pair);
    const std::size_t v = pairs.access_network_of(pair);
    const double servers = allocation[pair];
    const double network_ms = model.network.latency_ms(l, v);
    if (servers <= 0.0) {
      // Routed onto zero capacity cannot happen via assign_demand; treat as
      // violating if an external caller constructed such an assignment.
      report.violating_rate += rate;
      ++report.overloaded_pairs;
      continue;
    }
    const double per_server = rate / servers;  // lambda per server
    if (!queueing::stable(model.sla.mu, per_server)) {
      report.violating_rate += rate;
      ++report.overloaded_pairs;
      report.worst_latency_ms = std::numeric_limits<double>::infinity();
      continue;
    }
    const double kappa = queueing::percentile_factor(model.sla.percentile);
    const double latency_ms =
        network_ms + 1000.0 * kappa * queueing::mean_response_time(model.sla.mu, per_server);
    weighted_latency += rate * latency_ms;
    finite_latency_rate += rate;
    report.worst_latency_ms = std::max(report.worst_latency_ms, latency_ms);
    if (latency_ms > model.max_latency_ms_for(l, v) * (1.0 + relative_tolerance)) {
      report.violating_rate += rate;
    }
  }
  for (double unserved : assignment.unserved) {
    report.total_rate += unserved;
    report.violating_rate += unserved;
  }
  report.mean_latency_ms =
      finite_latency_rate > 0.0 ? weighted_latency / finite_latency_rate : 0.0;
  return report;
}

}  // namespace gp::dspp
