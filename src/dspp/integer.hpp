// Integer server allocations — the paper's stated future work.
//
// The DSPP relaxes server counts to the reals ("we can always obtain a
// feasible solution by rounding up the continuous values", Section IV) and
// its conclusion names the integer-valued problem, "particularly important
// for small scale data centers", as an open direction: "the MPC control
// framework would involve mixed integer programming (MIP) at each stage ...
// Finding an efficient approximation algorithm for this problem would be an
// interesting direction".
//
// This module provides both sides of that direction:
//   * round_up_allocation — the paper's own rounding argument, made
//     concrete: ceil every pair allocation (demand feasibility is
//     monotone, so rounding up never violates eq. (12)), then repair any
//     data-center capacity overruns by flooring the pairs with the
//     smallest fractional parts wherever the demand constraints allow it;
//   * solve_integer_placement — an exact branch-and-bound MIP for the
//     single-period placement (LP-relaxation bounds via the library's own
//     QP solver, branching on the most fractional variable), practical for
//     the small instances where integrality actually matters and used to
//     measure the rounding heuristic's optimality gap.
#pragma once

#include <optional>

#include "dspp/model.hpp"
#include "qp/solver.hpp"

namespace gp::dspp {

/// Result of integerizing an allocation.
struct IntegerizeResult {
  bool feasible = false;           ///< demand AND capacity satisfiable in integers
  linalg::Vector allocation;       ///< integral x per pair
  double objective = 0.0;          ///< p . x of the integral allocation
  double continuous_objective = 0.0;  ///< p . x of the input (lower bound)

  /// Relative integrality cost: objective / continuous_objective - 1.
  double gap() const {
    return continuous_objective > 0.0 ? objective / continuous_objective - 1.0 : 0.0;
  }
};

/// Rounds a (feasible) continuous allocation up to integers and repairs
/// capacity overruns (see file comment). `price` is $/server/period per DC.
IntegerizeResult round_up_allocation(const DsppModel& model, const PairIndex& pairs,
                                     const linalg::Vector& continuous,
                                     const linalg::Vector& demand,
                                     const linalg::Vector& price);

/// Node/iteration limits for the exact solver.
struct BranchAndBoundSettings {
  int max_nodes = 20000;
  /// Values within this of an integer count as integral. Must sit above the
  /// relaxation solver's accuracy (ADMM ~1e-4, IPM ~1e-8) or branching
  /// never terminates on solver noise.
  double integrality_tolerance = 5e-4;
  double optimality_gap = 1e-6;  ///< stop when best bound is this close
};

/// Outcome of the exact integer placement.
struct IntegerPlacementResult {
  enum class Status { kOptimal, kInfeasible, kNodeLimit };
  Status status = Status::kInfeasible;
  linalg::Vector allocation;  ///< integral x per pair (valid when not infeasible)
  double objective = 0.0;
  double lower_bound = 0.0;   ///< best LP bound proven
  int nodes_explored = 0;
};

/// Exact single-period integer placement:
///   min p.x  s.t.  sum_l x_lv / a_lv >= D_v,  sum_v s x_lv <= C_l,
///                  x integral >= 0.
/// Branch-and-bound with LP-relaxation bounds from `solver`. Intended for
/// small pair counts (<= ~20); larger instances should use the rounding
/// heuristic.
IntegerPlacementResult solve_integer_placement(const DsppModel& model, const PairIndex& pairs,
                                               const linalg::Vector& demand,
                                               const linalg::Vector& price,
                                               qp::QpSolver& solver,
                                               const BranchAndBoundSettings& settings = {});

}  // namespace gp::dspp
