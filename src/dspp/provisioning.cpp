#include "dspp/provisioning.hpp"

#include "common/error.hpp"

namespace gp::dspp {

linalg::Vector min_cost_placement(const DsppModel& model, const PairIndex& pairs,
                                  const linalg::Vector& demand, const linalg::Vector& price,
                                  qp::QpSolver& solver) {
  DsppModel static_model = model;
  for (double& c : static_model.reconfig_cost) c = 0.0;
  WindowInputs inputs;
  inputs.initial_state.assign(pairs.num_pairs(), 0.0);
  inputs.demand = {demand};
  inputs.price = {price};
  const WindowProgram program(static_model, pairs, std::move(inputs));
  const WindowSolution solution = program.solve(solver);
  ensure(solution.ok(),
         "min_cost_placement: provisioning QP failed: " + qp::to_string(solution.status));
  return solution.x.front();
}

}  // namespace gp::dspp
