// Demand-assignment policy of the request routers (eq. (13) of the paper):
// each router splits its demand across data centers proportionally to
// x_lv / a_lv, which guarantees the per-(l, v) SLA whenever constraint (12)
// holds. This module also evaluates the realized M/M/1 latencies so the
// simulation can report actual SLA compliance.
#pragma once

#include "dspp/model.hpp"
#include "linalg/vector_ops.hpp"

namespace gp::dspp {

/// Realized routing for one control period.
struct Assignment {
  /// sigma per pair (requests/s routed from v to l).
  linalg::Vector rate;
  /// Demand that could not be routed because an access network had zero
  /// allocated capacity (per access network, requests/s).
  linalg::Vector unserved;

  double total_unserved() const;
};

/// Splits demand according to eq. (13). `allocation` is x per pair, `demand`
/// is D per access network. Demand of a network whose pairs all have x = 0
/// is reported as unserved rather than routed.
Assignment assign_demand(const PairIndex& pairs, const linalg::Vector& allocation,
                         const linalg::Vector& demand);

/// Latency/SLA evaluation of an assignment.
struct SlaReport {
  double worst_latency_ms = 0.0;        ///< max mean end-to-end latency over loaded pairs
  double mean_latency_ms = 0.0;         ///< demand-weighted mean latency
  double violating_rate = 0.0;          ///< requests/s exceeding the SLA bound (incl. unserved)
  double total_rate = 0.0;              ///< total demand
  std::size_t overloaded_pairs = 0;     ///< pairs driven at or beyond mu (unstable queue)

  /// Fraction of demand meeting the SLA, in [0, 1].
  double compliance() const {
    return total_rate > 0.0 ? 1.0 - violating_rate / total_rate : 1.0;
  }
};

/// Evaluates the mean M/M/1 end-to-end latency of every loaded pair under
/// the given allocation and assignment, against the model's SLA bound.
///
/// `relative_tolerance` is the margin above the bound still counted as
/// compliant: an optimal allocation sits *exactly* on the SLA boundary
/// (constraint (11) is tight at the optimum), so a strict comparison would
/// flip on solver-tolerance noise. 1% is well below any materially felt
/// violation and well above numerical slack.
SlaReport evaluate_sla(const DsppModel& model, const PairIndex& pairs,
                       const linalg::Vector& allocation, const Assignment& assignment,
                       double relative_tolerance = 0.01);

}  // namespace gp::dspp
