// Core model types of the Dynamic Service Placement Problem (Section IV).
//
// A DsppModel fixes the environment one service provider optimizes over:
// the bipartite network (latency matrix d_lv), the SLA specification that
// produces the a_lv coefficients of constraint (11), per-data-center
// reconfiguration weights c^l, data-center capacities C^l, and the server
// "size" s used in shared-capacity (multi-provider) settings.
//
// Units convention across the library:
//   - arrival rates and service rates in requests/second,
//   - latencies in milliseconds at the API surface (converted internally),
//   - allocations x in servers (continuous, per the paper's relaxation),
//   - prices in $ per server per control period,
//   - reconfiguration weight c^l in $ per (server change)^2 per period.
#pragma once

#include <optional>

#include "queueing/mm1.hpp"
#include "topology/network.hpp"

namespace gp::dspp {

/// SLA specification shared by all (l, v) pairs of one provider.
struct SlaSpec {
  double mu = 100.0;                ///< per-server service rate, req/s
  double max_latency_ms = 100.0;    ///< dbar, end-to-end bound
  double reservation_ratio = 1.0;   ///< r >= 1 capacity cushion (Section IV-B)
  double percentile = 0.0;          ///< phi; 0 bounds the mean delay
};

/// Environment for a single provider's DSPP.
struct DsppModel {
  topology::NetworkModel network;
  SlaSpec sla;
  std::vector<double> reconfig_cost;  ///< c^l, size L
  std::vector<double> capacity;       ///< C^l, size L (servers)
  double server_size = 1.0;           ///< s, capacity units per server

  /// Optional per-(l, v) latency bounds dbar_lv in ms, overriding
  /// sla.max_latency_ms pair-wise (the paper's formulation is per-pair;
  /// e.g. premium customers get tighter bounds). Shape [L][V] when set;
  /// non-positive entries fall back to the global bound.
  std::vector<std::vector<double>> max_latency_override_ms;

  std::size_t num_datacenters() const { return network.num_datacenters(); }
  std::size_t num_access_networks() const { return network.num_access_networks(); }

  /// Throws PreconditionError on inconsistent shapes or values.
  void validate() const;

  /// The latency bound that applies to pair (l, v): the per-pair override
  /// when present and positive, else the global sla.max_latency_ms.
  double max_latency_ms_for(std::size_t l, std::size_t v) const;

  /// The a_lv coefficient of eq. (10)/(11) for the pair, +infinity when the
  /// pair cannot meet the SLA (the pair is then excluded from optimization).
  double sla_coefficient(std::size_t l, std::size_t v) const;
};

/// Index of the usable (l, v) pairs — those with finite a_lv. The DSPP
/// decision vectors x and u range over these pairs only.
class PairIndex {
 public:
  /// Builds from a model; throws when some access network has NO usable
  /// data center (its demand could never be served).
  explicit PairIndex(const DsppModel& model);

  std::size_t num_pairs() const { return pairs_.size(); }
  std::size_t num_datacenters() const { return num_l_; }
  std::size_t num_access_networks() const { return num_v_; }

  std::size_t datacenter_of(std::size_t pair) const { return pairs_[pair].first; }
  std::size_t access_network_of(std::size_t pair) const { return pairs_[pair].second; }

  /// a_lv for the pair (finite by construction).
  double coefficient(std::size_t pair) const { return a_[pair]; }

  /// Pair id for (l, v), or nullopt when the pair is unusable.
  std::optional<std::size_t> pair_of(std::size_t l, std::size_t v) const;

  /// Pairs serving access network v.
  const std::vector<std::size_t>& pairs_of_access_network(std::size_t v) const;

  /// Pairs hosted in data center l.
  const std::vector<std::size_t>& pairs_of_datacenter(std::size_t l) const;

 private:
  std::size_t num_l_ = 0;
  std::size_t num_v_ = 0;
  std::vector<std::pair<std::size_t, std::size_t>> pairs_;  // (l, v)
  std::vector<double> a_;
  std::vector<std::vector<std::int32_t>> pair_of_;          // [l][v] or -1
  std::vector<std::vector<std::size_t>> by_access_network_;
  std::vector<std::vector<std::size_t>> by_datacenter_;
};

}  // namespace gp::dspp
