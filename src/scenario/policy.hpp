// Declarative controllers: a PolicySpec names a placement policy (the MPC
// controller, one of the baselines, or the threshold autoscaler) plus its
// predictors and knobs, and make_policy() builds it against a built
// scenario — absorbing the predictor factory and per-controller wiring the
// benches and examples used to repeat.
//
// The returned PolicyHandle OWNS the controller (and, for integerized
// policies, the model/pair-index copies the rounding decorator references),
// so the sim::PlacementPolicy closure it exposes stays valid for the
// handle's lifetime — the ownership subtlety that made the raw
// `policy_from(controller)` pattern easy to get wrong in sweep code.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "control/autoscaler.hpp"
#include "control/baselines.hpp"
#include "control/mpc_controller.hpp"
#include "control/predictor.hpp"
#include "scenario/spec.hpp"
#include "sim/engine.hpp"

namespace gp::scenario {

/// Which SeriesPredictor to build, with its tuning. Kinds: "last", "ar",
/// "seasonal", "seasonal_ar", "oracle" (the oracle needs a trace — either
/// passed to make_predictor explicitly or synthesized from the scenario's
/// mean series by make_policy).
struct PredictorSpec {
  std::string kind = "last";
  std::size_t order = 2;      ///< AR order (ar, seasonal_ar)
  std::size_t window = 48;    ///< AR fitting window (ar); seasonal_ar uses 72
  std::size_t season = 24;    ///< periods per season (seasonal, seasonal_ar)
  bool oracle_wrap = true;    ///< oracle: wrap past the trace end (cyclic days)
};

/// Builds the predictor a spec describes. `oracle_trace` is consumed only
/// by kind == "oracle". Unknown kinds throw.
std::unique_ptr<control::SeriesPredictor> make_predictor(
    const PredictorSpec& spec, std::vector<linalg::Vector> oracle_trace = {});

/// Shorthand: predictor by kind name with default tuning (the signature
/// bench/scenarios.hpp used to provide).
std::unique_ptr<control::SeriesPredictor> make_predictor(
    const std::string& kind, std::vector<linalg::Vector> oracle_trace = {});

/// Which placement policy to run. Kinds: "mpc" (Algorithm 1), "static"
/// (one-shot peak provisioning), "reactive" (myopic W=1, c=0), "autoscaler"
/// (threshold rules).
struct PolicySpec {
  std::string name;           ///< report label; label() falls back to kind
  std::string kind = "mpc";

  // MPC knobs (ignored by the baselines).
  std::size_t horizon = 5;
  PredictorSpec demand_predictor;
  PredictorSpec price_predictor;
  double soft_demand_penalty = 0.0;
  bool reuse_solver_state = true;

  /// Wraps the policy in the integer round-up decorator (sim::integerized).
  bool integerized = false;

  /// Static baseline: the fixed target is the cheapest placement for the
  /// per-network PEAK of the mean demand (scanned hourly over one day) at
  /// the price observed this UTC hour.
  double static_reference_hour = 12.0;

  std::string label() const { return name.empty() ? kind : name; }
};

/// An instantiated policy plus everything it must outlive (see file
/// comment). Movable; the closure stays valid across moves.
class PolicyHandle {
 public:
  const sim::PlacementPolicy& policy() const { return policy_; }

  /// The MPC controller when kind == "mpc" (e.g. for set_capacity_quota or
  /// cache stats); nullptr for the baselines.
  control::MpcController* mpc() { return mpc_.get(); }

 private:
  friend PolicyHandle make_policy(const ScenarioBundle&, const ScenarioSpec&,
                                  const PolicySpec&);
  sim::PlacementPolicy policy_;
  std::unique_ptr<control::MpcController> mpc_;
  std::unique_ptr<control::StaticController> static_;
  std::unique_ptr<control::ReactiveController> reactive_;
  std::unique_ptr<control::ThresholdAutoscaler> autoscaler_;
  // Owned copies referenced by the integerized decorator's closure.
  std::unique_ptr<dspp::DsppModel> model_;
  std::unique_ptr<dspp::PairIndex> pairs_;
};

/// Mean demand series of the bundle at the spec's period grid (period
/// midpoints, like SimulationEngine::observe_demand without noise), for
/// `spec.sim.periods + extra` periods — the trace an oracle demand
/// predictor wants.
std::vector<linalg::Vector> mean_demand_trace(const ScenarioBundle& bundle,
                                              const ScenarioSpec& spec,
                                              std::size_t extra = 8);

/// Per-period price series at the spec's grid (same convention as
/// SimulationEngine::observe_price, honoring freeze_prices), for the oracle
/// price predictor.
std::vector<linalg::Vector> price_trace(const ScenarioBundle& bundle,
                                        const ScenarioSpec& spec, std::size_t extra = 8);

/// Builds the policy a spec describes against a built scenario. Oracle
/// predictors are fed the bundle's mean demand / price traces. Unknown
/// kinds throw.
PolicyHandle make_policy(const ScenarioBundle& bundle, const ScenarioSpec& spec,
                         const PolicySpec& policy);

}  // namespace gp::scenario
