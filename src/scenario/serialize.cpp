#include "scenario/serialize.hpp"

#include <charconv>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace gp::scenario {

namespace {

// ------------------------------------------------------------------ emitting

/// Shortest exact decimal form (std::to_chars): strtod of the output is the
/// input bit pattern, which is what makes to_json/from_json a round trip.
std::string format_double(double value) {
  char buffer[32];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  ensure(ec == std::errc(), "format_double: to_chars failed");
  return std::string(buffer, ptr);
}

void append_escaped(std::string& out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

void append_quoted(std::string& out, const std::string& text) {
  out.push_back('"');
  append_escaped(out, text);
  out.push_back('"');
}

// ------------------------------------------------------------------- parsing
//
// A minimal scanner for the canonical form the emitters above write. Keys
// are located at DEPTH 1 of the given object text only, so nested objects
// (a predictor's "kind" inside a policy) can reuse top-level key names.

std::size_t skip_string(const std::string& text, std::size_t i) {
  // i points at the opening quote; returns the index AFTER the closing one.
  ++i;
  while (i < text.size()) {
    if (text[i] == '\\') {
      i += 2;
    } else if (text[i] == '"') {
      return i + 1;
    } else {
      ++i;
    }
  }
  throw PreconditionError("serialize: unterminated string");
}

/// Position of the first character of `key`'s value at depth 1, or npos.
std::size_t value_position(const std::string& text, const std::string& key) {
  int depth = 0;
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c == '"') {
      const std::size_t end = skip_string(text, i);
      if (depth == 1) {
        const std::string token = text.substr(i + 1, end - i - 2);
        std::size_t after = end;
        while (after < text.size() && (text[after] == ' ' || text[after] == ':')) {
          if (text[after] == ':') {
            if (token == key) {
              ++after;
              while (after < text.size() && text[after] == ' ') ++after;
              return after;
            }
            break;
          }
          ++after;
        }
      }
      i = end;
      continue;
    }
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ++i;
  }
  return std::string::npos;
}

/// The raw value text of `key` (string with quotes, object/array with
/// braces, or a bare scalar token).
std::string raw_value(const std::string& text, const std::string& key) {
  const std::size_t start = value_position(text, key);
  ensure(start != std::string::npos, "serialize: missing key '" + key + "'");
  const char c = text[start];
  if (c == '"') return text.substr(start, skip_string(text, start) - start);
  if (c == '{' || c == '[') {
    const char open = c;
    const char close = c == '{' ? '}' : ']';
    int depth = 0;
    for (std::size_t i = start; i < text.size(); ++i) {
      if (text[i] == '"') {
        i = skip_string(text, i) - 1;
        continue;
      }
      if (text[i] == open) ++depth;
      if (text[i] == close && --depth == 0) return text.substr(start, i - start + 1);
    }
    throw PreconditionError("serialize: unbalanced value for '" + key + "'");
  }
  std::size_t end = start;
  while (end < text.size() && text[end] != ',' && text[end] != '}' && text[end] != ']') ++end;
  return text.substr(start, end - start);
}

/// Strips the quotes off a raw string value and undoes append_escaped.
std::string unquote(const std::string& raw) {
  ensure(raw.size() >= 2 && raw.front() == '"', "serialize: expected a string");
  std::string out;
  for (std::size_t i = 1; i + 1 < raw.size(); ++i) {
    if (raw[i] == '\\' && i + 2 < raw.size()) ++i;
    out.push_back(raw[i]);
  }
  return out;
}

std::string get_string(const std::string& text, const std::string& key) {
  const std::string raw = raw_value(text, key);
  ensure(raw.size() >= 2 && raw.front() == '"', "serialize: '" + key + "' is not a string");
  return unquote(raw);
}

double get_double(const std::string& text, const std::string& key) {
  const std::string raw = raw_value(text, key);
  ensure(!raw.empty(), "serialize: empty number for '" + key + "'");
  return std::strtod(raw.c_str(), nullptr);
}

long long get_int(const std::string& text, const std::string& key) {
  return std::strtoll(raw_value(text, key).c_str(), nullptr, 10);
}

std::uint64_t get_uint64(const std::string& text, const std::string& key) {
  return std::strtoull(raw_value(text, key).c_str(), nullptr, 10);
}

bool get_bool(const std::string& text, const std::string& key) {
  return raw_value(text, key) == "true";
}

/// Splits an array's raw text ("[...]") into its top-level element texts.
std::vector<std::string> array_elements(const std::string& raw) {
  ensure(raw.size() >= 2 && raw.front() == '[', "serialize: expected an array");
  std::vector<std::string> elements;
  std::size_t i = 1;
  std::size_t start = 1;
  int depth = 0;
  for (; i + 1 < raw.size() || (i < raw.size() && raw[i] != ']'); ++i) {
    const char c = raw[i];
    if (c == '"') {
      i = skip_string(raw, i) - 1;
      continue;
    }
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      elements.push_back(raw.substr(start, i - start));
      start = i + 1;
    }
  }
  if (i > start) elements.push_back(raw.substr(start, i - start));
  return elements;
}

/// Splits an object's raw text ("{...}") whose members are all string-valued
/// into unescaped (key, value) pairs — the shape of the manifest's env map.
std::vector<std::pair<std::string, std::string>> object_string_members(
    const std::string& raw) {
  ensure(raw.size() >= 2 && raw.front() == '{' && raw.back() == '}',
         "serialize: expected an object");
  std::vector<std::pair<std::string, std::string>> members;
  std::size_t i = 1;
  while (i + 1 < raw.size()) {
    if (raw[i] != '"') {
      ++i;
      continue;
    }
    const std::size_t key_end = skip_string(raw, i);
    std::string key = unquote(raw.substr(i, key_end - i));
    std::size_t v = key_end;
    while (v < raw.size() && (raw[v] == ' ' || raw[v] == ':')) ++v;
    ensure(v + 1 < raw.size() && raw[v] == '"',
           "serialize: object member '" + key + "' is not a string");
    const std::size_t val_end = skip_string(raw, v);
    members.emplace_back(std::move(key), unquote(raw.substr(v, val_end - v)));
    i = val_end;
  }
  return members;
}

}  // namespace

// --------------------------------------------------------------- ScenarioSpec

std::string to_json(const ScenarioSpec& spec) {
  std::string out = "{\"name\":";
  append_quoted(out, spec.name);
  out += ",\"num_dcs\":" + std::to_string(spec.num_dcs);
  out += ",\"num_cities\":" + std::to_string(spec.num_cities);
  out += ",\"rate_per_capita\":" + format_double(spec.rate_per_capita);
  out += ",\"profile\":{\"low\":" + format_double(spec.profile.low());
  out += ",\"high\":" + format_double(spec.profile.high());
  out += ",\"busy_start\":" + format_double(spec.profile.busy_start_hour());
  out += ",\"busy_end\":" + format_double(spec.profile.busy_end_hour());
  out += ",\"ramp\":" + format_double(spec.profile.ramp_hours()) + "}";
  out += ",\"flash_crowds\":[";
  for (std::size_t i = 0; i < spec.flash_crowds.size(); ++i) {
    const auto& crowd = spec.flash_crowds[i];
    if (i > 0) out += ",";
    out += "{\"an\":" + std::to_string(crowd.access_network);
    out += ",\"start\":" + format_double(crowd.start_hour);
    out += ",\"duration\":" + format_double(crowd.duration_hours);
    out += ",\"multiplier\":" + format_double(crowd.multiplier) + "}";
  }
  out += "]";
  out += ",\"mu\":" + format_double(spec.mu);
  out += ",\"max_latency_ms\":" + format_double(spec.max_latency_ms);
  out += ",\"reservation_ratio\":" + format_double(spec.reservation_ratio);
  out += ",\"reconfig_cost\":" + format_double(spec.reconfig_cost);
  out += ",\"capacity\":" + format_double(spec.capacity);
  out += ",\"vm\":" + std::to_string(static_cast<int>(spec.vm));
  out += ",\"demand_trace_csv\":";
  append_quoted(out, spec.demand_trace_csv);
  out += ",\"price_trace_csv\":";
  append_quoted(out, spec.price_trace_csv);
  out += std::string(",\"trace_wrap\":") + (spec.trace_wrap ? "true" : "false");
  out += ",\"sim\":{\"periods\":" + std::to_string(spec.sim.periods);
  out += ",\"period_hours\":" + format_double(spec.sim.period_hours);
  out += ",\"utc_start_hour\":" + format_double(spec.sim.utc_start_hour);
  out += std::string(",\"noisy_demand\":") + (spec.sim.noisy_demand ? "true" : "false");
  out += ",\"price_noise_std\":" + format_double(spec.sim.price_noise_std);
  out += std::string(",\"freeze_prices\":") + (spec.sim.freeze_prices ? "true" : "false");
  out += ",\"seed\":" + std::to_string(spec.sim.seed);
  out += std::string(",\"provision_initial\":") +
         (spec.sim.provision_initial ? "true" : "false");
  out += ",\"initial_overprovision\":" + format_double(spec.sim.initial_overprovision);
  out += "}}";
  return out;
}

ScenarioSpec scenario_from_json(const std::string& json) {
  ScenarioSpec spec;
  spec.name = get_string(json, "name");
  spec.num_dcs = static_cast<std::size_t>(get_int(json, "num_dcs"));
  spec.num_cities = static_cast<std::size_t>(get_int(json, "num_cities"));
  spec.rate_per_capita = get_double(json, "rate_per_capita");
  const std::string profile = raw_value(json, "profile");
  spec.profile = workload::DiurnalProfile(
      get_double(profile, "low"), get_double(profile, "high"),
      get_double(profile, "busy_start"), get_double(profile, "busy_end"),
      get_double(profile, "ramp"));
  for (const std::string& crowd_text : array_elements(raw_value(json, "flash_crowds"))) {
    workload::FlashCrowd crowd;
    crowd.access_network = static_cast<std::size_t>(get_int(crowd_text, "an"));
    crowd.start_hour = get_double(crowd_text, "start");
    crowd.duration_hours = get_double(crowd_text, "duration");
    crowd.multiplier = get_double(crowd_text, "multiplier");
    spec.flash_crowds.push_back(crowd);
  }
  spec.mu = get_double(json, "mu");
  spec.max_latency_ms = get_double(json, "max_latency_ms");
  spec.reservation_ratio = get_double(json, "reservation_ratio");
  spec.reconfig_cost = get_double(json, "reconfig_cost");
  spec.capacity = get_double(json, "capacity");
  spec.vm = static_cast<workload::VmType>(get_int(json, "vm"));
  spec.demand_trace_csv = get_string(json, "demand_trace_csv");
  spec.price_trace_csv = get_string(json, "price_trace_csv");
  spec.trace_wrap = get_bool(json, "trace_wrap");
  const std::string sim = raw_value(json, "sim");
  spec.sim.periods = static_cast<std::size_t>(get_int(sim, "periods"));
  spec.sim.period_hours = get_double(sim, "period_hours");
  spec.sim.utc_start_hour = get_double(sim, "utc_start_hour");
  spec.sim.noisy_demand = get_bool(sim, "noisy_demand");
  spec.sim.price_noise_std = get_double(sim, "price_noise_std");
  spec.sim.freeze_prices = get_bool(sim, "freeze_prices");
  spec.sim.seed = get_uint64(sim, "seed");
  spec.sim.provision_initial = get_bool(sim, "provision_initial");
  spec.sim.initial_overprovision = get_double(sim, "initial_overprovision");
  return spec;
}

// ----------------------------------------------------------------- PolicySpec

std::string to_json(const PredictorSpec& spec) {
  std::string out = "{\"kind\":";
  append_quoted(out, spec.kind);
  out += ",\"order\":" + std::to_string(spec.order);
  out += ",\"window\":" + std::to_string(spec.window);
  out += ",\"season\":" + std::to_string(spec.season);
  out += std::string(",\"oracle_wrap\":") + (spec.oracle_wrap ? "true" : "false") + "}";
  return out;
}

PredictorSpec predictor_from_json(const std::string& json) {
  PredictorSpec spec;
  spec.kind = get_string(json, "kind");
  spec.order = static_cast<std::size_t>(get_int(json, "order"));
  spec.window = static_cast<std::size_t>(get_int(json, "window"));
  spec.season = static_cast<std::size_t>(get_int(json, "season"));
  spec.oracle_wrap = get_bool(json, "oracle_wrap");
  return spec;
}

std::string to_json(const PolicySpec& policy) {
  std::string out = "{\"name\":";
  append_quoted(out, policy.name);
  out += ",\"kind\":";
  append_quoted(out, policy.kind);
  out += ",\"horizon\":" + std::to_string(policy.horizon);
  out += ",\"demand_predictor\":" + to_json(policy.demand_predictor);
  out += ",\"price_predictor\":" + to_json(policy.price_predictor);
  out += ",\"soft_demand_penalty\":" + format_double(policy.soft_demand_penalty);
  out += std::string(",\"reuse_solver_state\":") +
         (policy.reuse_solver_state ? "true" : "false");
  out += std::string(",\"integerized\":") + (policy.integerized ? "true" : "false");
  out += ",\"static_reference_hour\":" + format_double(policy.static_reference_hour);
  out += "}";
  return out;
}

PolicySpec policy_from_json(const std::string& json) {
  PolicySpec policy;
  policy.name = get_string(json, "name");
  policy.kind = get_string(json, "kind");
  policy.horizon = static_cast<std::size_t>(get_int(json, "horizon"));
  policy.demand_predictor = predictor_from_json(raw_value(json, "demand_predictor"));
  policy.price_predictor = predictor_from_json(raw_value(json, "price_predictor"));
  policy.soft_demand_penalty = get_double(json, "soft_demand_penalty");
  policy.reuse_solver_state = get_bool(json, "reuse_solver_state");
  policy.integerized = get_bool(json, "integerized");
  policy.static_reference_hour = get_double(json, "static_reference_hour");
  return policy;
}

// -------------------------------------------------------------------- hashing

std::string fnv1a_hex(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

std::string spec_hash(const ScenarioSpec& spec) { return fnv1a_hex(to_json(spec)); }

// -------------------------------------------------------------- ReplayBundle

std::string to_json(const ReplayBundle& bundle) {
  std::string out = "{\"type\":\"replay_bundle\",\"schema\":1";
  out += ",\"manifest\":" + bundle.manifest.to_json_object();
  out += ",\"seed\":" + std::to_string(bundle.seed);
  out += std::string(",\"audits_enabled\":") + (bundle.audits_enabled ? "true" : "false");
  out += ",\"unsolved_periods\":" + std::to_string(bundle.unsolved_periods);
  out += ",\"failed_periods\":[";
  for (std::size_t i = 0; i < bundle.failed_periods.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(bundle.failed_periods[i]);
  }
  out += "],\"audit_violations\":[";
  for (std::size_t i = 0; i < bundle.audit_violations.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"name\":";
    append_quoted(out, bundle.audit_violations[i].first);
    out += ",\"count\":" + std::to_string(bundle.audit_violations[i].second) + "}";
  }
  out += "],\"scenario\":" + to_json(bundle.scenario);
  out += ",\"policy\":" + to_json(bundle.policy);
  out += ",\"records\":[";
  for (std::size_t i = 0; i < bundle.records.size(); ++i) {
    const RecordedSample& sample = bundle.records[i];
    if (i > 0) out += ",";
    out += "{\"stream\":";
    append_quoted(out, sample.stream);
    out += ",\"step\":" + std::to_string(sample.step);
    out += ",\"a\":" + format_double(sample.a);
    out += ",\"b\":" + format_double(sample.b);
    out += ",\"c\":" + format_double(sample.c) + "}";
  }
  out += "]}";
  return out;
}

ReplayBundle bundle_from_json(const std::string& json) {
  ensure(value_position(json, "type") != std::string::npos &&
             get_string(json, "type") == "replay_bundle",
         "bundle_from_json: not a replay bundle");
  ReplayBundle bundle;
  const std::string manifest = raw_value(json, "manifest");
  bundle.manifest.schema = static_cast<int>(get_int(manifest, "schema"));
  bundle.manifest.tool = get_string(manifest, "tool");
  bundle.manifest.git_sha = get_string(manifest, "git_sha");
  bundle.manifest.build_type = get_string(manifest, "build");
  bundle.manifest.compiler = get_string(manifest, "compiler");
  bundle.manifest.host = get_string(manifest, "host");
  bundle.manifest.threads = static_cast<std::size_t>(get_int(manifest, "threads"));
  bundle.manifest.cpus = static_cast<unsigned>(get_int(manifest, "cpus"));
  // "simd" arrived with manifest schema 2; accept schema-1 bundles.
  if (value_position(manifest, "simd") != std::string::npos) {
    bundle.manifest.simd = get_string(manifest, "simd");
  }
  bundle.manifest.env = object_string_members(raw_value(manifest, "env"));
  bundle.manifest.spec_hash = get_string(manifest, "spec_hash");
  for (const std::string& seed_text : array_elements(raw_value(manifest, "seeds"))) {
    bundle.manifest.seeds.push_back(std::strtoull(seed_text.c_str(), nullptr, 10));
  }
  for (const std::string& path_text : array_elements(raw_value(manifest, "trace_paths"))) {
    ensure(path_text.size() >= 2 && path_text.front() == '"',
           "bundle_from_json: bad trace path");
    bundle.manifest.trace_paths.push_back(path_text.substr(1, path_text.size() - 2));
  }
  bundle.seed = get_uint64(json, "seed");
  bundle.audits_enabled = get_bool(json, "audits_enabled");
  bundle.unsolved_periods = static_cast<int>(get_int(json, "unsolved_periods"));
  for (const std::string& period_text : array_elements(raw_value(json, "failed_periods"))) {
    bundle.failed_periods.push_back(static_cast<int>(std::strtoll(period_text.c_str(),
                                                                  nullptr, 10)));
  }
  for (const std::string& violation : array_elements(raw_value(json, "audit_violations"))) {
    bundle.audit_violations.emplace_back(get_string(violation, "name"),
                                         get_int(violation, "count"));
  }
  bundle.scenario = scenario_from_json(raw_value(json, "scenario"));
  bundle.policy = policy_from_json(raw_value(json, "policy"));
  for (const std::string& record : array_elements(raw_value(json, "records"))) {
    RecordedSample sample;
    sample.stream = get_string(record, "stream");
    sample.step = get_int(record, "step");
    sample.a = get_double(record, "a");
    sample.b = get_double(record, "b");
    sample.c = get_double(record, "c");
    bundle.records.push_back(std::move(sample));
  }
  return bundle;
}

void write_bundle(const ReplayBundle& bundle, const std::string& path) {
  std::ofstream out(path);
  if (out) out << to_json(bundle) << "\n";
}

ReplayBundle read_bundle(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "read_bundle: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return bundle_from_json(buffer.str());
}

}  // namespace gp::scenario
