// Named scenario presets: the Section VII environments behind every figure
// and ablation, registered once under stable names ("fig04",
// "fig09_volatile", "ablation_small", ...) so benches, examples, tests and
// sweep grids all start from the same spec instead of re-assembling it.
//
// Presets are returned BY VALUE: fetch, tweak fields, build. The registry
// itself is immutable after start-up (built on first use, no locking
// needed afterwards); experiments that need a one-off environment
// construct a ScenarioSpec directly.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "scenario/spec.hpp"

namespace gp::scenario {

/// Sorted names of every registered preset.
const std::vector<std::string>& preset_names();

/// True when `name` is a registered preset.
bool has_preset(std::string_view name);

/// Copy of the named preset; throws gp::Error for unknown names (the
/// message lists what is available).
ScenarioSpec preset(std::string_view name);

}  // namespace gp::scenario
