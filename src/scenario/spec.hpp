// Declarative experiment environments: a ScenarioSpec is the plain-data
// description of one Section VII setup (which of the paper's data-center
// sites, how many of the 24 US-city access networks, demand scale, SLA
// knobs, prices, noise, seed), and build() turns it into the concrete
// model/demand/prices bundle every bench, example and test used to
// hand-assemble from inline helpers.
//
// Specs are value types on purpose: fetch a named preset from the registry
// (scenario/registry.hpp), tweak fields, build. The same spec drives a
// single SimulationEngine run or one axis of a SweepRunner grid
// (scenario/sweep.hpp).
#pragma once

#include <string>
#include <vector>

#include "dspp/model.hpp"
#include "sim/engine.hpp"
#include "topology/geo.hpp"
#include "workload/demand.hpp"
#include "workload/diurnal.hpp"
#include "workload/price.hpp"

namespace gp::scenario {

/// Plain-data description of one experiment environment (see file comment).
/// Every field has the Section VII default; presets and call sites override
/// what their experiment changes.
struct ScenarioSpec {
  std::string name;                  ///< report label / registry key

  // Topology: the first `num_dcs` of the paper's named sites serve the
  // first `num_cities` of the 24 US-city access networks.
  std::size_t num_dcs = 4;
  std::size_t num_cities = 24;

  // Demand: population-scaled diurnal arrivals, optional flash crowds.
  double rate_per_capita = 2e-5;     ///< requests/s per inhabitant at peak
  workload::DiurnalProfile profile;  ///< (1.0, 1.0) = constant demand
  std::vector<workload::FlashCrowd> flash_crowds;

  // SLA and cost knobs (the dspp::DsppModel fields the experiments vary).
  double mu = 100.0;                 ///< requests/s per server
  double max_latency_ms = 32.0;      ///< end-to-end SLA target
  double reservation_ratio = 1.1;    ///< Section IV-B cushion
  double reconfig_cost = 0.002;      ///< c^l, same at every data center
  double capacity = 2000.0;          ///< servers per data center (the paper's)

  // Prices: regional electricity through the chosen VM flavor.
  workload::VmType vm = workload::VmType::kMedium;

  // Trace-driven workloads (ROADMAP item): a non-empty demand_trace_csv
  // makes build() replay that CSV (one row per sim period, one column per
  // access network, requests/s; column count must equal num_cities) through
  // DemandModel::from_trace instead of the synthetic diurnal generator;
  // price_trace_csv similarly overrides server prices ($/server-hour, one
  // column per data center). The magic path "builtin:demo" resolves to the
  // embedded demo trace (scenario/trace.hpp), so the preset builds without
  // touching the filesystem. Both paths land in the run's RunManifest.
  std::string demand_trace_csv;
  std::string price_trace_csv;
  bool trace_wrap = true;  ///< replay traces cyclically past their end

  /// Simulation-run parameters (periods, noise, seed, initial state).
  sim::SimulationConfig sim;
};

/// The built environment: everything a SimulationEngine (or a game/bench
/// that samples demand and prices directly) needs, plus the geography it
/// came from.
struct ScenarioBundle {
  dspp::DsppModel model;
  workload::DemandModel demand;
  workload::ServerPriceModel prices;
  std::vector<topology::DataCenterSite> sites;
  std::vector<topology::City> cities;
};

/// The legacy `paper_scenario` knobs as a spec: Section VII defaults with
/// the four historically positional parameters. Kept so call sites that
/// migrated from bench/scenarios.hpp read the same.
ScenarioSpec section7_spec(std::size_t num_dcs = 4, std::size_t num_cities = 24,
                           double rate_per_capita = 2e-5,
                           workload::DiurnalProfile profile = workload::DiurnalProfile());

/// Materializes a spec. Deterministic: equal specs build value-identical
/// bundles (the round-trip test pins this against the legacy helper).
ScenarioBundle build(const ScenarioSpec& spec);

/// Engine over a built bundle with the spec's sim config (the bundle is
/// copied; one bundle can seed any number of engines, e.g. sweep lanes).
sim::SimulationEngine make_engine(const ScenarioBundle& bundle, const ScenarioSpec& spec);

}  // namespace gp::scenario
