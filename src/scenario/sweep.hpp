// Batched experiment sweeps: expand a (scenario x policy x seed) grid and
// fan the runs across the process-wide thread pool — the experiment-harness
// shape the figure reproductions, the ablations, and Monte-Carlo
// confidence intervals all share.
//
// Determinism contract (matching common/thread_pool): the grid expands to a
// fixed run order (scenario-major, then policy, then seed), every run's
// SimulationConfig seed is derived purely from (base seed, run index), and
// each lane writes its result by run index — so the full SweepResult,
// including the JSONL/CSV exports, is BIT-identical at every thread count.
//
// Observability: the sweep emits gp::obs spans ("sweep.run" around the
// grid, "sweep.cell" per run) and, when metrics are enabled, counters
// (sweep.runs, sweep.unsolved_periods), a run-wall-time histogram
// (sweep.run_ms) and a runs-per-second gauge. With the telemetry timeline
// armed (GEOPLACE_TIMELINE) and timelines_dir set, every run's per-period
// frames land as a columnar JSONL sidecar for tools/gp_report; progress
// (GEOPLACE_PROGRESS or SweepOptions::progress) adds a live stderr line
// without touching any artifact.
//
// Flight recorder: every SweepResult carries the RunManifest captured at
// run() time, which write_jsonl emits as the first line and write_csv_file
// writes as a `.manifest.json` sidecar. With SweepOptions::failures_dir
// set, each run that ends with unsolved periods or audit violations is
// captured as a ReplayBundle (manifest + resolved spec + policy + seed +
// the lane's recorder tail) that tools/gp_replay re-runs deterministically.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/recorder.hpp"
#include "obs/timeline.hpp"
#include "scenario/policy.hpp"
#include "scenario/registry.hpp"
#include "scenario/spec.hpp"

namespace gp::scenario {

/// The three sweep axes. Seeds: `seeds` when non-empty (exact
/// SimulationConfig seeds, e.g. to reproduce a legacy bench), otherwise
/// `num_seeds` values derived from `base_seed` via derive_run_seed().
struct SweepGrid {
  std::vector<ScenarioSpec> scenarios;
  std::vector<PolicySpec> policies;
  std::vector<std::uint64_t> seeds;
  std::size_t num_seeds = 1;
  std::uint64_t base_seed = 1;
};

struct SweepOptions {
  /// Lanes used on the global pool (0 = all). Results never depend on this.
  std::size_t max_threads = 0;
  /// Keep the per-period rows of every run. Off by default: a large grid's
  /// summaries are the product, the periods are per-run bulk.
  bool keep_periods = false;
  /// When non-empty, every failed run (unsolved periods or audit
  /// violations) writes a ReplayBundle `<scenario>_<policy>_seed<N>.replay.json`
  /// into this directory (created if missing). Bundles are written after
  /// the parallel phase, in grid order.
  std::string failures_dir;
  /// When non-empty AND the timeline is armed (GEOPLACE_TIMELINE /
  /// TimelineWriter::set_enabled), every run's per-period telemetry is
  /// written as a manifest-headed columnar JSONL sidecar
  /// `<scenario>_<policy>_seed<N>.timeline.jsonl` into this directory
  /// (created if missing) — written after the parallel phase, in grid
  /// order, like the replay bundles they sit next to.
  std::string timelines_dir;
  /// Live progress line (runs done/total, runs/s, ETA, failures) on
  /// stderr, thread-safe and rate-limited. Also armed by the
  /// GEOPLACE_PROGRESS environment variable (same on/off grammar as
  /// GEOPLACE_METRICS). Never affects the result artifacts.
  bool progress = false;
};

/// One grid point's outcome. `summary.periods` is empty unless
/// SweepOptions::keep_periods was set.
struct RunRecord {
  std::size_t scenario_index = 0;
  std::size_t policy_index = 0;
  std::size_t seed_index = 0;
  std::string scenario;  ///< report label of the scenario
  std::string policy;    ///< PolicySpec::label()
  std::uint64_t seed = 0;
  sim::SimulationSummary summary;
  double wall_ms = 0.0;
  /// Flight-recorder capture (failed runs only; empty otherwise). The
  /// recorder tail keeps obs::ConvergenceSample's static-literal stream
  /// pointers — valid for the process lifetime by construction.
  std::vector<int> failed_periods;  ///< indices of !solved periods
  std::vector<std::pair<std::string, long long>> audit_violations;
  std::vector<obs::ConvergenceSample> recorder_tail;
  /// Per-period telemetry of this run (captured only when the timeline is
  /// armed AND SweepOptions::timelines_dir is set; empty otherwise).
  std::vector<obs::TelemetryFrame> timeline;
};

/// mean/stddev/min/max over the seed axis of one metric.
struct Aggregate {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Per-(scenario, policy) aggregation over seeds — the Monte-Carlo cell.
struct SweepCell {
  std::string scenario;
  std::string policy;
  std::size_t runs = 0;
  Aggregate total_cost;
  Aggregate resource_cost;
  Aggregate reconfig_cost;
  Aggregate mean_compliance;
  Aggregate worst_compliance;
  Aggregate churn;
  Aggregate policy_wall_ms;
  long long unsolved_periods = 0;  ///< summed over the cell's runs
  double wall_ms = 0.0;            ///< summed run wall time (cell work)
};

/// Everything a sweep produced, in deterministic grid order.
struct SweepResult {
  std::vector<RunRecord> runs;
  std::vector<SweepCell> cells;   ///< scenario-major, then policy
  double wall_ms = 0.0;           ///< wall clock of the whole sweep
  double runs_per_s = 0.0;
  obs::RunManifest manifest;      ///< provenance captured at run() time
  std::size_t failure_bundles = 0;  ///< bundles written to failures_dir

  /// The manifest line, then one JSON object per run (grid order):
  /// scenario, policy, seed, and the summary scalars. Non-finite values
  /// are emitted as null. Everything after the manifest line is
  /// bit-identical at every thread count.
  void write_jsonl(std::ostream& out) const;

  /// Per-cell aggregate table (mean/stddev/min/max columns) as CSV.
  void write_csv(std::ostream& out) const;

  /// write_csv to `path` plus the manifest sidecar `path + ".manifest.json"`
  /// (CSV has no comment syntax to embed provenance in-band).
  void write_csv_file(const std::string& path) const;
};

/// The per-run SimulationConfig seed for run `run_index` under `base_seed`
/// (splitmix64 over the pair) — pure, so any lane can compute any run.
std::uint64_t derive_run_seed(std::uint64_t base_seed, std::size_t run_index);

/// Filesystem-safe token for scenario/policy names inside sweep artifact
/// file names (replay bundles, timeline sidecars). Path-hostile characters
/// are replaced by '_'; any name the replacement changed (or an empty
/// name) gets a short FNV-1a suffix of the ORIGINAL, so "a/b" and "a_b"
/// cannot collide and no name can escape the artifact directory.
std::string sweep_artifact_token(const std::string& name);

/// Expands and executes a SweepGrid (see file comment).
class SweepRunner {
 public:
  explicit SweepRunner(SweepGrid grid, SweepOptions options = {});

  /// scenarios x policies x seeds.
  std::size_t num_runs() const;

  /// Executes the grid across the thread pool and aggregates. Scenario
  /// bundles are built once per scenario and shared read-only by the lanes;
  /// every lane owns its engine and policy.
  SweepResult run();

  const SweepGrid& grid() const { return grid_; }

 private:
  SweepGrid grid_;
  SweepOptions options_;
  std::vector<std::uint64_t> resolved_seeds_;
};

}  // namespace gp::scenario
