// Spec/policy JSON serialization, spec hashing, and replay bundles.
//
// to_json emits a canonical single-line JSON object whose doubles use
// shortest-round-trip formatting (std::to_chars), so parse(to_json(x))
// rebuilds x bit-for-bit — the property gp_replay's "reproduce the failure
// from the bundle alone" guarantee stands on. spec_hash() digests that
// canonical form (FNV-1a 64), giving the RunManifest a stable fingerprint:
// two runs with equal hashes ran structurally identical scenarios.
//
// A ReplayBundle is the failure-capture unit SweepRunner writes to its
// failures_dir: the capturing run's manifest, the fully-resolved scenario
// (including the derived per-run seed) and policy, what failed (unsolved
// periods, audit violations), and the lane's ConvergenceRecorder tail.
// The parsers accept the canonical form these writers emit; they are not a
// general JSON library.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/recorder.hpp"
#include "scenario/policy.hpp"
#include "scenario/spec.hpp"

namespace gp::scenario {

std::string to_json(const ScenarioSpec& spec);
std::string to_json(const PredictorSpec& spec);
std::string to_json(const PolicySpec& policy);

/// Inverse of the matching to_json (bit-for-bit: serializing the result
/// reproduces the input text). Throws PreconditionError on malformed input.
ScenarioSpec scenario_from_json(const std::string& json);
PredictorSpec predictor_from_json(const std::string& json);
PolicySpec policy_from_json(const std::string& json);

/// FNV-1a 64-bit digest as 16 hex characters.
std::string fnv1a_hex(const std::string& text);

/// The ScenarioSpec fingerprint recorded in RunManifest::spec_hash —
/// fnv1a_hex of the canonical JSON.
std::string spec_hash(const ScenarioSpec& spec);

/// A recorder sample with an owned stream name (obs::ConvergenceSample
/// stores static-literal pointers, which a parsed bundle cannot produce).
struct RecordedSample {
  std::string stream;
  long long step = 0;
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
};

/// Everything needed to re-run one failed sweep cell (see file comment).
struct ReplayBundle {
  obs::RunManifest manifest;     ///< provenance of the CAPTURING run
  ScenarioSpec scenario;         ///< resolved: scenario.sim.seed == seed
  PolicySpec policy;
  std::uint64_t seed = 0;        ///< the derived/explicit run seed
  bool audits_enabled = false;   ///< audits were on during capture
  int unsolved_periods = 0;
  std::vector<int> failed_periods;  ///< indices of !solved periods
  std::vector<std::pair<std::string, long long>> audit_violations;  ///< per audit name
  std::vector<RecordedSample> records;  ///< the lane's recorder tail
};

std::string to_json(const ReplayBundle& bundle);
ReplayBundle bundle_from_json(const std::string& json);

/// File round-trip; write throws nothing (best-effort like other dump
/// paths), read throws PreconditionError when the file is missing/bad.
void write_bundle(const ReplayBundle& bundle, const std::string& path);
ReplayBundle read_bundle(const std::string& path);

}  // namespace gp::scenario
