#include "scenario/trace.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace gp::scenario {

const char* demo_demand_trace_text() {
  return "# requests/s per access network, one row per 30-minute period\n"
         "an0,an1,an2,an3\n"
         "220,150,90,60\n"
         "260,180,110,75\n"
         "340,230,140,90\n"
         "420,300,180,120\n"
         "460,330,200,130\n"
         "450,320,195,125\n"
         "380,260,160,105\n"
         "290,200,120,80\n";
}

workload::Trace load_spec_trace(const std::string& path) {
  workload::TraceResult result;
  if (path == kBuiltinDemoTrace) {
    std::istringstream in(demo_demand_trace_text());
    result = workload::load_trace_csv(in);
  } else {
    std::ifstream in(path);
    require(in.good(), "load_spec_trace: cannot open trace " + path);
    result = workload::load_trace_csv(in);
  }
  require(result.ok, "load_spec_trace: " + path + ": " + result.error);
  return std::move(result.trace);
}

}  // namespace gp::scenario
