// Plot-ready series printing shared by the figure benches (moved here from
// bench/scenarios.hpp so every experiment artifact lives in the scenario
// layer): "# <title>" then CSV rows on stdout.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace gp::scenario {

/// Prints "# <title>" then a CSV header line — every bench emits the series
/// of one paper figure in a directly plottable form.
inline void print_series_header(const char* title, const std::vector<std::string>& columns) {
  std::printf("# %s\n", title);
  for (std::size_t i = 0; i < columns.size(); ++i) {
    std::printf("%s%s", i ? "," : "", columns[i].c_str());
  }
  std::printf("\n");
}

inline void print_row(const std::vector<double>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::printf("%s%.6g", i ? "," : "", cells[i]);
  }
  std::printf("\n");
}

}  // namespace gp::scenario
