#include "scenario/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <span>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/serialize.hpp"

namespace gp::scenario {

namespace {

/// Report label of a grid scenario (specs built by hand may be unnamed).
std::string scenario_label(const ScenarioSpec& spec, std::size_t index) {
  if (!spec.name.empty()) return spec.name;
  return "scenario" + std::to_string(index);
}

Aggregate aggregate_of(std::span<const double> values) {
  Aggregate agg;
  if (values.empty()) return agg;
  agg.mean = mean(values);
  agg.stddev = stddev(values);
  agg.min = *std::min_element(values.begin(), values.end());
  agg.max = *std::max_element(values.begin(), values.end());
  return agg;
}

/// JSON number token: round-trip formatting, null for non-finite values
/// (JSON has no NaN/inf and downstream parsers choke on them).
std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  return CsvWriter::format(value);
}

std::string json_string(const std::string& text) {
  std::string quoted = "\"";
  for (char c : text) {
    if (c == '"' || c == '\\') quoted += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) quoted += c;
  }
  quoted += '"';
  return quoted;
}

/// CSV cell: like CsvWriter::format but empty for non-finite values, the
/// same convention SimulationSummary::write_csv uses.
std::string csv_number(double value) {
  if (!std::isfinite(value)) return "";
  return CsvWriter::format(value);
}

/// GEOPLACE_PROGRESS parse (on/off grammar, read once).
bool progress_env() {
  static const bool armed = [] {
    const char* raw = std::getenv("GEOPLACE_PROGRESS");
    if (raw == nullptr) return false;
    const std::string value(raw);
    return !(value.empty() || value == "0" || value == "false" || value == "off");
  }();
  return armed;
}

/// Thread-safe, rate-limited sweep progress line on stderr. Lanes call
/// update() once per finished run; prints are throttled to one per
/// kMinPrintIntervalMs via a CAS on the last-print stamp, so contention is
/// one relaxed fetch_add per run plus the occasional fprintf. Purely
/// cosmetic: never touches the result arrays.
class ProgressMeter {
 public:
  ProgressMeter(std::size_t total, bool enabled)
      : total_(total), enabled_(enabled), start_(std::chrono::steady_clock::now()) {}

  void update(bool failed) {
    const std::size_t done = done_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (failed) failures_.fetch_add(1, std::memory_order_relaxed);
    if (!enabled_) return;
    const long long now_ms = elapsed_ms();
    long long last = last_print_ms_.load(std::memory_order_relaxed);
    if (done != total_ &&
        (now_ms - last < kMinPrintIntervalMs ||
         !last_print_ms_.compare_exchange_strong(last, now_ms, std::memory_order_relaxed))) {
      return;  // someone printed recently (or just won the slot)
    }
    print(done, now_ms, /*final_line=*/done == total_);
  }

 private:
  static constexpr long long kMinPrintIntervalMs = 200;

  long long elapsed_ms() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  void print(std::size_t done, long long now_ms, bool final_line) const {
    const double rate = now_ms > 0 ? 1000.0 * static_cast<double>(done)
                                         / static_cast<double>(now_ms)
                                   : 0.0;
    const double eta_s = rate > 0.0 ? static_cast<double>(total_ - done) / rate : 0.0;
    std::fprintf(stderr, "\rsweep: %zu/%zu runs, %.1f runs/s, ETA %.1fs, failures %zu%s",
                 done, total_, rate, eta_s, failures_.load(std::memory_order_relaxed),
                 final_line ? "\n" : "");
    std::fflush(stderr);
  }

  const std::size_t total_;
  const bool enabled_;
  const std::chrono::steady_clock::time_point start_;
  std::atomic<std::size_t> done_{0};
  std::atomic<std::size_t> failures_{0};
  std::atomic<long long> last_print_ms_{-kMinPrintIntervalMs};
};

}  // namespace

std::string sweep_artifact_token(const std::string& name) {
  std::string out;
  bool changed = false;
  for (char c : name) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.';
    out.push_back(keep ? c : '_');
    changed = changed || !keep;
  }
  // "." / ".." survive the character filter but are path tokens, not names.
  if (out == "." || out == "..") changed = true;
  if (out.empty() || changed) {
    // Disambiguate with a digest of the ORIGINAL name: "a/b" and "a_b" both
    // sanitize to "a_b" but digest differently, so their artifacts cannot
    // collide (and an all-hostile name still yields a usable token).
    out += "-" + fnv1a_hex(name).substr(0, 8);
  }
  return out;
}

std::uint64_t derive_run_seed(std::uint64_t base_seed, std::size_t run_index) {
  // splitmix64 over (base, index): statistically independent per-run
  // streams from one master seed, computable by any lane.
  std::uint64_t z =
      base_seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(run_index) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

SweepRunner::SweepRunner(SweepGrid grid, SweepOptions options)
    : grid_(std::move(grid)), options_(options) {
  require(!grid_.scenarios.empty(), "SweepRunner: need at least one scenario");
  require(!grid_.policies.empty(), "SweepRunner: need at least one policy");
  require(!grid_.seeds.empty() || grid_.num_seeds >= 1,
          "SweepRunner: need at least one seed");
  resolved_seeds_ = grid_.seeds;
}

std::size_t SweepRunner::num_runs() const {
  const std::size_t seeds = resolved_seeds_.empty() ? grid_.num_seeds
                                                    : resolved_seeds_.size();
  return grid_.scenarios.size() * grid_.policies.size() * seeds;
}

SweepResult SweepRunner::run() {
  obs::Span sweep_span("sweep.run", static_cast<double>(num_runs()));

  // Bundles are built once per scenario and shared READ-ONLY by the lanes;
  // every lane copies what it mutates (engine, controller).
  std::vector<ScenarioBundle> bundles;
  bundles.reserve(grid_.scenarios.size());
  for (const auto& spec : grid_.scenarios) bundles.push_back(build(spec));

  const std::size_t num_policies = grid_.policies.size();
  const std::size_t num_seeds = resolved_seeds_.empty() ? grid_.num_seeds
                                                        : resolved_seeds_.size();
  const std::size_t total = num_runs();

  SweepResult result;
  result.manifest = obs::RunManifest::capture("sweep");
  result.manifest.seeds =
      resolved_seeds_.empty() ? std::vector<std::uint64_t>{grid_.base_seed}
                              : resolved_seeds_;
  {
    // The grid fingerprint: one digest over every scenario and policy in
    // canonical JSON, so two sweeps with equal hashes ran the same grid.
    std::string canonical;
    for (const auto& spec : grid_.scenarios) {
      canonical += to_json(spec);
      if (!spec.demand_trace_csv.empty()) {
        result.manifest.trace_paths.push_back(spec.demand_trace_csv);
      }
      if (!spec.price_trace_csv.empty()) {
        result.manifest.trace_paths.push_back(spec.price_trace_csv);
      }
    }
    for (const auto& policy : grid_.policies) canonical += to_json(policy);
    result.manifest.spec_hash = fnv1a_hex(canonical);
  }

  result.runs.resize(total);
  // Per-cell timeline sidecars need the frames captured lane-side (the
  // engine leaves each run's frames in the lane's thread-local ring).
  const bool capture_timeline = obs::timeline_enabled() && !options_.timelines_dir.empty();
  ProgressMeter progress(total, options_.progress || progress_env());
  parallel_for(
      0, total,
      [&](std::size_t index) {
        obs::Span cell_span("sweep.cell", static_cast<double>(index));
        const std::size_t scenario_index = index / (num_policies * num_seeds);
        const std::size_t policy_index = (index / num_seeds) % num_policies;
        const std::size_t seed_index = index % num_seeds;

        ScenarioSpec spec = grid_.scenarios[scenario_index];
        spec.sim.seed = resolved_seeds_.empty()
                            ? derive_run_seed(grid_.base_seed, index)
                            : resolved_seeds_[seed_index];

        PolicyHandle policy = make_policy(bundles[scenario_index], spec,
                                          grid_.policies[policy_index]);
        sim::SimulationEngine engine = make_engine(bundles[scenario_index], spec);

        RunRecord record;
        record.scenario_index = scenario_index;
        record.policy_index = policy_index;
        record.seed_index = seed_index;
        record.scenario = scenario_label(grid_.scenarios[scenario_index], scenario_index);
        record.policy = grid_.policies[policy_index].label();
        record.seed = spec.sim.seed;
        // A lane runs one cell at a time, so its thread-local audit table
        // and recorder ring give exact per-run deltas when zeroed here.
        if (obs::audit::enabled()) obs::audit::reset_thread_counts();
        if (obs::recording_enabled()) obs::ConvergenceRecorder::local().clear();
        record.summary = engine.run(policy.policy());
        if (obs::audit::enabled()) record.audit_violations = obs::audit::thread_counts();
        const bool failed =
            record.summary.unsolved_periods > 0 || !record.audit_violations.empty();
        if (failed) {
          for (std::size_t k = 0; k < record.summary.periods.size(); ++k) {
            if (!record.summary.periods[k].solved) {
              record.failed_periods.push_back(static_cast<int>(k));
            }
          }
          if (obs::recording_enabled()) {
            record.recorder_tail = obs::ConvergenceRecorder::local().tail();
          }
        }
        if (capture_timeline) record.timeline = obs::TimelineWriter::local().frames();
        if (!options_.keep_periods) {
          record.summary.periods.clear();
          record.summary.periods.shrink_to_fit();
        }
        record.wall_ms = cell_span.close();
        if (obs::metrics_enabled()) {
          auto& registry = obs::Registry::global();
          registry.counter("sweep.runs").add(1);
          registry.counter("sweep.unsolved_periods")
              .add(record.summary.unsolved_periods);
          registry.histogram("sweep.run_ms").record(record.wall_ms);
        }
        // Results land by index, never by completion order (determinism).
        result.runs[index] = std::move(record);
        progress.update(failed);
      },
      options_.max_threads);

  // Failure capture: write a ReplayBundle per failed run, sequentially and
  // in grid order, so the set of bundle files is thread-count independent.
  if (!options_.failures_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.failures_dir, ec);
    for (const RunRecord& record : result.runs) {
      const bool failed =
          record.summary.unsolved_periods > 0 || !record.audit_violations.empty();
      if (!failed) continue;
      ReplayBundle bundle;
      bundle.manifest = result.manifest;
      bundle.scenario = grid_.scenarios[record.scenario_index];
      bundle.scenario.sim.seed = record.seed;
      bundle.manifest.spec_hash = spec_hash(bundle.scenario);
      bundle.manifest.seeds = {record.seed};
      bundle.policy = grid_.policies[record.policy_index];
      bundle.seed = record.seed;
      bundle.audits_enabled = obs::audit::enabled();
      bundle.unsolved_periods = record.summary.unsolved_periods;
      bundle.failed_periods = record.failed_periods;
      bundle.audit_violations = record.audit_violations;
      for (const obs::ConvergenceSample& sample : record.recorder_tail) {
        RecordedSample owned;
        owned.stream = sample.stream;
        owned.step = sample.step;
        owned.a = sample.a;
        owned.b = sample.b;
        owned.c = sample.c;
        bundle.records.push_back(std::move(owned));
      }
      const std::string file = sweep_artifact_token(record.scenario) + "_" +
                               sweep_artifact_token(record.policy) + "_seed" +
                               std::to_string(record.seed) + ".replay.json";
      write_bundle(bundle, (std::filesystem::path(options_.failures_dir) / file).string());
      ++result.failure_bundles;
    }
  }

  // Timeline sidecars: one manifest-headed columnar JSONL per run, written
  // sequentially in grid order (same thread-count independence as the
  // replay bundles they sit next to).
  if (capture_timeline) {
    std::error_code ec;
    std::filesystem::create_directories(options_.timelines_dir, ec);
    for (const RunRecord& record : result.runs) {
      if (record.timeline.empty()) continue;
      obs::RunManifest manifest = result.manifest;
      manifest.seeds = {record.seed};
      const std::string file = sweep_artifact_token(record.scenario) + "_" +
                               sweep_artifact_token(record.policy) + "_seed" +
                               std::to_string(record.seed) + ".timeline.jsonl";
      std::ofstream out(std::filesystem::path(options_.timelines_dir) / file);
      if (!out) continue;
      obs::write_timeline_jsonl(out, record.timeline, &manifest);
    }
  }

  // Aggregate the seed axis into per-(scenario, policy) cells.
  result.cells.reserve(grid_.scenarios.size() * num_policies);
  std::vector<double> total_cost, resource_cost, reconfig_cost, mean_compliance,
      worst_compliance, churn, policy_wall;
  for (std::size_t si = 0; si < grid_.scenarios.size(); ++si) {
    for (std::size_t pi = 0; pi < num_policies; ++pi) {
      total_cost.clear(); resource_cost.clear(); reconfig_cost.clear();
      mean_compliance.clear(); worst_compliance.clear(); churn.clear();
      policy_wall.clear();
      SweepCell cell;
      cell.scenario = scenario_label(grid_.scenarios[si], si);
      cell.policy = grid_.policies[pi].label();
      for (std::size_t ki = 0; ki < num_seeds; ++ki) {
        const RunRecord& record = result.runs[(si * num_policies + pi) * num_seeds + ki];
        const sim::SimulationSummary& summary = record.summary;
        total_cost.push_back(summary.total_cost);
        resource_cost.push_back(summary.total_resource_cost);
        reconfig_cost.push_back(summary.total_reconfig_cost);
        mean_compliance.push_back(summary.mean_compliance);
        worst_compliance.push_back(summary.worst_compliance);
        churn.push_back(summary.total_churn);
        policy_wall.push_back(summary.policy_wall_ms);
        cell.unsolved_periods += summary.unsolved_periods;
        cell.wall_ms += record.wall_ms;
        ++cell.runs;
      }
      cell.total_cost = aggregate_of(total_cost);
      cell.resource_cost = aggregate_of(resource_cost);
      cell.reconfig_cost = aggregate_of(reconfig_cost);
      cell.mean_compliance = aggregate_of(mean_compliance);
      cell.worst_compliance = aggregate_of(worst_compliance);
      cell.churn = aggregate_of(churn);
      cell.policy_wall_ms = aggregate_of(policy_wall);
      result.cells.push_back(std::move(cell));
    }
  }

  result.wall_ms = sweep_span.close();
  result.runs_per_s =
      result.wall_ms > 0.0 ? 1000.0 * static_cast<double>(total) / result.wall_ms : 0.0;
  if (obs::metrics_enabled()) {
    obs::Registry::global().gauge("sweep.runs_per_s").set(result.runs_per_s);
  }
  return result;
}

// The JSONL export is the determinism artifact: everything after the
// manifest line must be bit-identical at any thread count, so run lines
// carry only simulation results — wall-clock timings live in the CSV
// aggregates and SweepResult::wall_ms. (The manifest line itself records
// host facts like the lane count; obs::strip_manifest_lines removes it for
// cross-thread-count identity checks.)
void SweepResult::write_jsonl(std::ostream& out) const {
  out << manifest.to_jsonl_line() << "\n";
  for (const RunRecord& record : runs) {
    const sim::SimulationSummary& summary = record.summary;
    out << "{\"scenario\":" << json_string(record.scenario)
        << ",\"policy\":" << json_string(record.policy)
        << ",\"seed\":" << record.seed << ",\"seed_index\":" << record.seed_index
        << ",\"total_cost\":" << json_number(summary.total_cost)
        << ",\"resource_cost\":" << json_number(summary.total_resource_cost)
        << ",\"reconfig_cost\":" << json_number(summary.total_reconfig_cost)
        << ",\"total_churn\":" << json_number(summary.total_churn)
        << ",\"mean_compliance\":" << json_number(summary.mean_compliance)
        << ",\"worst_compliance\":" << json_number(summary.worst_compliance)
        << ",\"unsolved_periods\":" << summary.unsolved_periods << "}\n";
  }
}

void SweepResult::write_csv(std::ostream& out) const {
  CsvWriter csv(out);
  csv.header({"scenario", "policy", "runs",
              "total_cost_mean", "total_cost_stddev", "total_cost_min", "total_cost_max",
              "resource_cost_mean", "reconfig_cost_mean",
              "mean_compliance_mean", "mean_compliance_stddev", "worst_compliance_min",
              "churn_mean", "churn_stddev", "unsolved_periods",
              "policy_wall_ms_mean", "cell_wall_ms"});
  for (const SweepCell& cell : cells) {
    csv.row(std::vector<std::string>{
        cell.scenario, cell.policy, std::to_string(cell.runs),
        csv_number(cell.total_cost.mean), csv_number(cell.total_cost.stddev),
        csv_number(cell.total_cost.min), csv_number(cell.total_cost.max),
        csv_number(cell.resource_cost.mean), csv_number(cell.reconfig_cost.mean),
        csv_number(cell.mean_compliance.mean), csv_number(cell.mean_compliance.stddev),
        csv_number(cell.worst_compliance.min),
        csv_number(cell.churn.mean), csv_number(cell.churn.stddev),
        std::to_string(cell.unsolved_periods),
        csv_number(cell.policy_wall_ms.mean), csv_number(cell.wall_ms)});
  }
}

void SweepResult::write_csv_file(const std::string& path) const {
  std::ofstream out(path);
  require(out.good(), "SweepResult::write_csv_file: cannot open " + path);
  write_csv(out);
  manifest.write_sidecar(path);
}

}  // namespace gp::scenario
