#include "scenario/policy.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "linalg/vector_ops.hpp"

namespace gp::scenario {

using linalg::Vector;

std::unique_ptr<control::SeriesPredictor> make_predictor(const PredictorSpec& spec,
                                                         std::vector<Vector> oracle_trace) {
  if (spec.kind == "oracle") {
    return std::make_unique<control::OraclePredictor>(std::move(oracle_trace),
                                                      spec.oracle_wrap);
  }
  if (spec.kind == "ar") {
    return std::make_unique<control::ArPredictor>(spec.order, spec.window);
  }
  if (spec.kind == "seasonal") {
    return std::make_unique<control::SeasonalNaivePredictor>(spec.season);
  }
  if (spec.kind == "seasonal_ar") {
    return std::make_unique<control::SeasonalArPredictor>(spec.season, spec.order,
                                                          spec.window);
  }
  require(spec.kind == "last", "make_predictor: unknown predictor kind");
  return std::make_unique<control::LastValuePredictor>();
}

std::unique_ptr<control::SeriesPredictor> make_predictor(const std::string& kind,
                                                         std::vector<Vector> oracle_trace) {
  PredictorSpec spec;
  spec.kind = kind;
  // The historical default tuning of the seasonal+AR hybrid.
  if (kind == "seasonal_ar") spec.window = 72;
  return make_predictor(spec, std::move(oracle_trace));
}

std::vector<Vector> mean_demand_trace(const ScenarioBundle& bundle, const ScenarioSpec& spec,
                                      std::size_t extra) {
  std::vector<Vector> trace;
  trace.reserve(spec.sim.periods + extra + 1);
  for (std::size_t k = 0; k <= spec.sim.periods + extra; ++k) {
    const double hour =
        spec.sim.utc_start_hour + static_cast<double>(k) * spec.sim.period_hours;
    trace.push_back(bundle.demand.mean_rates(hour + spec.sim.period_hours / 2.0));
  }
  return trace;
}

std::vector<Vector> price_trace(const ScenarioBundle& bundle, const ScenarioSpec& spec,
                                std::size_t extra) {
  std::vector<Vector> trace;
  trace.reserve(spec.sim.periods + extra + 1);
  for (std::size_t k = 0; k <= spec.sim.periods + extra; ++k) {
    const double hour =
        spec.sim.freeze_prices
            ? spec.sim.utc_start_hour
            : spec.sim.utc_start_hour + static_cast<double>(k) * spec.sim.period_hours;
    Vector price = bundle.prices.server_prices(hour + spec.sim.period_hours / 2.0);
    linalg::scale(spec.sim.period_hours, price);
    trace.push_back(std::move(price));
  }
  return trace;
}

namespace {

std::unique_ptr<control::SeriesPredictor> predictor_for(const ScenarioBundle& bundle,
                                                        const ScenarioSpec& spec,
                                                        const PredictorSpec& predictor,
                                                        bool demand_series) {
  if (predictor.kind == "oracle") {
    return make_predictor(predictor, demand_series ? mean_demand_trace(bundle, spec)
                                                   : price_trace(bundle, spec));
  }
  return make_predictor(predictor);
}

/// Per-network peak of the mean demand, scanned hourly over one day — the
/// reference the static baseline provisions for.
Vector peak_mean_demand(const ScenarioBundle& bundle) {
  Vector peak(bundle.model.num_access_networks(), 0.0);
  for (double hour = 0.0; hour < 24.0; hour += 1.0) {
    const auto rates = bundle.demand.mean_rates(hour);
    for (std::size_t v = 0; v < peak.size(); ++v) peak[v] = std::max(peak[v], rates[v]);
  }
  return peak;
}

}  // namespace

PolicyHandle make_policy(const ScenarioBundle& bundle, const ScenarioSpec& spec,
                         const PolicySpec& policy) {
  PolicyHandle handle;
  if (policy.kind == "mpc") {
    control::MpcSettings settings;
    settings.horizon = policy.horizon;
    settings.soft_demand_penalty = policy.soft_demand_penalty;
    settings.reuse_solver_state = policy.reuse_solver_state;
    handle.mpc_ = std::make_unique<control::MpcController>(
        bundle.model, settings,
        predictor_for(bundle, spec, policy.demand_predictor, /*demand_series=*/true),
        predictor_for(bundle, spec, policy.price_predictor, /*demand_series=*/false));
    handle.policy_ = sim::policy_from(*handle.mpc_);
  } else if (policy.kind == "static") {
    // Price observed the way the engine would at the reference hour.
    Vector price = bundle.prices.server_prices(policy.static_reference_hour +
                                               spec.sim.period_hours / 2.0);
    linalg::scale(spec.sim.period_hours, price);
    handle.static_ = std::make_unique<control::StaticController>(
        bundle.model, peak_mean_demand(bundle), price);
    handle.policy_ = sim::policy_from(*handle.static_);
  } else if (policy.kind == "reactive") {
    handle.reactive_ = std::make_unique<control::ReactiveController>(bundle.model);
    handle.policy_ = sim::policy_from(*handle.reactive_);
  } else if (policy.kind == "autoscaler") {
    handle.autoscaler_ = std::make_unique<control::ThresholdAutoscaler>(bundle.model);
    handle.policy_ = sim::policy_from(*handle.autoscaler_);
  } else {
    require(false, "make_policy: unknown policy kind");
  }
  if (policy.integerized) {
    handle.model_ = std::make_unique<dspp::DsppModel>(bundle.model);
    handle.pairs_ = std::make_unique<dspp::PairIndex>(*handle.model_);
    handle.policy_ = sim::integerized(std::move(handle.policy_), *handle.model_,
                                      *handle.pairs_);
  }
  return handle;
}

}  // namespace gp::scenario
