#include "scenario/spec.hpp"

#include "common/error.hpp"
#include "scenario/trace.hpp"

namespace gp::scenario {

ScenarioSpec section7_spec(std::size_t num_dcs, std::size_t num_cities,
                           double rate_per_capita, workload::DiurnalProfile profile) {
  ScenarioSpec spec;
  spec.num_dcs = num_dcs;
  spec.num_cities = num_cities;
  spec.rate_per_capita = rate_per_capita;
  spec.profile = profile;
  return spec;
}

ScenarioBundle build(const ScenarioSpec& spec) {
  require(spec.num_dcs >= 1, "ScenarioSpec: need at least one data center");
  const auto& all_cities = topology::us_cities24();
  require(spec.num_cities >= 1 && spec.num_cities <= all_cities.size(),
          "ScenarioSpec: num_cities must be in [1, 24]");

  auto sites = topology::default_datacenter_sites(spec.num_dcs);
  std::vector<topology::City> cities(all_cities.begin(),
                                     all_cities.begin() +
                                         static_cast<std::ptrdiff_t>(spec.num_cities));

  const auto trace_values = [&spec](const std::string& path, std::size_t expected_width,
                                    const char* what) {
    const workload::Trace trace = load_spec_trace(path);
    require(trace.width() == expected_width,
            std::string("ScenarioSpec: ") + what + " trace " + path + " has " +
                std::to_string(trace.width()) + " columns, expected " +
                std::to_string(expected_width));
    std::vector<std::vector<double>> values;
    values.reserve(trace.values.size());
    for (const auto& row : trace.values) values.emplace_back(row.begin(), row.end());
    return values;
  };

  ScenarioBundle bundle{
      .model = {},
      .demand = spec.demand_trace_csv.empty()
                    ? workload::DemandModel::from_cities(cities, spec.rate_per_capita,
                                                         spec.profile)
                    : workload::DemandModel::from_trace(
                          trace_values(spec.demand_trace_csv, spec.num_cities, "demand"),
                          spec.sim.period_hours, spec.sim.utc_start_hour, spec.trace_wrap),
      .prices = spec.price_trace_csv.empty()
                    ? workload::ServerPriceModel(sites, spec.vm,
                                                 workload::ElectricityPriceModel())
                    : workload::ServerPriceModel::from_trace(
                          sites, spec.vm,
                          trace_values(spec.price_trace_csv, spec.num_dcs, "price"),
                          spec.sim.period_hours, spec.sim.utc_start_hour, spec.trace_wrap),
      .sites = std::move(sites),
      .cities = std::move(cities)};
  bundle.model.network = topology::NetworkModel::from_geography(bundle.sites, bundle.cities);
  bundle.model.sla.mu = spec.mu;
  bundle.model.sla.max_latency_ms = spec.max_latency_ms;
  bundle.model.sla.reservation_ratio = spec.reservation_ratio;
  bundle.model.reconfig_cost.assign(spec.num_dcs, spec.reconfig_cost);
  bundle.model.capacity.assign(spec.num_dcs, spec.capacity);
  for (const auto& crowd : spec.flash_crowds) bundle.demand.add_flash_crowd(crowd);
  return bundle;
}

sim::SimulationEngine make_engine(const ScenarioBundle& bundle, const ScenarioSpec& spec) {
  return sim::SimulationEngine(bundle.model, bundle.demand, bundle.prices, spec.sim);
}

}  // namespace gp::scenario
