#include "scenario/registry.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "scenario/trace.hpp"

namespace gp::scenario {

namespace {

using PresetMap = std::map<std::string, ScenarioSpec, std::less<>>;

ScenarioSpec named(std::string name, ScenarioSpec spec) {
  spec.name = std::move(name);
  return spec;
}

PresetMap build_presets() {
  PresetMap presets;
  auto add = [&presets](const ScenarioSpec& spec) { presets.emplace(spec.name, spec); };

  // The full evaluation environment: 4 named data centers x 24 cities over
  // two noisy days (the geo_load_balancing / perf study setup).
  {
    ScenarioSpec spec = section7_spec(4, 24, 2e-5);
    spec.sim.periods = 48;
    spec.sim.noisy_demand = true;
    spec.sim.seed = 2026;
    add(named("paper_full", spec));
  }

  // Fig. 4: one DC (San Jose) serving one access network (New York) under
  // diurnal demand; the SLA is relaxed so the distant pair is feasible.
  {
    ScenarioSpec spec = section7_spec(1, 1, 2e-5);
    spec.max_latency_ms = 60.0;
    spec.reconfig_cost = 0.01;
    spec.sim.periods = 48;
    spec.sim.period_hours = 0.5;
    spec.sim.noisy_demand = true;
    spec.sim.seed = 42;
    add(named("fig04", spec));
  }

  // Fig. 5: three regional DCs, constant demand, price-driven shifts.
  {
    ScenarioSpec spec = section7_spec(3, 12, 2e-5, workload::DiurnalProfile(1.0, 1.0));
    spec.sim.periods = 48;
    spec.sim.seed = 3;
    add(named("fig05_price", spec));
  }

  // Fig. 6: the Fig. 4 environment at lower load, horizon sweep.
  {
    ScenarioSpec spec = section7_spec(1, 1, 2e-6);
    spec.max_latency_ms = 60.0;
    spec.sim.periods = 48;
    spec.sim.period_hours = 0.5;
    spec.sim.noisy_demand = true;
    spec.sim.seed = 11;
    add(named("fig06_horizon", spec));
  }

  // Fig. 9: volatile demand AND volatile prices (the non-monotone-horizon
  // experiment).
  {
    ScenarioSpec spec = section7_spec(2, 4, 1.2e-5);
    spec.reconfig_cost = 0.05;
    spec.sim.periods = 72;
    spec.sim.noisy_demand = true;
    spec.sim.price_noise_std = 0.25;
    spec.sim.seed = 5;
    add(named("fig09_volatile", spec));
  }

  // Fig. 10: constant demand and frozen prices, starting 4x over-provisioned
  // (the planned de-provisioning glide).
  {
    ScenarioSpec spec = section7_spec(1, 1, 2e-5, workload::DiurnalProfile(1.0, 1.0));
    spec.max_latency_ms = 60.0;
    spec.reconfig_cost = 0.5;
    spec.sim.periods = 24;
    spec.sim.seed = 9;
    spec.sim.freeze_prices = true;
    spec.sim.initial_overprovision = 4.0;
    add(named("fig10_constant", spec));
  }

  // Controller ablation: 3 DCs x 8 cities, two noisy diurnal days.
  {
    ScenarioSpec spec = section7_spec(3, 8, 1.5e-5);
    spec.reconfig_cost = 0.01;
    spec.reservation_ratio = 1.15;
    spec.sim.periods = 48;
    spec.sim.noisy_demand = true;
    spec.sim.seed = 2026;
    add(named("ablation_controllers", spec));
  }

  // Predictor ablation: 2 DCs x 6 cities, two days so seasonal models get a
  // full day of history.
  {
    ScenarioSpec spec = section7_spec(2, 6, 1.5e-5);
    spec.reconfig_cost = 0.01;
    spec.sim.periods = 48;
    spec.sim.noisy_demand = true;
    spec.sim.seed = 33;
    add(named("ablation_predictors", spec));
  }

  // Reconfiguration-weight ablation: the bench varies reconfig_cost itself.
  {
    ScenarioSpec spec = section7_spec(2, 4, 1.5e-5);
    spec.sim.periods = 48;
    spec.sim.period_hours = 0.5;
    spec.sim.noisy_demand = true;
    spec.sim.seed = 21;
    add(named("ablation_reconfig", spec));
  }

  // Warm-start ablation: 3 DCs x 8 cities, one noisy day.
  {
    ScenarioSpec spec = section7_spec(3, 8, 1.5e-5);
    spec.reconfig_cost = 0.01;
    spec.sim.periods = 24;
    spec.sim.noisy_demand = true;
    spec.sim.seed = 99;
    add(named("ablation_warm_start", spec));
  }

  // The small 2-DC / 4-city case: fast enough for tests and sweep smoke
  // jobs, rich enough to exercise multi-DC routing.
  {
    ScenarioSpec spec = section7_spec(2, 4, 1.5e-5);
    spec.max_latency_ms = 60.0;
    spec.sim.periods = 24;
    spec.sim.noisy_demand = true;
    spec.sim.seed = 44;
    add(named("ablation_small", spec));
  }

  // Flash crowd: a 5x spike at New York from 10:00 to 13:00 UTC.
  {
    ScenarioSpec spec = section7_spec(2, 4, 1.5e-5, workload::DiurnalProfile(0.6, 1.0));
    spec.max_latency_ms = 120.0;
    spec.reservation_ratio = 1.0;  // the example raises this per variant
    spec.reconfig_cost = 0.001;
    spec.flash_crowds.push_back({0, 10.0, 3.0, 5.0});
    spec.sim.periods = 24;
    spec.sim.noisy_demand = true;
    spec.sim.seed = 7;
    add(named("flash_crowd", spec));
  }

  // Trace-driven: demand replayed from the embedded demo trace (8 half-hour
  // periods x 4 access networks) through two cycles — the recorded-workload
  // path of DESIGN.md; point demand_trace_csv/price_trace_csv at real CSVs
  // to replay measured data. Latency/capacity are relaxed like fig04's so
  // the 2-DC geography stays feasible at the trace's absolute rates.
  {
    ScenarioSpec spec = section7_spec(2, 4);
    spec.demand_trace_csv = kBuiltinDemoTrace;
    spec.max_latency_ms = 60.0;
    spec.reconfig_cost = 0.01;
    spec.reservation_ratio = 1.3;  // cushion for the trace's steep ramps
    spec.sim.periods = 16;  // 2 cycles of the 8-period trace (trace_wrap)
    spec.sim.period_hours = 0.5;
    spec.sim.seed = 17;
    add(named("trace_driven", spec));
  }

  // Outage drill: 3 DCs x 6 cities (the dc_outage example throttles one
  // site's quota mid-day).
  {
    ScenarioSpec spec = section7_spec(3, 6, 1.5e-5);
    spec.max_latency_ms = 60.0;
    spec.reconfig_cost = 0.01;
    spec.sim.periods = 24;
    add(named("dc_outage", spec));
  }

  return presets;
}

const PresetMap& presets() {
  static const PresetMap map = build_presets();
  return map;
}

}  // namespace

const std::vector<std::string>& preset_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> all;
    for (const auto& [name, spec] : presets()) all.push_back(name);
    return all;
  }();
  return names;
}

bool has_preset(std::string_view name) {
  return presets().find(name) != presets().end();
}

ScenarioSpec preset(std::string_view name) {
  const auto it = presets().find(name);
  if (it == presets().end()) {
    std::string message = "unknown scenario preset '" + std::string(name) + "'; available:";
    for (const auto& known : preset_names()) message += " " + known;
    throw PreconditionError(message);
  }
  return it->second;
}

}  // namespace gp::scenario
