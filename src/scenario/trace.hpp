// Trace loading for trace-driven scenarios: resolves the CSV paths a
// ScenarioSpec references (lifted out of examples/trace_driven.cpp so
// recorded workloads are registry presets and sweepable grid axes, not
// example-local glue). Parsing itself is workload::load_trace_csv; this
// layer adds path resolution — including the embedded "builtin:demo" trace
// — and turns parse failures into exceptions carrying the path.
#pragma once

#include <string>

#include "workload/trace_io.hpp"

namespace gp::scenario {

/// The path prefix of embedded traces ("builtin:demo" is the only one).
inline constexpr const char* kBuiltinDemoTrace = "builtin:demo";

/// The embedded demo demand trace: 8 half-hour periods x 4 access networks,
/// requests/s (the trace the trace_driven example ships). CSV text with a
/// header row, ready for workload::load_trace_csv.
const char* demo_demand_trace_text();

/// Loads the trace a spec path references: kBuiltinDemoTrace resolves to
/// the embedded text, anything else is opened as a file. Throws
/// PreconditionError with the path on open or parse failure.
workload::Trace load_spec_trace(const std::string& path);

}  // namespace gp::scenario
