// Geographic reference data: the 24 US access-network cities and the
// data-center sites used by the paper's evaluation (Section VII), with
// populations, coordinates, time zones, and the regional electricity market
// (RTO) each location belongs to.
#pragma once

#include <string>
#include <vector>

namespace gp::topology {

/// Regional electricity market a location draws power from. Each region's
/// wholesale price moves independently (the premise of the paper's Fig. 3).
enum class Region {
  kCalifornia,  // CAISO
  kTexas,       // ERCOT
  kSoutheast,   // SOCO (Georgia)
  kMidwest,     // PJM/MISO (Illinois)
  kEast,        // PJM East (Virginia)
};

std::string to_string(Region region);

/// A customer population center hosting an access network.
struct City {
  std::string name;
  std::string state;       ///< two-letter code
  double latitude = 0.0;   ///< degrees
  double longitude = 0.0;  ///< degrees (negative = west)
  double population = 0.0; ///< metro population, used to scale demand
  int utc_offset_hours = 0;///< standard-time offset from UTC (e.g. -5 for EST)
  Region region = Region::kEast;
};

/// A data-center location a service provider can lease servers in.
struct DataCenterSite {
  std::string name;   ///< human-readable, e.g. "dc-sanjose"
  City location;      ///< geographic placement (population unused)
};

/// The 24 major-US-city access networks used in the experiments.
/// Deterministic order; populations are 2010-era metro estimates.
const std::vector<City>& us_cities24();

/// The paper's data-center sites. The paper states five data centers and
/// names four (San Jose CA, Houston/Dallas TX, Atlanta GA, Chicago IL); we
/// include Ashburn VA as the fifth. `count` trims the list (4 reproduces
/// the named set, which the figure benches use).
std::vector<DataCenterSite> default_datacenter_sites(std::size_t count = 4);

/// Great-circle distance in kilometres (haversine).
double haversine_km(const City& a, const City& b);

/// One-way network propagation latency estimate in milliseconds for a
/// great-circle fibre path: distance / (0.66 c) plus a fixed per-path
/// processing overhead.
double propagation_latency_ms(const City& a, const City& b);

}  // namespace gp::topology
