// GT-ITM-style transit-stub topology generator.
//
// The paper augments Rocketfuel ISP graphs "by introducing intermediary ISP
// and access networks, similar to the procedure for generating transit-stub
// networks in the GT-ITM network topology generator", with link latencies of
// 20 ms (intra-transit), 5 ms (stub-transit) and 2 ms (intra-stub). The
// Rocketfuel dataset is not shipped with this library, so the generator
// below produces the full transit-stub hierarchy directly with the same
// latency constants (a documented substitution; see DESIGN.md).
//
// Structure: a ring+chords core of transit domains, each a connected random
// graph of transit routers; every transit router sponsors several stub
// domains (access networks), each a connected random graph attached to its
// transit router by a stub-transit link. Connectivity is guaranteed by
// construction (random spanning tree per domain plus extra chords).
#pragma once

#include "common/rng.hpp"
#include "topology/graph.hpp"

namespace gp::topology {

/// Role of a node in the transit-stub hierarchy.
enum class NodeKind { kTransit, kStub };

/// Generator parameters; defaults give ~200-node topologies comparable to
/// an augmented Rocketfuel PoP map.
struct TransitStubParams {
  int transit_domains = 4;
  int transit_nodes_per_domain = 4;
  int stub_domains_per_transit_node = 3;
  int stub_nodes_per_domain = 4;
  double extra_edge_probability = 0.3;  ///< chords beyond the spanning tree
  double intra_transit_latency_ms = 20.0;
  double stub_transit_latency_ms = 5.0;
  double intra_stub_latency_ms = 2.0;
};

/// A generated topology plus its node metadata.
struct TransitStubTopology {
  Graph graph;
  std::vector<NodeKind> kind;        ///< per node
  std::vector<std::int32_t> domain;  ///< per node: domain index (transit and stub
                                     ///  domains numbered separately)
  std::vector<NodeId> transit_nodes; ///< all transit routers
  std::vector<NodeId> stub_nodes;    ///< all stub (access) routers

  /// Stub nodes grouped by stub domain, in domain order.
  std::vector<std::vector<NodeId>> stub_domains;
};

/// Generates a connected transit-stub topology. Throws PreconditionError on
/// non-positive parameters.
TransitStubTopology generate_transit_stub(const TransitStubParams& params, Rng& rng);

}  // namespace gp::topology
