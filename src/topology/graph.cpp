#include "topology/graph.hpp"

#include <queue>

#include "common/error.hpp"

namespace gp::topology {

Graph::Graph(std::int32_t num_nodes) {
  require(num_nodes >= 0, "Graph: negative node count");
  adjacency_.resize(static_cast<std::size_t>(num_nodes));
}

void Graph::add_edge(NodeId a, NodeId b, double weight) {
  require(a >= 0 && a < num_nodes() && b >= 0 && b < num_nodes(), "add_edge: node out of range");
  require(a != b, "add_edge: self-loops are not allowed");
  require(weight >= 0.0, "add_edge: negative weight");
  adjacency_[static_cast<std::size_t>(a)].push_back({b, weight});
  adjacency_[static_cast<std::size_t>(b)].push_back({a, weight});
  ++num_edges_;
}

NodeId Graph::add_node() {
  adjacency_.emplace_back();
  return num_nodes() - 1;
}

std::span<const Graph::Neighbor> Graph::neighbors(NodeId node) const {
  require(node >= 0 && node < num_nodes(), "neighbors: node out of range");
  return adjacency_[static_cast<std::size_t>(node)];
}

std::vector<double> Graph::dijkstra(NodeId source) const {
  require(source >= 0 && source < num_nodes(), "dijkstra: source out of range");
  std::vector<double> dist(adjacency_.size(), kUnreachable);
  using Entry = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[static_cast<std::size_t>(source)] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [d, node] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(node)]) continue;  // stale entry
    for (const auto& [next, weight] : adjacency_[static_cast<std::size_t>(node)]) {
      const double candidate = d + weight;
      if (candidate < dist[static_cast<std::size_t>(next)]) {
        dist[static_cast<std::size_t>(next)] = candidate;
        heap.push({candidate, next});
      }
    }
  }
  return dist;
}

bool Graph::connected() const {
  if (adjacency_.empty()) return true;
  const auto dist = dijkstra(0);
  for (double d : dist) {
    if (d == kUnreachable) return false;
  }
  return true;
}

}  // namespace gp::topology
