// Undirected weighted graph with Dijkstra shortest paths; the substrate for
// the transit-stub topology generator and the latency-matrix computation.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace gp::topology {

/// Node identifier within a Graph.
using NodeId = std::int32_t;

/// Undirected graph with non-negative edge weights (latencies in ms).
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::int32_t num_nodes);

  std::int32_t num_nodes() const { return static_cast<std::int32_t>(adjacency_.size()); }
  std::int64_t num_edges() const { return num_edges_; }

  /// Adds an undirected edge; parallel edges are allowed (Dijkstra uses the
  /// cheapest). Weight must be >= 0.
  void add_edge(NodeId a, NodeId b, double weight);

  /// Appends a new isolated node; returns its id.
  NodeId add_node();

  struct Neighbor {
    NodeId node;
    double weight;
  };
  std::span<const Neighbor> neighbors(NodeId node) const;

  /// Single-source shortest path distances (ms). Unreachable nodes get
  /// +infinity.
  std::vector<double> dijkstra(NodeId source) const;

  /// True when every node is reachable from node 0 (or the graph is empty).
  bool connected() const;

  static constexpr double kUnreachable = std::numeric_limits<double>::infinity();

 private:
  std::vector<std::vector<Neighbor>> adjacency_;
  std::int64_t num_edges_ = 0;
};

}  // namespace gp::topology
