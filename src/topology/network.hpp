// The bipartite network model the DSPP formulation consumes: data centers L,
// customer locations V, and the latency matrix d_lv between them (Section IV
// of the paper models the network exclusively through d_lv).
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "topology/geo.hpp"
#include "topology/transit_stub.hpp"

namespace gp::topology {

/// Bipartite latency model between |L| data centers and |V| access networks.
class NetworkModel {
 public:
  NetworkModel() = default;

  /// Builds from an explicit latency matrix (latency_ms[l][v], one row per
  /// data center). Rows must be equally sized.
  NetworkModel(std::vector<std::string> dc_names, std::vector<std::string> an_names,
               std::vector<std::vector<double>> latency_ms);

  /// Builds by embedding data centers and access networks into a generated
  /// transit-stub topology: each data center is attached to a distinct
  /// transit router (5 ms access link), each access network to a distinct
  /// stub domain; d_lv is the shortest-path latency between attachments.
  static NetworkModel from_transit_stub(const TransitStubTopology& topo,
                                        std::size_t num_datacenters,
                                        std::size_t num_access_networks, Rng& rng);

  /// Builds from geographic positions: d_lv is the great-circle propagation
  /// estimate between each site and city.
  static NetworkModel from_geography(const std::vector<DataCenterSite>& sites,
                                     const std::vector<City>& cities);

  std::size_t num_datacenters() const { return dc_names_.size(); }
  std::size_t num_access_networks() const { return an_names_.size(); }

  /// One-way latency in ms between data center l and access network v.
  double latency_ms(std::size_t l, std::size_t v) const;

  const std::string& dc_name(std::size_t l) const { return dc_names_[l]; }
  const std::string& an_name(std::size_t v) const { return an_names_[v]; }

 private:
  std::vector<std::string> dc_names_;
  std::vector<std::string> an_names_;
  std::vector<std::vector<double>> latency_ms_;  // [l][v]
};

}  // namespace gp::topology
