#include "topology/network.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gp::topology {

NetworkModel::NetworkModel(std::vector<std::string> dc_names, std::vector<std::string> an_names,
                           std::vector<std::vector<double>> latency_ms)
    : dc_names_(std::move(dc_names)),
      an_names_(std::move(an_names)),
      latency_ms_(std::move(latency_ms)) {
  require(latency_ms_.size() == dc_names_.size(), "NetworkModel: row count != dc count");
  for (const auto& row : latency_ms_) {
    require(row.size() == an_names_.size(), "NetworkModel: row size != access network count");
    for (double d : row) require(d >= 0.0, "NetworkModel: negative latency");
  }
}

NetworkModel NetworkModel::from_transit_stub(const TransitStubTopology& topo,
                                             std::size_t num_datacenters,
                                             std::size_t num_access_networks, Rng& rng) {
  require(num_datacenters >= 1, "from_transit_stub: need at least one data center");
  require(num_access_networks >= 1, "from_transit_stub: need at least one access network");
  require(num_datacenters <= topo.transit_nodes.size(),
          "from_transit_stub: more data centers than transit routers");
  require(num_access_networks <= topo.stub_domains.size(),
          "from_transit_stub: more access networks than stub domains");

  // Choose distinct transit routers for the data centers.
  std::vector<NodeId> transit_pool = topo.transit_nodes;
  rng.shuffle(transit_pool);
  std::vector<NodeId> dc_nodes(transit_pool.begin(),
                               transit_pool.begin() + static_cast<std::ptrdiff_t>(num_datacenters));

  // Choose distinct stub domains for the access networks; the access network
  // sits at a random node of its domain.
  std::vector<std::size_t> domain_order(topo.stub_domains.size());
  for (std::size_t i = 0; i < domain_order.size(); ++i) domain_order[i] = i;
  rng.shuffle(domain_order);
  std::vector<NodeId> an_nodes;
  for (std::size_t i = 0; i < num_access_networks; ++i) {
    const auto& domain = topo.stub_domains[domain_order[i]];
    an_nodes.push_back(domain[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(domain.size()) - 1))]);
  }

  // Each data center adds a 5 ms access hop from its transit router.
  constexpr double kDcAccessLatencyMs = 5.0;
  std::vector<std::vector<double>> latency(num_datacenters,
                                           std::vector<double>(num_access_networks, 0.0));
  std::vector<std::string> dc_names, an_names;
  for (std::size_t l = 0; l < num_datacenters; ++l) {
    const auto dist = topo.graph.dijkstra(dc_nodes[l]);
    for (std::size_t v = 0; v < num_access_networks; ++v) {
      const double d = dist[static_cast<std::size_t>(an_nodes[v])];
      ensure(d != Graph::kUnreachable, "from_transit_stub: disconnected topology");
      latency[l][v] = d + kDcAccessLatencyMs;
    }
    dc_names.push_back("dc-" + std::to_string(l));
  }
  for (std::size_t v = 0; v < num_access_networks; ++v) {
    an_names.push_back("an-" + std::to_string(v));
  }
  return NetworkModel(std::move(dc_names), std::move(an_names), std::move(latency));
}

NetworkModel NetworkModel::from_geography(const std::vector<DataCenterSite>& sites,
                                          const std::vector<City>& cities) {
  require(!sites.empty() && !cities.empty(), "from_geography: empty sites or cities");
  std::vector<std::string> dc_names, an_names;
  std::vector<std::vector<double>> latency;
  for (const auto& site : sites) {
    dc_names.push_back(site.name);
    std::vector<double> row;
    row.reserve(cities.size());
    for (const auto& city : cities) row.push_back(propagation_latency_ms(site.location, city));
    latency.push_back(std::move(row));
  }
  for (const auto& city : cities) an_names.push_back(city.name);
  return NetworkModel(std::move(dc_names), std::move(an_names), std::move(latency));
}

double NetworkModel::latency_ms(std::size_t l, std::size_t v) const {
  require(l < dc_names_.size(), "latency_ms: data center index out of range");
  require(v < an_names_.size(), "latency_ms: access network index out of range");
  return latency_ms_[l][v];
}

}  // namespace gp::topology
