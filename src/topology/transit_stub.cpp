#include "topology/transit_stub.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gp::topology {

namespace {

/// Adds a random connected subgraph over `nodes`: a random spanning tree
/// plus extra chords with the given probability. All edges get `latency`.
void wire_domain(Graph& graph, std::span<const NodeId> nodes, double latency,
                 double extra_edge_probability, Rng& rng) {
  if (nodes.size() <= 1) return;
  // Random spanning tree: connect node i to a uniformly random predecessor.
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    graph.add_edge(nodes[i], nodes[j], latency);
  }
  // Extra chords.
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    for (std::size_t j = i + 2; j < nodes.size(); ++j) {  // skip tree-adjacent pair heuristic
      if (rng.uniform() < extra_edge_probability) graph.add_edge(nodes[i], nodes[j], latency);
    }
  }
}

}  // namespace

TransitStubTopology generate_transit_stub(const TransitStubParams& params, Rng& rng) {
  require(params.transit_domains > 0, "generate_transit_stub: transit_domains must be > 0");
  require(params.transit_nodes_per_domain > 0,
          "generate_transit_stub: transit_nodes_per_domain must be > 0");
  require(params.stub_domains_per_transit_node >= 0,
          "generate_transit_stub: stub_domains_per_transit_node must be >= 0");
  require(params.stub_nodes_per_domain > 0,
          "generate_transit_stub: stub_nodes_per_domain must be > 0");
  require(params.extra_edge_probability >= 0.0 && params.extra_edge_probability <= 1.0,
          "generate_transit_stub: extra_edge_probability must be in [0, 1]");

  TransitStubTopology topo;
  std::int32_t next_domain = 0;

  // --- Transit core. ---
  std::vector<std::vector<NodeId>> transit_domains;
  for (int td = 0; td < params.transit_domains; ++td) {
    std::vector<NodeId> domain_nodes;
    for (int i = 0; i < params.transit_nodes_per_domain; ++i) {
      const NodeId node = topo.graph.add_node();
      topo.kind.push_back(NodeKind::kTransit);
      topo.domain.push_back(next_domain);
      topo.transit_nodes.push_back(node);
      domain_nodes.push_back(node);
    }
    wire_domain(topo.graph, domain_nodes, params.intra_transit_latency_ms,
                params.extra_edge_probability, rng);
    transit_domains.push_back(std::move(domain_nodes));
    ++next_domain;
  }
  // Inter-domain links: ring over domains plus random chords, connecting
  // random representatives. Inter-transit links share the 20 ms class.
  for (std::size_t td = 0; td < transit_domains.size(); ++td) {
    const auto& from = transit_domains[td];
    const auto& to = transit_domains[(td + 1) % transit_domains.size()];
    if (&from == &to) continue;
    const NodeId a = from[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(from.size()) - 1))];
    const NodeId b = to[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(to.size()) - 1))];
    topo.graph.add_edge(a, b, params.intra_transit_latency_ms);
  }

  // --- Stub domains. ---
  for (const NodeId transit : topo.transit_nodes) {
    for (int sd = 0; sd < params.stub_domains_per_transit_node; ++sd) {
      std::vector<NodeId> domain_nodes;
      for (int i = 0; i < params.stub_nodes_per_domain; ++i) {
        const NodeId node = topo.graph.add_node();
        topo.kind.push_back(NodeKind::kStub);
        topo.domain.push_back(next_domain);
        topo.stub_nodes.push_back(node);
        domain_nodes.push_back(node);
      }
      wire_domain(topo.graph, domain_nodes, params.intra_stub_latency_ms,
                  params.extra_edge_probability, rng);
      // Attach the stub domain to its sponsoring transit router.
      const NodeId gateway = domain_nodes[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(domain_nodes.size()) - 1))];
      topo.graph.add_edge(gateway, transit, params.stub_transit_latency_ms);
      topo.stub_domains.push_back(std::move(domain_nodes));
      ++next_domain;
    }
  }

  ensure(topo.graph.connected(), "generate_transit_stub: generated graph must be connected");
  return topo;
}

}  // namespace gp::topology
