// Loader for ISP backbone maps in the Rocketfuel "weights" format, plus the
// paper's augmentation step.
//
// The paper: "we have used a real Internet topology graph from the
// Rocketfuel project, which contains link latency information. However, as
// the data set only contains topologies for several tier-1 ISPs, we have
// augmented the topology graph by introducing intermediary ISP and access
// networks, similar to the procedure for generating transit-stub networks
// in the GT-ITM network topology generator."
//
// The Rocketfuel latency dataset is distributed as plain-text edge lists:
// one edge per line, `<node-a> <node-b> <latency>` with node names as
// free-form tokens (PoP names like "nyc" or numeric ids) and latency in
// milliseconds; '#' starts a comment. load_isp_map parses exactly that.
// augment_with_access_networks then treats the loaded backbone as the
// transit core and attaches stub (access-network) domains to its PoPs with
// the same 5 ms / 2 ms latency classes the generator uses, reproducing the
// paper's procedure on top of a real (or bundled synthetic) backbone.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "topology/transit_stub.hpp"

namespace gp::topology {

/// A parsed ISP backbone.
struct IspMap {
  Graph graph;                         ///< one node per PoP
  std::vector<std::string> node_names; ///< index -> PoP name
};

/// Parsing outcome; malformed input is reported, not thrown (data files are
/// external inputs, not programming errors).
struct IspMapResult {
  bool ok = false;
  IspMap map;
  std::string error;  ///< first problem found, with a line number
};

/// Parses the Rocketfuel weights format (see file comment). Duplicate edges
/// are kept (shortest wins in Dijkstra); self-loops and negative latencies
/// are rejected.
IspMapResult load_isp_map(std::istream& in);

/// Attaches `stub_domains_per_pop` access-network domains (of
/// `stub_nodes_per_domain` nodes each) to every backbone PoP, wiring them
/// with the GT-ITM latency classes. The result's transit_nodes are the
/// backbone PoPs; stub metadata matches generate_transit_stub's.
TransitStubTopology augment_with_access_networks(const IspMap& backbone,
                                                 int stub_domains_per_pop,
                                                 int stub_nodes_per_domain, Rng& rng,
                                                 double stub_transit_latency_ms = 5.0,
                                                 double intra_stub_latency_ms = 2.0,
                                                 double extra_edge_probability = 0.3);

/// A bundled 14-PoP synthetic backbone (US tier-1-like PoP names, realistic
/// inter-city latencies) in the exact on-disk format, for examples/tests
/// and as documentation of the format itself.
std::string example_backbone_text();

}  // namespace gp::topology
