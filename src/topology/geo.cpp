#include "topology/geo.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace gp::topology {

std::string to_string(Region region) {
  switch (region) {
    case Region::kCalifornia: return "CAISO";
    case Region::kTexas: return "ERCOT";
    case Region::kSoutheast: return "SOCO";
    case Region::kMidwest: return "MISO";
    case Region::kEast: return "PJM";
  }
  return "unknown";
}

const std::vector<City>& us_cities24() {
  // Populations are metro-area estimates (millions scaled to persons);
  // offsets are standard time. Region assignment follows the dominant
  // wholesale market of the state.
  static const std::vector<City> cities = {
      {"New York", "NY", 40.71, -74.01, 19567410, -5, Region::kEast},
      {"Los Angeles", "CA", 34.05, -118.24, 12828837, -8, Region::kCalifornia},
      {"Chicago", "IL", 41.88, -87.63, 9461105, -6, Region::kMidwest},
      {"Dallas", "TX", 32.78, -96.80, 6426214, -6, Region::kTexas},
      {"Houston", "TX", 29.76, -95.37, 5920416, -6, Region::kTexas},
      {"Philadelphia", "PA", 39.95, -75.17, 5965343, -5, Region::kEast},
      {"Washington", "DC", 38.91, -77.04, 5582170, -5, Region::kEast},
      {"Miami", "FL", 25.76, -80.19, 5564635, -5, Region::kSoutheast},
      {"Atlanta", "GA", 33.75, -84.39, 5268860, -5, Region::kSoutheast},
      {"Boston", "MA", 42.36, -71.06, 4552402, -5, Region::kEast},
      {"San Francisco", "CA", 37.77, -122.42, 4335391, -8, Region::kCalifornia},
      {"Detroit", "MI", 42.33, -83.05, 4296250, -5, Region::kMidwest},
      {"Phoenix", "AZ", 33.45, -112.07, 4192887, -7, Region::kCalifornia},
      {"Seattle", "WA", 47.61, -122.33, 3439809, -8, Region::kCalifornia},
      {"Minneapolis", "MN", 44.98, -93.27, 3348859, -6, Region::kMidwest},
      {"San Diego", "CA", 32.72, -117.16, 3095313, -8, Region::kCalifornia},
      {"St. Louis", "MO", 38.63, -90.20, 2812896, -6, Region::kMidwest},
      {"Tampa", "FL", 27.95, -82.46, 2783243, -5, Region::kSoutheast},
      {"Denver", "CO", 39.74, -104.99, 2543482, -7, Region::kMidwest},
      {"Baltimore", "MD", 39.29, -76.61, 2710489, -5, Region::kEast},
      {"Pittsburgh", "PA", 40.44, -79.99, 2356285, -5, Region::kEast},
      {"Portland", "OR", 45.52, -122.68, 2226009, -8, Region::kCalifornia},
      {"Charlotte", "NC", 35.23, -80.84, 1758038, -5, Region::kSoutheast},
      {"San Antonio", "TX", 29.42, -98.49, 2142508, -6, Region::kTexas},
  };
  return cities;
}

std::vector<DataCenterSite> default_datacenter_sites(std::size_t count) {
  require(count >= 1 && count <= 5, "default_datacenter_sites: count must be in [1, 5]");
  static const std::vector<DataCenterSite> sites = {
      {"dc-sanjose", {"San Jose", "CA", 37.34, -121.89, 0, -8, Region::kCalifornia}},
      {"dc-houston", {"Houston", "TX", 29.76, -95.37, 0, -6, Region::kTexas}},
      {"dc-atlanta", {"Atlanta", "GA", 33.75, -84.39, 0, -5, Region::kSoutheast}},
      {"dc-chicago", {"Chicago", "IL", 41.88, -87.63, 0, -6, Region::kMidwest}},
      {"dc-ashburn", {"Ashburn", "VA", 39.04, -77.49, 0, -5, Region::kEast}},
  };
  return {sites.begin(), sites.begin() + static_cast<std::ptrdiff_t>(count)};
}

double haversine_km(const City& a, const City& b) {
  constexpr double kEarthRadiusKm = 6371.0;
  const double to_rad = std::numbers::pi / 180.0;
  const double lat1 = a.latitude * to_rad;
  const double lat2 = b.latitude * to_rad;
  const double dlat = (b.latitude - a.latitude) * to_rad;
  const double dlon = (b.longitude - a.longitude) * to_rad;
  const double s = std::sin(dlat / 2.0) * std::sin(dlat / 2.0) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2.0) * std::sin(dlon / 2.0);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(s)));
}

double propagation_latency_ms(const City& a, const City& b) {
  // Light in fibre travels ~200 km/ms; real paths are ~1.5x the great
  // circle. Add 1 ms fixed processing overhead.
  const double km = haversine_km(a, b);
  return 1.0 + 1.5 * km / 200.0;
}

}  // namespace gp::topology
