#include "topology/isp_map.hpp"

#include <istream>
#include <map>
#include <sstream>

#include "common/error.hpp"

namespace gp::topology {

IspMapResult load_isp_map(std::istream& in) {
  IspMapResult result;
  std::map<std::string, NodeId> ids;
  std::vector<std::string> names;
  struct Edge {
    NodeId a, b;
    double latency;
  };
  std::vector<Edge> edges;

  auto intern = [&](const std::string& name) {
    const auto [it, inserted] = ids.emplace(name, static_cast<NodeId>(names.size()));
    if (inserted) names.push_back(name);
    return it->second;
  };

  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string a, b;
    double latency = 0.0;
    if (!(fields >> a)) continue;  // blank/comment line
    if (!(fields >> b >> latency)) {
      result.error = "line " + std::to_string(line_number) + ": expected '<a> <b> <latency>'";
      return result;
    }
    std::string extra;
    if (fields >> extra) {
      result.error = "line " + std::to_string(line_number) + ": trailing tokens";
      return result;
    }
    if (a == b) {
      result.error = "line " + std::to_string(line_number) + ": self-loop '" + a + "'";
      return result;
    }
    if (latency < 0.0) {
      result.error = "line " + std::to_string(line_number) + ": negative latency";
      return result;
    }
    edges.push_back({intern(a), intern(b), latency});
  }
  if (names.empty()) {
    result.error = "no edges found";
    return result;
  }
  result.map.graph = Graph(static_cast<std::int32_t>(names.size()));
  for (const auto& edge : edges) result.map.graph.add_edge(edge.a, edge.b, edge.latency);
  result.map.node_names = std::move(names);
  if (!result.map.graph.connected()) {
    result.error = "backbone is not connected";
    return result;
  }
  result.ok = true;
  return result;
}

TransitStubTopology augment_with_access_networks(const IspMap& backbone,
                                                 int stub_domains_per_pop,
                                                 int stub_nodes_per_domain, Rng& rng,
                                                 double stub_transit_latency_ms,
                                                 double intra_stub_latency_ms,
                                                 double extra_edge_probability) {
  require(stub_domains_per_pop >= 1, "augment: stub_domains_per_pop must be >= 1");
  require(stub_nodes_per_domain >= 1, "augment: stub_nodes_per_domain must be >= 1");
  require(backbone.graph.num_nodes() >= 1, "augment: empty backbone");

  TransitStubTopology topo;
  topo.graph = backbone.graph;
  const std::int32_t pops = backbone.graph.num_nodes();
  topo.kind.assign(static_cast<std::size_t>(pops), NodeKind::kTransit);
  topo.domain.assign(static_cast<std::size_t>(pops), 0);  // one backbone domain
  for (NodeId pop = 0; pop < pops; ++pop) topo.transit_nodes.push_back(pop);

  std::int32_t next_domain = 1;
  for (NodeId pop = 0; pop < pops; ++pop) {
    for (int sd = 0; sd < stub_domains_per_pop; ++sd) {
      std::vector<NodeId> domain_nodes;
      for (int i = 0; i < stub_nodes_per_domain; ++i) {
        const NodeId node = topo.graph.add_node();
        topo.kind.push_back(NodeKind::kStub);
        topo.domain.push_back(next_domain);
        topo.stub_nodes.push_back(node);
        domain_nodes.push_back(node);
      }
      // Random spanning tree + chords inside the stub domain.
      for (std::size_t i = 1; i < domain_nodes.size(); ++i) {
        const auto j =
            static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
        topo.graph.add_edge(domain_nodes[i], domain_nodes[j], intra_stub_latency_ms);
      }
      for (std::size_t i = 0; i + 1 < domain_nodes.size(); ++i) {
        for (std::size_t j = i + 2; j < domain_nodes.size(); ++j) {
          if (rng.uniform() < extra_edge_probability) {
            topo.graph.add_edge(domain_nodes[i], domain_nodes[j], intra_stub_latency_ms);
          }
        }
      }
      const NodeId gateway = domain_nodes[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(domain_nodes.size()) - 1))];
      topo.graph.add_edge(gateway, pop, stub_transit_latency_ms);
      topo.stub_domains.push_back(std::move(domain_nodes));
      ++next_domain;
    }
  }
  ensure(topo.graph.connected(), "augment: augmented topology must be connected");
  return topo;
}

std::string example_backbone_text() {
  // 14 US PoPs with approximate one-way backbone latencies (ms); the format
  // is exactly what load_isp_map parses.
  return R"(# synthetic tier-1 US backbone, Rocketfuel weights format
# pop-a  pop-b  latency_ms
sea  sjc  9
sjc  lax  4
sea  den  13
sjc  den  12
lax  phx  4
phx  dal  10
den  kcy  6
kcy  chi  5
dal  kcy  6
dal  hou  3
hou  atl  9
chi  nyc  9
chi  atl  8
atl  mia  8
atl  wdc  7
wdc  nyc  3
nyc  bos  3
)";
}

}  // namespace gp::topology
