#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace gp {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  require(lo <= hi, "uniform: lo must be <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "uniform_int: lo must be <= hi");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
  // Lemire's nearly-divisionless bounded generation with rejection.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto low = static_cast<std::uint64_t>(m);
  if (low < range) {
    const std::uint64_t threshold = (0 - range) % range;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * range;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; guard against log(0).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  require(stddev >= 0.0, "normal: stddev must be >= 0");
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  require(rate > 0.0, "exponential: rate must be > 0");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

std::int64_t Rng::poisson(double mean) {
  require(mean >= 0.0, "poisson: mean must be >= 0");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Inversion by sequential search.
    const double limit = std::exp(-mean);
    double product = uniform();
    std::int64_t count = 0;
    while (product > limit) {
      product *= uniform();
      ++count;
    }
    return count;
  }
  // PTRS (Hoermann 1993) transformed rejection for large means.
  const double b = 0.931 + 2.53 * std::sqrt(mean);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  for (;;) {
    const double u = uniform() - 0.5;
    const double v = uniform();
    const double us = 0.5 - std::abs(u);
    const auto k = static_cast<std::int64_t>(std::floor((2.0 * a / us + b) * u + mean + 0.43));
    if (us >= 0.07 && v <= v_r) return k;
    if (k < 0 || (us < 0.013 && v > us)) continue;
    const double log_mean = std::log(mean);
    const double lhs = std::log(v * inv_alpha / (a / (us * us) + b));
    const double rhs =
        -mean + static_cast<double>(k) * log_mean - std::lgamma(static_cast<double>(k) + 1.0);
    if (lhs <= rhs) return k;
  }
}

bool Rng::bernoulli(double p) {
  require(p >= 0.0 && p <= 1.0, "bernoulli: p must be in [0, 1]");
  return uniform() < p;
}

Rng Rng::split() {
  Rng child(0);
  for (auto& word : child.state_) word = (*this)();
  return child;
}

}  // namespace gp
