// Deterministic, seedable random number generation.
//
// Every stochastic component of the library (workload generation, topology
// generation, game parameter sampling) draws from an explicitly passed Rng so
// that experiments are bit-for-bit reproducible from a single seed. The
// engine is xoshiro256**, seeded through splitmix64 as its authors recommend.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace gp {

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions, but the common distributions needed by the
/// library are provided as members to keep results identical across standard
/// library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (deterministic across platforms).
  double normal();

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double normal(double mean, double stddev);

  /// Exponential with the given rate (rate > 0).
  double exponential(double rate);

  /// Poisson with the given mean (mean >= 0). Uses inversion for small
  /// means and the PTRS transformed-rejection method for large ones.
  std::int64_t poisson(double mean);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator; used to give each component
  /// (demand, topology, game) its own stream from one master seed.
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace gp
