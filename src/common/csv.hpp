// Minimal CSV emission used by benches and the simulation engine to dump
// figure series in a plot-ready form.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace gp {

/// Streams rows of comma-separated values with proper quoting.
///
/// The writer does not own the output stream; callers keep it alive for the
/// writer's lifetime. Numeric cells are formatted with enough precision to
/// round-trip doubles.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes the header row. Call at most once, before any data row.
  void header(const std::vector<std::string>& columns);

  /// Writes one row of string cells (quoted as needed).
  void row(const std::vector<std::string>& cells);

  /// Writes one row of numeric cells.
  void row(const std::vector<double>& cells);

  /// Escapes a single cell per RFC 4180 (quotes fields containing , " or \n).
  static std::string escape(const std::string& cell);

  /// Formats a double compactly but losslessly.
  static std::string format(double value);

 private:
  std::ostream* out_;
  bool wrote_header_ = false;
};

}  // namespace gp
