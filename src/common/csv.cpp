#include "common/csv.hpp"

#include <charconv>
#include <cmath>

#include "common/error.hpp"

namespace gp {

void CsvWriter::header(const std::vector<std::string>& columns) {
  require(!wrote_header_, "CsvWriter: header already written");
  wrote_header_ = true;
  row(columns);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  bool first = true;
  for (const auto& cell : cells) {
    if (!first) *out_ << ',';
    first = false;
    *out_ << escape(cell);
  }
  *out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& cells) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double value : cells) formatted.push_back(format(value));
  row(formatted);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string CsvWriter::format(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buffer[32];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, result.ptr);
}

}  // namespace gp
