// Small descriptive-statistics helpers shared by tests, benches and metrics.
#pragma once

#include <span>

namespace gp {

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> values);

/// Unbiased sample variance (n-1 denominator); returns 0 for n < 2.
double variance(std::span<const double> values);

/// Square root of variance().
double stddev(std::span<const double> values);

/// Sum of all values.
double sum(std::span<const double> values);

/// Maximum absolute value; 0 for an empty span.
double max_abs(std::span<const double> values);

/// Linear-interpolated percentile, p in [0, 100]. Copies and sorts.
double percentile(std::span<const double> values, double p);

/// Total variation sum |v[i+1] - v[i]|; measures trajectory churn.
double total_variation(std::span<const double> values);

/// True when |a - b| <= atol + rtol * max(|a|, |b|).
bool approx_equal(double a, double b, double rtol = 1e-9, double atol = 1e-12);

}  // namespace gp
