// Process-wide heap-allocation counter for the allocation-free hot-loop
// contract (ADMM iteration loop, see qp/admm_solver).
//
// The library NEVER increments the counter itself: binaries that want
// allocation accounting (tests/test_perf_kernels, bench/micro_admm_kernels)
// define replacement global `operator new` / `operator delete` that call
// alloc_probe_bump() before delegating to malloc/free. In every other
// binary the counter stays at zero and the bracketing reads in the solver
// are two relaxed atomic loads — cheap enough to run unconditionally.
#pragma once

namespace gp {

/// Number of alloc_probe_bump() calls since process start (relaxed load).
long long alloc_probe_count() noexcept;

/// Increments the probe counter (relaxed fetch-add; async-signal unsafe
/// like any allocator hook, but safe from any thread).
void alloc_probe_bump() noexcept;

}  // namespace gp
