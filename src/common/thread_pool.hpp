// Fixed-size thread pool with a deterministic parallel_for.
//
// The pool exists for the library's two embarrassingly parallel hot loops:
// the competition game's per-provider best responses (a Jacobi round — every
// response depends only on the quotas fixed at the top of the iteration) and
// block assembly of the social-welfare QP. Design constraints, in order:
//
//  1. Determinism. parallel_for uses a STATIC contiguous partition of the
//     index range and callers write results by index, so the output of a
//     seeded experiment is bit-identical at any thread count (results land
//     by index, never by completion order).
//  2. No oversubscription surprises. One process-wide pool (global()), sized
//     once from the GEOPLACE_THREADS environment variable when set, else
//     std::thread::hardware_concurrency(). Call sites can cap the lanes they
//     use (a game with 3 providers asks for at most 3) without resizing the
//     pool.
//  3. Nesting safety. A caller waiting on its own parallel_for drains other
//     queued chunks while it waits, so a parallel region entered from inside
//     a worker cannot deadlock the pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gp {

/// Fixed pool of worker threads (see file comment). `num_workers` counts the
/// BACKGROUND threads; parallel_for additionally runs on the calling thread,
/// so a pool built with N-1 workers yields N-way parallelism.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of background worker threads.
  std::size_t num_workers() const { return workers_.size(); }

  /// Maximum parallel lanes of this pool (workers + the calling thread).
  std::size_t max_lanes() const { return workers_.size() + 1; }

  /// Runs fn(i) for every i in [begin, end) and blocks until all calls have
  /// returned. The range is split into at most `max_threads` contiguous
  /// chunks (0 = use max_lanes()); the caller executes the first chunk
  /// itself. Scheduling is static, so any per-index output is identical at
  /// every thread count. The first exception thrown by fn is rethrown on the
  /// calling thread after the whole range has been dispatched.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t max_threads = 0);

  /// Lane count honoring GEOPLACE_THREADS: the environment variable when it
  /// parses to a positive integer, else hardware_concurrency() (min 1).
  static std::size_t default_lanes();

  /// The process-wide pool, created on first use with default_lanes() - 1
  /// workers. GEOPLACE_THREADS is read once, at creation.
  static ThreadPool& global();

 private:
  void worker_loop();
  /// Pops and runs one queued chunk if any; returns false when idle.
  bool run_one_task();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  bool stopping_ = false;
};

/// parallel_for on the global pool — the call used across the library.
/// `max_threads` caps the lanes (0 = all of the pool's lanes).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t max_threads = 0);

}  // namespace gp
