// Precondition / invariant checking helpers.
//
// The library follows the C++ Core Guidelines convention: programming errors
// (violated preconditions, malformed inputs) throw exceptions; expected
// run-time outcomes (e.g. "solver did not converge") are reported through
// status enums on result types instead.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace gp {

/// Thrown when a documented precondition of a public API is violated.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant fails (a library bug, not a user error).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Checks a documented precondition of a public entry point.
inline void require(bool condition, const std::string& message,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw PreconditionError(std::string(loc.file_name()) + ":" +
                            std::to_string(loc.line()) + ": " + message);
  }
}

/// Checks an internal invariant; failure indicates a bug in this library.
inline void ensure(bool condition, const std::string& message,
                   std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw InvariantError(std::string(loc.file_name()) + ":" +
                         std::to_string(loc.line()) + ": " + message);
  }
}

}  // namespace gp
