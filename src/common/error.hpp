// Precondition / invariant checking helpers.
//
// The library follows the C++ Core Guidelines convention: programming errors
// (violated preconditions, malformed inputs) throw exceptions; expected
// run-time outcomes (e.g. "solver did not converge") are reported through
// status enums on result types instead.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace gp {

/// Thrown when a documented precondition of a public API is violated.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant fails (a library bug, not a user error).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Checks a documented precondition of a public entry point.
///
/// The message is taken as `const char*` so that the (overwhelmingly common)
/// string-literal call sites cost nothing on the success path: the previous
/// `const std::string&` signature materialized a heap-allocated temporary on
/// EVERY call, which showed up as per-iteration allocations inside the ADMM
/// hot loop's sparse products.
inline void require(bool condition, const char* message,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw PreconditionError(std::string(loc.file_name()) + ":" +
                            std::to_string(loc.line()) + ": " + message);
  }
}

/// Overload for call sites that build a dynamic message; the argument is
/// only worth constructing when the caller already expects to pay for it.
inline void require(bool condition, const std::string& message,
                    std::source_location loc = std::source_location::current()) {
  require(condition, message.c_str(), loc);
}

/// Checks an internal invariant; failure indicates a bug in this library.
inline void ensure(bool condition, const char* message,
                   std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw InvariantError(std::string(loc.file_name()) + ":" +
                         std::to_string(loc.line()) + ": " + message);
  }
}

inline void ensure(bool condition, const std::string& message,
                   std::source_location loc = std::source_location::current()) {
  ensure(condition, message.c_str(), loc);
}

}  // namespace gp
