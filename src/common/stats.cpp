#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace gp {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double accum = 0.0;
  for (double v : values) accum += (v - m) * (v - m);
  return accum / static_cast<double>(values.size() - 1);
}

double stddev(std::span<const double> values) { return std::sqrt(variance(values)); }

double sum(std::span<const double> values) {
  double total = 0.0;
  for (double v : values) total += v;
  return total;
}

double max_abs(std::span<const double> values) {
  double best = 0.0;
  for (double v : values) best = std::max(best, std::abs(v));
  return best;
}

double percentile(std::span<const double> values, double p) {
  require(!values.empty(), "percentile: empty input");
  require(p >= 0.0 && p <= 100.0, "percentile: p must be in [0, 100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double total_variation(std::span<const double> values) {
  double total = 0.0;
  for (std::size_t i = 1; i < values.size(); ++i) total += std::abs(values[i] - values[i - 1]);
  return total;
}

bool approx_equal(double a, double b, double rtol, double atol) {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

}  // namespace gp
