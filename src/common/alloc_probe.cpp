#include "common/alloc_probe.hpp"

#include <atomic>

namespace gp {

namespace {
std::atomic<long long> g_alloc_count{0};
}  // namespace

long long alloc_probe_count() noexcept {
  return g_alloc_count.load(std::memory_order_relaxed);
}

void alloc_probe_bump() noexcept { g_alloc_count.fetch_add(1, std::memory_order_relaxed); }

}  // namespace gp
