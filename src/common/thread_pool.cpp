#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>

#include "common/error.hpp"

namespace gp {

ThreadPool::ThreadPool(std::size_t num_workers) {
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::run_one_task() {
  std::function<void()> task;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t max_threads) {
  require(begin <= end, "parallel_for: begin > end");
  const std::size_t count = end - begin;
  if (count == 0) return;

  std::size_t lanes = max_threads == 0 ? max_lanes() : std::min(max_threads, max_lanes());
  lanes = std::min(lanes, count);
  if (lanes <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Shared completion state for this region. Lives on the caller's stack:
  // the caller does not return before every chunk has finished. `pending` is
  // only touched under `mutex`, and workers notify while HOLDING it — the
  // caller can therefore observe pending == 0 (under the same mutex) only
  // after the last worker has released it, which makes destroying the region
  // on loop exit safe.
  struct Region {
    std::size_t pending;
    std::mutex mutex;
    std::condition_variable done;
    std::exception_ptr error;
    explicit Region(std::size_t n) : pending(n) {}
  } region(lanes - 1);

  // Static contiguous partition: chunk j covers
  // [begin + j*count/lanes, begin + (j+1)*count/lanes). Determinism relies
  // on this split being a pure function of (begin, end, lanes).
  auto run_chunk = [&fn, &region](std::size_t chunk_begin, std::size_t chunk_end) {
    try {
      for (std::size_t i = chunk_begin; i < chunk_end; ++i) fn(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(region.mutex);
      if (!region.error) region.error = std::current_exception();
    }
  };

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t j = 1; j < lanes; ++j) {
      const std::size_t chunk_begin = begin + j * count / lanes;
      const std::size_t chunk_end = begin + (j + 1) * count / lanes;
      queue_.emplace_back([run_chunk, chunk_begin, chunk_end, &region] {
        run_chunk(chunk_begin, chunk_end);
        const std::lock_guard<std::mutex> lock(region.mutex);
        --region.pending;
        region.done.notify_one();
      });
    }
  }
  work_available_.notify_all();

  // Caller executes chunk 0, then helps drain the queue while waiting —
  // this keeps nested parallel_for calls deadlock-free (some queued task is
  // always runnable by a thread that is otherwise blocked on its region).
  run_chunk(begin, begin + count / lanes);
  for (;;) {
    {
      const std::unique_lock<std::mutex> lock(region.mutex);
      if (region.pending == 0) break;
    }
    if (run_one_task()) continue;
    // Idle: sleep briefly on the region, then re-poll the queue (a nested
    // parallel_for may have enqueued chunks only this thread can run).
    std::unique_lock<std::mutex> lock(region.mutex);
    region.done.wait_for(lock, std::chrono::milliseconds(1),
                         [&region] { return region.pending == 0; });
    if (region.pending == 0) break;
  }

  if (region.error) std::rethrow_exception(region.error);
}

std::size_t ThreadPool::default_lanes() {
  if (const char* env = std::getenv("GEOPLACE_THREADS")) {
    char* parse_end = nullptr;
    const long value = std::strtol(env, &parse_end, 10);
    if (parse_end != env && *parse_end == '\0' && value > 0) {
      return static_cast<std::size_t>(value);
    }
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_lanes() - 1);
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn, std::size_t max_threads) {
  ThreadPool::global().parallel_for(begin, end, fn, max_threads);
}

}  // namespace gp
