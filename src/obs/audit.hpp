// Invariant audits: cheap runtime checks of the identities the paper's
// formulation promises — cost accounting (total = resource + reconfig
// within tolerance), per-DC capacity conservation, primal feasibility of
// returned QP solutions, monotone non-increasing best-response cost. The
// engine, solvers and game call check() at the natural verification points;
// each violation increments an `obs.audit.<name>` registry counter, a
// thread-local per-name count (so a sweep lane can attribute violations to
// the exact run that produced them), and — when recording is on — drops a
// marker sample into the thread's ConvergenceRecorder ring so the replay
// bundle's tail shows WHERE the invariant broke.
//
// Off by default (audits cost real work at call sites, e.g. re-checking
// constraint violations of a returned QP solution): call sites gate on
// audit::enabled(), initialized from GEOPLACE_AUDIT (same on/off grammar as
// GEOPLACE_METRICS, no path form) or set_enabled().
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace gp::obs::audit {

/// Global audit flag (relaxed load); GEOPLACE_AUDIT or set_enabled().
bool enabled();
void set_enabled(bool enabled);

/// Records one invariant check. `name` MUST be a static string literal (it
/// is stored by pointer in the thread-local table and the recorder ring).
/// Always bumps obs.audit.checks; on failure bumps obs.audit.<name>, the
/// thread-local violation table, and (when recording) pushes an
/// "audit.violation" recorder sample carrying (observed, bound). Returns ok
/// so call sites can chain. Call only when enabled().
bool check(const char* name, bool ok, double observed = 0.0, double bound = 0.0);

/// Total violations recorded by THIS thread since the last reset — the
/// per-run delta a sweep lane snapshots around engine.run().
long long thread_violations();

/// Per-name violation counts for this thread, sorted by name.
std::vector<std::pair<std::string, long long>> thread_counts();

/// Zeroes this thread's violation table (call at run start in a lane).
void reset_thread_counts();

}  // namespace gp::obs::audit
