// Per-period telemetry timeline: one compact TelemetryFrame per simulation
// period, recorded into per-thread SoA rings and flushed as manifest-headed
// columnar JSONL — the structured time-series view behind the paper's
// per-period figures (cost tracking, convergence effort, forecast error),
// available on every run instead of only in purpose-built benches.
//
// Design rules, in order (they mirror obs/metrics and obs/recorder):
//  1. Off by default, one branch when off. The engine checks
//     TimelineWriter::enabled() — a relaxed atomic load — once per period;
//     cross-layer contributors (the MPC controller, both QP solvers) call
//     timeline_frame(), which is the same relaxed load plus a thread-local
//     read, and write into the open frame only when one exists. A disabled
//     run pays one predictable branch per period/solve and nothing else
//     (the perf_sweep timeline-overhead gate verifies this end to end).
//  2. Race-free without locks. local() returns a thread_local writer, so
//     sweep lanes each record their own run's frames; the only lock is the
//     process-wide file mutex taken by flush(), once per run.
//  3. O(1) and allocation-free per frame after the ring's lazy first
//     allocation. Frames are a fixed set of double columns (SoA: one
//     vector per column), so committing a frame is kNumColumns stores and
//     an index bump — no heap traffic inside the simulation loop.
//  4. Bounded memory: kDefaultCapacity frames per recording thread; the
//     ring overwrites the oldest frame once full (a 48-period paper run
//     uses 48 slots).
//
// Recording protocol: the OWNER of the period loop (sim::SimulationEngine)
// calls begin(period, hour), lower layers fill fields of current() while
// the frame is open, and the owner calls commit() at period end. The
// engine clears this thread's ring at run start, so after engine.run() the
// ring holds exactly that run's frames — which is what SweepRunner
// snapshots into per-cell timeline sidecars.
//
// GEOPLACE_TIMELINE values mirror GEOPLACE_METRICS: unset/"0"/"false"/
// "off" — disabled; "1"/"true"/"on" — enabled (in-memory; callers snapshot
// or write explicitly); any other value — enabled AND every engine run
// appends its timeline to that path (flush()).
//
// Columnar JSONL format (the input of tools/gp_report):
//   {"type":"manifest",...}                                  (optional head)
//   {"type":"timeline","frames":N,"columns":["period",...]}  (segment head)
//   {"type":"timeline_col","name":"period","values":[...]}   (one per column)
// Values are shortest-round-trip doubles; non-finite values are null.
#pragma once

#include <atomic>
#include <cstddef>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "obs/manifest.hpp"

namespace gp::obs {

// The frame columns, in export order. All columns are doubles (period and
// the counters fit exactly — they stay far below 2^53). Adding a column
// here updates the struct, the SoA ring, the JSONL export and gp_report's
// expectations in one place.
//
// Conventions: forecast_rel_err is -1 when no forecast was available (first
// period, baseline policies); cost_sla_penalty is the policy's PLANNED
// unserved-demand penalty (soft-constraint MPC), 0 under hard constraints;
// solver_* fields accumulate over every QP solve that ran inside the
// period (an MPC step is usually one).
#define GP_TIMELINE_COLUMNS(X) \
  X(period)                    \
  X(utc_hour)                  \
  X(demand_total)              \
  X(servers_total)             \
  X(dc_active)                 \
  X(dc_max_share)              \
  X(cost_resource)             \
  X(cost_reconfig)             \
  X(cost_sla_penalty)          \
  X(sla_compliance)            \
  X(sla_violating_rate)        \
  X(overloaded_pairs)          \
  X(unserved_rate)             \
  X(mean_latency_ms)           \
  X(forecast_rel_err)          \
  X(solver_iterations)         \
  X(solver_primal_residual)    \
  X(solver_dual_residual)      \
  X(solver_factorizations)     \
  X(solver_cache_hits)         \
  X(solver_factorization_skipped) \
  X(solved)                    \
  X(policy_ms)                 \
  X(sla_ms)                    \
  X(period_ms)

/// One period's telemetry (see the column list for field semantics).
struct TelemetryFrame {
#define GP_TIMELINE_FIELD(name) double name = 0.0;
  GP_TIMELINE_COLUMNS(GP_TIMELINE_FIELD)
#undef GP_TIMELINE_FIELD
};

/// Number of columns in a TelemetryFrame.
std::size_t timeline_num_columns();

/// Column names, export order (matching GP_TIMELINE_COLUMNS).
const std::vector<std::string>& timeline_column_names();

/// Writes one columnar JSONL segment (manifest line first when given) for
/// the frames, oldest first — shared by TimelineWriter::write_jsonl, the
/// sweep's per-cell sidecars and gp_report's self-test fixture.
void write_timeline_jsonl(std::ostream& out, std::span<const TelemetryFrame> frames,
                          const RunManifest* manifest = nullptr);

/// Per-thread SoA ring of TelemetryFrames (see file comment).
class TimelineWriter {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  /// Global timeline flag (relaxed load), initialized from GEOPLACE_TIMELINE
  /// on first use; see file comment for the accepted values.
  static bool enabled();
  static void set_enabled(bool enabled);

  /// The auto-flush destination from GEOPLACE_TIMELINE (empty when the
  /// value was a plain on/off flag or unset). set_enabled() keeps it.
  static const std::string& dump_path();

  /// This thread's writer; constructed lazily on first use.
  static TimelineWriter& local();

  explicit TimelineWriter(std::size_t capacity = kDefaultCapacity);

  /// Opens the frame for one period (any previously open frame is
  /// discarded). Returns the frame for the period owner to fill.
  TelemetryFrame& begin(long long period, double utc_hour);

  /// The open frame, or nullptr when none is open — the hook lower layers
  /// (solvers, controllers) use to contribute fields.
  TelemetryFrame* current() { return open_ ? &open_frame_ : nullptr; }

  /// Pushes the open frame into the ring (overwriting the oldest once
  /// full) and closes it. No-op when no frame is open.
  void commit();

  /// Drops the ring contents and any open frame.
  void clear();

  std::size_t size() const { return count_ < capacity_ ? count_ : capacity_; }
  std::size_t capacity() const { return capacity_; }
  long long total_committed() const { return static_cast<long long>(count_); }

  /// The retained frames, oldest first (gathered back from the SoA ring).
  std::vector<TelemetryFrame> frames() const;

  /// write_timeline_jsonl over the retained frames.
  void write_jsonl(std::ostream& out, const RunManifest* manifest = nullptr) const;

  /// Appends this thread's retained frames to dump_path() as one columnar
  /// segment, under a process-wide file lock. No-op when no dump path is
  /// set or the ring is empty. The engine calls this at the end of every
  /// run when a path is armed.
  void flush() const;

 private:
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;   ///< next ring slot to write
  std::size_t count_ = 0;  ///< total commits since clear()
  bool open_ = false;
  TelemetryFrame open_frame_;
  /// One vector per column (SoA), each sized `capacity_` lazily on the
  /// first commit.
  std::vector<std::vector<double>> columns_;
};

/// Shorthand mirroring metrics_enabled()/recording_enabled().
inline bool timeline_enabled() { return TimelineWriter::enabled(); }

/// The open frame of THIS thread, or nullptr when the timeline is disabled
/// or no period frame is open — the one-line gate for cross-layer
/// contributors (cost: a relaxed atomic load plus a thread_local read).
inline TelemetryFrame* timeline_frame() {
  return timeline_enabled() ? TimelineWriter::local().current() : nullptr;
}

}  // namespace gp::obs
