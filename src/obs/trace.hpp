// Scoped trace spans and the process-wide trace sink.
//
// A Span is an RAII wall-clock timer: construction stamps the start,
// destruction (or close()) stamps the end and, when tracing is enabled,
// appends one event — with thread id, nesting depth and an optional numeric
// argument — to the global Tracer. Spans nest naturally (a thread-local
// depth counter), and are safe under common/thread_pool: the per-thread
// state is thread_local and the sink append takes a short mutex, paid once
// per span END (spans wrap whole solves/periods, not inner iterations).
//
// A Span ALWAYS measures time (two steady_clock reads, ~tens of ns) so call
// sites can reuse elapsed_ms() for registry histograms and summaries
// regardless of whether tracing is on; only the event emission is gated.
//
// Counter events (Tracer::counter) record a named scalar sample over time —
// used for the ADMM residual trajectories and the game's per-round cost.
//
// Enabling: set GEOPLACE_TRACE=<path> before the process starts (read once,
// at first Tracer::global() use) or call start_tracing(). The buffered
// events are exported at stop_tracing() or at process exit, as Chrome
// trace-event JSON (load in chrome://tracing or https://ui.perfetto.dev)
// when the path ends in ".json", and as a JSONL event log otherwise (the
// input of tools/trace_report). See obs/export.hpp for both formats.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gp::obs {

/// Output format of the trace export (see obs/export.hpp).
enum class TraceFormat {
  kChrome,  ///< chrome://tracing JSON array of trace events
  kJsonl,   ///< one JSON object per line: spans, counters, then metrics
};

/// One recorded event. `dur_us < 0` marks a counter sample (value in
/// `arg`); otherwise a completed span.
struct TraceEvent {
  std::string name;
  double ts_us = 0.0;   ///< start time, microseconds since tracing began
  double dur_us = 0.0;  ///< span duration; < 0 for counter samples
  std::uint32_t tid = 0;
  std::int32_t depth = 0;
  double arg = 0.0;
  bool has_arg = false;
};

/// Process-wide trace sink (see file comment). Thread-safe.
class Tracer {
 public:
  /// The process-wide tracer; reads GEOPLACE_TRACE on first use. If
  /// tracing was armed by the environment, the destructor exports whatever
  /// was buffered (so a traced run needs no explicit stop_tracing()).
  static Tracer& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Starts buffering events; they are written to `path` in `format` at
  /// stop() (or process exit). Resets the clock epoch and drops any
  /// previously buffered events.
  void start(std::string path, TraceFormat format);

  /// Disables tracing and exports the buffer to the configured path
  /// (no-op when nothing was started and no environment path is armed).
  void stop();

  /// Appends a completed span. Called by Span; ignored when disabled.
  void record_span(const char* name, double ts_us, double dur_us, std::uint32_t tid,
                   std::int32_t depth, double arg, bool has_arg);

  /// Appends a counter sample (timestamped now). Ignored when disabled.
  void counter(const char* name, double value);

  /// Microseconds since the tracing epoch.
  double now_us() const;

  /// A steady_clock time point expressed in microseconds since the epoch.
  double since_epoch_us(std::chrono::steady_clock::time_point tp) const;

  /// Copy of the buffered events (tests / exporters).
  std::vector<TraceEvent> events() const;

  /// Drops buffered events without exporting (tests).
  void discard();

  ~Tracer();

 private:
  void export_locked();  // caller holds mutex_

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::string path_;
  TraceFormat format_ = TraceFormat::kChrome;
  std::chrono::steady_clock::time_point epoch_ = std::chrono::steady_clock::now();
};

/// RAII span (see file comment). Intended for automatic storage only.
class Span {
 public:
  explicit Span(const char* name);
  /// With a numeric argument (period index, provider id, ...) shown in the
  /// trace viewer.
  Span(const char* name, double arg);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Wall time since construction, in milliseconds. Valid whether or not
  /// tracing is enabled, before and after close().
  double elapsed_ms() const;

  /// Ends the span now (emits the event if tracing): the destructor
  /// becomes a no-op. Returns elapsed_ms() at the close.
  double close();

 private:
  const char* name_;
  double arg_;
  bool has_arg_;
  bool active_;  ///< tracing was on at construction: emit on close
  bool closed_ = false;
  std::int32_t depth_ = 0;
  std::chrono::steady_clock::time_point start_;
  double start_us_ = 0.0;
};

/// Programmatic equivalents of GEOPLACE_TRACE (format inferred from the
/// path when omitted: ".json" — Chrome, anything else — JSONL).
void start_tracing(const std::string& path);
void start_tracing(const std::string& path, TraceFormat format);
void stop_tracing();

/// Shorthand for Tracer::global().enabled().
inline bool tracing_enabled() { return Tracer::global().enabled(); }

/// Stable small id of the calling thread (assigned on first use).
std::uint32_t current_thread_id();

}  // namespace gp::obs
