#include "obs/trace.hpp"

#include <cstdlib>
#include <fstream>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace gp::obs {

namespace {

/// Format from path extension: Chrome for ".json", JSONL otherwise.
TraceFormat format_from_path(const std::string& path) {
  const auto dot = path.rfind('.');
  if (dot != std::string::npos && path.substr(dot) == ".json") return TraceFormat::kChrome;
  return TraceFormat::kJsonl;
}

/// Thread-local nesting depth of ACTIVE spans on this thread.
thread_local std::int32_t t_span_depth = 0;

}  // namespace

std::uint32_t current_thread_id() {
  static std::atomic<std::uint32_t> next_id{0};
  thread_local const std::uint32_t id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// -------------------------------------------------------------------- Tracer

Tracer& Tracer::global() {
  // Touch the registry BEFORE constructing the tracer static: function-local
  // statics are destroyed in reverse construction order, and the exit-time
  // JSONL export in ~Tracer appends Registry::global()'s dump — the registry
  // must therefore outlive the tracer.
  Registry::global();
  static Tracer instance;
  static const bool initialized = [] {
    const char* raw = std::getenv("GEOPLACE_TRACE");
    if (raw != nullptr && raw[0] != '\0') {
      instance.start(raw, format_from_path(raw));
    }
    return true;
  }();
  (void)initialized;
  return instance;
}

void Tracer::start(std::string path, TraceFormat format) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  path_ = std::move(path);
  format_ = format;
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_.store(false, std::memory_order_relaxed);
  export_locked();
  events_.clear();
}

void Tracer::export_locked() {
  if (path_.empty() || events_.empty()) return;
  std::ofstream out(path_);
  if (!out) return;
  const RunManifest manifest = RunManifest::capture("trace");
  if (format_ == TraceFormat::kChrome) {
    write_chrome_trace(out, events_, &manifest);
  } else {
    write_jsonl_trace(out, events_, &Registry::global(), &manifest);
  }
}

double Tracer::now_us() const { return since_epoch_us(std::chrono::steady_clock::now()); }

double Tracer::since_epoch_us(std::chrono::steady_clock::time_point tp) const {
  return std::chrono::duration<double, std::micro>(tp - epoch_).count();
}

void Tracer::record_span(const char* name, double ts_us, double dur_us, std::uint32_t tid,
                         std::int32_t depth, double arg, bool has_arg) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.tid = tid;
  event.depth = depth;
  event.arg = arg;
  event.has_arg = has_arg;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void Tracer::counter(const char* name, double value) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.ts_us = now_us();
  event.dur_us = -1.0;
  event.tid = current_thread_id();
  event.arg = value;
  event.has_arg = true;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void Tracer::discard() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

Tracer::~Tracer() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (enabled_.load(std::memory_order_relaxed)) export_locked();
}

// ---------------------------------------------------------------------- Span

Span::Span(const char* name) : Span(name, 0.0) { has_arg_ = false; }

Span::Span(const char* name, double arg)
    : name_(name),
      arg_(arg),
      has_arg_(true),
      active_(Tracer::global().enabled()),
      start_(std::chrono::steady_clock::now()) {
  if (active_) {
    depth_ = t_span_depth++;
    start_us_ = Tracer::global().since_epoch_us(start_);
  }
}

double Span::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start_)
      .count();
}

double Span::close() {
  const double elapsed = elapsed_ms();
  if (closed_) return elapsed;
  closed_ = true;
  if (active_) {
    --t_span_depth;
    Tracer::global().record_span(name_, start_us_, elapsed * 1e3, current_thread_id(),
                                 depth_, arg_, has_arg_);
  }
  return elapsed;
}

Span::~Span() { close(); }

// ----------------------------------------------------------- free functions

void start_tracing(const std::string& path) {
  Tracer::global().start(path, format_from_path(path));
}

void start_tracing(const std::string& path, TraceFormat format) {
  Tracer::global().start(path, format);
}

void stop_tracing() { Tracer::global().stop(); }

}  // namespace gp::obs
