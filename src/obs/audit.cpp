#include "obs/audit.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace gp::obs::audit {

namespace {

bool audit_env() {
  const char* raw = std::getenv("GEOPLACE_AUDIT");
  if (raw == nullptr) return false;
  const std::string value(raw);
  return !(value.empty() || value == "0" || value == "false" || value == "off");
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{audit_env()};
  return flag;
}

/// Thread-local violation table. Names are static literals, so entries
/// compare by pointer first and fall back to strcmp for literals that were
/// deduplicated differently across translation units.
struct ThreadTable {
  std::vector<std::pair<const char*, long long>> counts;
  long long total = 0;

  void bump(const char* name) {
    ++total;
    for (auto& [entry_name, count] : counts) {
      if (entry_name == name || std::strcmp(entry_name, name) == 0) {
        ++count;
        return;
      }
    }
    counts.emplace_back(name, 1);
  }
};

ThreadTable& table() {
  thread_local ThreadTable instance;
  return instance;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool value) { enabled_flag().store(value, std::memory_order_relaxed); }

bool check(const char* name, bool ok, double observed, double bound) {
  Registry& registry = Registry::global();
  registry.counter("obs.audit.checks").add();
  if (ok) return true;
  registry.counter(std::string("obs.audit.") + name).add();
  table().bump(name);
  if (recording_enabled()) {
    // Stream tag = the audit name itself (a static literal by contract), so
    // the ring tail shows which invariant broke, not just that one did.
    ConvergenceRecorder::local().push(name, table().total, observed, bound);
  }
  return false;
}

long long thread_violations() { return table().total; }

std::vector<std::pair<std::string, long long>> thread_counts() {
  std::vector<std::pair<std::string, long long>> out;
  out.reserve(table().counts.size());
  for (const auto& [name, count] : table().counts) out.emplace_back(name, count);
  std::sort(out.begin(), out.end());
  return out;
}

void reset_thread_counts() {
  table().counts.clear();
  table().total = 0;
}

}  // namespace gp::obs::audit
