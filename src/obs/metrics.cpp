#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>

#include "common/error.hpp"
#include "obs/manifest.hpp"

namespace gp::obs {

namespace {

/// CAS add for atomic doubles (no fetch_add for floating point pre-C++20
/// on all toolchains); relaxed is enough — readers only want the sum.
void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

/// GEOPLACE_METRICS parse (see metrics.hpp): returns {enabled, dump_path}.
std::pair<bool, std::string> metrics_env() {
  const char* raw = std::getenv("GEOPLACE_METRICS");
  if (raw == nullptr) return {false, {}};
  const std::string value(raw);
  if (value.empty() || value == "0" || value == "false" || value == "off") return {false, {}};
  if (value == "1" || value == "true" || value == "on") return {true, {}};
  return {true, value};
}

}  // namespace

// ----------------------------------------------------------------- Histogram

Histogram::Histogram(HistogramOptions options)
    : options_(options),
      log_min_(std::log10(options.min_value)),
      buckets_(static_cast<std::size_t>(
          2 + static_cast<int>(std::ceil(
                  (std::log10(options.max_value) - std::log10(options.min_value)) *
                  static_cast<double>(options.buckets_per_decade))))),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  require(options.min_value > 0.0, "Histogram: min_value must be > 0");
  require(options.max_value > options.min_value, "Histogram: max_value must be > min_value");
  require(options.buckets_per_decade >= 1, "Histogram: need >= 1 bucket per decade");
}

std::size_t Histogram::bucket_of(double value) const {
  if (!(value >= options_.min_value)) return 0;  // underflow (incl. NaN, negatives)
  if (value >= options_.max_value) return buckets_.size() - 1;
  const double position = (std::log10(value) - log_min_) *
                          static_cast<double>(options_.buckets_per_decade);
  const auto index = static_cast<std::size_t>(position) + 1;
  return std::min(index, buckets_.size() - 2);
}

double Histogram::upper_edge(std::size_t i) const {
  if (i == 0) return options_.min_value;
  if (i >= buckets_.size() - 1) return std::numeric_limits<double>::infinity();
  return std::pow(10.0, log_min_ + static_cast<double>(i) /
                                       static_cast<double>(options_.buckets_per_decade));
}

void Histogram::record(double value) {
  buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

double Histogram::min() const {
  const double value = min_.load(std::memory_order_relaxed);
  return std::isfinite(value) ? value : 0.0;
}

double Histogram::max() const {
  const double value = max_.load(std::memory_order_relaxed);
  return std::isfinite(value) ? value : 0.0;
}

double Histogram::percentile(double p) const {
  require(p >= 0.0 && p <= 100.0, "Histogram::percentile: p must be in [0, 100]");
  const long long total = count();
  if (total <= 0) return 0.0;
  // Target rank in [1, total]; walk the cumulative counts to its bucket.
  const double rank = std::max(1.0, p / 100.0 * static_cast<double>(total));
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const auto in_bucket =
        static_cast<double>(buckets_[i].load(std::memory_order_relaxed));
    if (in_bucket <= 0.0) continue;
    if (cumulative + in_bucket >= rank) {
      // Linear interpolation within the bucket [lower, upper).
      const double lower = i == 0 ? 0.0 : upper_edge(i - 1);
      double upper = upper_edge(i);
      if (!std::isfinite(upper)) upper = std::max(options_.max_value, max());
      const double fraction = (rank - cumulative) / in_bucket;
      const double estimate = lower + fraction * (upper - lower);
      return std::clamp(estimate, min(), max());
    }
    cumulative += in_bucket;
  }
  return max();  // racing recorders moved the total; the tail is the answer
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.count = count();
  snap.sum = sum();
  snap.min = min();
  snap.max = max();
  snap.p50 = percentile(50.0);
  snap.p95 = percentile(95.0);
  snap.p99 = percentile(99.0);
  return snap;
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

// ------------------------------------------------------------------ Registry

Registry& Registry::global() {
  static Registry instance;
  static const bool initialized = [] {
    const auto [enabled, path] = metrics_env();
    instance.set_enabled(enabled);
    instance.dump_path_ = path;
    return true;
  }();
  (void)initialized;
  return instance;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  require(gauges_.find(name) == gauges_.end() && histograms_.find(name) == histograms_.end(),
          "Registry: metric kind mismatch for " + std::string(name));
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  require(counters_.find(name) == counters_.end() &&
              histograms_.find(name) == histograms_.end(),
          "Registry: metric kind mismatch for " + std::string(name));
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name, HistogramOptions options) {
  std::lock_guard<std::mutex> lock(mutex_);
  require(counters_.find(name) == counters_.end() && gauges_.find(name) == gauges_.end(),
          "Registry: metric kind mismatch for " + std::string(name));
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>(options)).first;
  }
  return *it->second;
}

std::vector<MetricRow> Registry::rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricRow> rows;
  rows.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricRow row;
    row.kind = MetricRow::Kind::kCounter;
    row.name = name;
    row.value = static_cast<double>(counter->value());
    rows.push_back(std::move(row));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricRow row;
    row.kind = MetricRow::Kind::kGauge;
    row.name = name;
    row.value = gauge->value();
    rows.push_back(std::move(row));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricRow row;
    row.kind = MetricRow::Kind::kHistogram;
    row.name = name;
    row.histogram = histogram->snapshot();
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const MetricRow& a, const MetricRow& b) { return a.name < b.name; });
  return rows;
}

void Registry::write_jsonl(std::ostream& out) const {
  for (const MetricRow& row : rows()) {
    switch (row.kind) {
      case MetricRow::Kind::kCounter:
        out << "{\"type\":\"counter\",\"name\":\"" << row.name << "\",\"value\":" << row.value
            << "}\n";
        break;
      case MetricRow::Kind::kGauge:
        out << "{\"type\":\"gauge\",\"name\":\"" << row.name << "\",\"value\":" << row.value
            << "}\n";
        break;
      case MetricRow::Kind::kHistogram:
        out << "{\"type\":\"histogram\",\"name\":\"" << row.name
            << "\",\"count\":" << row.histogram.count << ",\"sum\":" << row.histogram.sum
            << ",\"min\":" << row.histogram.min << ",\"max\":" << row.histogram.max
            << ",\"p50\":" << row.histogram.p50 << ",\"p95\":" << row.histogram.p95
            << ",\"p99\":" << row.histogram.p99 << "}\n";
        break;
    }
  }
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

Registry::~Registry() {
  if (dump_path_.empty()) return;
  std::ofstream out(dump_path_);
  if (!out) return;
  out << RunManifest::capture("registry").to_jsonl_line() << "\n";
  write_jsonl(out);
}

}  // namespace gp::obs
