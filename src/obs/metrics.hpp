// Thread-safe metrics registry: counters, gauges and fixed-bucket
// histograms with interpolated percentiles (p50/p95/p99).
//
// Design rules, in order:
//  1. Race-free under common/thread_pool. Every mutation is a relaxed
//     atomic operation (counter adds, gauge stores, histogram bucket
//     increments), so recording never takes a lock and the game's parallel
//     Jacobi rounds and the solvers' inner loops can record freely.
//     Registry LOOKUP takes a mutex; hot call sites look a metric up once
//     per solve/step (metrics are never removed, so references stay valid
//     for the registry's lifetime).
//  2. Near-zero overhead when disabled. Registry::enabled() is one relaxed
//     atomic load; instrumented call sites check it before touching the
//     registry, so an un-instrumented run pays a branch per solve, not per
//     iteration. The flag comes from the GEOPLACE_METRICS environment
//     variable (read once, at first Registry::global() use) or from
//     set_enabled().
//  3. Bounded memory. Histograms use FIXED log-spaced buckets — recording
//     is O(1), snapshots are O(buckets), and percentiles are interpolated
//     within the owning bucket, so the relative error is bounded by the
//     bucket ratio (10^(1/buckets_per_decade) - 1, ~15% at the default 16
//     buckets per decade). Exact percentiles belong to offline analysis of
//     the trace (tools/trace_report); the registry answers "what order of
//     magnitude, live, for free".
//
// GEOPLACE_METRICS values: unset/"0"/"false"/"off" — disabled;
// "1"/"true"/"on" — enabled; any other value — enabled AND the registry is
// dumped as JSONL to that path at process exit.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace gp::obs {

/// Monotonically increasing event count. add() is a relaxed atomic
/// fetch-add: safe from any thread, never blocks.
class Counter {
 public:
  void add(long long delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  long long value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long long> value_{0};
};

/// Last-write-wins instantaneous value (e.g. rounds-to-equilibrium of the
/// most recent game run). set() is a relaxed atomic store.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Bucket layout of a Histogram: an underflow bucket covering [0,
/// min_value), log-spaced buckets up to max_value, and an overflow bucket.
/// Negative samples clamp into the underflow bucket.
struct HistogramOptions {
  double min_value = 1e-3;    ///< lower edge of the first log bucket
  double max_value = 1e7;     ///< upper edge of the last log bucket
  int buckets_per_decade = 16;
};

/// One consistent-enough read of a histogram (buckets are read without a
/// barrier, so a snapshot taken concurrently with recording may be off by
/// the in-flight samples — fine for reporting).
struct HistogramSnapshot {
  long long count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Fixed-bucket concurrent histogram (see file comment and
/// HistogramOptions). record() is wait-free per bucket; count/sum/min/max
/// are maintained exactly (CAS loops for the doubles).
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});

  void record(double value);

  long long count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const;

  /// Interpolated percentile, p in [0, 100]; 0 when empty. Accuracy is one
  /// bucket (see file comment); the result is clamped to the exact observed
  /// [min, max].
  double percentile(double p) const;

  HistogramSnapshot snapshot() const;
  void reset();

  const HistogramOptions& options() const { return options_; }

 private:
  /// Bucket index for a sample (0 = underflow, buckets()-1 = overflow).
  std::size_t bucket_of(double value) const;
  /// Upper edge of bucket i (underflow edge = min_value; overflow = +inf).
  double upper_edge(std::size_t i) const;

  HistogramOptions options_;
  double log_min_ = 0.0;           // log10(min_value), cached
  std::vector<std::atomic<long long>> buckets_;
  std::atomic<long long> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;        // +inf when empty
  std::atomic<double> max_;        // -inf when empty
};

/// One row of Registry::rows() — the union of the three metric kinds.
struct MetricRow {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  double value = 0.0;              ///< counter/gauge value
  HistogramSnapshot histogram;     ///< filled for kHistogram
};

/// Named metric store (see file comment). One process-wide instance via
/// global(); tests may construct private registries.
class Registry {
 public:
  Registry() = default;

  /// The process-wide registry. On first use, reads GEOPLACE_METRICS to
  /// initialize the enabled flag (and the exit-dump path, if any). The
  /// exit dump happens from this object's destructor.
  static Registry& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }

  /// Finds or creates the named metric. The reference stays valid for the
  /// registry's lifetime. Requesting an existing name with a different
  /// metric kind throws.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, HistogramOptions options = {});

  /// All metrics, sorted by name (counters and gauges read at call time).
  std::vector<MetricRow> rows() const;

  /// One JSON object per line per metric — the metrics half of the JSONL
  /// export format (see obs/export.hpp for the line schema).
  void write_jsonl(std::ostream& out) const;

  /// Zeroes every registered metric (the metrics keep their identity, so
  /// cached references stay valid). For tests and benchmarks.
  void reset_values();

  /// reset_values() on the global registry — the one-liner tests and
  /// gp_replay use to isolate a measurement without constructing a private
  /// registry (which would invalidate references instrumented code caches).
  static void reset_all() { global().reset_values(); }

  ~Registry();

 private:
  std::atomic<bool> enabled_{false};
  std::string dump_path_;  // non-empty: write_jsonl here at destruction
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Shorthand for Registry::global().enabled() — the gate instrumented call
/// sites check before recording.
inline bool metrics_enabled() { return Registry::global().enabled(); }

}  // namespace gp::obs
