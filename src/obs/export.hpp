// Trace/metric exporters.
//
// Chrome trace-event format (load in chrome://tracing or Perfetto): a JSON
// array of complete events ("ph":"X") for spans and counter events
// ("ph":"C") for scalar trajectories, timestamps/durations in microseconds,
// one process (pid 0) with the library's small thread ids as tids.
//
// JSONL event log (the input of tools/trace_report): one JSON object per
// line —
//   {"type":"span","name":...,"ts_us":...,"dur_us":...,"tid":...,
//    "depth":...[,"arg":...]}
//   {"type":"counter_sample","name":...,"ts_us":...,"value":...}
// followed, when a Registry is supplied, by its metric lines
// ({"type":"counter"|"gauge"|"histogram",...} — see Registry::write_jsonl).
// Both exporters accept an optional RunManifest: the JSONL log starts with
// its {"type":"manifest",...} header line, the Chrome array carries it as a
// "run_manifest" metadata event, so either artifact is self-describing.
#pragma once

#include <ostream>
#include <span>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gp::obs {

/// Writes the Chrome trace-event JSON array (see file comment).
void write_chrome_trace(std::ostream& out, std::span<const TraceEvent> events,
                        const RunManifest* manifest = nullptr);

/// Writes the JSONL event log; appends `registry` metric lines when given.
void write_jsonl_trace(std::ostream& out, std::span<const TraceEvent> events,
                       const Registry* registry = nullptr,
                       const RunManifest* manifest = nullptr);

}  // namespace gp::obs
