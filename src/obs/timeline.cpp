#include "obs/timeline.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "common/csv.hpp"

namespace gp::obs {

namespace {

/// GEOPLACE_TIMELINE parse, same grammar as GEOPLACE_METRICS/RECORD:
/// {enabled, path}.
std::pair<bool, std::string> timeline_env() {
  const char* raw = std::getenv("GEOPLACE_TIMELINE");
  if (raw == nullptr) return {false, {}};
  const std::string value(raw);
  if (value.empty() || value == "0" || value == "false" || value == "off") return {false, {}};
  if (value == "1" || value == "true" || value == "on") return {true, {}};
  return {true, value};
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{timeline_env().first};
  return flag;
}

/// JSON number token: shortest round-trip, null for non-finite (JSON has no
/// NaN/inf) — the same convention as the sweep exports.
std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  return CsvWriter::format(value);
}

/// The frame fields in column order, by pointer-to-member — one table
/// drives the SoA scatter/gather and the export.
constexpr double TelemetryFrame::* kFields[] = {
#define GP_TIMELINE_MEMBER(name) &TelemetryFrame::name,
    GP_TIMELINE_COLUMNS(GP_TIMELINE_MEMBER)
#undef GP_TIMELINE_MEMBER
};
constexpr std::size_t kNumColumns = sizeof(kFields) / sizeof(kFields[0]);

}  // namespace

std::size_t timeline_num_columns() { return kNumColumns; }

const std::vector<std::string>& timeline_column_names() {
  static const std::vector<std::string> names = {
#define GP_TIMELINE_NAME(name) #name,
      GP_TIMELINE_COLUMNS(GP_TIMELINE_NAME)
#undef GP_TIMELINE_NAME
  };
  return names;
}

void write_timeline_jsonl(std::ostream& out, std::span<const TelemetryFrame> frames,
                          const RunManifest* manifest) {
  if (manifest != nullptr) out << manifest->to_jsonl_line() << "\n";
  const auto& names = timeline_column_names();
  out << "{\"type\":\"timeline\",\"frames\":" << frames.size() << ",\"columns\":[";
  for (std::size_t c = 0; c < names.size(); ++c) {
    out << (c > 0 ? ",\"" : "\"") << names[c] << "\"";
  }
  out << "]}\n";
  for (std::size_t c = 0; c < kNumColumns; ++c) {
    out << "{\"type\":\"timeline_col\",\"name\":\"" << names[c] << "\",\"values\":[";
    for (std::size_t i = 0; i < frames.size(); ++i) {
      if (i > 0) out << ",";
      out << json_number(frames[i].*kFields[c]);
    }
    out << "]}\n";
  }
}

bool TimelineWriter::enabled() {
  return enabled_flag().load(std::memory_order_relaxed);
}

void TimelineWriter::set_enabled(bool enabled) {
  enabled_flag().store(enabled, std::memory_order_relaxed);
}

const std::string& TimelineWriter::dump_path() {
  static const std::string path = timeline_env().second;
  return path;
}

TimelineWriter& TimelineWriter::local() {
  thread_local TimelineWriter writer;
  return writer;
}

TimelineWriter::TimelineWriter(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

TelemetryFrame& TimelineWriter::begin(long long period, double utc_hour) {
  open_frame_ = TelemetryFrame{};
  open_frame_.period = static_cast<double>(period);
  open_frame_.utc_hour = utc_hour;
  open_ = true;
  return open_frame_;
}

void TimelineWriter::commit() {
  if (!open_) return;
  if (columns_.empty()) {
    // Lazy ring allocation on the thread's first commit (rule 3/4).
    columns_.assign(kNumColumns, std::vector<double>(capacity_, 0.0));
  }
  for (std::size_t c = 0; c < kNumColumns; ++c) {
    columns_[c][head_] = open_frame_.*kFields[c];
  }
  head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
  ++count_;
  open_ = false;
}

void TimelineWriter::clear() {
  head_ = 0;
  count_ = 0;
  open_ = false;
}

std::vector<TelemetryFrame> TimelineWriter::frames() const {
  const std::size_t retained = size();
  std::vector<TelemetryFrame> out(retained);
  // Oldest retained frame sits at head_ when the ring has wrapped, else 0.
  const std::size_t oldest = count_ >= capacity_ ? head_ : 0;
  for (std::size_t i = 0; i < retained; ++i) {
    const std::size_t slot = (oldest + i) % capacity_;
    for (std::size_t c = 0; c < kNumColumns; ++c) {
      out[i].*kFields[c] = columns_[c][slot];
    }
  }
  return out;
}

void TimelineWriter::write_jsonl(std::ostream& out, const RunManifest* manifest) const {
  const std::vector<TelemetryFrame> gathered = frames();
  write_timeline_jsonl(out, gathered, manifest);
}

void TimelineWriter::flush() const {
  const std::string& path = dump_path();
  if (path.empty() || size() == 0) return;
  static std::mutex file_mutex;
  std::lock_guard<std::mutex> lock(file_mutex);
  std::ofstream out(path, std::ios::app);
  if (!out) return;
  // Each flushed segment is self-describing (the acceptance artifact is
  // "manifest-headed"): capture provenance once per flush, i.e. per run.
  const RunManifest manifest = RunManifest::capture("timeline");
  write_jsonl(out, &manifest);
}

}  // namespace gp::obs
