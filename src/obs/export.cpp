#include "obs/export.hpp"

namespace gp::obs {

namespace {

/// Escapes the characters that can appear in metric/span names. Names are
/// library-chosen identifiers, so this stays minimal (quotes, backslash).
void write_escaped(std::ostream& out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

}  // namespace

void write_chrome_trace(std::ostream& out, std::span<const TraceEvent> events,
                        const RunManifest* manifest) {
  out << "[\n";
  out << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,"
         "\"args\":{\"name\":\"geoplace\"}}";
  if (manifest != nullptr) {
    out << ",\n{\"ph\":\"M\",\"name\":\"run_manifest\",\"pid\":0,\"args\":"
        << manifest->to_json_object() << "}";
  }
  for (const TraceEvent& event : events) {
    out << ",\n";
    const auto dot = event.name.find('.');
    const std::string category =
        dot == std::string::npos ? std::string("misc") : event.name.substr(0, dot);
    if (event.dur_us < 0.0) {
      // Counter sample.
      out << "{\"ph\":\"C\",\"name\":\"";
      write_escaped(out, event.name);
      out << "\",\"cat\":\"" << category << "\",\"ts\":" << event.ts_us
          << ",\"pid\":0,\"args\":{\"value\":" << event.arg << "}}";
      continue;
    }
    out << "{\"ph\":\"X\",\"name\":\"";
    write_escaped(out, event.name);
    out << "\",\"cat\":\"" << category << "\",\"ts\":" << event.ts_us
        << ",\"dur\":" << event.dur_us << ",\"pid\":0,\"tid\":" << event.tid;
    if (event.has_arg) {
      out << ",\"args\":{\"arg\":" << event.arg << "}";
    }
    out << "}";
  }
  out << "\n]\n";
}

void write_jsonl_trace(std::ostream& out, std::span<const TraceEvent> events,
                       const Registry* registry, const RunManifest* manifest) {
  if (manifest != nullptr) out << manifest->to_jsonl_line() << "\n";
  for (const TraceEvent& event : events) {
    if (event.dur_us < 0.0) {
      out << "{\"type\":\"counter_sample\",\"name\":\"";
      write_escaped(out, event.name);
      out << "\",\"ts_us\":" << event.ts_us << ",\"value\":" << event.arg << "}\n";
      continue;
    }
    out << "{\"type\":\"span\",\"name\":\"";
    write_escaped(out, event.name);
    out << "\",\"ts_us\":" << event.ts_us << ",\"dur_us\":" << event.dur_us
        << ",\"tid\":" << event.tid << ",\"depth\":" << event.depth;
    if (event.has_arg) out << ",\"arg\":" << event.arg;
    out << "}\n";
  }
  if (registry != nullptr) registry->write_jsonl(out);
}

}  // namespace gp::obs
