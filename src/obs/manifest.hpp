// Run provenance: a RunManifest records which code, seeds and environment
// produced an artifact, so every JSONL file is self-describing and a failed
// run can be reproduced (tools/gp_replay).
//
// A manifest is embedded as the FIRST line of JSONL artifacts
// ({"type":"manifest",...}) and written as a `<artifact>.manifest.json`
// sidecar for formats that cannot carry a header line (CSV). Consumers that
// compare artifacts for bit-identity must strip the manifest first
// (strip_manifest_lines): the thread-count and host fields legitimately
// differ between otherwise identical runs.
//
// Layering: obs does not know about scenarios. The ScenarioSpec hash is a
// caller-supplied opaque string (src/scenario/serialize.hpp computes it);
// capture() fills only what the obs layer can see on its own — git SHA and
// build flags (baked in at configure time), thread count, CPU count, host,
// the dispatched SIMD tier (obs sits above linalg), and the GEOPLACE_*
// environment.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace gp::obs {

struct RunManifest {
  int schema = 2;            ///< manifest line format version (2: + "simd")
  std::string tool;          ///< artifact producer ("sweep", "trace", ...)
  std::string git_sha;       ///< build provenance (configure-time git rev-parse)
  std::string build_type;    ///< CMAKE_BUILD_TYPE the binary was built with
  std::string compiler;      ///< compiler id-version string
  std::string host;          ///< hostname (excluded from identity checks)
  std::size_t threads = 0;   ///< ThreadPool::default_lanes() at capture time
  unsigned cpus = 0;         ///< hardware_concurrency at capture time
  /// Dispatched SIMD kernel tier ("scalar" / "avx2" / "avx512") at capture
  /// time — vectorization provenance for every artifact. A GEOPLACE_SIMD
  /// override shows up both here (it changes the active tier) and verbatim
  /// in `env` below.
  std::string simd;
  std::vector<std::uint64_t> seeds;       ///< run seed(s); caller-supplied
  std::string spec_hash;                  ///< ScenarioSpec hash; caller-supplied
  std::vector<std::string> trace_paths;   ///< demand/price traces referenced
  /// Sorted (name, value) pairs of every set GEOPLACE_* variable.
  std::vector<std::pair<std::string, std::string>> env;

  /// Fills the provenance fields the obs layer can observe by itself (see
  /// file comment); seeds / spec_hash / trace_paths stay for the caller.
  static RunManifest capture(std::string tool_name);

  /// The manifest as a JSON object, no trailing newline: {"schema":1,...}.
  std::string to_json_object() const;

  /// The JSONL header line, no trailing newline: {"type":"manifest",...}.
  std::string to_jsonl_line() const;

  /// Writes `<artifact_path>.manifest.json` next to a non-JSONL artifact.
  void write_sidecar(const std::string& artifact_path) const;
};

/// True when the line (sans leading whitespace) is a manifest header.
bool is_manifest_line(const std::string& line);

/// Drops manifest lines from a JSONL blob — the identity-check view of an
/// artifact (manifests carry thread/host fields that legitimately vary).
std::string strip_manifest_lines(const std::string& jsonl);

}  // namespace gp::obs
