// Convergence flight recorder: a per-thread ring buffer of fixed-size
// samples the solvers and the game write into, so a failed solve leaves its
// last iterations behind for diagnosis instead of just a status code.
//
// Design rules, in order:
//  1. O(1) and allocation-free per sample. A ConvergenceSample is five
//     words; push() overwrites the oldest slot once the ring is full. The
//     stream tag must be a STATIC string literal — the ring stores the
//     pointer, never copies, so pushing costs no heap traffic (the ADMM
//     hot-loop allocation audit covers the recording path).
//  2. Off by default, one branch when off. Call sites gate on
//     ConvergenceRecorder::enabled() — a relaxed atomic load, exactly like
//     metrics_enabled() — so disabled runs pay one predictable branch per
//     check iteration and nothing else (perf_parallel/micro_admm_kernels
//     gates are unaffected).
//  3. Race-free without locks. local() returns a thread_local ring, so
//     sweep lanes and parallel best responses each record into their own
//     buffer; a lane's tail can be snapshotted from that lane between runs
//     with no synchronization.
//  4. Bounded memory: kDefaultCapacity samples (40 B each, ~20 KiB) per
//     recording thread, allocated lazily on the thread's first push.
//
// GEOPLACE_RECORD values mirror GEOPLACE_METRICS: unset/"0"/"false"/"off" —
// disabled; "1"/"true"/"on" — enabled; any other value — enabled AND failed
// solves append their ring tail to that path (dump_failure).
#pragma once

#include <atomic>
#include <cstddef>
#include <ostream>
#include <vector>

namespace gp::obs {

/// One recorded point of a convergence trajectory. The meaning of a/b/c is
/// per stream: "admm.residual" = (primal, dual, rho); "admm.rho" = (old,
/// new, factor); "ipm.residual" = (dual, primal, mu); "game.round" = (cost,
/// delta, 0); terminal markers carry whatever the call site finds useful.
struct ConvergenceSample {
  const char* stream = "";  ///< static string literal — stored, not copied
  long long step = 0;       ///< iteration / round / period index
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
};

class ConvergenceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 512;

  /// Global recording flag (relaxed load). Initialized from GEOPLACE_RECORD
  /// on first use; see file comment for the accepted values.
  static bool enabled();
  static void set_enabled(bool enabled);

  /// The auto-dump destination from GEOPLACE_RECORD (empty when the value
  /// was a plain on/off flag or unset). set_enabled() does not change it.
  static const std::string& dump_path();

  /// This thread's ring. Constructed (and its buffer allocated) on the
  /// thread's first call.
  static ConvergenceRecorder& local();

  explicit ConvergenceRecorder(std::size_t capacity = kDefaultCapacity);

  /// Records one sample; overwrites the oldest once full. `stream` MUST be
  /// a static string literal (rule 1 in the file comment).
  void push(const char* stream, long long step, double a, double b = 0.0, double c = 0.0);

  void clear();
  std::size_t size() const { return count_ < ring_.size() ? count_ : ring_.size(); }
  std::size_t capacity() const { return ring_.size(); }
  long long total_pushed() const { return static_cast<long long>(count_); }

  /// The retained samples, oldest first (at most `max_samples` newest ones).
  std::vector<ConvergenceSample> tail(std::size_t max_samples = kDefaultCapacity) const;

  /// One {"type":"record",...} JSON line per retained sample, oldest first.
  void write_jsonl(std::ostream& out) const;

  /// Appends this thread's ring tail to dump_path() under a process-wide
  /// file lock, tagged with `reason`. No-op when no dump path is set. The
  /// solvers call this automatically for any solve that ends !solved and
  /// any game run that hits max_rounds.
  static void dump_failure(const char* reason);

 private:
  std::vector<ConvergenceSample> ring_;
  std::size_t head_ = 0;   // next slot to write
  std::size_t count_ = 0;  // total pushes since clear()
};

/// Shorthand mirroring metrics_enabled(): the gate recording call sites
/// check before touching the thread-local ring.
inline bool recording_enabled() { return ConvergenceRecorder::enabled(); }

}  // namespace gp::obs
