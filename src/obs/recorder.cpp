#include "obs/recorder.hpp"

#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>

#include "obs/trace.hpp"  // current_thread_id for dump attribution

namespace gp::obs {

namespace {

/// GEOPLACE_RECORD parse, same grammar as GEOPLACE_METRICS: {enabled, path}.
std::pair<bool, std::string> record_env() {
  const char* raw = std::getenv("GEOPLACE_RECORD");
  if (raw == nullptr) return {false, {}};
  const std::string value(raw);
  if (value.empty() || value == "0" || value == "false" || value == "off") return {false, {}};
  if (value == "1" || value == "true" || value == "on") return {true, {}};
  return {true, value};
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{record_env().first};
  return flag;
}

}  // namespace

bool ConvergenceRecorder::enabled() {
  return enabled_flag().load(std::memory_order_relaxed);
}

void ConvergenceRecorder::set_enabled(bool enabled) {
  enabled_flag().store(enabled, std::memory_order_relaxed);
}

const std::string& ConvergenceRecorder::dump_path() {
  static const std::string path = record_env().second;
  return path;
}

ConvergenceRecorder& ConvergenceRecorder::local() {
  thread_local ConvergenceRecorder recorder;
  return recorder;
}

ConvergenceRecorder::ConvergenceRecorder(std::size_t capacity)
    : ring_(capacity > 0 ? capacity : 1) {}

void ConvergenceRecorder::push(const char* stream, long long step, double a, double b,
                               double c) {
  ConvergenceSample& slot = ring_[head_];
  slot.stream = stream;
  slot.step = step;
  slot.a = a;
  slot.b = b;
  slot.c = c;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  ++count_;
}

void ConvergenceRecorder::clear() {
  head_ = 0;
  count_ = 0;
}

std::vector<ConvergenceSample> ConvergenceRecorder::tail(std::size_t max_samples) const {
  const std::size_t retained = size();
  const std::size_t take = retained < max_samples ? retained : max_samples;
  std::vector<ConvergenceSample> out;
  out.reserve(take);
  // Oldest retained sample sits at head_ when the ring has wrapped, else 0.
  const std::size_t oldest = count_ >= ring_.size() ? head_ : 0;
  for (std::size_t i = retained - take; i < retained; ++i) {
    out.push_back(ring_[(oldest + i) % ring_.size()]);
  }
  return out;
}

void ConvergenceRecorder::write_jsonl(std::ostream& out) const {
  for (const ConvergenceSample& sample : tail(capacity())) {
    out << "{\"type\":\"record\",\"stream\":\"" << sample.stream
        << "\",\"step\":" << sample.step << ",\"a\":" << sample.a << ",\"b\":" << sample.b
        << ",\"c\":" << sample.c << "}\n";
  }
}

void ConvergenceRecorder::dump_failure(const char* reason) {
  const std::string& path = dump_path();
  if (path.empty()) return;
  static std::mutex file_mutex;
  std::lock_guard<std::mutex> lock(file_mutex);
  std::ofstream out(path, std::ios::app);
  if (!out) return;
  const ConvergenceRecorder& recorder = local();
  out << "{\"type\":\"record_dump\",\"reason\":\"" << reason
      << "\",\"tid\":" << current_thread_id() << ",\"samples\":" << recorder.size() << "}\n";
  recorder.write_jsonl(out);
}

}  // namespace gp::obs
