#include "obs/manifest.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>
#include <thread>

#include "common/thread_pool.hpp"
#include "linalg/simd_dispatch.hpp"

#ifndef GEOPLACE_GIT_SHA
#define GEOPLACE_GIT_SHA "unknown"
#endif
#ifndef GEOPLACE_BUILD_TYPE
#define GEOPLACE_BUILD_TYPE "unknown"
#endif
#ifndef GEOPLACE_COMPILER
#define GEOPLACE_COMPILER "unknown"
#endif

extern char** environ;

namespace gp::obs {

namespace {

void append_escaped(std::string& out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

void append_string_field(std::string& out, const char* key, const std::string& value) {
  out += "\"";
  out += key;
  out += "\":\"";
  append_escaped(out, value);
  out += "\"";
}

}  // namespace

RunManifest RunManifest::capture(std::string tool_name) {
  RunManifest manifest;
  manifest.tool = std::move(tool_name);
  manifest.git_sha = GEOPLACE_GIT_SHA;
  manifest.build_type = GEOPLACE_BUILD_TYPE;
  manifest.compiler = GEOPLACE_COMPILER;
  char hostname[256] = {};
  if (::gethostname(hostname, sizeof(hostname) - 1) == 0) manifest.host = hostname;
  manifest.threads = ThreadPool::default_lanes();
  manifest.cpus = std::thread::hardware_concurrency();
  manifest.simd = linalg::simd::tier_name(linalg::simd::active_tier());
  for (char** entry = environ; entry != nullptr && *entry != nullptr; ++entry) {
    const char* var = *entry;
    if (std::strncmp(var, "GEOPLACE_", 9) != 0) continue;
    const char* eq = std::strchr(var, '=');
    if (eq == nullptr) continue;
    manifest.env.emplace_back(std::string(var, eq), std::string(eq + 1));
  }
  std::sort(manifest.env.begin(), manifest.env.end());
  return manifest;
}

std::string RunManifest::to_json_object() const {
  std::string out = "{\"schema\":" + std::to_string(schema) + ",";
  append_string_field(out, "tool", tool);
  out += ",";
  append_string_field(out, "git_sha", git_sha);
  out += ",";
  append_string_field(out, "build", build_type);
  out += ",";
  append_string_field(out, "compiler", compiler);
  out += ",";
  append_string_field(out, "host", host);
  out += ",\"threads\":" + std::to_string(threads) + ",\"cpus\":" + std::to_string(cpus);
  out += ",";
  append_string_field(out, "simd", simd);
  out += ",\"seeds\":[";
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(seeds[i]);
  }
  out += "],";
  append_string_field(out, "spec_hash", spec_hash);
  out += ",\"trace_paths\":[";
  for (std::size_t i = 0; i < trace_paths.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"";
    append_escaped(out, trace_paths[i]);
    out += "\"";
  }
  out += "],\"env\":{";
  for (std::size_t i = 0; i < env.size(); ++i) {
    if (i > 0) out += ",";
    append_string_field(out, env[i].first.c_str(), env[i].second);
  }
  out += "}}";
  return out;
}

std::string RunManifest::to_jsonl_line() const {
  std::string body = to_json_object();
  // Splice the discriminator in right after the opening brace.
  return "{\"type\":\"manifest\"," + body.substr(1);
}

void RunManifest::write_sidecar(const std::string& artifact_path) const {
  std::ofstream out(artifact_path + ".manifest.json");
  if (out) out << to_json_object() << "\n";
}

bool is_manifest_line(const std::string& line) {
  static constexpr std::string_view kHeader = "{\"type\":\"manifest\",";
  const std::size_t start = line.find_first_not_of(" \t");
  if (start == std::string::npos) return false;
  return line.compare(start, kHeader.size(), kHeader) == 0;
}

std::string strip_manifest_lines(const std::string& jsonl) {
  std::string out;
  out.reserve(jsonl.size());
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    if (is_manifest_line(line)) continue;
    out += line;
    out += "\n";
  }
  return out;
}

}  // namespace gp::obs
