// The monitoring module of the paper's architecture (Fig. 2): collects the
// per-period demand and price observations and maintains the descriptive
// statistics the other components consume — EWMA level, EWMA deviation,
// sliding-window mean / percentiles / trend per series. The predictors take
// raw observations; this module answers the operational questions ("what is
// the p95 demand this week", "is demand trending up").
#pragma once

#include <deque>

#include "linalg/vector_ops.hpp"

namespace gp::sim {

/// Point-in-time statistics of one monitored series (dimension).
struct SeriesStats {
  double last = 0.0;
  double ewma = 0.0;            ///< exponentially weighted level
  double ewma_deviation = 0.0;  ///< exponentially weighted |residual|
  double window_mean = 0.0;     ///< over the sliding window
  double window_p95 = 0.0;
  double window_max = 0.0;
  double trend_per_period = 0.0;  ///< least-squares slope over the window
  std::size_t observations = 0;
};

/// Multivariate sliding-window monitor (see file comment).
class Monitor {
 public:
  /// window: periods retained for window statistics; alpha: EWMA smoothing.
  explicit Monitor(std::size_t window = 48, double alpha = 0.2);

  /// Feeds one period's observation (fixed dimension after the first call).
  void observe(const linalg::Vector& value);

  std::size_t dimensions() const;
  std::size_t observations() const { return count_; }

  /// Statistics of dimension d.
  SeriesStats stats(std::size_t d) const;

  /// Aggregate statistics of the per-period TOTAL across dimensions.
  SeriesStats total_stats() const;

 private:
  SeriesStats compute(const std::deque<double>& series, double ewma, double deviation) const;

  std::size_t window_;
  double alpha_;
  std::size_t count_ = 0;
  std::vector<std::deque<double>> history_;  ///< per dimension
  std::deque<double> total_history_;
  linalg::Vector ewma_;
  linalg::Vector deviation_;
  double total_ewma_ = 0.0;
  double total_deviation_ = 0.0;
};

}  // namespace gp::sim
