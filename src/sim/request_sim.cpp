#include "sim/request_sim.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "queueing/mm1.hpp"

namespace gp::sim {

namespace {

/// Trims warm-up samples and summarizes response times (seconds).
QueueSimResult summarize(std::vector<double>& responses, double busy_time, int servers,
                         double duration_s, double warmup_fraction) {
  QueueSimResult result;
  const auto skip = static_cast<std::size_t>(warmup_fraction *
                                             static_cast<double>(responses.size()));
  if (responses.size() <= skip) return result;
  std::vector<double> measured(responses.begin() + static_cast<std::ptrdiff_t>(skip),
                               responses.end());
  result.completed = measured.size();
  result.mean_response = mean(measured);
  result.p95_response = percentile(measured, 95.0);
  result.utilization = busy_time / (static_cast<double>(servers) * duration_s);
  return result;
}

}  // namespace

QueueSimResult simulate_split_mm1(double lambda, double mu, int servers, double duration_s,
                                  Rng& rng, double warmup_fraction) {
  require(lambda >= 0.0, "simulate_split_mm1: negative arrival rate");
  require(mu > 0.0, "simulate_split_mm1: mu must be > 0");
  require(servers >= 1, "simulate_split_mm1: need at least one server");
  require(duration_s > 0.0, "simulate_split_mm1: duration must be > 0");
  require(warmup_fraction >= 0.0 && warmup_fraction < 1.0,
          "simulate_split_mm1: warmup fraction in [0, 1)");

  // A uniform split of a Poisson process is a Poisson process per server,
  // and the servers are independent: simulate each with the exact Lindley
  // recursion W_{n+1} = max(0, W_n + S_n - A_n).
  const double per_server_rate = lambda / static_cast<double>(servers);
  std::vector<double> responses;
  double busy_time = 0.0;
  for (int s = 0; s < servers; ++s) {
    if (per_server_rate <= 0.0) break;
    double t = rng.exponential(per_server_rate);
    double wait = 0.0;
    while (t < duration_s) {
      const double service = rng.exponential(mu);
      responses.push_back(wait + service);
      busy_time += service;
      const double gap = rng.exponential(per_server_rate);
      wait = std::max(0.0, wait + service - gap);
      t += gap;
    }
  }
  return summarize(responses, busy_time, servers, duration_s, warmup_fraction);
}

QueueSimResult simulate_pooled_mmc(double lambda, double mu, int servers, double duration_s,
                                   Rng& rng, double warmup_fraction) {
  require(lambda >= 0.0, "simulate_pooled_mmc: negative arrival rate");
  require(mu > 0.0, "simulate_pooled_mmc: mu must be > 0");
  require(servers >= 1, "simulate_pooled_mmc: need at least one server");
  require(duration_s > 0.0, "simulate_pooled_mmc: duration must be > 0");

  // FIFO M/M/c: each arrival starts service at max(arrival, earliest free
  // server); a min-heap over server-free times is the whole state.
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (int s = 0; s < servers; ++s) free_at.push(0.0);
  std::vector<double> responses;
  double busy_time = 0.0;
  double t = lambda > 0.0 ? rng.exponential(lambda) : duration_s;
  while (t < duration_s) {
    const double earliest = free_at.top();
    free_at.pop();
    const double start = std::max(t, earliest);
    const double service = rng.exponential(mu);
    free_at.push(start + service);
    responses.push_back(start - t + service);
    busy_time += service;
    t += rng.exponential(lambda);
  }
  return summarize(responses, busy_time, servers, duration_s, warmup_fraction);
}

EmpiricalSlaReport simulate_assignment(const dspp::DsppModel& model,
                                       const dspp::PairIndex& pairs,
                                       const linalg::Vector& allocation,
                                       const dspp::Assignment& assignment,
                                       double duration_s, Rng& rng) {
  require(allocation.size() == pairs.num_pairs(), "simulate_assignment: allocation size");
  require(assignment.rate.size() == pairs.num_pairs(), "simulate_assignment: rate size");
  require(duration_s > 0.0, "simulate_assignment: duration must be > 0");

  EmpiricalSlaReport report;
  double weighted_latency = 0.0;
  double weighted_requests = 0.0;
  double violating = 0.0;
  for (std::size_t p = 0; p < pairs.num_pairs(); ++p) {
    const double rate = assignment.rate[p];
    if (rate <= 0.0) continue;
    const auto servers = static_cast<int>(std::ceil(allocation[p] - 1e-9));
    if (servers < 1) continue;
    const std::size_t l = pairs.datacenter_of(p);
    const std::size_t v = pairs.access_network_of(p);
    const double network_ms = model.network.latency_ms(l, v);
    const double bound_ms = model.max_latency_ms_for(l, v);

    // Simulate the pair's split-M/M/1 group and measure against its bound.
    const double per_server = rate / static_cast<double>(servers);
    if (per_server >= model.sla.mu) {
      // Unstable: everything violates.
      report.simulated_requests += static_cast<std::size_t>(rate * duration_s);
      violating += rate * duration_s;
      weighted_requests += rate * duration_s;
      continue;
    }
    // Re-simulate with response samples to count violations precisely.
    const double queue_budget_ms = bound_ms - network_ms;
    std::size_t pair_requests = 0, pair_violations = 0;
    std::vector<double> responses_ms;
    for (int s = 0; s < servers; ++s) {
      double t = rng.exponential(per_server);
      double wait = 0.0;
      while (t < duration_s) {
        const double service = rng.exponential(model.sla.mu);
        const double response_ms = (wait + service) * 1000.0;
        responses_ms.push_back(response_ms);
        ++pair_requests;
        if (response_ms > queue_budget_ms) ++pair_violations;
        const double gap = rng.exponential(per_server);
        wait = std::max(0.0, wait + service - gap);
        t += gap;
      }
    }
    if (responses_ms.empty()) continue;
    const double pair_mean_ms = network_ms + mean(responses_ms);
    const double pair_p95_ms = network_ms + percentile(responses_ms, 95.0);
    report.worst_pair_p95_ms = std::max(report.worst_pair_p95_ms, pair_p95_ms);
    weighted_latency += pair_mean_ms * static_cast<double>(pair_requests);
    weighted_requests += static_cast<double>(pair_requests);
    violating += static_cast<double>(pair_violations);
    report.simulated_requests += pair_requests;
  }
  if (weighted_requests > 0.0) {
    report.mean_latency_ms = weighted_latency / weighted_requests;
    report.violating_fraction = violating / weighted_requests;
  }
  return report;
}

}  // namespace gp::sim
