// Request-level (discrete-event) queueing simulation.
//
// Everything the controller plans with is an ANALYTIC queueing model — the
// per-server M/M/1 split of Section IV-B and the ln(1/(1-phi)) percentile
// factor. This module simulates actual Poisson request streams against
// FIFO servers so those formulas can be validated empirically:
//   * simulate_split_mm1   the paper's model: x independent M/M/1 servers,
//     each fed an equal Bernoulli split of the arrival stream;
//   * simulate_pooled_mmc  the M/M/c alternative: one FIFO queue drained by
//     x servers (resource pooling);
//   * simulate_assignment  end-to-end: takes a placement and the eq-13
//     routing and reports the empirical latency distribution per the whole
//     deployment, the request-level counterpart of dspp::evaluate_sla.
//
// The single-queue simulations use exact recursions (Lindley for M/M/1, a
// server-heap for M/M/c) rather than a general event calendar — simpler,
// faster, and no approximation.
#pragma once

#include <queue>

#include "common/rng.hpp"
#include "dspp/assignment.hpp"

namespace gp::sim {

/// Empirical statistics of one simulated queueing system.
struct QueueSimResult {
  std::size_t completed = 0;     ///< requests measured (after warm-up)
  double mean_response = 0.0;    ///< seconds (queueing + service)
  double p95_response = 0.0;     ///< 95th percentile, seconds
  double utilization = 0.0;      ///< busy time / (servers * duration)
};

/// The paper's model: `servers` independent M/M/1 FIFO queues, each fed a
/// Poisson(lambda / servers) stream (requests pick a server uniformly).
/// duration_s of arrivals are generated; the first warmup_fraction of
/// completed requests are discarded.
QueueSimResult simulate_split_mm1(double lambda, double mu, int servers, double duration_s,
                                  Rng& rng, double warmup_fraction = 0.1);

/// Pooled alternative: one FIFO queue drained by `servers` exponential
/// servers (M/M/c).
QueueSimResult simulate_pooled_mmc(double lambda, double mu, int servers, double duration_s,
                                   Rng& rng, double warmup_fraction = 0.1);

/// Empirical end-to-end latency of a deployment: for every loaded (l, v)
/// pair, simulates the per-server split at its assigned rate (allocation
/// rounded up to whole servers) and adds the network latency.
struct EmpiricalSlaReport {
  double mean_latency_ms = 0.0;       ///< demand-weighted across pairs
  double worst_pair_p95_ms = 0.0;     ///< max per-pair p95 end-to-end
  double violating_fraction = 0.0;    ///< fraction of requests above the pair's bound
  std::size_t simulated_requests = 0;
};

EmpiricalSlaReport simulate_assignment(const dspp::DsppModel& model,
                                       const dspp::PairIndex& pairs,
                                       const linalg::Vector& allocation,
                                       const dspp::Assignment& assignment,
                                       double duration_s, Rng& rng);

}  // namespace gp::sim
