#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "dspp/integer.hpp"
#include "dspp/provisioning.hpp"
#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace gp::sim {

using linalg::Vector;

PlacementPolicy integerized(PlacementPolicy inner, const dspp::DsppModel& model,
                            const dspp::PairIndex& pairs) {
  return [inner = std::move(inner), &model, &pairs](const Vector& state, const Vector& demand,
                                                    const Vector& price) {
    PolicyOutcome outcome = inner(state, demand, price);
    if (!outcome.solved) return outcome;
    const auto rounded =
        dspp::round_up_allocation(model, pairs, outcome.next_state, demand, price);
    if (rounded.feasible) {
      outcome.next_state = rounded.allocation;
      outcome.control = linalg::sub(outcome.next_state, state);
    }
    return outcome;
  };
}

void SimulationSummary::write_csv(std::ostream& out) const {
  CsvWriter csv(out);
  std::vector<std::string> header{"utc_hour",     "total_demand",  "total_servers",
                                  "resource_cost", "reconfig_cost", "sla_compliance",
                                  "mean_latency_ms", "unserved_rate", "solved"};
  if (!periods.empty()) {
    for (std::size_t l = 0; l < periods.front().servers_per_dc.size(); ++l) {
      header.push_back("servers_dc" + std::to_string(l));
    }
  }
  csv.header(header);
  // Unsolved periods carry NaN latencies/compliance; "nan" tokens break
  // most CSV consumers, so non-finite cells are written empty instead.
  const auto cell = [](double value) {
    return std::isfinite(value) ? CsvWriter::format(value) : std::string();
  };
  for (const auto& period : periods) {
    std::vector<std::string> row{cell(period.utc_hour),      cell(period.total_demand),
                                 cell(period.total_servers), cell(period.resource_cost),
                                 cell(period.reconfig_cost), cell(period.sla_compliance),
                                 cell(period.mean_latency_ms), cell(period.unserved_rate),
                                 period.solved ? "1" : "0"};
    for (double s : period.servers_per_dc) row.push_back(cell(s));
    csv.row(row);
  }
}

SimulationEngine::SimulationEngine(dspp::DsppModel model, workload::DemandModel demand,
                                   workload::ServerPriceModel prices, SimulationConfig config)
    : model_(std::move(model)),
      pairs_(model_),
      demand_(std::move(demand)),
      prices_(std::move(prices)),
      config_(config) {
  require(config_.periods >= 1, "SimulationEngine: need at least one period");
  require(config_.period_hours > 0.0, "SimulationEngine: period length must be > 0");
  require(demand_.num_access_networks() == model_.num_access_networks(),
          "SimulationEngine: demand model V != network V");
  require(prices_.num_datacenters() == model_.num_datacenters(),
          "SimulationEngine: price model L != network L");
}

Vector SimulationEngine::observe_demand(double utc_hour, Rng& rng) const {
  if (!config_.noisy_demand) return demand_.mean_rates(utc_hour + config_.period_hours / 2.0);
  Vector rates(demand_.num_access_networks());
  for (std::size_t v = 0; v < rates.size(); ++v) {
    rates[v] = demand_.sample_rate(v, utc_hour, config_.period_hours, rng);
  }
  return rates;
}

Vector SimulationEngine::observe_price(double utc_hour) const {
  Vector price = prices_.server_prices(utc_hour + config_.period_hours / 2.0);
  linalg::scale(config_.period_hours, price);
  return price;
}

SimulationSummary SimulationEngine::run(const PlacementPolicy& policy) {
  obs::Span run_span("sim.run", static_cast<double>(config_.periods));
  // Timeline recording protocol (obs/timeline.hpp): the engine owns the
  // period loop, so it clears this thread's ring here — after run() the
  // ring holds exactly this run's frames, which is what sweep lanes
  // snapshot into per-cell sidecars. One relaxed load when disabled.
  const bool timeline_on = obs::timeline_enabled();
  if (timeline_on) obs::TimelineWriter::local().clear();
  Rng rng(config_.seed);
  SimulationSummary summary;
  summary.periods.reserve(config_.periods);

  // Pre-sample one consistent demand/price trace for periods 0..K (each
  // period's observation is used both as "current" at step k and as the
  // realized demand the step-(k-1) allocation serves).
  std::vector<Vector> demand_trace, price_trace;
  for (std::size_t k = 0; k <= config_.periods; ++k) {
    const double hour = config_.utc_start_hour + static_cast<double>(k) * config_.period_hours;
    demand_trace.push_back(observe_demand(hour, rng));
    Vector price = observe_price(config_.freeze_prices ? config_.utc_start_hour : hour);
    if (config_.price_noise_std > 0.0) {
      for (double& p : price) {
        p = std::max(0.1 * p, p * (1.0 + rng.normal(0.0, config_.price_noise_std)));
      }
    }
    price_trace.push_back(std::move(price));
  }

  // Initial state: cheapest placement for the first observed demand.
  Vector state(pairs_.num_pairs(), 0.0);
  if (config_.provision_initial) {
    obs::Span provision_span("sim.provision_initial");
    qp::AdmmSolver solver;
    state = dspp::min_cost_placement(model_, pairs_, demand_trace[0], price_trace[0], solver);
    linalg::scale(config_.initial_overprovision, state);
  }

  double compliance_sum = 0.0;
  for (std::size_t k = 0; k < config_.periods; ++k) {
    obs::Span period_span("sim.period", static_cast<double>(k));
    const double hour = config_.utc_start_hour + static_cast<double>(k) * config_.period_hours;
    const Vector& demand = demand_trace[k];
    const Vector& price = price_trace[k];

    // Open the period's telemetry frame BEFORE the policy call so the
    // layers underneath (MPC forecast error, QP solver effort) contribute
    // their fields through obs::timeline_frame() while it is open.
    obs::TelemetryFrame* frame =
        timeline_on ? &obs::TimelineWriter::local().begin(static_cast<long long>(k), hour)
                    : nullptr;
    if (frame != nullptr) frame->forecast_rel_err = -1.0;  // -1: no forecast seen

    // Policy wall time: the span reads steady_clock unconditionally, so the
    // accounting is identical whether or not tracing/metrics are enabled.
    obs::Span policy_span("sim.policy");
    const PolicyOutcome outcome = policy(state, demand, price);
    const double policy_ms = policy_span.close();
    summary.policy_wall_ms += policy_ms;
    if (obs::metrics_enabled()) {
      obs::Registry::global().histogram("sim.policy_ms").record(policy_ms);
    }
    PeriodMetrics metrics;
    metrics.utc_hour = hour;
    metrics.demand = demand;
    for (double d : demand) metrics.total_demand += d;
    metrics.solved = outcome.solved;
    if (!outcome.solved) {
      ++summary.unsolved_periods;
      if (obs::recording_enabled()) {
        obs::ConvergenceRecorder::local().push("sim.unsolved_period",
                                               static_cast<long long>(k), hour);
      }
    }

    const Vector next_state = outcome.solved ? outcome.next_state : state;
    const Vector control = outcome.solved ? outcome.control
                                          : Vector(pairs_.num_pairs(), 0.0);

    // The reconfigured allocation serves the NEXT period's demand; cost it
    // at next period's prices (the p_k x_k term of eq. (3)).
    const Vector& next_demand = demand_trace[k + 1];
    const Vector& next_price = price_trace[k + 1];

    metrics.servers_per_dc.assign(model_.num_datacenters(), 0.0);
    for (std::size_t pair = 0; pair < pairs_.num_pairs(); ++pair) {
      metrics.servers_per_dc[pairs_.datacenter_of(pair)] += next_state[pair];
      metrics.total_servers += next_state[pair];
      metrics.resource_cost += next_price[pairs_.datacenter_of(pair)] * next_state[pair];
      const double c = model_.reconfig_cost[pairs_.datacenter_of(pair)];
      metrics.reconfig_cost += c * control[pair] * control[pair];
      summary.total_churn += std::abs(control[pair]);
    }
    if (obs::audit::enabled()) {
      // Capacity conservation: the allocation the engine carries into the
      // next period must fit every DC (an unsolved period that keeps an
      // oversized previous state shows up here).
      double worst_excess = 0.0, worst_capacity = 0.0;
      for (std::size_t l = 0; l < model_.num_datacenters(); ++l) {
        const double excess = metrics.servers_per_dc[l] - model_.capacity[l];
        if (excess > worst_excess) {
          worst_excess = excess;
          worst_capacity = model_.capacity[l];
        }
      }
      const double tolerance = 1e-6 * (1.0 + worst_capacity);
      obs::audit::check("capacity_conservation", worst_excess <= tolerance, worst_excess,
                        tolerance);
    }

    {
      obs::Span sla_span("sim.sla");
      const dspp::Assignment assignment = dspp::assign_demand(pairs_, next_state, next_demand);
      const dspp::SlaReport report = dspp::evaluate_sla(model_, pairs_, next_state, assignment);
      metrics.sla_compliance = report.compliance();
      metrics.mean_latency_ms = report.mean_latency_ms;
      metrics.unserved_rate = assignment.total_unserved();
      if (frame != nullptr) {
        frame->sla_violating_rate = report.violating_rate;
        frame->overloaded_pairs = static_cast<double>(report.overloaded_pairs);
        frame->sla_ms = sla_span.elapsed_ms();
      }
    }
    if (obs::tracing_enabled()) {
      obs::Tracer::global().counter("sim.sla_compliance", metrics.sla_compliance);
      obs::Tracer::global().counter("sim.total_servers", metrics.total_servers);
    }
    if (frame != nullptr) {
      frame->demand_total = metrics.total_demand;
      frame->servers_total = metrics.total_servers;
      double max_dc = 0.0, active = 0.0;
      for (double s : metrics.servers_per_dc) {
        if (s > 1e-9) active += 1.0;
        if (s > max_dc) max_dc = s;
      }
      frame->dc_active = active;
      frame->dc_max_share = metrics.total_servers > 0.0 ? max_dc / metrics.total_servers : 0.0;
      frame->cost_resource = metrics.resource_cost;
      frame->cost_reconfig = metrics.reconfig_cost;
      frame->sla_compliance = metrics.sla_compliance;
      frame->mean_latency_ms = metrics.mean_latency_ms;
      frame->unserved_rate = metrics.unserved_rate;
      frame->solved = metrics.solved ? 1.0 : 0.0;
      frame->policy_ms = policy_ms;
      frame->period_ms = period_span.elapsed_ms();
      obs::TimelineWriter::local().commit();
    }

    summary.total_resource_cost += metrics.resource_cost;
    summary.total_reconfig_cost += metrics.reconfig_cost;
    compliance_sum += metrics.sla_compliance;
    summary.worst_compliance = std::min(summary.worst_compliance, metrics.sla_compliance);
    summary.periods.push_back(std::move(metrics));
    state = next_state;
  }
  summary.total_cost = summary.total_resource_cost + summary.total_reconfig_cost;
  summary.mean_compliance = compliance_sum / static_cast<double>(config_.periods);
  if (obs::audit::enabled()) {
    // Cost-accounting identity of eq. (3): the reported total must equal
    // the sum of the per-period hosting/energy and reconfiguration terms.
    double resource = 0.0, reconfig = 0.0;
    for (const auto& period : summary.periods) {
      resource += period.resource_cost;
      reconfig += period.reconfig_cost;
    }
    const double recomposed = resource + reconfig;
    const double tolerance = 1e-9 * (1.0 + std::abs(recomposed));
    obs::audit::check("cost_identity", std::abs(summary.total_cost - recomposed) <= tolerance,
                      summary.total_cost, recomposed);
  }
  if (obs::metrics_enabled()) {
    auto& registry = obs::Registry::global();
    registry.counter("sim.runs").add(1);
    registry.counter("sim.periods").add(static_cast<long long>(config_.periods));
    registry.counter("sim.unsolved_periods").add(summary.unsolved_periods);
    registry.histogram("sim.run_ms").record(run_span.elapsed_ms());
  }
  // GEOPLACE_TIMELINE=<path>: append this run's timeline as one columnar
  // segment (no-op under the plain on/off form).
  if (timeline_on) obs::TimelineWriter::local().flush();
  return summary;
}

}  // namespace gp::sim
