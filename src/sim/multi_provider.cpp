#include "sim/multi_provider.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gp::sim {

using linalg::Vector;

MultiTenantSimulation::MultiTenantSimulation(std::vector<TenantConfig> tenants,
                                             workload::ServerPriceModel prices,
                                             Vector capacity, MultiTenantConfig config)
    : tenants_(std::move(tenants)), prices_(std::move(prices)),
      capacity_(std::move(capacity)), config_(config) {
  require(!tenants_.empty(), "MultiTenantSimulation: need at least one tenant");
  require(config_.periods >= 1, "MultiTenantSimulation: need at least one period");
  require(config_.horizon >= 1, "MultiTenantSimulation: horizon must be >= 1");
  const std::size_t num_l = tenants_.front().model.num_datacenters();
  require(capacity_.size() == num_l, "MultiTenantSimulation: capacity size != L");
  require(prices_.num_datacenters() == num_l, "MultiTenantSimulation: price model L mismatch");
  for (auto& tenant : tenants_) {
    require(tenant.model.num_datacenters() == num_l,
            "MultiTenantSimulation: tenants disagree on the data-center set");
    require(tenant.demand.num_access_networks() == tenant.model.num_access_networks(),
            "MultiTenantSimulation: tenant demand model V mismatch");
    require(tenant.predictor != nullptr, "MultiTenantSimulation: null predictor");
    pair_index_.emplace_back(tenant.model);
  }
}

MultiTenantSummary MultiTenantSimulation::run() {
  Rng rng(config_.seed);
  const std::size_t n = tenants_.size();

  MultiTenantSummary summary;
  summary.tenants.assign(n, {});
  summary.tenant_total_costs.assign(n, 0.0);

  std::vector<Vector> states;
  for (std::size_t i = 0; i < n; ++i) {
    states.emplace_back(pair_index_[i].num_pairs(), 0.0);
  }
  std::optional<std::vector<Vector>> quotas;  // warm start across periods

  for (std::size_t k = 0; k < config_.periods; ++k) {
    const double hour =
        config_.utc_start_hour + static_cast<double>(k) * config_.period_hours;

    // --- Observe per-tenant demand and predict windows. ---
    std::vector<game::ProviderConfig> providers;
    std::vector<double> observed_total(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      auto& tenant = tenants_[i];
      Vector demand(tenant.demand.num_access_networks(), 0.0);
      for (std::size_t v = 0; v < demand.size(); ++v) {
        demand[v] = config_.noisy_demand
                        ? tenant.demand.sample_rate(v, hour, config_.period_hours, rng)
                        : tenant.demand.mean_rate(v, hour + config_.period_hours / 2.0);
        observed_total[i] += demand[v];
      }
      tenant.predictor->observe(demand);

      game::ProviderConfig provider;
      provider.model = tenant.model;
      provider.initial_state = states[i];
      provider.demand = tenant.predictor->forecast(config_.horizon);
      // Prices: RTO day-ahead curves are public, so the true future per-
      // period prices are used for the window.
      for (std::size_t t = 1; t <= config_.horizon; ++t) {
        Vector price = prices_.server_prices(hour + (static_cast<double>(t) + 0.5) *
                                                        config_.period_hours);
        linalg::scale(config_.period_hours, price);
        provider.price.push_back(std::move(price));
      }
      providers.push_back(std::move(provider));
    }

    // --- Negotiate (Algorithm 2) and apply the first step. ---
    game::CompetitionGame game(std::move(providers), capacity_, config_.game);
    const game::GameResult result =
        game.run(config_.warm_start_quotas ? quotas : std::nullopt);
    summary.game_iterations.push_back(result.iterations);
    summary.game_converged.push_back(result.converged);
    if (config_.warm_start_quotas) quotas = result.quotas;

    for (std::size_t i = 0; i < n; ++i) {
      const auto& solution = result.solutions[i];
      TenantPeriodMetrics metrics;
      metrics.demand = observed_total[i];
      if (!solution.x.empty()) {
        const Vector& u0 = solution.u.front();
        double cost = 0.0, servers = 0.0;
        for (std::size_t p = 0; p < pair_index_[i].num_pairs(); ++p) {
          const std::size_t l = pair_index_[i].datacenter_of(p);
          states[i][p] = std::max(0.0, states[i][p] + u0[p]);
          servers += tenants_[i].model.server_size * states[i][p];
          cost += tenants_[i].model.reconfig_cost[l] * u0[p] * u0[p];
        }
        // Rental at the next period's price.
        Vector price = prices_.server_prices(hour + 1.5 * config_.period_hours);
        linalg::scale(config_.period_hours, price);
        for (std::size_t p = 0; p < pair_index_[i].num_pairs(); ++p) {
          cost += price[pair_index_[i].datacenter_of(p)] * states[i][p];
        }
        metrics.cost = cost;
        metrics.servers = servers;
        if (!solution.unserved.empty()) {
          for (double value : solution.unserved.front()) metrics.unserved += value;
        }
      }
      summary.tenant_total_costs[i] += metrics.cost;
      summary.total_cost += metrics.cost;
      summary.total_unserved += metrics.unserved;
      summary.tenants[i].push_back(metrics);
    }
  }
  return summary;
}

}  // namespace gp::sim
