#include "sim/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace gp::sim {

Monitor::Monitor(std::size_t window, double alpha) : window_(window), alpha_(alpha) {
  require(window >= 2, "Monitor: window must be >= 2");
  require(alpha > 0.0 && alpha < 1.0, "Monitor: alpha must be in (0, 1)");
}

void Monitor::observe(const linalg::Vector& value) {
  if (history_.empty()) {
    history_.resize(value.size());
    ewma_.assign(value.size(), 0.0);
    deviation_.assign(value.size(), 0.0);
    for (std::size_t d = 0; d < value.size(); ++d) ewma_[d] = value[d];
  }
  require(value.size() == history_.size(), "Monitor: dimension mismatch");
  ++count_;
  double total = 0.0;
  for (std::size_t d = 0; d < value.size(); ++d) {
    total += value[d];
    history_[d].push_back(value[d]);
    if (history_[d].size() > window_) history_[d].pop_front();
    const double residual = value[d] - ewma_[d];
    ewma_[d] += alpha_ * residual;
    deviation_[d] += alpha_ * (std::abs(residual) - deviation_[d]);
  }
  if (count_ == 1) total_ewma_ = total;
  total_history_.push_back(total);
  if (total_history_.size() > window_) total_history_.pop_front();
  const double total_residual = total - total_ewma_;
  total_ewma_ += alpha_ * total_residual;
  total_deviation_ += alpha_ * (std::abs(total_residual) - total_deviation_);
}

std::size_t Monitor::dimensions() const { return history_.size(); }

SeriesStats Monitor::compute(const std::deque<double>& series, double ewma,
                             double deviation) const {
  SeriesStats stats;
  if (series.empty()) return stats;
  stats.observations = count_;
  stats.last = series.back();
  stats.ewma = ewma;
  stats.ewma_deviation = deviation;
  const std::vector<double> window_values(series.begin(), series.end());
  stats.window_mean = mean(window_values);
  stats.window_p95 = percentile(window_values, 95.0);
  stats.window_max = max_abs(window_values);
  // Least-squares slope over the window (periods as the abscissa).
  const auto n = static_cast<double>(window_values.size());
  if (window_values.size() >= 2) {
    double sum_t = 0.0, sum_tt = 0.0, sum_y = 0.0, sum_ty = 0.0;
    for (std::size_t t = 0; t < window_values.size(); ++t) {
      const auto td = static_cast<double>(t);
      sum_t += td;
      sum_tt += td * td;
      sum_y += window_values[t];
      sum_ty += td * window_values[t];
    }
    const double denom = n * sum_tt - sum_t * sum_t;
    if (denom > 0.0) stats.trend_per_period = (n * sum_ty - sum_t * sum_y) / denom;
  }
  return stats;
}

SeriesStats Monitor::stats(std::size_t d) const {
  require(d < history_.size(), "Monitor::stats: dimension out of range");
  return compute(history_[d], ewma_[d], deviation_[d]);
}

SeriesStats Monitor::total_stats() const {
  return compute(total_history_, total_ewma_, total_deviation_);
}

}  // namespace gp::sim
