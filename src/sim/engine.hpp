// Discrete-time simulation engine tying the whole system together
// (the architecture of the paper's Fig. 2): per control period it plays the
// roles of the monitoring module (observe demand and prices), hands the
// observation to a placement policy (the MPC resource controller or a
// baseline), applies the policy's reconfiguration, routes the next period's
// realized demand through the request routers (eq. 13), and records costs
// and SLA outcomes.
#pragma once

#include <functional>

#include "control/autoscaler.hpp"
#include "control/baselines.hpp"
#include "control/mpc_controller.hpp"
#include "dspp/assignment.hpp"
#include "workload/demand.hpp"
#include "workload/price.hpp"

namespace gp::sim {

/// Any placement policy: maps (state, observed demand, price) to the next
/// state. Adapters are provided for the MPC controller and both baselines.
struct PolicyOutcome {
  bool solved = false;
  linalg::Vector control;
  linalg::Vector next_state;
};
using PlacementPolicy = std::function<PolicyOutcome(
    const linalg::Vector& state, const linalg::Vector& demand, const linalg::Vector& price)>;

/// Wraps any controller exposing `step(state, demand, price)` — the MPC
/// controller, both baselines, the threshold autoscaler, or a user-supplied
/// one — as a PlacementPolicy (the controller must outlive the closure).
/// Controllers whose step result has no `solved` flag (e.g. the autoscaler,
/// whose rule table always yields a state) report solved = true.
template <typename Controller>
PlacementPolicy policy_from(Controller& controller) {
  return [&controller](const linalg::Vector& state, const linalg::Vector& demand,
                       const linalg::Vector& price) {
    const auto result = controller.step(state, demand, price);
    if constexpr (requires { result.solved; }) {
      return PolicyOutcome{result.solved, result.control, result.next_state};
    } else {
      return PolicyOutcome{true, result.control, result.next_state};
    }
  };
}

/// Decorates a policy so every applied allocation is INTEGRAL: the inner
/// policy's next state is rounded up per pair with capacity repair (the
/// paper's future-work integer regime, dspp::round_up_allocation). The
/// model/pairs must match the engine's. When the repair cannot fit the
/// ceiling into capacity the fractional state is kept (and will show up as
/// SLA/capacity pressure in the metrics rather than a crash).
PlacementPolicy integerized(PlacementPolicy inner, const dspp::DsppModel& model,
                            const dspp::PairIndex& pairs);

/// Simulation run parameters.
struct SimulationConfig {
  std::size_t periods = 24;       ///< control periods to simulate
  double period_hours = 1.0;      ///< length of one period
  double utc_start_hour = 0.0;
  bool noisy_demand = false;      ///< sample the NHPP instead of mean rates
  double price_noise_std = 0.0;   ///< multiplicative per-period price noise (volatile markets)
  bool freeze_prices = false;     ///< hold prices at their start-hour value (Fig.10 setup)
  std::uint64_t seed = 1;
  bool provision_initial = true;  ///< x_0 = cheapest placement for D_0
  double initial_overprovision = 1.0;  ///< scales x_0 (e.g. 3.0 models arriving
                                       ///< from a demand peak, the Fig.10 transient)
};

/// Per-period record of everything the paper's figures plot.
struct PeriodMetrics {
  double utc_hour = 0.0;
  double total_demand = 0.0;            ///< req/s observed this period
  linalg::Vector demand;                ///< per access network
  linalg::Vector servers_per_dc;        ///< after the policy step
  double total_servers = 0.0;
  double resource_cost = 0.0;           ///< p . x for the period, $
  double reconfig_cost = 0.0;           ///< c . u^2, $
  double sla_compliance = 1.0;          ///< fraction of demand within SLA
  double mean_latency_ms = 0.0;
  double unserved_rate = 0.0;           ///< req/s that could not be routed
  bool solved = true;
};

/// Aggregates over a run.
struct SimulationSummary {
  std::vector<PeriodMetrics> periods;
  double total_cost = 0.0;           ///< resource + reconfiguration
  double total_resource_cost = 0.0;
  double total_reconfig_cost = 0.0;
  double total_churn = 0.0;          ///< sum |u| in servers
  double mean_compliance = 1.0;
  double worst_compliance = 1.0;
  int unsolved_periods = 0;
  double policy_wall_ms = 0.0;       ///< wall time spent inside the policy calls

  /// Dumps one row per period as CSV (header included).
  void write_csv(std::ostream& out) const;
};

/// The engine (see file comment).
class SimulationEngine {
 public:
  SimulationEngine(dspp::DsppModel model, workload::DemandModel demand,
                   workload::ServerPriceModel prices, SimulationConfig config);

  /// Runs one policy over the configured horizon. Deterministic for a fixed
  /// config seed.
  SimulationSummary run(const PlacementPolicy& policy);

  const dspp::PairIndex& pairs() const { return pairs_; }
  const dspp::DsppModel& model() const { return model_; }

  /// Observed demand vector at a UTC hour (mean or sampled per config).
  linalg::Vector observe_demand(double utc_hour, Rng& rng) const;

  /// Price vector in $ per server per PERIOD at a UTC hour.
  linalg::Vector observe_price(double utc_hour) const;

 private:
  dspp::DsppModel model_;
  dspp::PairIndex pairs_;
  workload::DemandModel demand_;
  workload::ServerPriceModel prices_;
  SimulationConfig config_;
};

}  // namespace gp::sim
