// Dynamic multi-tenant simulation: Section VI of the paper played out over
// time. Each control period every tenant (service provider) observes its
// own demand, forecasts a window, and the shared infrastructure runs the
// quota negotiation (Algorithm 2) to a W-MPC equilibrium; each tenant then
// applies the first step of its best response — the multi-provider
// counterpart of the single-provider MPC loop.
//
// Quotas are warm-started from the previous period's equilibrium, which is
// both realistic (allocations persist between negotiation rounds) and what
// keeps the per-period iteration count low once the system settles.
#pragma once

#include <memory>

#include "control/predictor.hpp"
#include "game/competition.hpp"
#include "workload/demand.hpp"
#include "workload/price.hpp"

namespace gp::sim {

/// One tenant: its private environment, demand process and predictor.
struct TenantConfig {
  dspp::DsppModel model;  ///< same network as every tenant; own SLA/sizes/costs
  workload::DemandModel demand;
  std::unique_ptr<control::SeriesPredictor> predictor;
};

/// Run parameters for the shared-platform simulation.
struct MultiTenantConfig {
  std::size_t periods = 24;
  double period_hours = 1.0;
  double utc_start_hour = 0.0;
  std::size_t horizon = 3;       ///< W of each tenant's best-response window
  bool noisy_demand = false;
  std::uint64_t seed = 1;
  game::GameSettings game;       ///< Algorithm-2 settings per period
  bool warm_start_quotas = true;
};

/// Per-tenant, per-period record.
struct TenantPeriodMetrics {
  double demand = 0.0;     ///< observed req/s
  double servers = 0.0;    ///< size-weighted capacity units in use
  double cost = 0.0;       ///< rental + reconfiguration for the period
  double unserved = 0.0;   ///< planned unserved req/s at the applied step
};

/// Aggregates over a run.
struct MultiTenantSummary {
  std::vector<std::vector<TenantPeriodMetrics>> tenants;  ///< [tenant][period]
  std::vector<int> game_iterations;                       ///< per period
  std::vector<bool> game_converged;                       ///< per period
  std::vector<double> tenant_total_costs;
  double total_cost = 0.0;
  double total_unserved = 0.0;
};

/// The simulation (see file comment).
class MultiTenantSimulation {
 public:
  /// All tenants must share the data-center set; `capacity` is the shared
  /// C^l. Takes ownership of the tenants (they hold predictors).
  MultiTenantSimulation(std::vector<TenantConfig> tenants,
                        workload::ServerPriceModel prices, linalg::Vector capacity,
                        MultiTenantConfig config);

  MultiTenantSummary run();

  std::size_t num_tenants() const { return tenants_.size(); }

 private:
  std::vector<TenantConfig> tenants_;
  std::vector<dspp::PairIndex> pair_index_;
  workload::ServerPriceModel prices_;
  linalg::Vector capacity_;
  MultiTenantConfig config_;
};

}  // namespace gp::sim
