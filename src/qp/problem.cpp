#include "qp/problem.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gp::qp {

void QpProblem::validate() const {
  const auto n = static_cast<std::int32_t>(q.size());
  const auto m = static_cast<std::int32_t>(lower.size());
  require(p.rows() == n && p.cols() == n, "QpProblem: P must be n x n");
  require(a.cols() == n, "QpProblem: A column count must equal n");
  require(a.rows() == m, "QpProblem: A row count must equal bound size");
  require(upper.size() == lower.size(), "QpProblem: bound sizes differ");
  for (std::size_t i = 0; i < lower.size(); ++i) {
    require(lower[i] <= upper[i], "QpProblem: lower > upper at row " + std::to_string(i));
    require(!std::isnan(lower[i]) && !std::isnan(upper[i]), "QpProblem: NaN bound");
    require(lower[i] < kInfinity && upper[i] > -kInfinity,
            "QpProblem: bound has the wrong-signed infinity");
  }
}

double QpProblem::objective(std::span<const double> x) const {
  require(x.size() == q.size(), "objective: size mismatch");
  const linalg::Vector px = p.multiply(x);
  return 0.5 * linalg::dot(px, x) + linalg::dot(q, x);
}

double QpProblem::constraint_violation(std::span<const double> x) const {
  require(x.size() == q.size(), "constraint_violation: size mismatch");
  const linalg::Vector ax = a.multiply(x);
  double worst = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    worst = std::max(worst, lower[i] - ax[i]);
    worst = std::max(worst, ax[i] - upper[i]);
  }
  return worst;
}

}  // namespace gp::qp
