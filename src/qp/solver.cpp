#include "qp/solver.hpp"

namespace gp::qp {

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kMaxIterations: return "max_iterations";
    case SolveStatus::kPrimalInfeasible: return "primal_infeasible";
    case SolveStatus::kDualInfeasible: return "dual_infeasible";
    case SolveStatus::kNumericalError: return "numerical_error";
  }
  return "unknown";
}

}  // namespace gp::qp
