// Convex quadratic program in OSQP form:
//
//   minimize    (1/2) x^T P x + q^T x
//   subject to  lower <= A x <= upper
//
// P is symmetric positive semidefinite. Equality constraints are rows with
// lower == upper; one-sided constraints use +/- infinity on the free side.
// This is the single optimization interface the rest of the library builds
// on: the DSPP window program (Section V of the paper), the per-provider
// best-response programs and the social-welfare program (Section VI) are all
// instances of this type.
#pragma once

#include <limits>

#include "linalg/sparse_matrix.hpp"

namespace gp::qp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Problem data for `min 1/2 x'Px + q'x  s.t.  lower <= Ax <= upper`.
struct QpProblem {
  linalg::SparseMatrix p;  ///< n x n symmetric PSD cost matrix (full, not triangle)
  linalg::Vector q;        ///< linear cost, size n
  linalg::SparseMatrix a;  ///< m x n constraint matrix
  linalg::Vector lower;    ///< size m, entries may be -infinity
  linalg::Vector upper;    ///< size m, entries may be +infinity

  std::size_t num_variables() const { return q.size(); }
  std::size_t num_constraints() const { return lower.size(); }

  /// Throws PreconditionError when shapes/bounds are inconsistent.
  void validate() const;

  /// Objective value at x.
  double objective(std::span<const double> x) const;

  /// Max constraint violation at x (infinity norm of the bound excess).
  double constraint_violation(std::span<const double> x) const;
};

}  // namespace gp::qp
