// Ruiz equilibration for QP data, as used by OSQP.
//
// Iteratively scales the stacked matrix [[P, A^T], [A, 0]] so that every row
// and column has unit infinity norm, then scales the cost so its gradient is
// O(1). Equilibration is what lets one set of ADMM tolerances work across
// the library's very differently scaled inputs (request rates ~1e4, prices
// ~1e-2, capacities ~1e3).
#pragma once

#include "qp/problem.hpp"

namespace gp::qp {

/// Diagonal scaling computed by Ruiz equilibration.
///
/// Scaled data: P_s = c * D P D, q_s = c * D q, A_s = E A D,
/// lower_s = E lower, upper_s = E upper.
/// Recover unscaled primal/dual: x = D x_s, y = E y_s / c, z = E^{-1} z_s.
struct Scaling {
  linalg::Vector d;       ///< variable scaling, size n (all > 0)
  linalg::Vector e;       ///< constraint scaling, size m (all > 0)
  double cost_scale = 1;  ///< objective scaling c > 0

  /// Identity scaling of the given dimensions.
  static Scaling identity(std::size_t n, std::size_t m);
};

/// Computes the equilibration and returns the scaled problem.
/// `iterations` Ruiz sweeps are performed (10 matches OSQP's default).
Scaling ruiz_equilibrate(QpProblem& problem, int iterations = 10);

/// Applies a previously computed scaling to an UNSCALED problem in place:
/// P <- c D P D, q <- c D q, A <- E A D, bounds <- E bounds. This is the
/// parameter-update fast path — when only (q, lower, upper) or matrix
/// values changed, the cached equilibration is still a valid diagonal
/// scaling (solutions are unscaled exactly), so the Ruiz sweeps need not be
/// re-run. Shapes must match the scaling's dimensions.
void apply_scaling(const Scaling& scaling, QpProblem& problem);

}  // namespace gp::qp
