// Abstract QP solver interface plus the shared result type.
//
// Two implementations are provided: AdmmSolver (sparse, operator-splitting,
// the production path) and IpmSolver (dense Mehrotra predictor-corrector,
// used for cross-validation and small problems). Both report primal AND dual
// solutions; the duals of the data-center capacity rows are the lambda^{il}
// prices that drive the competition game's quota updates (Algorithm 2).
#pragma once

#include <string>

#include "qp/problem.hpp"

namespace gp::qp {

/// Outcome of a solve. Expected run-time results, not exceptions.
enum class SolveStatus {
  kOptimal,
  kMaxIterations,      // best iterate returned, tolerances not met
  kPrimalInfeasible,   // certificate of primal infeasibility found
  kDualInfeasible,     // certificate of dual infeasibility (unbounded below)
  kNumericalError,
};

/// Human-readable status name.
std::string to_string(SolveStatus status);

/// How much setup work ONE solve performed — the per-call companion of the
/// lifetime AdmmCacheStats, so structure-cache effectiveness is queryable
/// from any result without the obs registry. IpmSolver factors its KKT
/// system once per Mehrotra iteration and never caches.
struct SolveInfo {
  int factorizations = 0;      ///< numeric factorizations in this solve
                               ///< (full or symbolic-reusing, incl. in-solve
                               ///< rho-adaptation refactors)
  int cache_hits = 0;          ///< 1 when cached scaling + symbolic analysis
                               ///< were reused (AdmmSolver structure hit)
  bool factorization_skipped = false;  ///< cached factor reused outright
  long long hot_loop_allocations = 0;  ///< heap allocations observed inside the
                                       ///< ADMM iteration loop (alloc probe
                                       ///< delta minus excluded refactor/trace
                                       ///< segments; stays 0 unless the binary
                                       ///< installs the gp::alloc_probe hook)
  long long residual_spmv_ns = 0;      ///< wall ns spent in the residual /
                                       ///< certificate sparse products at the
                                       ///< check cadence (recorded only when
                                       ///< the metrics registry is enabled)
};

/// Primal/dual solution of a QpProblem.
struct QpResult {
  SolveStatus status = SolveStatus::kNumericalError;
  linalg::Vector x;           ///< primal solution, size n
  linalg::Vector y;           ///< constraint duals, size m (y>0 pushes on upper bound)
  double objective = 0.0;
  int iterations = 0;
  double primal_residual = 0.0;
  double dual_residual = 0.0;
  SolveInfo info;             ///< setup-work accounting for this solve

  bool ok() const { return status == SolveStatus::kOptimal; }
};

/// Interface shared by the ADMM and IPM solvers.
class QpSolver {
 public:
  virtual ~QpSolver() = default;

  /// Solves the given problem. Implementations must not retain references to
  /// `problem` past the call.
  virtual QpResult solve(const QpProblem& problem) = 0;
};

}  // namespace gp::qp
