#include "qp/admm_solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/alloc_probe.hpp"
#include "common/error.hpp"
#include "linalg/simd_dispatch.hpp"
#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace gp::qp {

namespace {

using linalg::SparseLdlt;
using linalg::SparseMatrix;
using linalg::Triplet;
using linalg::Vector;

/// Assembles the upper triangle of [[P + sigma I, A^T], [A, -diag(1/rho)]].
SparseMatrix build_kkt_upper(const SparseMatrix& p, const SparseMatrix& a, double sigma,
                             std::span<const double> rho) {
  const std::int32_t n = p.rows();
  const std::int32_t m = a.rows();
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(p.nnz() + a.nnz()) + static_cast<std::size_t>(n + m));

  // Upper triangle of P.
  const auto p_col = p.col_ptr();
  const auto p_row = p.row_idx();
  const auto p_val = p.values();
  for (std::int32_t c = 0; c < n; ++c) {
    for (std::int32_t idx = p_col[c]; idx < p_col[c + 1]; ++idx) {
      if (p_row[idx] <= c) triplets.push_back({p_row[idx], c, p_val[idx]});
    }
  }
  // sigma I (summed with P's diagonal by from_triplets).
  for (std::int32_t i = 0; i < n; ++i) triplets.push_back({i, i, sigma});
  // A^T block sits at rows [0, n), columns [n, n+m).
  const auto a_col = a.col_ptr();
  const auto a_row = a.row_idx();
  const auto a_val = a.values();
  for (std::int32_t c = 0; c < a.cols(); ++c) {
    for (std::int32_t idx = a_col[c]; idx < a_col[c + 1]; ++idx) {
      triplets.push_back({c, n + a_row[idx], a_val[idx]});
    }
  }
  // -diag(1/rho).
  for (std::int32_t i = 0; i < m; ++i) {
    triplets.push_back({n + i, n + i, -1.0 / rho[static_cast<std::size_t>(i)]});
  }
  return SparseMatrix::from_triplets(n + m, n + m, triplets);
}

/// Max-norm KKT residual pair (primal violation, dual stationarity).
std::pair<double, double> kkt_residuals(const QpProblem& problem, const Vector& x,
                                        const Vector& y) {
  const double primal = problem.constraint_violation(x);
  const Vector px = problem.p.multiply(x);
  const Vector aty = problem.a.multiply_transposed(y);
  double dual = 0.0;
  for (std::size_t j = 0; j < problem.num_variables(); ++j) {
    dual = std::max(dual, std::abs(px[j] + problem.q[j] + aty[j]));
  }
  return {primal, dual};
}

/// OSQP-style polish: equality-constrained QP on the active rows (see
/// AdmmSettings::polish). `a_mirror` is the solver's CSR mirror of the
/// UNSCALED constraint matrix: its rows are the columns of A^T, which is
/// exactly what the active-set assembly below walks — so the per-polish
/// problem.a.transposed() materialization is gone. Returns true and
/// overwrites (x, y) on success.
bool polish_solution(const QpProblem& problem, const AdmmSettings& settings,
                     const linalg::RowMajorMirror& a_mirror, Vector& x, Vector& y) {
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();
  Vector ax(m, 0.0);
  a_mirror.multiply_accumulate(1.0, x, ax);

  // Detect the active set from the duals (sign convention: y > 0 pushes on
  // the upper bound) with a primal confirmation.
  std::vector<std::int32_t> active_rows;
  std::vector<double> active_rhs;
  for (std::size_t i = 0; i < m; ++i) {
    const bool equality = problem.lower[i] == problem.upper[i];
    const double span_tol =
        1e-6 * (1.0 + std::max(std::abs(problem.lower[i]), std::abs(problem.upper[i])));
    if (equality) {
      active_rows.push_back(static_cast<std::int32_t>(i));
      active_rhs.push_back(problem.upper[i]);
    } else if (y[i] > 1e-10 && problem.upper[i] < kInfinity &&
               ax[i] > problem.upper[i] - 1e3 * span_tol) {
      active_rows.push_back(static_cast<std::int32_t>(i));
      active_rhs.push_back(problem.upper[i]);
    } else if (y[i] < -1e-10 && problem.lower[i] > -kInfinity &&
               ax[i] < problem.lower[i] + 1e3 * span_tol) {
      active_rows.push_back(static_cast<std::int32_t>(i));
      active_rhs.push_back(problem.lower[i]);
    }
  }
  const std::size_t k = active_rows.size();

  // Assemble the reduced KKT upper triangle [[P + dI, A_act^T], [A_act, -dI]].
  const double reg = settings.polish_regularization;
  std::vector<Triplet> triplets;
  const auto pu = problem.p.upper_triangle();
  for (std::int32_t c = 0; c < pu.cols(); ++c) {
    for (std::int32_t e = pu.col_ptr()[c]; e < pu.col_ptr()[c + 1]; ++e) {
      triplets.push_back({pu.row_idx()[e], c, pu.values()[e]});
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    triplets.push_back({static_cast<std::int32_t>(j), static_cast<std::int32_t>(j), reg});
  }
  // Rows of A restricted to the active set, as columns n..n+k-1 (row r of
  // the CSR mirror = column r of A^T, entries already sorted by variable).
  const auto row_ptr = a_mirror.row_ptr();
  const auto col_idx = a_mirror.col_idx();
  const auto a_values = a_mirror.values();
  for (std::size_t r = 0; r < k; ++r) {
    const std::int32_t row = active_rows[r];
    for (std::int32_t e = row_ptr[static_cast<std::size_t>(row)];
         e < row_ptr[static_cast<std::size_t>(row) + 1]; ++e) {
      triplets.push_back({col_idx[static_cast<std::size_t>(e)],
                          static_cast<std::int32_t>(n + r),
                          a_values[static_cast<std::size_t>(e)]});
    }
    triplets.push_back({static_cast<std::int32_t>(n + r), static_cast<std::int32_t>(n + r),
                        -reg});
  }
  const auto kkt = SparseMatrix::from_triplets(static_cast<std::int32_t>(n + k),
                                               static_cast<std::int32_t>(n + k), triplets);
  SparseLdlt ldlt;
  if (ldlt.factor(kkt) != SparseLdlt::Status::kOk) return false;

  // Solve with a few steps of iterative refinement against the UNregularized
  // system (the standard trick to cancel the d-perturbation).
  Vector rhs(n + k, 0.0);
  for (std::size_t j = 0; j < n; ++j) rhs[j] = -problem.q[j];
  for (std::size_t r = 0; r < k; ++r) rhs[n + r] = active_rhs[r];
  Vector solution = ldlt.solve(rhs);
  for (int step = 0; step < settings.polish_refinement_steps; ++step) {
    // residual = rhs - K_exact * solution, where K_exact has no +/-d terms.
    Vector residual = rhs;
    Vector xs(solution.begin(), solution.begin() + static_cast<std::ptrdiff_t>(n));
    Vector nu(solution.begin() + static_cast<std::ptrdiff_t>(n), solution.end());
    const Vector pxs = problem.p.multiply(xs);
    for (std::size_t j = 0; j < n; ++j) residual[j] -= pxs[j];
    // A_act^T nu contribution on the first block; A_act xs on the second.
    for (std::size_t r = 0; r < k; ++r) {
      const std::int32_t row = active_rows[r];
      for (std::int32_t e = row_ptr[static_cast<std::size_t>(row)];
           e < row_ptr[static_cast<std::size_t>(row) + 1]; ++e) {
        const auto var = static_cast<std::size_t>(col_idx[static_cast<std::size_t>(e)]);
        residual[var] -= a_values[static_cast<std::size_t>(e)] * nu[r];
        residual[n + r] -= a_values[static_cast<std::size_t>(e)] * xs[var];
      }
    }
    const Vector correction = ldlt.solve(residual);
    for (std::size_t i = 0; i < solution.size(); ++i) solution[i] += correction[i];
  }

  Vector x_polished(solution.begin(), solution.begin() + static_cast<std::ptrdiff_t>(n));
  Vector y_polished(m, 0.0);
  for (std::size_t r = 0; r < k; ++r) {
    y_polished[static_cast<std::size_t>(active_rows[r])] = solution[n + r];
  }
  // Accept only if the polished point is a strictly better KKT point.
  const auto [p_old, d_old] = kkt_residuals(problem, x, y);
  const auto [p_new, d_new] = kkt_residuals(problem, x_polished, y_polished);
  if (std::max(p_new, d_new) < std::max(p_old, d_old)) {
    x = std::move(x_polished);
    y = std::move(y_polished);
    return true;
  }
  return false;
}

}  // namespace

void AdmmWorkspace::resize(std::size_t n, std::size_t m) {
  x.assign(n, 0.0);
  z.assign(m, 0.0);
  y.assign(m, 0.0);
  rhs.assign(n + m, 0.0);
  z_tilde.assign(m, 0.0);
  z_candidate.assign(m, 0.0);
  z_next.assign(m, 0.0);
  ax.assign(m, 0.0);
  px.assign(n, 0.0);
  aty.assign(n, 0.0);
  delta_x.assign(n, 0.0);
  delta_y.assign(m, 0.0);
  at_dy.assign(n, 0.0);
  p_dx.assign(n, 0.0);
  a_dx.assign(m, 0.0);
  rho.assign(m, 0.0);
  y_over_rho.assign(m, 0.0);
  inv_d.assign(n, 0.0);
  inv_e.assign(m, 0.0);
}

QpResult AdmmSolver::solve(const QpProblem& original) {
  obs::Span span("admm.solve");
  ++cache_stats_.solves;
  QpResult result;
  bool solved = false;
  if (settings_.cache_structure && cache_matches(original)) {
    // Preserve the pending warm start so a (rare) numerical failure of the
    // cached setup can retry cold from the same starting point.
    const Vector pending_x = warm_x_;
    const Vector pending_y = warm_y_;
    result = solve_with(original, /*use_cache=*/true);
    if (result.status != SolveStatus::kNumericalError) {
      solved = true;
    } else {
      // The cached setup failed numerically (e.g. the refactorization hit a
      // zero pivot after a large parameter change): drop it and solve cold.
      invalidate_cache();
      warm_x_ = pending_x;
      warm_y_ = pending_y;
    }
  }
  if (!solved) result = solve_with(original, /*use_cache=*/false);

  if (obs::recording_enabled() && result.status != SolveStatus::kOptimal) {
    // Leave a terminal marker in the ring and append its tail to the
    // GEOPLACE_RECORD dump path (if one is set) — a failed solve inside a
    // sweep lane now carries its last check iterations with it.
    obs::ConvergenceRecorder::local().push("admm.unsolved", result.iterations,
                                           result.primal_residual, result.dual_residual,
                                           static_cast<double>(result.status));
    obs::ConvergenceRecorder::dump_failure("admm.unsolved");
  }
  if (obs::audit::enabled() && result.status == SolveStatus::kOptimal) {
    // Primal feasibility of the RETURNED (unscaled, possibly polished)
    // solution, against the OSQP-style tolerance the loop converged under.
    const double violation = original.constraint_violation(result.x);
    const linalg::Vector ax = original.a.multiply(result.x);
    const double tolerance =
        10.0 * (settings_.eps_abs + settings_.eps_rel * linalg::norm_inf(ax));
    obs::audit::check("qp_primal_feasibility", violation <= tolerance, violation, tolerance);
  }

  auto& registry = obs::Registry::global();
  if (registry.enabled()) {
    registry.counter("admm.solves").add(1);
    registry.counter("admm.iterations").add(result.iterations);
    registry.counter("admm.factorizations").add(result.info.factorizations);
    registry.counter("admm.structure_hits").add(result.info.cache_hits);
    if (result.info.factorization_skipped) {
      registry.counter("admm.factorizations_skipped").add(1);
    }
    registry.counter("admm.allocs").add(result.info.hot_loop_allocations);
    registry.counter("admm.spmv_ns").add(result.info.residual_spmv_ns);
    registry.histogram("admm.iterations_per_solve").record(result.iterations);
    registry.histogram("admm.solve_ms").record(span.elapsed_ms());
  }
  if (obs::TelemetryFrame* frame = obs::timeline_frame()) {
    // Solver-effort telemetry for the open simulation period: effort fields
    // accumulate (a period may run several solves), residuals keep the last
    // solve's values.
    frame->solver_iterations += result.iterations;
    frame->solver_primal_residual = result.primal_residual;
    frame->solver_dual_residual = result.dual_residual;
    frame->solver_factorizations += result.info.factorizations;
    frame->solver_cache_hits += result.info.cache_hits;
    if (result.info.factorization_skipped) frame->solver_factorization_skipped += 1.0;
  }
  return result;
}

bool AdmmSolver::cache_matches(const QpProblem& problem) const {
  if (!has_cache_) return false;
  if (problem.num_variables() != cached_scaling_.d.size() ||
      problem.num_constraints() != cached_scaling_.e.size()) {
    return false;
  }
  const auto same = [](std::span<const std::int32_t> a, const std::vector<std::int32_t>& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  };
  return same(problem.p.col_ptr(), cached_p_col_ptr_) &&
         same(problem.p.row_idx(), cached_p_row_idx_) &&
         same(problem.a.col_ptr(), cached_a_col_ptr_) &&
         same(problem.a.row_idx(), cached_a_row_idx_);
}

void AdmmSolver::invalidate_cache() {
  has_cache_ = false;
  cached_p_col_ptr_.clear();
  cached_p_row_idx_.clear();
  cached_a_col_ptr_.clear();
  cached_a_row_idx_.clear();
  cached_p_values_.clear();
  cached_a_values_.clear();
  cached_rho_.clear();
  cached_row_class_.clear();
}

QpResult AdmmSolver::solve_with(const QpProblem& original, bool use_cache) {
  original.validate();
  const std::size_t n = original.num_variables();
  const std::size_t m = original.num_constraints();

  QpProblem problem = original;  // scaled in place below
  Scaling scaling;
  if (use_cache) {
    // Structure hit: the cached equilibration stays a valid diagonal
    // scaling for the new data (solutions are unscaled exactly), so the
    // Ruiz sweeps are skipped.
    ++cache_stats_.structure_hits;
    scaling = cached_scaling_;
    if (settings_.scale_problem) apply_scaling(scaling, problem);
  } else if (settings_.scale_problem) {
    scaling = ruiz_equilibrate(problem, settings_.scaling_iterations);
    // Re-apply the FINAL scaling in one shot: the sweeps above scale
    // incrementally, which differs from apply_scaling() by rounding ulps.
    // Normalizing here makes the scaled data bitwise identical to what a
    // later cache hit computes, so the values-unchanged factorization skip
    // can fire on the very next solve.
    problem = original;
    apply_scaling(scaling, problem);
  } else {
    scaling = Scaling::identity(n, m);
  }

  // Size the solver-owned workspace (allocation-free when the shape is
  // unchanged — the receding-horizon case) and precompute the reciprocal
  // scalings the residual kernels consume.
  AdmmWorkspace& ws = workspace_;
  ws.resize(n, m);
  for (std::size_t j = 0; j < n; ++j) ws.inv_d[j] = 1.0 / scaling.d[j];
  for (std::size_t i = 0; i < m; ++i) ws.inv_e[i] = 1.0 / scaling.e[i];
  const double inv_c = 1.0 / scaling.cost_scale;

  // CSR mirror of the scaled constraint matrix: pattern built once per
  // structure, values refreshed in place on every later solve.
  if (a_mirror_.pattern_matches(problem.a)) {
    a_mirror_.update_values(problem.a);
  } else {
    a_mirror_.build(problem.a);
  }
  // On the vector SIMD tiers the same products run through SELL mirrors of
  // A and A^T instead (bit-identical to the CSR paths — sparse_simd.hpp);
  // pattern once, values refreshed per solve, never built on scalar runs.
  const bool vector_spmv = linalg::simd::active_tier() != linalg::simd::Tier::kScalar;
  if (vector_spmv) {
    if (a_sell_.pattern_matches(problem.a)) {
      a_sell_.update_values(problem.a);
    } else {
      a_sell_.build(problem.a);
    }
    if (at_sell_.pattern_matches(problem.a)) {
      at_sell_.update_values(problem.a);
    } else {
      at_sell_.build_transposed(problem.a);
    }
  }

  // Per-row rho: stiffer on equality rows, zero-safe on free rows. When the
  // row classification is unchanged, a cache hit carries the previous
  // solve's (possibly adapted) rho forward so the factorization can be
  // reused or numerically refreshed without restarting the adaptation.
  std::vector<std::uint8_t> row_class(m);
  for (std::size_t i = 0; i < m; ++i) {
    const bool equality = problem.lower[i] == problem.upper[i];
    const bool unbounded = problem.lower[i] == -kInfinity && problem.upper[i] == kInfinity;
    row_class[i] = equality ? 1 : (unbounded ? 2 : 0);
  }
  Vector& rho = ws.rho;
  const bool reuse_rho = use_cache && row_class == cached_row_class_;
  if (reuse_rho) {
    rho = cached_rho_;
  } else {
    for (std::size_t i = 0; i < m; ++i) {
      if (row_class[i] == 1) {
        rho[i] = settings_.rho * settings_.rho_equality_scale;
      } else if (row_class[i] == 2) {
        rho[i] = settings_.rho * 1e-3;  // loose rows barely constrain
      } else {
        rho[i] = settings_.rho;
      }
    }
  }

  QpResult result;
  result.status = SolveStatus::kMaxIterations;
  result.info.cache_hits = use_cache ? 1 : 0;

  SparseLdlt& kkt = kkt_;
  const bool values_unchanged = reuse_rho && kkt.status() == SparseLdlt::Status::kOk &&
                                problem.p.values().size() == cached_p_values_.size() &&
                                std::equal(problem.p.values().begin(), problem.p.values().end(),
                                           cached_p_values_.begin()) &&
                                problem.a.values().size() == cached_a_values_.size() &&
                                std::equal(problem.a.values().begin(), problem.a.values().end(),
                                           cached_a_values_.begin());
  if (values_unchanged) {
    // Same scaled (P, A) and rho as the cached factorization: a pure
    // (q, lower, upper) parameter update. Reuse the factor outright.
    ++cache_stats_.factorizations_skipped;
    result.info.factorization_skipped = true;
  } else {
    obs::Span factor_span("admm.factor");
    // Kept as a member so the in-loop adaptive-rho refactorization can
    // rewrite the -1/rho diagonal in place instead of reassembling.
    kkt_upper_ = build_kkt_upper(problem.p, problem.a, settings_.sigma, rho);
    const SparseLdlt::Status status =
        use_cache ? kkt.refactor(kkt_upper_) : kkt.factor(kkt_upper_);
    if (use_cache) {
      ++cache_stats_.refactorizations;
    } else {
      ++cache_stats_.full_factorizations;
    }
    ++result.info.factorizations;
    if (status != SparseLdlt::Status::kOk) {
      result.status = SolveStatus::kNumericalError;
      return result;
    }
  }

  Vector& x = ws.x;  // zeroed by ws.resize above
  Vector& y = ws.y;
  // Warm start: scale the cached/pending unscaled iterate into the scaled
  // space of THIS problem (x_s = x / d, y_s = y * c / e) and set z = A x.
  if (warm_x_.size() == n && warm_y_.size() == m) {
    for (std::size_t j = 0; j < n; ++j) x[j] = warm_x_[j] / scaling.d[j];
    for (std::size_t i = 0; i < m; ++i) y[i] = warm_y_[i] * scaling.cost_scale / scaling.e[i];
    a_mirror_.multiply_accumulate(1.0, x, ws.z);
    linalg::project_box_into(ws.z, problem.lower, problem.upper, ws.z);
  }
  warm_x_.clear();
  warm_y_.clear();

  // --- Hot loop. Everything below reads/writes the workspace through the
  // fused kernels in linalg/vector_ops; after the sizing solve the loop
  // performs no heap allocation (tracked by the alloc probe, with the
  // unavoidable refactor/trace segments excluded and reported separately).
  const std::span<double> rhs_x(ws.rhs.data(), n);
  const std::span<const double> rhs_nu(ws.rhs.data() + n, m);
  auto& registry = obs::Registry::global();
  const bool time_spmv = registry.enabled();
  const long long allocs_at_loop_entry = gp::alloc_probe_count();
  long long excluded_allocs = 0;
  long long spmv_ns = 0;
  long long spmv_sections = 0;

  int iteration = 0;
  for (; iteration < settings_.max_iterations; ++iteration) {
    // Residual/certificate cadence, known up front: check iterations route
    // the x and y updates through the *_delta kernels, which produce the
    // certificate deltas as a by-product — so no previous-iterate copies
    // are ever made.
    const bool check = (iteration + 1) % settings_.check_interval == 0;

    // Build the KKT right-hand side.
    for (std::size_t j = 0; j < n; ++j) ws.rhs[j] = settings_.sigma * x[j] - problem.q[j];
    // The y / rho quotients feed both the rhs here and the z-candidate step
    // below; form them once (rho only changes between iterations).
    for (std::size_t i = 0; i < m; ++i) {
      const double yr = y[i] / rho[i];
      ws.y_over_rho[i] = yr;
      ws.rhs[n + i] = ws.z[i] - yr;
    }
    kkt.solve_in_place(ws.rhs);

    // x~ = rhs[0..n), nu = rhs[n..n+m); z~ = z + (nu - y) / rho.
    linalg::admm_z_tilde(ws.z, rhs_nu, y, rho, ws.z_tilde);

    // Over-relaxed updates (delta-producing variants on check iterations,
    // bit-identical to the plain kernels).
    const double alpha = settings_.alpha;
    double delta_x_norm = 0.0;
    if (check) {
      delta_x_norm = linalg::axpby_delta(alpha, rhs_x, 1.0 - alpha, x, ws.delta_x);
    } else {
      linalg::axpby(alpha, rhs_x, 1.0 - alpha, x);
    }
    linalg::admm_z_candidate_cached(alpha, ws.z_tilde, ws.z, ws.y_over_rho, ws.z_candidate);
    linalg::project_box_into(ws.z_candidate, problem.lower, problem.upper, ws.z_next);
    double delta_y_norm = 0.0;
    if (check) {
      delta_y_norm = linalg::admm_dual_update_delta(rho, ws.z_candidate, ws.z_next, y,
                                                    ws.delta_y);
    } else {
      linalg::admm_dual_update(rho, ws.z_candidate, ws.z_next, y);
    }
    std::swap(ws.z, ws.z_next);

    if (!check) continue;

    // --- Residuals in UNSCALED quantities, via the CSR mirror. ---
    std::chrono::steady_clock::time_point spmv_start{};
    if (time_spmv) spmv_start = std::chrono::steady_clock::now();
    if (vector_spmv) {
      a_sell_.multiply_into(1.0, x, ws.ax);
    } else {
      a_mirror_.multiply_into(1.0, x, ws.ax);
    }
    std::fill(ws.px.begin(), ws.px.end(), 0.0);
    problem.p.multiply_accumulate(1.0, x, ws.px);
    if (vector_spmv) {
      // SELL overwrite == zero-fill + transposed-accumulate, bitwise.
      at_sell_.multiply_into(1.0, y, ws.aty);
    } else {
      std::fill(ws.aty.begin(), ws.aty.end(), 0.0);
      a_mirror_.multiply_transposed_accumulate(1.0, y, ws.aty);
    }
    if (time_spmv) {
      spmv_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - spmv_start)
                     .count();
      ++spmv_sections;
    }

    // One pass over the rows and one over the columns; bitwise equal to the
    // separate per-array reductions (max is exact, scaling is monotone).
    double prim_res = 0.0, prim_norm = 0.0;
    linalg::inf_norm_scaled_residual(ws.ax, ws.z, ws.inv_e, prim_res, prim_norm);
    double dual_res = 0.0, dual_norm = 0.0;
    linalg::inf_norm_scaled_residual3(ws.px, problem.q, ws.aty, ws.inv_d, inv_c, dual_res,
                                      dual_norm);

    const double eps_prim = settings_.eps_abs + settings_.eps_rel * prim_norm;
    const double eps_dual = settings_.eps_abs + settings_.eps_rel * dual_norm;
    result.primal_residual = prim_res;
    result.dual_residual = dual_res;
    if (obs::tracing_enabled()) {
      // Residual trajectories, sampled at the check cadence (counter events
      // in the trace; concurrent best responses interleave by timestamp).
      // Trace emission allocates by design; keep it out of the hot-loop
      // allocation accounting.
      const long long trace_allocs_before = gp::alloc_probe_count();
      obs::Tracer::global().counter("admm.primal_residual", prim_res);
      obs::Tracer::global().counter("admm.dual_residual", dual_res);
      excluded_allocs += gp::alloc_probe_count() - trace_allocs_before;
    }
    if (obs::recording_enabled()) {
      // Flight-recorder sample at the check cadence. push() itself is
      // allocation-free; only the thread's FIRST recorded sample allocates
      // the ring (a recorder cost, not an iteration cost — excluded).
      const long long record_allocs_before = gp::alloc_probe_count();
      obs::ConvergenceRecorder::local().push("admm.residual", iteration + 1, prim_res,
                                             dual_res, rho.empty() ? 0.0 : rho[0]);
      excluded_allocs += gp::alloc_probe_count() - record_allocs_before;
    }

    if (prim_res <= eps_prim && dual_res <= eps_dual) {
      result.status = SolveStatus::kOptimal;
      ++iteration;
      break;
    }

    // --- Infeasibility certificates (on scaled deltas, normalized; the
    // deltas and their norms came out of the *_delta update kernels). ---
    if (delta_y_norm > settings_.eps_infeasible) {
      if (vector_spmv) {
        at_sell_.multiply_into(1.0, ws.delta_y, ws.at_dy);
      } else {
        std::fill(ws.at_dy.begin(), ws.at_dy.end(), 0.0);
        a_mirror_.multiply_transposed_accumulate(1.0, ws.delta_y, ws.at_dy);
      }
      double support = 0.0;
      bool valid = true;
      for (std::size_t i = 0; i < m; ++i) {
        const double dy = ws.delta_y[i];
        if (dy > 0) {
          if (problem.upper[i] == kInfinity) { valid = false; break; }
          support += problem.upper[i] * dy;
        } else if (dy < 0) {
          if (problem.lower[i] == -kInfinity) { valid = false; break; }
          support += problem.lower[i] * dy;
        }
      }
      if (valid && linalg::norm_inf(ws.at_dy) <= settings_.eps_infeasible * delta_y_norm &&
          support <= -settings_.eps_infeasible * delta_y_norm) {
        result.status = SolveStatus::kPrimalInfeasible;
        ++iteration;
        break;
      }
    }
    if (delta_x_norm > settings_.eps_infeasible) {
      std::fill(ws.p_dx.begin(), ws.p_dx.end(), 0.0);
      problem.p.multiply_accumulate(1.0, ws.delta_x, ws.p_dx);
      if (vector_spmv) {
        a_sell_.multiply_into(1.0, ws.delta_x, ws.a_dx);
      } else {
        a_mirror_.multiply_into(1.0, ws.delta_x, ws.a_dx);
      }
      const double q_dx = linalg::dot(problem.q, ws.delta_x);
      bool certificate = linalg::norm_inf(ws.p_dx) <= settings_.eps_infeasible * delta_x_norm &&
                         q_dx <= -settings_.eps_infeasible * delta_x_norm;
      if (certificate) {
        for (std::size_t i = 0; i < m && certificate; ++i) {
          const double v = ws.a_dx[i];
          if (problem.upper[i] != kInfinity && v > settings_.eps_infeasible * delta_x_norm) {
            certificate = false;
          }
          if (problem.lower[i] != -kInfinity && v < -settings_.eps_infeasible * delta_x_norm) {
            certificate = false;
          }
        }
        if (certificate) {
          result.status = SolveStatus::kDualInfeasible;
          ++iteration;
          break;
        }
      }
    }

    // --- Adaptive rho. ---
    if (settings_.adaptive_rho && (iteration + 1) % settings_.adaptive_rho_interval == 0) {
      const double prim_ratio = prim_res / std::max(prim_norm, 1e-10);
      const double dual_ratio = dual_res / std::max(dual_norm, 1e-10);
      const double factor = std::sqrt(prim_ratio / std::max(dual_ratio, 1e-10));
      if (factor > settings_.adaptive_rho_tolerance ||
          factor < 1.0 / settings_.adaptive_rho_tolerance) {
        const double rho_before = rho.empty() ? 0.0 : rho[0];
        for (std::size_t i = 0; i < m; ++i) {
          rho[i] = std::min(std::max(rho[i] * factor, 1e-6), 1e6);
        }
        if (obs::recording_enabled()) {
          const long long record_allocs_before = gp::alloc_probe_count();
          obs::ConvergenceRecorder::local().push("admm.rho", iteration + 1, rho_before,
                                                 rho.empty() ? 0.0 : rho[0], factor);
          excluded_allocs += gp::alloc_probe_count() - record_allocs_before;
        }
        // Rewrite the -1/rho diagonal of the cached KKT upper triangle in
        // place: the diagonal of column n+i is its LAST entry (all A^T-block
        // rows in that column are < n), so no triplet reassembly is needed.
        const auto kkt_col_ptr = kkt_upper_.col_ptr();
        const std::span<double> kkt_values = kkt_upper_.mutable_values();
        for (std::size_t i = 0; i < m; ++i) {
          kkt_values[static_cast<std::size_t>(kkt_col_ptr[n + i + 1]) - 1] = -1.0 / rho[i];
        }
        ++cache_stats_.refactorizations;
        ++result.info.factorizations;
        // The numeric refactorization allocates internally (permuted copy);
        // it is a factorization cost, not an iteration cost — excluded.
        const long long refactor_allocs_before = gp::alloc_probe_count();
        const SparseLdlt::Status refactor_status = kkt.refactor(kkt_upper_);
        excluded_allocs += gp::alloc_probe_count() - refactor_allocs_before;
        if (refactor_status != SparseLdlt::Status::kOk) {
          result.status = SolveStatus::kNumericalError;
          break;
        }
      }
    }
  }

  result.iterations = iteration;
  result.info.hot_loop_allocations =
      gp::alloc_probe_count() - allocs_at_loop_entry - excluded_allocs;
  result.info.residual_spmv_ns = spmv_ns;
  if (time_spmv && spmv_ns > 0 && spmv_sections > 0) {
    // Effective bandwidth of the residual-cadence SpMV section, using the
    // same per-product cost model as micro_admm_kernels' gbps() (12 bytes
    // per stored entry + 8 per input/output element, true nnz — pads on the
    // vector tiers are throughput, not work). bytes / ns == GB/s.
    const auto nnz_a = static_cast<double>(problem.a.nnz());
    const auto nnz_p = static_cast<double>(problem.p.nnz());
    const double dm = static_cast<double>(m);
    const double dn = static_cast<double>(n);
    const double bytes_per_section =
        2.0 * (12.0 * nnz_a + 8.0 * (dm + dn)) + 12.0 * nnz_p + 16.0 * dn;
    registry.gauge("admm.spmv_gb_s")
        .set(static_cast<double>(spmv_sections) * bytes_per_section /
             static_cast<double>(spmv_ns));
  }
  // Unscale the solution: x = D x_s, y = E y_s / c.
  result.x.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) result.x[j] = scaling.d[j] * x[j];
  result.y.assign(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) result.y[i] = scaling.e[i] * y[i] / scaling.cost_scale;
  if (settings_.polish && result.status == SolveStatus::kOptimal) {
    obs::Span polish_span("admm.polish");
    // Mirror of the UNSCALED constraint matrix (the polish works on the
    // original problem); built once per structure, values refreshed here.
    if (polish_mirror_.pattern_matches(original.a)) {
      polish_mirror_.update_values(original.a);
    } else {
      polish_mirror_.build(original.a);
    }
    if (polish_solution(original, settings_, polish_mirror_, result.x, result.y)) {
      const auto [primal, dual] = kkt_residuals(original, result.x, result.y);
      result.primal_residual = primal;
      result.dual_residual = dual;
    }
  }
  result.objective = original.objective(result.x);
  if (settings_.auto_warm_start &&
      (result.status == SolveStatus::kOptimal || result.status == SolveStatus::kMaxIterations)) {
    warm_x_ = result.x;
    warm_y_ = result.y;
  }

  // Refresh the structure cache: patterns of the (unscaled) input, the
  // scaled values backing kkt_'s current factorization, the equilibration,
  // and the final (possibly adapted) rho.
  if (settings_.cache_structure && kkt.status() == SparseLdlt::Status::kOk &&
      result.status != SolveStatus::kNumericalError) {
    has_cache_ = true;
    cached_p_col_ptr_.assign(original.p.col_ptr().begin(), original.p.col_ptr().end());
    cached_p_row_idx_.assign(original.p.row_idx().begin(), original.p.row_idx().end());
    cached_a_col_ptr_.assign(original.a.col_ptr().begin(), original.a.col_ptr().end());
    cached_a_row_idx_.assign(original.a.row_idx().begin(), original.a.row_idx().end());
    cached_p_values_.assign(problem.p.values().begin(), problem.p.values().end());
    cached_a_values_.assign(problem.a.values().begin(), problem.a.values().end());
    cached_scaling_ = std::move(scaling);
    cached_rho_.assign(rho.begin(), rho.end());  // rho aliases workspace_.rho
    cached_row_class_ = std::move(row_class);
  }
  return result;
}

void AdmmSolver::warm_start(Vector x, Vector y) {
  require(!x.empty(), "warm_start: empty primal");
  warm_x_ = std::move(x);
  warm_y_ = std::move(y);
}

void AdmmSolver::reset_warm_start() {
  warm_x_.clear();
  warm_y_.clear();
}

}  // namespace gp::qp
