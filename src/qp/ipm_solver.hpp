// Dense primal-dual interior-point QP solver (Mehrotra predictor-corrector).
//
// Internally converts the two-sided OSQP-form problem into
//
//   minimize    (1/2) x^T P x + q^T x
//   subject to  E x = f,  G x + s = h,  s >= 0
//
// and iterates Newton steps on the perturbed KKT conditions using this
// library's dense LDL^T with light Tikhonov regularization (the KKT matrix
// is then symmetric quasi-definite, so no pivoting is needed).
//
// The solver is O(n^3) per iteration and intended for cross-validating the
// sparse ADMM path in tests and for the small window programs that dominate
// the paper's experiments. Duals are mapped back to the two-sided
// convention: y_i > 0 pushes against the upper bound, y_i < 0 against the
// lower bound.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/dense_matrix.hpp"
#include "qp/solver.hpp"

namespace gp::qp {

/// Tuning knobs for IpmSolver.
struct IpmSettings {
  int max_iterations = 100;
  double tolerance = 1e-9;         ///< residual + complementarity target
  double regularization = 1e-9;    ///< static KKT regularization
  double step_fraction = 0.99;     ///< fraction-to-boundary
};

/// Dense Mehrotra predictor-corrector solver (see file comment).
///
/// Like AdmmSolver, the setup work is cached across solve() calls on the
/// same instance: the dense materializations of P and A, the equality /
/// inequality row split, and the E/G block matrices are sized once per
/// problem structure (sparsity patterns + bound classification) and only
/// their VALUES are refreshed on later solves — the receding-horizon and
/// cross-validation callers re-solve the identical structure repeatedly.
class IpmSolver final : public QpSolver {
 public:
  IpmSolver() = default;
  explicit IpmSolver(IpmSettings settings) : settings_(settings) {}

  QpResult solve(const QpProblem& problem) override;

  /// Drops the cached dense materializations; the next solve rebuilds them.
  void invalidate_cache();

 private:
  /// Row of the inequality block and where it came from in the two-sided
  /// form (G x <= h rows: a_i x <= upper_i, or -a_i x <= -lower_i).
  struct InequalityRow {
    std::size_t source_row = 0;  ///< row in the original A
    bool is_upper = false;       ///< true: a_i x <= upper; false: -a_i x <= -lower
  };

  bool cache_matches(const QpProblem& problem,
                     const std::vector<std::uint8_t>& row_kind) const;
  /// (Re)allocates the split and the dense blocks for a new structure.
  void rebuild_structure(const QpProblem& problem, std::vector<std::uint8_t> row_kind);
  /// Refreshes every cached dense value from `problem` (no allocation).
  void refresh_values(const QpProblem& problem);

  IpmSettings settings_;

  // --- Structure cache (see class comment). row_kind is 1 for an equality
  // row, else the bitwise OR of 2 (finite upper) and 4 (finite lower).
  bool has_cache_ = false;
  std::vector<std::int32_t> cached_p_col_ptr_, cached_p_row_idx_;
  std::vector<std::int32_t> cached_a_col_ptr_, cached_a_row_idx_;
  std::vector<std::uint8_t> cached_row_kind_;
  std::vector<std::size_t> equality_rows_;
  std::vector<InequalityRow> inequality_rows_;
  linalg::DenseMatrix a_dense_, p_dense_;  // dense mirrors of A and P
  linalg::DenseMatrix e_mat_, g_mat_;      // equality / inequality blocks
  linalg::Vector f_, h_;                   // their right-hand sides
};

}  // namespace gp::qp
