// Dense primal-dual interior-point QP solver (Mehrotra predictor-corrector).
//
// Internally converts the two-sided OSQP-form problem into
//
//   minimize    (1/2) x^T P x + q^T x
//   subject to  E x = f,  G x + s = h,  s >= 0
//
// and iterates Newton steps on the perturbed KKT conditions using this
// library's dense LDL^T with light Tikhonov regularization (the KKT matrix
// is then symmetric quasi-definite, so no pivoting is needed).
//
// The solver is O(n^3) per iteration and intended for cross-validating the
// sparse ADMM path in tests and for the small window programs that dominate
// the paper's experiments. Duals are mapped back to the two-sided
// convention: y_i > 0 pushes against the upper bound, y_i < 0 against the
// lower bound.
#pragma once

#include "qp/solver.hpp"

namespace gp::qp {

/// Tuning knobs for IpmSolver.
struct IpmSettings {
  int max_iterations = 100;
  double tolerance = 1e-9;         ///< residual + complementarity target
  double regularization = 1e-9;    ///< static KKT regularization
  double step_fraction = 0.99;     ///< fraction-to-boundary
};

/// Dense Mehrotra predictor-corrector solver (see file comment).
class IpmSolver final : public QpSolver {
 public:
  IpmSolver() = default;
  explicit IpmSolver(IpmSettings settings) : settings_(settings) {}

  QpResult solve(const QpProblem& problem) override;

 private:
  IpmSettings settings_;
};

}  // namespace gp::qp
