#include "qp/scaling.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gp::qp {

namespace {

// Clamp scaling factors away from 0 / infinity for numerical safety.
double safe_inv_sqrt(double norm) {
  constexpr double kMin = 1e-8;
  constexpr double kMax = 1e8;
  const double clamped = std::min(std::max(norm, kMin), kMax);
  return 1.0 / std::sqrt(clamped);
}

}  // namespace

Scaling Scaling::identity(std::size_t n, std::size_t m) {
  return Scaling{linalg::Vector(n, 1.0), linalg::Vector(m, 1.0), 1.0};
}

Scaling ruiz_equilibrate(QpProblem& problem, int iterations) {
  problem.validate();
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();
  Scaling scaling = Scaling::identity(n, m);

  for (int iter = 0; iter < iterations; ++iter) {
    // Column norms of the stacked KKT data: for variable j the relevant
    // entries are column j of P and column j of A; for constraint i they are
    // row i of A.
    const linalg::Vector p_col = problem.p.column_inf_norms();
    const linalg::Vector a_col = problem.a.column_inf_norms();
    const linalg::Vector a_row = problem.a.row_inf_norms();

    linalg::Vector delta_d(n);
    for (std::size_t j = 0; j < n; ++j) {
      delta_d[j] = safe_inv_sqrt(std::max(p_col[j], a_col[j]));
    }
    linalg::Vector delta_e(m);
    for (std::size_t i = 0; i < m; ++i) delta_e[i] = safe_inv_sqrt(a_row[i]);

    // Apply: P <- Dd P Dd, q <- Dd q, A <- De A Dd, bounds <- De * bounds.
    problem.p.scale_rows_cols(delta_d, delta_d);
    for (std::size_t j = 0; j < n; ++j) problem.q[j] *= delta_d[j];
    problem.a.scale_rows_cols(delta_e, delta_d);
    for (std::size_t i = 0; i < m; ++i) {
      problem.lower[i] *= delta_e[i];
      problem.upper[i] *= delta_e[i];
    }
    for (std::size_t j = 0; j < n; ++j) scaling.d[j] *= delta_d[j];
    for (std::size_t i = 0; i < m; ++i) scaling.e[i] *= delta_e[i];

    // Cost normalization: scale so mean column norm of [P; q] is ~1.
    const linalg::Vector p_col_after = problem.p.column_inf_norms();
    double mean_norm = 0.0;
    for (std::size_t j = 0; j < n; ++j) mean_norm += p_col_after[j];
    mean_norm = n > 0 ? mean_norm / static_cast<double>(n) : 0.0;
    const double q_norm = linalg::norm_inf(problem.q);
    const double gamma = 1.0 / std::min(std::max(std::max(mean_norm, q_norm), 1e-8), 1e8);
    if (std::abs(gamma - 1.0) > 1e-12) {
      for (auto& value : problem.p.mutable_values()) value *= gamma;
      for (auto& value : problem.q) value *= gamma;
      scaling.cost_scale *= gamma;
    }
  }
  return scaling;
}

void apply_scaling(const Scaling& scaling, QpProblem& problem) {
  problem.validate();
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();
  require(scaling.d.size() == n && scaling.e.size() == m,
          "apply_scaling: scaling dimensions do not match the problem");
  require(scaling.cost_scale > 0.0, "apply_scaling: non-positive cost scale");

  problem.p.scale_rows_cols(scaling.d, scaling.d);
  for (auto& value : problem.p.mutable_values()) value *= scaling.cost_scale;
  for (std::size_t j = 0; j < n; ++j) problem.q[j] *= scaling.cost_scale * scaling.d[j];
  problem.a.scale_rows_cols(scaling.e, scaling.d);
  for (std::size_t i = 0; i < m; ++i) {
    problem.lower[i] *= scaling.e[i];
    problem.upper[i] *= scaling.e[i];
  }
}

}  // namespace gp::qp
