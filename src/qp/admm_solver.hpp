// Operator-splitting QP solver in the style of OSQP
// (Stellato et al., "OSQP: an operator splitting solver for quadratic
// programs"), built on this library's sparse LDL^T.
//
// Each iteration solves one quasi-definite KKT system
//
//   [[ P + sigma I , A^T        ]  [x~]   [ sigma x - q      ]
//    [ A           , -diag(1/rho)]] [nu] = [ z - diag(1/rho) y ]
//
// whose factorization is computed once and reused (and recomputed only when
// rho adapts). Equality rows receive a stiffer rho than inequality rows.
// The solver reports unscaled primal/dual solutions, residuals, and detects
// primal/dual infeasibility via the standard certificate conditions.
#pragma once

#include "linalg/sparse_ldlt.hpp"
#include "linalg/sparse_simd.hpp"
#include "qp/scaling.hpp"
#include "qp/solver.hpp"

namespace gp::qp {

/// Tuning knobs for AdmmSolver; the defaults follow OSQP's.
struct AdmmSettings {
  double rho = 0.1;              ///< initial step size for inequality rows
  double rho_equality_scale = 1e3;  ///< equality rows use rho * this
  double sigma = 1e-6;           ///< primal regularization
  double alpha = 1.6;            ///< over-relaxation in (0, 2)
  double eps_abs = 1e-6;         ///< absolute tolerance
  double eps_rel = 1e-6;         ///< relative tolerance
  double eps_infeasible = 1e-7;  ///< certificate tolerance
  int max_iterations = 20000;
  int check_interval = 25;       ///< residual / certificate check cadence
  bool adaptive_rho = true;
  int adaptive_rho_interval = 100;
  double adaptive_rho_tolerance = 5.0;  ///< refactor when rho moves this much
  bool scale_problem = true;
  int scaling_iterations = 10;
  /// Reuse the previous solve's (x, y) as the starting iterate when the
  /// problem dimensions match. Receding-horizon callers (the MPC loop, the
  /// game's best responses) solve near-identical problems back to back;
  /// warm starts typically cut iterations severalfold there.
  bool auto_warm_start = false;
  /// After convergence, refine the solution by solving the equality-
  /// constrained QP on the detected active set (OSQP's "polish" step):
  /// turns the first-order 1e-6-ish iterate into a near-exact KKT point,
  /// which sharpens the capacity duals the competition game consumes. The
  /// polish is accepted only when it actually reduces the KKT residuals.
  bool polish = false;
  double polish_regularization = 1e-9;
  int polish_refinement_steps = 3;
  /// Cache the solver's structural work (Ruiz scaling, AMD ordering,
  /// symbolic analysis of the KKT matrix) across solve() calls on the SAME
  /// solver instance. When the next problem has the identical (P, A)
  /// sparsity pattern — the receding-horizon and best-response case, where
  /// only q/bounds (and possibly matrix values) change — setup reduces to a
  /// numeric refactorization; when the KKT values are also unchanged, the
  /// previous factorization is reused outright. A pattern change falls back
  /// to the full setup transparently.
  bool cache_structure = true;
};

/// Solver-owned scratch for the ADMM iteration: every per-iteration vector
/// lives here, sized once per problem shape and reused across solves (and
/// across WindowProgram::update re-solves). After the sizing solve, the
/// iteration loop performs ZERO heap allocations — enforced by the
/// alloc-probe test (tests/test_perf_kernels) and reported per solve in
/// SolveInfo::hot_loop_allocations.
struct AdmmWorkspace {
  linalg::Vector x, z, y;              // scaled iterates
  linalg::Vector rhs;                  // KKT right-hand side, size n + m
  linalg::Vector z_tilde, z_candidate, z_next;
  linalg::Vector ax, px, aty;          // residual products
  linalg::Vector delta_x, delta_y;     // certificate deltas
  linalg::Vector at_dy, p_dx, a_dx;    // certificate products
  linalg::Vector rho;                  // per-row step sizes
  linalg::Vector y_over_rho;           // y / rho, computed once per iteration
  linalg::Vector inv_d, inv_e;         // reciprocal scalings for residuals
  /// (Re)sizes every buffer and zeroes the iterates. std::vector::assign
  /// reuses capacity, so this allocates only when the shape grows.
  void resize(std::size_t n, std::size_t m);
};

/// Counters describing how much setup work the structure cache avoided.
struct AdmmCacheStats {
  long long solves = 0;
  long long structure_hits = 0;        ///< solves that reused scaling + symbolic analysis
  long long full_factorizations = 0;   ///< fresh ordering + symbolic + numeric factors
  long long refactorizations = 0;      ///< numeric-only factors (incl. in-solve rho updates)
  long long factorizations_skipped = 0;///< solves that reused the cached factor unchanged
};

/// Sparse first-order QP solver (see file comment).
class AdmmSolver final : public QpSolver {
 public:
  AdmmSolver() = default;
  explicit AdmmSolver(AdmmSettings settings) : settings_(settings) {}

  QpResult solve(const QpProblem& problem) override;

  /// Provides an explicit starting point for the NEXT solve (unscaled
  /// primal x of size n and dual y of size m). Cleared after use.
  void warm_start(linalg::Vector x, linalg::Vector y);

  /// Drops any cached or pending warm-start state.
  void reset_warm_start();

  /// Drops the cached scaling/ordering/factorization; the next solve runs
  /// the full setup. (Also called internally when the pattern changes.)
  void invalidate_cache();

  const AdmmSettings& settings() const { return settings_; }

  /// Setup-reuse counters since construction (see AdmmCacheStats).
  const AdmmCacheStats& cache_stats() const { return cache_stats_; }

 private:
  QpResult solve_with(const QpProblem& original, bool use_cache);
  bool cache_matches(const QpProblem& problem) const;

  AdmmSettings settings_;
  linalg::Vector warm_x_;  // unscaled; empty = none
  linalg::Vector warm_y_;

  // --- Structure cache (see AdmmSettings::cache_structure). ---
  bool has_cache_ = false;
  // Sparsity patterns of the LAST problem solved (scaling preserves them).
  std::vector<std::int32_t> cached_p_col_ptr_, cached_p_row_idx_;
  std::vector<std::int32_t> cached_a_col_ptr_, cached_a_row_idx_;
  // Scaled matrix values backing kkt_'s current factorization, for the
  // values-unchanged fast path.
  linalg::Vector cached_p_values_, cached_a_values_;
  Scaling cached_scaling_;
  linalg::Vector cached_rho_;               // per-row rho kkt_ was factored with
  std::vector<std::uint8_t> cached_row_class_;  // 0 ineq / 1 equality / 2 unbounded
  linalg::SparseLdlt kkt_;                  // persistent across solves
  // KKT upper triangle backing kkt_'s current factorization. Kept so the
  // in-solve adaptive-rho refactorization can rewrite the -1/rho diagonal
  // in place (each -1/rho_i is the LAST entry of column n+i, because every
  // A^T-block row in that column is < n) instead of reassembling triplets.
  linalg::SparseMatrix kkt_upper_;
  // CSR mirror of the SCALED constraint matrix: residual and certificate
  // products run through it (pattern built once per structure, values
  // refreshed allocation-free per solve).
  linalg::RowMajorMirror a_mirror_;
  // SELL mirrors of the SCALED constraint matrix (A and A^T orientations)
  // for the vector SIMD tiers: the residual and certificate products route
  // through them when active_tier() != scalar. Bit-identical to the CSR
  // mirror paths (see sparse_simd.hpp), so tier choice never changes solver
  // results. Built lazily — a scalar-pinned run never pays for them.
  linalg::SellMirror a_sell_;
  linalg::SellMirror at_sell_;
  // CSR mirror of the UNSCALED constraint matrix, built only when polish is
  // enabled (replaces the per-polish problem.a.transposed()).
  linalg::RowMajorMirror polish_mirror_;
  AdmmWorkspace workspace_;
  AdmmCacheStats cache_stats_;
};

}  // namespace gp::qp
