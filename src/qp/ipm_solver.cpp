#include "qp/ipm_solver.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/dense_factor.hpp"
#include "linalg/dense_matrix.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace gp::qp {

namespace {

using linalg::DenseMatrix;
using linalg::Vector;

/// Zero-and-scatter a CSC matrix into preallocated dense storage — the
/// allocation-free equivalent of SparseMatrix::to_dense().
void scatter_dense(const linalg::SparseMatrix& a, DenseMatrix& out) {
  for (std::size_t r = 0; r < out.rows(); ++r) {
    const auto row = out.row(r);
    std::fill(row.begin(), row.end(), 0.0);
  }
  const auto col_ptr = a.col_ptr();
  const auto row_idx = a.row_idx();
  const auto values = a.values();
  for (std::int32_t c = 0; c < a.cols(); ++c) {
    for (std::int32_t p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
      out(static_cast<std::size_t>(row_idx[p]), static_cast<std::size_t>(c)) = values[p];
    }
  }
}

}  // namespace

bool IpmSolver::cache_matches(const QpProblem& problem,
                              const std::vector<std::uint8_t>& row_kind) const {
  if (!has_cache_ || row_kind != cached_row_kind_) return false;
  const auto same = [](std::span<const std::int32_t> a, const std::vector<std::int32_t>& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  };
  return same(problem.p.col_ptr(), cached_p_col_ptr_) &&
         same(problem.p.row_idx(), cached_p_row_idx_) &&
         same(problem.a.col_ptr(), cached_a_col_ptr_) &&
         same(problem.a.row_idx(), cached_a_row_idx_);
}

void IpmSolver::invalidate_cache() {
  has_cache_ = false;
  cached_p_col_ptr_.clear();
  cached_p_row_idx_.clear();
  cached_a_col_ptr_.clear();
  cached_a_row_idx_.clear();
  cached_row_kind_.clear();
}

void IpmSolver::rebuild_structure(const QpProblem& problem,
                                  std::vector<std::uint8_t> row_kind) {
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();
  equality_rows_.clear();
  inequality_rows_.clear();
  for (std::size_t i = 0; i < m; ++i) {
    if (row_kind[i] == 1) {
      equality_rows_.push_back(i);
      continue;
    }
    if ((row_kind[i] & 2) != 0) inequality_rows_.push_back({i, true});
    if ((row_kind[i] & 4) != 0) inequality_rows_.push_back({i, false});
  }
  a_dense_ = DenseMatrix(m, n);
  p_dense_ = DenseMatrix(n, n);
  e_mat_ = DenseMatrix(equality_rows_.size(), n);
  g_mat_ = DenseMatrix(inequality_rows_.size(), n);
  f_.assign(equality_rows_.size(), 0.0);
  h_.assign(inequality_rows_.size(), 0.0);
  cached_p_col_ptr_.assign(problem.p.col_ptr().begin(), problem.p.col_ptr().end());
  cached_p_row_idx_.assign(problem.p.row_idx().begin(), problem.p.row_idx().end());
  cached_a_col_ptr_.assign(problem.a.col_ptr().begin(), problem.a.col_ptr().end());
  cached_a_row_idx_.assign(problem.a.row_idx().begin(), problem.a.row_idx().end());
  cached_row_kind_ = std::move(row_kind);
  has_cache_ = true;
}

void IpmSolver::refresh_values(const QpProblem& problem) {
  const std::size_t n = problem.num_variables();
  scatter_dense(problem.a, a_dense_);
  scatter_dense(problem.p, p_dense_);
  for (std::size_t r = 0; r < equality_rows_.size(); ++r) {
    const std::size_t src = equality_rows_[r];
    for (std::size_t c = 0; c < n; ++c) e_mat_(r, c) = a_dense_(src, c);
    f_[r] = problem.upper[src];
  }
  for (std::size_t r = 0; r < inequality_rows_.size(); ++r) {
    const auto& row = inequality_rows_[r];
    const double sign = row.is_upper ? 1.0 : -1.0;
    for (std::size_t c = 0; c < n; ++c) g_mat_(r, c) = sign * a_dense_(row.source_row, c);
    h_[r] = row.is_upper ? problem.upper[row.source_row] : -problem.lower[row.source_row];
  }
}

QpResult IpmSolver::solve(const QpProblem& problem) {
  obs::Span span("ipm.solve");
  problem.validate();
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();

  // --- Split the two-sided rows into equalities and one-sided inequalities,
  // reusing the cached dense materializations when the structure (sparsity
  // patterns + bound classification) is unchanged; only values are refreshed
  // then. A bound flipping between equality / one-sided / free rebuilds.
  std::vector<std::uint8_t> row_kind(m);
  for (std::size_t i = 0; i < m; ++i) {
    if (problem.lower[i] == problem.upper[i]) {
      row_kind[i] = 1;
    } else {
      row_kind[i] = static_cast<std::uint8_t>((problem.upper[i] < kInfinity ? 2 : 0) |
                                              (problem.lower[i] > -kInfinity ? 4 : 0));
    }
  }
  const bool structure_hit = cache_matches(problem, row_kind);
  if (!structure_hit) rebuild_structure(problem, std::move(row_kind));
  refresh_values(problem);

  const std::vector<std::size_t>& equality_rows = equality_rows_;
  const std::vector<InequalityRow>& inequality_rows = inequality_rows_;
  const std::size_t pe = equality_rows.size();
  const std::size_t mi = inequality_rows.size();
  const DenseMatrix& e_mat = e_mat_;
  const DenseMatrix& g_mat = g_mat_;
  const DenseMatrix& p_dense = p_dense_;
  const Vector& f = f_;
  const Vector& h = h_;

  // --- Starting point.
  Vector x(n, 0.0);
  Vector y(pe, 0.0);
  Vector s(mi, 1.0), z(mi, 1.0);
  {
    const Vector gx = g_mat.multiply(x);
    for (std::size_t i = 0; i < mi; ++i) s[i] = std::max(h[i] - gx[i], 1.0);
  }

  QpResult result;
  result.status = SolveStatus::kMaxIterations;
  const std::size_t kkt_n = n + pe + mi;
  const double reg = settings_.regularization;

  int iteration = 0;
  for (; iteration < settings_.max_iterations; ++iteration) {
    // Residuals.
    const Vector px = p_dense.multiply(x);
    const Vector ety = e_mat.multiply_transposed(y);
    const Vector gtz = g_mat.multiply_transposed(z);
    Vector rd(n);
    for (std::size_t j = 0; j < n; ++j) rd[j] = px[j] + problem.q[j] + ety[j] + gtz[j];
    const Vector ex = e_mat.multiply(x);
    Vector re(pe);
    for (std::size_t r = 0; r < pe; ++r) re[r] = ex[r] - f[r];
    const Vector gx = g_mat.multiply(x);
    Vector rp(mi);
    for (std::size_t r = 0; r < mi; ++r) rp[r] = gx[r] + s[r] - h[r];

    const double mu = mi > 0 ? linalg::dot(s, z) / static_cast<double>(mi) : 0.0;
    const double norm_scale =
        1.0 + std::max({linalg::norm_inf(problem.q), linalg::norm_inf(h), linalg::norm_inf(f)});
    if (obs::recording_enabled()) {
      obs::ConvergenceRecorder::local().push(
          "ipm.residual", iteration + 1, linalg::norm_inf(rd),
          std::max(linalg::norm_inf(re), linalg::norm_inf(rp)), mu);
    }
    if (linalg::norm_inf(rd) <= settings_.tolerance * norm_scale &&
        linalg::norm_inf(re) <= settings_.tolerance * norm_scale &&
        linalg::norm_inf(rp) <= settings_.tolerance * norm_scale &&
        mu <= settings_.tolerance * norm_scale) {
      result.status = SolveStatus::kOptimal;
      break;
    }

    // Assemble the regularized KKT matrix.
    DenseMatrix kkt(kkt_n, kkt_n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) kkt(r, c) = p_dense(r, c);
      kkt(r, r) += reg;
    }
    for (std::size_t r = 0; r < pe; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        kkt(n + r, c) = e_mat(r, c);
        kkt(c, n + r) = e_mat(r, c);
      }
      kkt(n + r, n + r) = -reg;
    }
    for (std::size_t r = 0; r < mi; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        kkt(n + pe + r, c) = g_mat(r, c);
        kkt(c, n + pe + r) = g_mat(r, c);
      }
      kkt(n + pe + r, n + pe + r) = -s[r] / z[r] - reg;
    }
    linalg::Ldlt ldlt;
    if (ldlt.factor(kkt) != linalg::FactorStatus::kOk) {
      result.status = SolveStatus::kNumericalError;
      break;
    }

    auto solve_step = [&](const Vector& rsz) {
      Vector rhs(kkt_n, 0.0);
      for (std::size_t j = 0; j < n; ++j) rhs[j] = -rd[j];
      for (std::size_t r = 0; r < pe; ++r) rhs[n + r] = -re[r];
      for (std::size_t r = 0; r < mi; ++r) rhs[n + pe + r] = -rp[r] + rsz[r] / z[r];
      return ldlt.solve(rhs);
    };
    auto extract = [&](const Vector& step, Vector& dx, Vector& dy, Vector& dz, Vector& ds) {
      dx.assign(step.begin(), step.begin() + static_cast<std::ptrdiff_t>(n));
      dy.assign(step.begin() + static_cast<std::ptrdiff_t>(n),
                step.begin() + static_cast<std::ptrdiff_t>(n + pe));
      dz.assign(step.begin() + static_cast<std::ptrdiff_t>(n + pe), step.end());
      const Vector g_dx = g_mat.multiply(dx);
      ds.assign(mi, 0.0);
      for (std::size_t r = 0; r < mi; ++r) ds[r] = -rp[r] - g_dx[r];
    };
    auto max_step = [&](const Vector& v, const Vector& dv) {
      double alpha = 1.0;
      for (std::size_t i = 0; i < v.size(); ++i) {
        if (dv[i] < 0.0) alpha = std::min(alpha, -v[i] / dv[i]);
      }
      return alpha;
    };

    // Affine (predictor) step: rsz = S z.
    Vector rsz(mi);
    for (std::size_t r = 0; r < mi; ++r) rsz[r] = s[r] * z[r];
    Vector dx, dy, dz, ds;
    extract(solve_step(rsz), dx, dy, dz, ds);

    double sigma = 0.0;
    if (mi > 0) {
      const double alpha_p = max_step(s, ds);
      const double alpha_d = max_step(z, dz);
      double mu_aff = 0.0;
      for (std::size_t r = 0; r < mi; ++r) {
        mu_aff += (s[r] + alpha_p * ds[r]) * (z[r] + alpha_d * dz[r]);
      }
      mu_aff /= static_cast<double>(mi);
      sigma = mu > 0 ? std::pow(mu_aff / mu, 3.0) : 0.0;

      // Corrector: rsz = S z + ds_aff o dz_aff - sigma mu e.
      for (std::size_t r = 0; r < mi; ++r) rsz[r] = s[r] * z[r] + ds[r] * dz[r] - sigma * mu;
      extract(solve_step(rsz), dx, dy, dz, ds);
    }

    const double alpha_p = settings_.step_fraction * max_step(s, ds);
    const double alpha_d = settings_.step_fraction * max_step(z, dz);
    const double alpha = mi > 0 ? std::min(alpha_p, alpha_d) : 1.0;
    for (std::size_t j = 0; j < n; ++j) x[j] += alpha * dx[j];
    for (std::size_t r = 0; r < pe; ++r) y[r] += alpha * dy[r];
    for (std::size_t r = 0; r < mi; ++r) {
      s[r] += alpha * ds[r];
      z[r] += alpha * dz[r];
    }
  }

  // Map duals back to the two-sided convention.
  result.x = x;
  result.y.assign(m, 0.0);
  for (std::size_t r = 0; r < pe; ++r) result.y[equality_rows[r]] = y[r];
  for (std::size_t r = 0; r < mi; ++r) {
    const auto& row = inequality_rows[r];
    result.y[row.source_row] += row.is_upper ? z[r] : -z[r];
  }
  result.iterations = iteration;
  result.objective = problem.objective(x);
  result.primal_residual = problem.constraint_violation(x);
  {
    const Vector px = problem.p.multiply(x);
    const Vector aty = problem.a.multiply_transposed(result.y);
    double dual_res = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      dual_res = std::max(dual_res, std::abs(px[j] + problem.q[j] + aty[j]));
    }
    result.dual_residual = dual_res;
  }
  if (obs::recording_enabled() && result.status != SolveStatus::kOptimal) {
    obs::ConvergenceRecorder::local().push("ipm.unsolved", iteration, result.primal_residual,
                                           result.dual_residual,
                                           static_cast<double>(result.status));
    obs::ConvergenceRecorder::dump_failure("ipm.unsolved");
  }
  // One dense KKT factorization per Mehrotra iteration; the structure cache
  // only saves the setup materializations, never a factor.
  result.info.factorizations = iteration;
  result.info.cache_hits = structure_hit ? 1 : 0;
  auto& registry = obs::Registry::global();
  if (registry.enabled()) {
    registry.counter("ipm.solves").add(1);
    registry.counter("ipm.structure_hits").add(structure_hit ? 1 : 0);
    registry.counter("ipm.iterations").add(iteration);
    registry.histogram("ipm.iterations_per_solve").record(iteration);
    registry.histogram("ipm.solve_ms").record(span.elapsed_ms());
  }
  if (obs::TelemetryFrame* frame = obs::timeline_frame()) {
    // Same solver-effort telemetry contract as AdmmSolver::solve.
    frame->solver_iterations += result.iterations;
    frame->solver_primal_residual = result.primal_residual;
    frame->solver_dual_residual = result.dual_residual;
    frame->solver_factorizations += result.info.factorizations;
    frame->solver_cache_hits += result.info.cache_hits;
  }
  return result;
}

}  // namespace gp::qp
