#include "qp/ipm_solver.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/dense_factor.hpp"
#include "linalg/dense_matrix.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gp::qp {

namespace {

using linalg::DenseMatrix;
using linalg::Vector;

/// Row of the inequality block and where it came from in the two-sided form.
struct InequalityRow {
  std::size_t source_row;  ///< row in the original A
  bool is_upper;           ///< true: a_i x <= upper; false: -a_i x <= -lower
};

}  // namespace

QpResult IpmSolver::solve(const QpProblem& problem) {
  obs::Span span("ipm.solve");
  problem.validate();
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();

  // --- Split the two-sided rows into equalities and one-sided inequalities.
  const DenseMatrix a_dense = problem.a.to_dense();
  std::vector<std::size_t> equality_rows;
  std::vector<InequalityRow> inequality_rows;
  for (std::size_t i = 0; i < m; ++i) {
    if (problem.lower[i] == problem.upper[i]) {
      equality_rows.push_back(i);
      continue;
    }
    if (problem.upper[i] < kInfinity) inequality_rows.push_back({i, true});
    if (problem.lower[i] > -kInfinity) inequality_rows.push_back({i, false});
  }
  const std::size_t pe = equality_rows.size();
  const std::size_t mi = inequality_rows.size();

  DenseMatrix e_mat(pe, n);
  Vector f(pe, 0.0);
  for (std::size_t r = 0; r < pe; ++r) {
    const std::size_t src = equality_rows[r];
    for (std::size_t c = 0; c < n; ++c) e_mat(r, c) = a_dense(src, c);
    f[r] = problem.upper[src];
  }
  DenseMatrix g_mat(mi, n);
  Vector h(mi, 0.0);
  for (std::size_t r = 0; r < mi; ++r) {
    const auto& row = inequality_rows[r];
    const double sign = row.is_upper ? 1.0 : -1.0;
    for (std::size_t c = 0; c < n; ++c) g_mat(r, c) = sign * a_dense(row.source_row, c);
    h[r] = row.is_upper ? problem.upper[row.source_row] : -problem.lower[row.source_row];
  }

  const DenseMatrix p_dense = problem.p.to_dense();

  // --- Starting point.
  Vector x(n, 0.0);
  Vector y(pe, 0.0);
  Vector s(mi, 1.0), z(mi, 1.0);
  {
    const Vector gx = g_mat.multiply(x);
    for (std::size_t i = 0; i < mi; ++i) s[i] = std::max(h[i] - gx[i], 1.0);
  }

  QpResult result;
  result.status = SolveStatus::kMaxIterations;
  const std::size_t kkt_n = n + pe + mi;
  const double reg = settings_.regularization;

  int iteration = 0;
  for (; iteration < settings_.max_iterations; ++iteration) {
    // Residuals.
    const Vector px = p_dense.multiply(x);
    const Vector ety = e_mat.multiply_transposed(y);
    const Vector gtz = g_mat.multiply_transposed(z);
    Vector rd(n);
    for (std::size_t j = 0; j < n; ++j) rd[j] = px[j] + problem.q[j] + ety[j] + gtz[j];
    const Vector ex = e_mat.multiply(x);
    Vector re(pe);
    for (std::size_t r = 0; r < pe; ++r) re[r] = ex[r] - f[r];
    const Vector gx = g_mat.multiply(x);
    Vector rp(mi);
    for (std::size_t r = 0; r < mi; ++r) rp[r] = gx[r] + s[r] - h[r];

    const double mu = mi > 0 ? linalg::dot(s, z) / static_cast<double>(mi) : 0.0;
    const double norm_scale =
        1.0 + std::max({linalg::norm_inf(problem.q), linalg::norm_inf(h), linalg::norm_inf(f)});
    if (linalg::norm_inf(rd) <= settings_.tolerance * norm_scale &&
        linalg::norm_inf(re) <= settings_.tolerance * norm_scale &&
        linalg::norm_inf(rp) <= settings_.tolerance * norm_scale &&
        mu <= settings_.tolerance * norm_scale) {
      result.status = SolveStatus::kOptimal;
      break;
    }

    // Assemble the regularized KKT matrix.
    DenseMatrix kkt(kkt_n, kkt_n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) kkt(r, c) = p_dense(r, c);
      kkt(r, r) += reg;
    }
    for (std::size_t r = 0; r < pe; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        kkt(n + r, c) = e_mat(r, c);
        kkt(c, n + r) = e_mat(r, c);
      }
      kkt(n + r, n + r) = -reg;
    }
    for (std::size_t r = 0; r < mi; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        kkt(n + pe + r, c) = g_mat(r, c);
        kkt(c, n + pe + r) = g_mat(r, c);
      }
      kkt(n + pe + r, n + pe + r) = -s[r] / z[r] - reg;
    }
    linalg::Ldlt ldlt;
    if (ldlt.factor(kkt) != linalg::FactorStatus::kOk) {
      result.status = SolveStatus::kNumericalError;
      break;
    }

    auto solve_step = [&](const Vector& rsz) {
      Vector rhs(kkt_n, 0.0);
      for (std::size_t j = 0; j < n; ++j) rhs[j] = -rd[j];
      for (std::size_t r = 0; r < pe; ++r) rhs[n + r] = -re[r];
      for (std::size_t r = 0; r < mi; ++r) rhs[n + pe + r] = -rp[r] + rsz[r] / z[r];
      return ldlt.solve(rhs);
    };
    auto extract = [&](const Vector& step, Vector& dx, Vector& dy, Vector& dz, Vector& ds) {
      dx.assign(step.begin(), step.begin() + static_cast<std::ptrdiff_t>(n));
      dy.assign(step.begin() + static_cast<std::ptrdiff_t>(n),
                step.begin() + static_cast<std::ptrdiff_t>(n + pe));
      dz.assign(step.begin() + static_cast<std::ptrdiff_t>(n + pe), step.end());
      const Vector g_dx = g_mat.multiply(dx);
      ds.assign(mi, 0.0);
      for (std::size_t r = 0; r < mi; ++r) ds[r] = -rp[r] - g_dx[r];
    };
    auto max_step = [&](const Vector& v, const Vector& dv) {
      double alpha = 1.0;
      for (std::size_t i = 0; i < v.size(); ++i) {
        if (dv[i] < 0.0) alpha = std::min(alpha, -v[i] / dv[i]);
      }
      return alpha;
    };

    // Affine (predictor) step: rsz = S z.
    Vector rsz(mi);
    for (std::size_t r = 0; r < mi; ++r) rsz[r] = s[r] * z[r];
    Vector dx, dy, dz, ds;
    extract(solve_step(rsz), dx, dy, dz, ds);

    double sigma = 0.0;
    if (mi > 0) {
      const double alpha_p = max_step(s, ds);
      const double alpha_d = max_step(z, dz);
      double mu_aff = 0.0;
      for (std::size_t r = 0; r < mi; ++r) {
        mu_aff += (s[r] + alpha_p * ds[r]) * (z[r] + alpha_d * dz[r]);
      }
      mu_aff /= static_cast<double>(mi);
      sigma = mu > 0 ? std::pow(mu_aff / mu, 3.0) : 0.0;

      // Corrector: rsz = S z + ds_aff o dz_aff - sigma mu e.
      for (std::size_t r = 0; r < mi; ++r) rsz[r] = s[r] * z[r] + ds[r] * dz[r] - sigma * mu;
      extract(solve_step(rsz), dx, dy, dz, ds);
    }

    const double alpha_p = settings_.step_fraction * max_step(s, ds);
    const double alpha_d = settings_.step_fraction * max_step(z, dz);
    const double alpha = mi > 0 ? std::min(alpha_p, alpha_d) : 1.0;
    for (std::size_t j = 0; j < n; ++j) x[j] += alpha * dx[j];
    for (std::size_t r = 0; r < pe; ++r) y[r] += alpha * dy[r];
    for (std::size_t r = 0; r < mi; ++r) {
      s[r] += alpha * ds[r];
      z[r] += alpha * dz[r];
    }
  }

  // Map duals back to the two-sided convention.
  result.x = x;
  result.y.assign(m, 0.0);
  for (std::size_t r = 0; r < pe; ++r) result.y[equality_rows[r]] = y[r];
  for (std::size_t r = 0; r < mi; ++r) {
    const auto& row = inequality_rows[r];
    result.y[row.source_row] += row.is_upper ? z[r] : -z[r];
  }
  result.iterations = iteration;
  result.objective = problem.objective(x);
  result.primal_residual = problem.constraint_violation(x);
  {
    const Vector px = problem.p.multiply(x);
    const Vector aty = problem.a.multiply_transposed(result.y);
    double dual_res = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      dual_res = std::max(dual_res, std::abs(px[j] + problem.q[j] + aty[j]));
    }
    result.dual_residual = dual_res;
  }
  // One dense KKT factorization per Mehrotra iteration; nothing is cached.
  result.info.factorizations = iteration;
  auto& registry = obs::Registry::global();
  if (registry.enabled()) {
    registry.counter("ipm.solves").add(1);
    registry.counter("ipm.iterations").add(iteration);
    registry.histogram("ipm.iterations_per_solve").record(iteration);
    registry.histogram("ipm.solve_ms").record(span.elapsed_ms());
  }
  return result;
}

}  // namespace gp::qp
