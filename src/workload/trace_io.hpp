// CSV import/export for demand and price traces.
//
// The synthetic generators in this module reproduce the paper's setup, but
// a production deployment feeds the controller from measured traces. The
// format is one row per control period, one column per series (access
// network or data center), with a header row naming the columns — exactly
// what SimulationSummary::write_csv and the figure benches emit, so traces
// round-trip through spreadsheets and plotting scripts.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace gp::workload {

/// A named multivariate time series: values[t][column].
struct Trace {
  std::vector<std::string> columns;
  std::vector<linalg::Vector> values;

  std::size_t periods() const { return values.size(); }
  std::size_t width() const { return columns.size(); }
};

/// Parse outcome; malformed input is reported, not thrown (trace files are
/// external inputs).
struct TraceResult {
  bool ok = false;
  Trace trace;
  std::string error;  ///< first problem, with a line number
};

/// Reads a CSV trace: header row of column names, then numeric rows of the
/// same width. Blank lines are skipped; a '#' prefix marks comment lines.
TraceResult load_trace_csv(std::istream& in);

/// Writes the trace in the same format (lossless double round-trip).
void save_trace_csv(const Trace& trace, std::ostream& out);

}  // namespace gp::workload
