#include "workload/trace_io.hpp"

#include <charconv>
#include <istream>
#include <ostream>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace gp::workload {

namespace {

/// Splits a CSV line on commas (the traces this library writes never quote
/// cells; embedded commas in column names are rejected on write).
std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (char c : line) {
    if (c == ',') {
      cells.push_back(cell);
      cell.clear();
    } else if (c != '\r') {
      cell += c;
    }
  }
  cells.push_back(cell);
  return cells;
}

bool parse_double(const std::string& text, double& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  while (begin < end && *begin == ' ') ++begin;
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

}  // namespace

TraceResult load_trace_csv(std::istream& in) {
  TraceResult result;
  std::string line;
  int line_number = 0;
  bool have_header = false;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    const auto cells = split_csv(line);
    if (!have_header) {
      for (const auto& name : cells) {
        if (name.empty()) {
          result.error = "line " + std::to_string(line_number) + ": empty column name";
          return result;
        }
      }
      result.trace.columns = cells;
      have_header = true;
      continue;
    }
    if (cells.size() != result.trace.columns.size()) {
      result.error = "line " + std::to_string(line_number) + ": expected " +
                     std::to_string(result.trace.columns.size()) + " cells, got " +
                     std::to_string(cells.size());
      return result;
    }
    linalg::Vector row(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (!parse_double(cells[i], row[i])) {
        result.error = "line " + std::to_string(line_number) + ": bad number '" + cells[i] +
                       "'";
        return result;
      }
    }
    result.trace.values.push_back(std::move(row));
  }
  if (!have_header) {
    result.error = "no header row";
    return result;
  }
  result.ok = true;
  return result;
}

void save_trace_csv(const Trace& trace, std::ostream& out) {
  require(!trace.columns.empty(), "save_trace_csv: no columns");
  for (const auto& name : trace.columns) {
    require(name.find(',') == std::string::npos && name.find('\n') == std::string::npos,
            "save_trace_csv: column name contains a delimiter");
  }
  for (const auto& row : trace.values) {
    require(row.size() == trace.columns.size(), "save_trace_csv: ragged row");
  }
  CsvWriter csv(out);
  csv.header(trace.columns);
  for (const auto& row : trace.values) csv.row(row);
}

}  // namespace gp::workload
