#include "workload/price.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "workload/diurnal.hpp"

namespace gp::workload {

double vm_watts(VmType type) {
  switch (type) {
    case VmType::kSmall: return 30.0;
    case VmType::kMedium: return 70.0;
    case VmType::kLarge: return 140.0;
  }
  return 70.0;
}

namespace {

/// Shape parameters of one region's daily price curve.
struct RegionCurve {
  double base;       ///< overnight floor, $/MWh
  double amplitude;  ///< peak lift above the floor, $/MWh
  double peak_hour;  ///< local hour of the maximum
  double width;      ///< Gaussian-ish width of the peak, hours
};

RegionCurve curve_for(topology::Region region) {
  // Calibrated to the visual ranges of the paper's Fig. 3: California is
  // generally the most expensive with a pronounced late-afternoon (~17:00)
  // peak — "the difference reaches its maximum around 5pm" — but its
  // overnight trough comes close to the Texas floor, so the relative
  // ranking of regions genuinely changes across the day (the crossover that
  // drives the Fig. 5 reallocation). Texas is the cheapest overall.
  switch (region) {
    case topology::Region::kCalifornia: return {22.0, 88.0, 17.0, 4.0};
    case topology::Region::kTexas: return {15.0, 30.0, 15.0, 5.0};
    case topology::Region::kSoutheast: return {28.0, 40.0, 16.0, 5.0};
    case topology::Region::kMidwest: return {24.0, 54.0, 16.5, 4.5};
    case topology::Region::kEast: return {32.0, 48.0, 17.5, 4.5};
  }
  return {28.0, 40.0, 16.0, 5.0};
}

}  // namespace

ElectricityPriceModel::ElectricityPriceModel(double volatility) : volatility_(volatility) {
  require(volatility >= 0.0, "ElectricityPriceModel: negative volatility");
}

double ElectricityPriceModel::price(topology::Region region, double local_hour_of_day) const {
  const RegionCurve curve = curve_for(region);
  double h = std::fmod(local_hour_of_day, 24.0);
  if (h < 0.0) h += 24.0;
  // Circular distance to the peak hour.
  double dh = std::abs(h - curve.peak_hour);
  dh = std::min(dh, 24.0 - dh);
  const double bump = std::exp(-(dh * dh) / (2.0 * curve.width * curve.width));
  // A small morning shoulder keeps the curve from being a pure Gaussian.
  double dm = std::abs(h - 8.0);
  dm = std::min(dm, 24.0 - dm);
  const double shoulder = 0.25 * std::exp(-(dm * dm) / (2.0 * 2.5 * 2.5));
  return curve.base + curve.amplitude * (bump + shoulder);
}

double ElectricityPriceModel::noisy_price(topology::Region region, double local_hour_of_day,
                                          Rng& rng) const {
  const double clean = price(region, local_hour_of_day);
  if (volatility_ == 0.0) return clean;
  const double noisy = clean * (1.0 + rng.normal(0.0, volatility_));
  return std::max(noisy, 0.1 * clean);
}

ServerPriceModel::ServerPriceModel(std::vector<topology::DataCenterSite> sites, VmType vm,
                                   ElectricityPriceModel electricity, double overhead_factor,
                                   double base_price_per_hour)
    : sites_(std::move(sites)),
      vm_(vm),
      electricity_(electricity),
      overhead_factor_(overhead_factor),
      base_price_per_hour_(base_price_per_hour) {
  require(!sites_.empty(), "ServerPriceModel: need at least one site");
  require(overhead_factor_ >= 1.0, "ServerPriceModel: overhead factor must be >= 1");
  require(base_price_per_hour_ >= 0.0, "ServerPriceModel: negative base price");
}

ServerPriceModel ServerPriceModel::from_trace(std::vector<topology::DataCenterSite> sites,
                                              VmType vm,
                                              std::vector<std::vector<double>> prices,
                                              double period_hours, double start_hour,
                                              bool wrap) {
  require(!prices.empty(), "from_trace: empty price trace");
  require(period_hours > 0.0, "from_trace: non-positive period length");
  for (const auto& row : prices) {
    require(row.size() == sites.size(), "from_trace: price columns != data centers");
    for (double value : row) require(value >= 0.0, "from_trace: negative price");
  }
  ServerPriceModel model(std::move(sites), vm, ElectricityPriceModel());
  model.trace_prices_ = std::move(prices);
  model.trace_period_hours_ = period_hours;
  model.trace_start_hour_ = start_hour;
  model.trace_wrap_ = wrap;
  return model;
}

double ServerPriceModel::electricity_price(std::size_t l, double utc_hour) const {
  require(l < sites_.size(), "electricity_price: site out of range");
  const auto& site = sites_[l];
  return electricity_.price(site.location.region,
                            local_hour(utc_hour, site.location.utc_offset_hours));
}

double ServerPriceModel::server_price(std::size_t l, double utc_hour) const {
  if (trace_backed()) {
    require(l < sites_.size(), "server_price: site out of range");
    const auto rows = static_cast<long long>(trace_prices_.size());
    auto row = static_cast<long long>(
        std::floor((utc_hour - trace_start_hour_) / trace_period_hours_));
    if (trace_wrap_) {
      row %= rows;
      if (row < 0) row += rows;
    } else {
      row = std::clamp(row, 0LL, rows - 1);
    }
    return trace_prices_[static_cast<std::size_t>(row)][l];
  }
  // watts -> MWh per hour = W / 1e6; $/server-hour = $/MWh * MW.
  const double megawatts = vm_watts(vm_) * overhead_factor_ / 1e6;
  return base_price_per_hour_ + electricity_price(l, utc_hour) * megawatts;
}

std::vector<double> ServerPriceModel::server_prices(double utc_hour) const {
  std::vector<double> prices(sites_.size());
  for (std::size_t l = 0; l < sites_.size(); ++l) prices[l] = server_price(l, utc_hour);
  return prices;
}

std::vector<std::vector<double>> ServerPriceModel::trace(std::size_t periods, double period_hours,
                                                         double utc_start_hour) const {
  require(period_hours > 0.0, "trace: non-positive period");
  std::vector<std::vector<double>> prices(periods, std::vector<double>(sites_.size(), 0.0));
  for (std::size_t k = 0; k < periods; ++k) {
    const double hour = utc_start_hour + (static_cast<double>(k) + 0.5) * period_hours;
    for (std::size_t l = 0; l < sites_.size(); ++l) prices[k][l] = server_price(l, hour);
  }
  return prices;
}

}  // namespace gp::workload
