#include "workload/diurnal.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gp::workload {

namespace {

/// Smoothstep in [0, 1] as x goes from 0 to 1.
double smoothstep(double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  return x * x * (3.0 - 2.0 * x);
}

}  // namespace

DiurnalProfile::DiurnalProfile(double low, double high, double busy_start_hour,
                               double busy_end_hour, double ramp_hours)
    : low_(low), high_(high), busy_start_(busy_start_hour), busy_end_(busy_end_hour),
      ramp_(ramp_hours) {
  require(low >= 0.0 && high >= low, "DiurnalProfile: need 0 <= low <= high");
  require(busy_start_hour >= 0.0 && busy_end_hour <= 24.0 && busy_start_hour < busy_end_hour,
          "DiurnalProfile: busy window must satisfy 0 <= start < end <= 24");
  require(ramp_hours > 0.0, "DiurnalProfile: ramp must be > 0");
}

double DiurnalProfile::multiplier(double local_hour_of_day) const {
  double h = std::fmod(local_hour_of_day, 24.0);
  if (h < 0.0) h += 24.0;
  // Rise around busy_start_, fall around busy_end_.
  const double rise = smoothstep((h - (busy_start_ - ramp_ / 2.0)) / ramp_);
  const double fall = smoothstep((h - (busy_end_ - ramp_ / 2.0)) / ramp_);
  const double busy_level = rise * (1.0 - fall);
  return low_ + (high_ - low_) * busy_level;
}

double local_hour(double utc_hour, int utc_offset_hours) {
  double h = std::fmod(utc_hour + static_cast<double>(utc_offset_hours), 24.0);
  if (h < 0.0) h += 24.0;
  return h;
}

}  // namespace gp::workload
