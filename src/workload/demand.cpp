#include "workload/demand.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gp::workload {

DemandModel::DemandModel(std::vector<DemandSource> sources) : sources_(std::move(sources)) {
  require(!sources_.empty(), "DemandModel: need at least one source");
  for (const auto& source : sources_) {
    require(source.base_rate >= 0.0, "DemandModel: negative base rate");
  }
}

DemandModel DemandModel::from_cities(const std::vector<topology::City>& cities,
                                     double rate_per_capita, const DiurnalProfile& profile) {
  require(rate_per_capita >= 0.0, "from_cities: negative rate_per_capita");
  std::vector<DemandSource> sources;
  sources.reserve(cities.size());
  for (const auto& city : cities) {
    sources.push_back({city.population * rate_per_capita, city.utc_offset_hours, profile});
  }
  return DemandModel(std::move(sources));
}

DemandModel DemandModel::from_trace(std::vector<std::vector<double>> rates,
                                    double period_hours, double start_hour, bool wrap) {
  require(!rates.empty(), "from_trace: empty trace");
  require(period_hours > 0.0, "from_trace: non-positive period length");
  const std::size_t width = rates.front().size();
  require(width >= 1, "from_trace: trace has no columns");
  for (const auto& row : rates) {
    require(row.size() == width, "from_trace: ragged trace rows");
    for (double value : row) require(value >= 0.0, "from_trace: negative rate");
  }
  // Placeholder sources carry the access-network count; the replayed rows
  // replace their base-rate/profile arithmetic entirely.
  DemandModel model(std::vector<DemandSource>(width, DemandSource{0.0, 0, {}}));
  model.trace_rates_ = std::move(rates);
  model.trace_period_hours_ = period_hours;
  model.trace_start_hour_ = start_hour;
  model.trace_wrap_ = wrap;
  return model;
}

void DemandModel::add_flash_crowd(const FlashCrowd& event) {
  require(event.access_network < sources_.size(), "add_flash_crowd: bad access network");
  require(event.duration_hours > 0.0, "add_flash_crowd: non-positive duration");
  require(event.multiplier >= 0.0, "add_flash_crowd: negative multiplier");
  flash_crowds_.push_back(event);
}

double DemandModel::mean_rate(std::size_t v, double utc_hour) const {
  require(v < sources_.size(), "mean_rate: access network out of range");
  double rate;
  if (trace_backed()) {
    const auto rows = static_cast<long long>(trace_rates_.size());
    auto row = static_cast<long long>(
        std::floor((utc_hour - trace_start_hour_) / trace_period_hours_));
    if (trace_wrap_) {
      row %= rows;
      if (row < 0) row += rows;
    } else {
      row = std::clamp(row, 0LL, rows - 1);
    }
    rate = trace_rates_[static_cast<std::size_t>(row)][v];
  } else {
    const auto& source = sources_[v];
    rate = source.base_rate *
           source.profile.multiplier(local_hour(utc_hour, source.utc_offset_hours));
  }
  for (const auto& crowd : flash_crowds_) {
    if (crowd.access_network != v) continue;
    if (utc_hour >= crowd.start_hour && utc_hour < crowd.start_hour + crowd.duration_hours) {
      rate *= crowd.multiplier;
    }
  }
  return rate;
}

std::vector<double> DemandModel::mean_rates(double utc_hour) const {
  std::vector<double> rates(sources_.size());
  for (std::size_t v = 0; v < sources_.size(); ++v) rates[v] = mean_rate(v, utc_hour);
  return rates;
}

double DemandModel::sample_rate(std::size_t v, double utc_hour, double period_hours,
                                Rng& rng) const {
  require(period_hours > 0.0, "sample_rate: non-positive period");
  // Integrate the rate over the period with a mid-point rule (the profile is
  // smooth at the sub-hour scale), then draw the NHPP count.
  const double mid_rate = mean_rate(v, utc_hour + period_hours / 2.0);
  const double expected_arrivals = mid_rate * period_hours * 3600.0;
  // Very large means would overflow Poisson sampling time for no statistical
  // benefit; the normal approximation is exact enough above 1e6.
  double arrivals;
  if (expected_arrivals > 1e6) {
    arrivals = std::max(0.0, rng.normal(expected_arrivals, std::sqrt(expected_arrivals)));
  } else {
    arrivals = static_cast<double>(rng.poisson(expected_arrivals));
  }
  return arrivals / (period_hours * 3600.0);
}

std::vector<std::vector<double>> DemandModel::trace(std::size_t periods, double period_hours,
                                                    double utc_start_hour, bool noisy,
                                                    Rng& rng) const {
  std::vector<std::vector<double>> rates(periods, std::vector<double>(sources_.size(), 0.0));
  for (std::size_t k = 0; k < periods; ++k) {
    const double hour = utc_start_hour + static_cast<double>(k) * period_hours;
    for (std::size_t v = 0; v < sources_.size(); ++v) {
      rates[k][v] = noisy ? sample_rate(v, hour, period_hours, rng)
                          : mean_rate(v, hour + period_hours / 2.0);
    }
  }
  return rates;
}

}  // namespace gp::workload
