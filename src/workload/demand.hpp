// Demand generation for the access networks.
//
// Each access network v has a base arrival rate proportional to its city
// population, modulated by a DiurnalProfile in the city's local time, with
// optional multiplicative noise and flash-crowd events. DemandModel exposes
// both the fluid mean rate D_k^v the controller optimizes over and an NHPP
// sample path (per-period Poisson counts) for the simulation engine.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "topology/geo.hpp"
#include "workload/diurnal.hpp"

namespace gp::workload {

/// A demand spike: the rate at one access network is multiplied by
/// `multiplier` during [start_hour, start_hour + duration_hours).
struct FlashCrowd {
  std::size_t access_network = 0;
  double start_hour = 0.0;
  double duration_hours = 1.0;
  double multiplier = 5.0;
};

/// Per-access-network demand configuration.
struct DemandSource {
  double base_rate = 100.0;   ///< requests/s at multiplier 1
  int utc_offset_hours = 0;   ///< for local-time evaluation of the profile
  DiurnalProfile profile;
};

/// Demand model over |V| access networks (see file comment).
class DemandModel {
 public:
  explicit DemandModel(std::vector<DemandSource> sources);

  /// Builds sources from cities: base rate = rate_per_capita * population,
  /// shared profile, city time zones.
  static DemandModel from_cities(const std::vector<topology::City>& cities,
                                 double rate_per_capita, const DiurnalProfile& profile);

  /// Builds a trace-replaying model: mean_rate(v, utc_hour) returns
  /// rates[k][v] for the period k of length `period_hours` (starting at
  /// `start_hour`) containing utc_hour — measured workloads drive the same
  /// engine/controller paths as the synthetic generator. `wrap` replays the
  /// trace cyclically past its end; otherwise the last row holds. Flash
  /// crowds and sample_rate noise still apply on top of the replayed mean.
  static DemandModel from_trace(std::vector<std::vector<double>> rates, double period_hours,
                                double start_hour = 0.0, bool wrap = true);

  std::size_t num_access_networks() const { return sources_.size(); }

  void add_flash_crowd(const FlashCrowd& event);

  /// Deterministic mean arrival rate (requests/s) of access network v at the
  /// given UTC hour (flash crowds included).
  double mean_rate(std::size_t v, double utc_hour) const;

  /// Mean rates for all access networks at one instant.
  std::vector<double> mean_rates(double utc_hour) const;

  /// Noisy observation of the rate over one period: the empirical rate of an
  /// NHPP sampled over [utc_hour, utc_hour + period_hours), i.e.
  /// Poisson(mean * period) / period. This is what the monitoring module
  /// "measures".
  double sample_rate(std::size_t v, double utc_hour, double period_hours, Rng& rng) const;

  /// Full demand trace: rates[k][v] for K periods of the given length,
  /// starting at utc_start_hour. `noisy` selects sampled vs mean rates.
  std::vector<std::vector<double>> trace(std::size_t periods, double period_hours,
                                         double utc_start_hour, bool noisy, Rng& rng) const;

  /// True when this model replays a trace instead of the diurnal generator.
  bool trace_backed() const { return !trace_rates_.empty(); }

 private:
  std::vector<DemandSource> sources_;
  std::vector<FlashCrowd> flash_crowds_;
  // Trace replay (from_trace): rates[k][v] per period; empty = synthetic.
  std::vector<std::vector<double>> trace_rates_;
  double trace_period_hours_ = 0.0;
  double trace_start_hour_ = 0.0;
  bool trace_wrap_ = true;
};

}  // namespace gp::workload
