// Random workload-spike generation, after the characterization the paper
// cites for unexpected demand ("Characterizing, modeling, and generating
// workload spikes for stateful services", Bodik et al., SOCC 2010): spikes
// have a random onset, a magnitude that is small most of the time with a
// heavy upper tail, a bounded duration, and hit a small subset of
// locations. SpikeGenerator samples such events as FlashCrowd instances for
// the demand model, giving robustness tests a principled surprise process.
#pragma once

#include "workload/demand.hpp"

namespace gp::workload {

/// Parameters of the spike process.
struct SpikeParams {
  double spikes_per_day = 0.5;        ///< Poisson arrival rate of events
  double magnitude_median = 2.5;      ///< multiplier; lognormal around this
  double magnitude_sigma = 0.6;       ///< lognormal shape (heavy upper tail)
  double duration_min_hours = 0.5;
  double duration_max_hours = 4.0;
  std::size_t max_networks_hit = 2;   ///< locations affected per event
};

/// Samples spike events over `days` days across `num_access_networks`
/// locations and returns them as FlashCrowd entries (start hours measured
/// from 0). Deterministic for a given Rng state.
std::vector<FlashCrowd> generate_spikes(std::size_t num_access_networks, double days,
                                        const SpikeParams& params, Rng& rng);

/// Convenience: samples spikes and installs them into the demand model.
void add_random_spikes(DemandModel& demand, double days, const SpikeParams& params, Rng& rng);

}  // namespace gp::workload
