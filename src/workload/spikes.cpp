#include "workload/spikes.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gp::workload {

std::vector<FlashCrowd> generate_spikes(std::size_t num_access_networks, double days,
                                        const SpikeParams& params, Rng& rng) {
  require(num_access_networks >= 1, "generate_spikes: need at least one access network");
  require(days > 0.0, "generate_spikes: days must be > 0");
  require(params.spikes_per_day >= 0.0, "generate_spikes: negative spike rate");
  require(params.magnitude_median > 1.0, "generate_spikes: magnitude median must be > 1");
  require(params.duration_min_hours > 0.0 &&
              params.duration_max_hours >= params.duration_min_hours,
          "generate_spikes: bad duration range");
  require(params.max_networks_hit >= 1, "generate_spikes: max_networks_hit must be >= 1");

  std::vector<FlashCrowd> events;
  if (params.spikes_per_day == 0.0) return events;
  // Poisson process over the horizon: exponential inter-arrival gaps.
  const double rate_per_hour = params.spikes_per_day / 24.0;
  double t = rng.exponential(rate_per_hour);
  const double horizon_hours = days * 24.0;
  while (t < horizon_hours) {
    const double duration =
        rng.uniform(params.duration_min_hours, params.duration_max_hours);
    // Lognormal magnitude around the median, floored at 1 (a spike never
    // REDUCES demand).
    const double magnitude = std::max(
        1.01, params.magnitude_median * std::exp(params.magnitude_sigma * rng.normal()));
    // The event hits a small random subset of locations.
    const auto hit_count = static_cast<std::size_t>(rng.uniform_int(
        1, static_cast<std::int64_t>(
               std::min(params.max_networks_hit, num_access_networks))));
    std::vector<std::size_t> networks(num_access_networks);
    for (std::size_t v = 0; v < num_access_networks; ++v) networks[v] = v;
    rng.shuffle(networks);
    for (std::size_t i = 0; i < hit_count; ++i) {
      events.push_back({networks[i], t, duration, magnitude});
    }
    t += rng.exponential(rate_per_hour);
  }
  return events;
}

void add_random_spikes(DemandModel& demand, double days, const SpikeParams& params,
                       Rng& rng) {
  for (const auto& event :
       generate_spikes(demand.num_access_networks(), days, params, rng)) {
    demand.add_flash_crowd(event);
  }
}

}  // namespace gp::workload
