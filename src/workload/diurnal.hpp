// Time-of-day demand profile.
//
// The paper generates requests "from a non-homogenous Poisson process that
// considers both the population of each cities as well as the time of day.
// Generally speaking, requests from the same location follow an on-off
// stochastic process that has high arrival rate during working hours
// (8am-5pm) and low arrival rate at night." DiurnalProfile implements that
// on-off pattern with smooth ramps so the controller sees realistic
// transitions rather than discontinuities.
#pragma once

namespace gp::workload {

/// Smoothed on-off daily rate profile, evaluated in LOCAL time.
class DiurnalProfile {
 public:
  /// high/low: multipliers during busy/quiet hours; busy window defaults to
  /// the paper's 8:00-17:00; ramp: transition width in hours.
  DiurnalProfile(double low = 0.25, double high = 1.0, double busy_start_hour = 8.0,
                 double busy_end_hour = 17.0, double ramp_hours = 1.5);

  /// Rate multiplier at the given local hour-of-day (wraps modulo 24).
  double multiplier(double local_hour) const;

  double low() const { return low_; }
  double high() const { return high_; }
  double busy_start_hour() const { return busy_start_; }
  double busy_end_hour() const { return busy_end_; }
  double ramp_hours() const { return ramp_; }

 private:
  double low_;
  double high_;
  double busy_start_;
  double busy_end_;
  double ramp_;
};

/// Converts a UTC hour to local hour-of-day for a given offset, wrapped to
/// [0, 24).
double local_hour(double utc_hour, int utc_offset_hours);

}  // namespace gp::workload
