// Regional electricity price model and the per-server price derived from it.
//
// The paper's Fig. 3 shows wholesale electricity prices for four regions
// over a day (roughly $10-$110/MWh, with California peaking in the late
// afternoon and Texas cheapest). Real RTO feeds are not shipped, so
// ElectricityPriceModel synthesizes per-region daily curves calibrated to
// that figure (documented substitution; see DESIGN.md). ServerPriceModel
// converts $/MWh into the per-server-per-period price p_k^l the DSPP
// objective consumes, using the paper's VM power draws (30/70/140 W).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "topology/geo.hpp"

namespace gp::workload {

/// VM flavors from the paper's experiment setup (Section VII).
enum class VmType { kSmall, kMedium, kLarge };

/// Electrical power draw of a VM flavor in watts (30/70/140 per the paper).
double vm_watts(VmType type);

/// Synthetic per-region daily electricity price curves, $/MWh.
class ElectricityPriceModel {
 public:
  /// volatility: standard deviation of multiplicative noise applied by
  /// noisy_price (0 = deterministic curves).
  explicit ElectricityPriceModel(double volatility = 0.0);

  /// Deterministic price for the region at the given LOCAL hour-of-day.
  double price(topology::Region region, double local_hour) const;

  /// Price with multiplicative lognormal-ish noise (clamped positive).
  double noisy_price(topology::Region region, double local_hour, Rng& rng) const;

  double volatility() const { return volatility_; }

 private:
  double volatility_;
};

/// Converts electricity prices into per-server prices for each data center.
class ServerPriceModel {
 public:
  /// sites: data centers (region + time zone used); vm: flavor determining
  /// power draw; overhead_factor: PUE-style multiplier on IT power;
  /// base_price_per_hour: non-energy cost floor per server-hour.
  ServerPriceModel(std::vector<topology::DataCenterSite> sites, VmType vm,
                   ElectricityPriceModel electricity, double overhead_factor = 1.3,
                   double base_price_per_hour = 0.0);

  /// Builds a trace-replaying model: server_price(l, utc_hour) returns
  /// prices[k][l] ($/server-hour) for the period k of length `period_hours`
  /// (starting at `start_hour`) containing utc_hour; `wrap` replays
  /// cyclically past the end, else the last row holds. electricity_price()
  /// still reports the synthetic regional curves.
  static ServerPriceModel from_trace(std::vector<topology::DataCenterSite> sites, VmType vm,
                                     std::vector<std::vector<double>> prices,
                                     double period_hours, double start_hour = 0.0,
                                     bool wrap = true);

  std::size_t num_datacenters() const { return sites_.size(); }

  /// True when this model replays a trace instead of the electricity curves.
  bool trace_backed() const { return !trace_prices_.empty(); }

  /// Price of running one server in data center l for one hour, at the given
  /// UTC hour ($/server-hour).
  double server_price(std::size_t l, double utc_hour) const;

  /// Price vector across data centers at one instant.
  std::vector<double> server_prices(double utc_hour) const;

  /// Full price trace: prices[k][l] for K periods.
  std::vector<std::vector<double>> trace(std::size_t periods, double period_hours,
                                         double utc_start_hour) const;

  /// Underlying electricity price ($/MWh) for data center l at a UTC hour.
  double electricity_price(std::size_t l, double utc_hour) const;

 private:
  std::vector<topology::DataCenterSite> sites_;
  VmType vm_;
  ElectricityPriceModel electricity_;
  double overhead_factor_;
  double base_price_per_hour_;
  // Trace replay (from_trace): prices[k][l] per period; empty = synthetic.
  std::vector<std::vector<double>> trace_prices_;
  double trace_period_hours_ = 0.0;
  double trace_start_hour_ = 0.0;
  bool trace_wrap_ = true;
};

}  // namespace gp::workload
