// Tests for the allocation-free ADMM hot loop and its kernels: bitwise
// equivalence of the CSR mirror against the CSC reference products, of the
// fused/multi-lane vector_ops kernels against naive scalar transcriptions,
// the zero-heap-allocation contract of the warm iteration loop, and the
// cross-tier SIMD contract — every production kernel and both SELL SpMV
// orientations bit-identical on every available tier (scalar/avx2/avx512),
// with the tail sweep n = 0..17 covering every vector-remainder shape, and
// dot_reassoc (the one reassociated kernel) inside its documented tolerance.
//
// This binary installs counting operator new / operator delete so the
// solver's SolveInfo::hot_loop_allocations field reports real measurements
// (the library never installs the hooks itself — see common/alloc_probe.hpp).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "common/alloc_probe.hpp"
#include "common/rng.hpp"
#include "linalg/simd_dispatch.hpp"
#include "linalg/sparse_matrix.hpp"
#include "linalg/sparse_simd.hpp"
#include "linalg/vector_ops.hpp"
#include "qp/admm_solver.hpp"
#include "qp/ipm_solver.hpp"

// gcc tracks pointers from the replaced (malloc-backed) operator new into
// the replaced (free-backed) operator delete when it inlines gtest's factory
// cleanup paths and misreads the intended malloc/free pairing as mismatched;
// the runtime pairing is consistent, so the warning is a false positive here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  gp::alloc_probe_bump();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  gp::alloc_probe_bump();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace gp {
namespace {

using linalg::RowMajorMirror;
using linalg::SparseMatrix;
using linalg::Triplet;
using linalg::Vector;
using qp::kInfinity;

SparseMatrix random_sparse(std::int32_t rows, std::int32_t cols, double density, Rng& rng) {
  std::vector<Triplet> triplets;
  for (std::int32_t r = 0; r < rows; ++r)
    for (std::int32_t c = 0; c < cols; ++c)
      if (rng.uniform() < density) triplets.push_back({r, c, rng.uniform(-1.0, 1.0)});
  return SparseMatrix::from_triplets(rows, cols, triplets);
}

/// Random vector with a meaningful fraction of EXACT zeros, so the products'
/// zero-term skip path is exercised, not just the dense path.
Vector random_with_zeros(std::size_t size, Rng& rng) {
  Vector v(size);
  for (auto& x : v) x = rng.uniform() < 0.35 ? 0.0 : rng.uniform(-2.0, 2.0);
  return v;
}

/// Bitwise (0 ULP) equality — operator== on doubles would conflate +0.0 with
/// -0.0 and is therefore too weak for the determinism contract.
void expect_bits_equal(const Vector& a, const Vector& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
}

void expect_bits_equal(double a, double b) {
  std::uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(a));
  std::memcpy(&bb, &b, sizeof(b));
  EXPECT_EQ(ba, bb);
}

/// Strictly convex QP with equality, inequality, and unbounded rows, built
/// around a feasible point so the ADMM solve converges.
qp::QpProblem random_feasible_qp(std::size_t n, std::size_t m, Rng& rng) {
  qp::QpProblem problem;
  std::vector<Triplet> p_triplets;
  for (std::size_t i = 0; i < n; ++i) {
    p_triplets.push_back(
        {static_cast<std::int32_t>(i), static_cast<std::int32_t>(i), 2.0 + rng.uniform()});
  }
  problem.p = SparseMatrix::from_triplets(static_cast<std::int32_t>(n),
                                          static_cast<std::int32_t>(n), p_triplets);
  problem.q.assign(n, 0.0);
  for (auto& v : problem.q) v = rng.uniform(-1.0, 1.0);
  std::vector<Triplet> a_triplets;
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c < n; ++c)
      if (rng.uniform() < 0.4) {
        a_triplets.push_back({static_cast<std::int32_t>(r), static_cast<std::int32_t>(c),
                              rng.uniform(-1.0, 1.0)});
      }
  problem.a = SparseMatrix::from_triplets(static_cast<std::int32_t>(m),
                                          static_cast<std::int32_t>(n), a_triplets);
  Vector x0(n);
  for (auto& v : x0) v = rng.uniform(-1.0, 1.0);
  const Vector ax0 = problem.a.multiply(x0);
  problem.lower.assign(m, 0.0);
  problem.upper.assign(m, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    problem.lower[r] = ax0[r] - rng.uniform(0.1, 1.0);
    problem.upper[r] = ax0[r] + rng.uniform(0.1, 1.0);
  }
  return problem;
}

// ------------------------------------------------ CSR mirror vs CSC products

TEST(MirrorProducts, MultiplyMatchesCscBitwise) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const auto rows = static_cast<std::int32_t>(rng.uniform_int(1, 40));
    const auto cols = static_cast<std::int32_t>(rng.uniform_int(1, 40));
    const SparseMatrix a = random_sparse(rows, cols, 0.25, rng);
    const RowMajorMirror mirror(a);
    const Vector x = random_with_zeros(static_cast<std::size_t>(cols), rng);
    const double alpha = rng.uniform(-2.0, 2.0);

    Vector csc(static_cast<std::size_t>(rows), 0.0);
    a.multiply_accumulate(alpha, x, csc);
    Vector via_mirror(static_cast<std::size_t>(rows), 0.0);
    mirror.multiply_accumulate(alpha, x, via_mirror);
    expect_bits_equal(csc, via_mirror);
  }
}

TEST(MirrorProducts, MultiplyTransposedMatchesCscBitwise) {
  for (std::uint64_t seed = 11; seed <= 18; ++seed) {
    Rng rng(seed);
    const auto rows = static_cast<std::int32_t>(rng.uniform_int(1, 40));
    const auto cols = static_cast<std::int32_t>(rng.uniform_int(1, 40));
    const SparseMatrix a = random_sparse(rows, cols, 0.25, rng);
    const RowMajorMirror mirror(a);
    const Vector x = random_with_zeros(static_cast<std::size_t>(rows), rng);
    const double alpha = rng.uniform(-2.0, 2.0);

    Vector csc(static_cast<std::size_t>(cols), 0.0);
    a.multiply_transposed_accumulate(alpha, x, csc);
    Vector via_mirror(static_cast<std::size_t>(cols), 0.0);
    mirror.multiply_transposed_accumulate(alpha, x, via_mirror);
    expect_bits_equal(csc, via_mirror);
  }
}

TEST(MirrorProducts, MultiplyIntoMatchesFillThenAccumulate) {
  Rng rng(21);
  const SparseMatrix a = random_sparse(30, 25, 0.3, rng);
  const RowMajorMirror mirror(a);
  const Vector x = random_with_zeros(25, rng);

  Vector filled(30, 0.0);
  mirror.multiply_accumulate(1.5, x, filled);
  Vector direct(30, 123.0);  // stale contents must be overwritten, not summed
  mirror.multiply_into(1.5, x, direct);
  expect_bits_equal(filled, direct);
}

TEST(MirrorProducts, UpdateValuesMatchesRebuild) {
  Rng rng(31);
  const SparseMatrix a = random_sparse(20, 15, 0.3, rng);
  RowMajorMirror mirror(a);

  // Same pattern, new values (scaling preserves sparsity structure).
  SparseMatrix scaled = a;
  Vector row_scale(20), col_scale(15);
  for (auto& v : row_scale) v = rng.uniform(0.5, 2.0);
  for (auto& v : col_scale) v = rng.uniform(0.5, 2.0);
  scaled.scale_rows_cols(row_scale, col_scale);

  ASSERT_TRUE(mirror.pattern_matches(scaled));
  mirror.update_values(scaled);
  const RowMajorMirror rebuilt(scaled);
  ASSERT_EQ(mirror.nnz(), rebuilt.nnz());
  const auto updated = mirror.values();
  const auto fresh = rebuilt.values();
  for (std::size_t k = 0; k < updated.size(); ++k) {
    expect_bits_equal(updated[k], fresh[k]);
  }
}

// -------------------------------------- multi-lane kernels vs scalar loops

TEST(NormKernels, MultiLaneMatchesScalarReference) {
  for (std::uint64_t seed = 41; seed <= 44; ++seed) {
    Rng rng(seed);
    // Sizes straddling the 4-lane unroll boundary, including the tail cases.
    const auto size = static_cast<std::size_t>(rng.uniform_int(0, 37));
    const Vector a = random_with_zeros(size, rng);
    const Vector b = random_with_zeros(size, rng);
    const Vector c = random_with_zeros(size, rng);
    Vector scale(size);
    for (auto& v : scale) v = rng.uniform(0.25, 4.0);
    const double post = rng.uniform(0.25, 4.0);

    double ref = 0.0;
    for (std::size_t i = 0; i < size; ++i) ref = std::max(ref, std::abs(a[i]));
    expect_bits_equal(ref, linalg::norm_inf(a));

    ref = 0.0;
    for (std::size_t i = 0; i < size; ++i) ref = std::max(ref, std::abs(a[i]) * scale[i]);
    expect_bits_equal(ref, linalg::inf_norm_scaled(a, scale));

    ref = 0.0;
    for (std::size_t i = 0; i < size; ++i) {
      ref = std::max(ref, std::abs(a[i] - b[i]) * scale[i]);
    }
    expect_bits_equal(ref, linalg::inf_norm_scaled_diff(a, b, scale));

    ref = 0.0;
    for (std::size_t i = 0; i < size; ++i) {
      ref = std::max(ref, std::abs(a[i] + b[i] + c[i]) * scale[i] * post);
    }
    expect_bits_equal(ref, linalg::inf_norm_scaled_sum3(a, b, c, scale, post));

    Vector out(size, -1.0), out_ref(size, -1.0);
    ref = 0.0;
    for (std::size_t i = 0; i < size; ++i) {
      out_ref[i] = a[i] - b[i];
      ref = std::max(ref, std::abs(out_ref[i]));
    }
    expect_bits_equal(ref, linalg::diff_norm_inf(a, b, out));
    expect_bits_equal(out_ref, out);
  }
}

TEST(NormKernels, ResidualPairsMatchSeparateReductions) {
  for (std::uint64_t seed = 51; seed <= 54; ++seed) {
    Rng rng(seed);
    const auto size = static_cast<std::size_t>(rng.uniform_int(0, 33));
    const Vector a = random_with_zeros(size, rng);
    const Vector b = random_with_zeros(size, rng);
    const Vector c = random_with_zeros(size, rng);
    Vector scale(size);
    for (auto& v : scale) v = rng.uniform(0.25, 4.0);
    const double post = rng.uniform(0.25, 4.0);

    double res = 0.0, norm = 0.0;
    linalg::inf_norm_scaled_residual(a, b, scale, res, norm);
    expect_bits_equal(linalg::inf_norm_scaled_diff(a, b, scale), res);
    expect_bits_equal(std::max(linalg::inf_norm_scaled(a, scale),
                               linalg::inf_norm_scaled(b, scale)),
                      norm);

    linalg::inf_norm_scaled_residual3(a, b, c, scale, post, res, norm);
    expect_bits_equal(linalg::inf_norm_scaled_sum3(a, b, c, scale, post), res);
    expect_bits_equal(std::max({linalg::inf_norm_scaled(a, scale),
                                linalg::inf_norm_scaled(b, scale),
                                linalg::inf_norm_scaled(c, scale)}) *
                          post,
                      norm);
  }
}

TEST(UpdateKernels, DeltaVariantsMatchPlainKernelPlusExplicitDiff) {
  for (std::uint64_t seed = 61; seed <= 64; ++seed) {
    Rng rng(seed);
    const auto size = static_cast<std::size_t>(rng.uniform_int(1, 35));
    const Vector src = random_with_zeros(size, rng);
    const Vector zc = random_with_zeros(size, rng);
    const Vector zn = random_with_zeros(size, rng);
    Vector rho(size);
    for (auto& v : rho) v = rng.uniform(0.01, 100.0);
    const double alpha = 1.6;

    Vector x_plain = random_with_zeros(size, rng);
    Vector x_fused = x_plain;
    const Vector x_before = x_plain;
    linalg::axpby(alpha, src, 1.0 - alpha, x_plain);
    Vector delta_ref(size), delta(size);
    double ref_norm = 0.0;
    for (std::size_t i = 0; i < size; ++i) {
      delta_ref[i] = x_plain[i] - x_before[i];
      ref_norm = std::max(ref_norm, std::abs(delta_ref[i]));
    }
    const double fused_norm = linalg::axpby_delta(alpha, src, 1.0 - alpha, x_fused, delta);
    expect_bits_equal(x_plain, x_fused);
    expect_bits_equal(delta_ref, delta);
    expect_bits_equal(ref_norm, fused_norm);

    Vector y_plain = random_with_zeros(size, rng);
    Vector y_fused = y_plain;
    const Vector y_before = y_plain;
    linalg::admm_dual_update(rho, zc, zn, y_plain);
    ref_norm = 0.0;
    for (std::size_t i = 0; i < size; ++i) {
      delta_ref[i] = y_plain[i] - y_before[i];
      ref_norm = std::max(ref_norm, std::abs(delta_ref[i]));
    }
    const double y_norm = linalg::admm_dual_update_delta(rho, zc, zn, y_fused, delta);
    expect_bits_equal(y_plain, y_fused);
    expect_bits_equal(delta_ref, delta);
    expect_bits_equal(ref_norm, y_norm);
  }
}

TEST(UpdateKernels, CachedZCandidateMatchesUncached) {
  Rng rng(71);
  const std::size_t size = 29;
  const Vector z_tilde = random_with_zeros(size, rng);
  const Vector z = random_with_zeros(size, rng);
  const Vector y = random_with_zeros(size, rng);
  Vector rho(size);
  for (auto& v : rho) v = rng.uniform(0.01, 100.0);
  Vector y_over_rho(size);
  for (std::size_t i = 0; i < size; ++i) y_over_rho[i] = y[i] / rho[i];

  Vector plain(size), cached(size);
  linalg::admm_z_candidate(1.6, z_tilde, z, y, rho, plain);
  linalg::admm_z_candidate_cached(1.6, z_tilde, z, y_over_rho, cached);
  expect_bits_equal(plain, cached);
}

// ------------------------------------------------ allocation-free hot loop

TEST(AdmmHotLoop, WarmResolveMakesZeroHeapAllocations) {
  Rng rng(81);
  const qp::QpProblem problem = random_feasible_qp(60, 45, rng);
  qp::AdmmSolver solver;

  const auto cold = solver.solve(problem);
  ASSERT_EQ(cold.status, qp::SolveStatus::kOptimal);
  // The hooks in this binary must actually be live, or the contract below
  // would pass vacuously.
  ASSERT_GT(alloc_probe_count(), 0);

  const auto warm = solver.solve(problem);
  ASSERT_EQ(warm.status, qp::SolveStatus::kOptimal);
  EXPECT_TRUE(warm.info.factorization_skipped);
  EXPECT_EQ(warm.info.hot_loop_allocations, 0)
      << "ADMM iteration loop allocated on a warm workspace";
}

TEST(AdmmHotLoop, WorkspaceReuseAcrossShrinkingProblemsStaysAllocationFree) {
  // A larger solve sizes the workspace; a smaller one must fit inside the
  // existing capacity (vector::assign reuses storage), so even its FIRST
  // iteration loop runs allocation-free after the sizing solve.
  Rng rng(91);
  const qp::QpProblem big = random_feasible_qp(60, 45, rng);
  const qp::QpProblem small = random_feasible_qp(30, 20, rng);
  qp::AdmmSolver solver;
  ASSERT_EQ(solver.solve(big).status, qp::SolveStatus::kOptimal);
  const auto result = solver.solve(small);
  ASSERT_EQ(result.status, qp::SolveStatus::kOptimal);
  EXPECT_EQ(result.info.hot_loop_allocations, 0);
}

// ------------------------------------------------- cross-tier SIMD contract

namespace simd = linalg::simd;

/// Restores the dispatch tier active at construction (the tests below pin
/// tiers; a failure mid-test must not leak a forced tier into later tests).
struct TierGuard {
  simd::Tier saved = simd::active_tier();
  ~TierGuard() { simd::set_active_tier(saved); }
};

std::vector<simd::Tier> available_tiers() {
  std::vector<simd::Tier> tiers;
  for (simd::Tier t : {simd::Tier::kScalar, simd::Tier::kAvx2, simd::Tier::kAvx512}) {
    if (simd::tier_available(t)) tiers.push_back(t);
  }
  return tiers;
}

/// Everything the production kernels produce for one input set; computed
/// per tier and compared bitwise against the scalar tier.
struct KernelOutputs {
  double norm = 0.0, scaled = 0.0, diff = 0.0, sum3 = 0.0, diff_norm = 0.0;
  double res = 0.0, res_norm = 0.0, res3 = 0.0, res3_norm = 0.0;
  double axpby_norm = 0.0, dual_norm = 0.0;
  Vector diff_out, z_tilde, z_cand, boxed, x, delta_x, y, delta_y;
};

KernelOutputs run_kernel_suite(const Vector& a, const Vector& b, const Vector& c,
                               const Vector& scale, const Vector& rho,
                               const Vector& lower, const Vector& upper, double post) {
  const std::size_t size = a.size();
  KernelOutputs out;
  out.norm = linalg::norm_inf(a);
  out.scaled = linalg::inf_norm_scaled(a, scale);
  out.diff = linalg::inf_norm_scaled_diff(a, b, scale);
  out.sum3 = linalg::inf_norm_scaled_sum3(a, b, c, scale, post);
  out.diff_out.assign(size, -1.0);
  out.diff_norm = linalg::diff_norm_inf(a, b, out.diff_out);
  linalg::inf_norm_scaled_residual(a, b, scale, out.res, out.res_norm);
  linalg::inf_norm_scaled_residual3(a, b, c, scale, post, out.res3, out.res3_norm);
  out.z_tilde.assign(size, -1.0);
  linalg::admm_z_tilde(a, b, c, rho, out.z_tilde);
  Vector y_over_rho(size);
  for (std::size_t i = 0; i < size; ++i) y_over_rho[i] = c[i] / rho[i];
  out.z_cand.assign(size, -1.0);
  linalg::admm_z_candidate_cached(1.6, out.z_tilde, a, y_over_rho, out.z_cand);
  out.boxed.assign(size, -1.0);
  linalg::project_box_into(out.z_cand, lower, upper, out.boxed);
  out.x = a;
  out.delta_x.assign(size, -1.0);
  out.axpby_norm = linalg::axpby_delta(1.6, b, -0.6, out.x, out.delta_x);
  out.y = c;
  out.delta_y.assign(size, -1.0);
  out.dual_norm = linalg::admm_dual_update_delta(rho, out.z_cand, out.boxed, out.y,
                                                 out.delta_y);
  return out;
}

void expect_outputs_bits_equal(const KernelOutputs& ref, const KernelOutputs& got) {
  expect_bits_equal(ref.norm, got.norm);
  expect_bits_equal(ref.scaled, got.scaled);
  expect_bits_equal(ref.diff, got.diff);
  expect_bits_equal(ref.sum3, got.sum3);
  expect_bits_equal(ref.diff_norm, got.diff_norm);
  expect_bits_equal(ref.res, got.res);
  expect_bits_equal(ref.res_norm, got.res_norm);
  expect_bits_equal(ref.res3, got.res3);
  expect_bits_equal(ref.res3_norm, got.res3_norm);
  expect_bits_equal(ref.axpby_norm, got.axpby_norm);
  expect_bits_equal(ref.dual_norm, got.dual_norm);
  expect_bits_equal(ref.diff_out, got.diff_out);
  expect_bits_equal(ref.z_tilde, got.z_tilde);
  expect_bits_equal(ref.z_cand, got.z_cand);
  expect_bits_equal(ref.boxed, got.boxed);
  expect_bits_equal(ref.x, got.x);
  expect_bits_equal(ref.delta_x, got.delta_x);
  expect_bits_equal(ref.y, got.y);
  expect_bits_equal(ref.delta_y, got.delta_y);
}

TEST(SimdTiers, KernelSuiteBitIdenticalAcrossTiersWithTailSweep) {
  TierGuard guard;
  const auto tiers = available_tiers();
  // n = 0 .. 2 * (widest vector) + 1 hits every remainder shape for both the
  // 4-lane and 8-lane kernels (full vectors, partial tails, empty input),
  // plus a few larger sizes for the steady state.
  std::vector<std::size_t> sizes;
  for (std::size_t n = 0; n <= 17; ++n) sizes.push_back(n);
  sizes.insert(sizes.end(), {64, 131});
  for (std::size_t size : sizes) {
    Rng rng(1000 + size);
    const Vector a = random_with_zeros(size, rng);
    const Vector b = random_with_zeros(size, rng);
    const Vector c = random_with_zeros(size, rng);
    Vector scale(size), rho(size), lower(size), upper(size);
    for (auto& v : scale) v = rng.uniform(0.25, 4.0);
    for (auto& v : rho) v = rng.uniform(0.01, 100.0);
    for (std::size_t i = 0; i < size; ++i) {
      lower[i] = rng.uniform() < 0.2 ? -kInfinity : rng.uniform(-1.0, 0.0);
      upper[i] = rng.uniform() < 0.2 ? kInfinity : rng.uniform(0.0, 1.0);
    }
    const double post = rng.uniform(0.25, 4.0);

    ASSERT_EQ(simd::set_active_tier(simd::Tier::kScalar), simd::Tier::kScalar);
    const KernelOutputs ref = run_kernel_suite(a, b, c, scale, rho, lower, upper, post);
    for (simd::Tier t : tiers) {
      ASSERT_EQ(simd::set_active_tier(t), t);
      SCOPED_TRACE(std::string("tier=") + simd::tier_name(t) +
                   " n=" + std::to_string(size));
      expect_outputs_bits_equal(ref,
                                run_kernel_suite(a, b, c, scale, rho, lower, upper, post));
    }
  }
}

TEST(SimdTiers, DotReassocWithinDocumentedTolerance) {
  TierGuard guard;
  for (std::size_t size : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                           std::size_t{17}, std::size_t{1000}}) {
    Rng rng(2000 + size);
    const Vector a = random_with_zeros(size, rng);
    const Vector b = random_with_zeros(size, rng);
    const double exact = linalg::dot(a, b);
    double abs_sum = 0.0;
    for (std::size_t i = 0; i < size; ++i) abs_sum += std::abs(a[i] * b[i]);
    // The documented bound from vector_ops.hpp: |err| <= n * eps * sum|a_i b_i|.
    const double tol = static_cast<double>(size) *
                       std::numeric_limits<double>::epsilon() * abs_sum;
    for (simd::Tier t : available_tiers()) {
      ASSERT_EQ(simd::set_active_tier(t), t);
      SCOPED_TRACE(std::string("tier=") + simd::tier_name(t) +
                   " n=" + std::to_string(size));
      EXPECT_LE(std::abs(linalg::dot_reassoc(a, b) - exact), tol);
    }
  }
}

TEST(SimdTiers, SellMirrorBothOrientationsMatchCsrMirrorBitwise) {
  TierGuard guard;
  const auto tiers = available_tiers();
  // Shapes straddling the 8-row SELL chunk (partial last chunk, exactly one
  // chunk, many chunks) at densities that leave some rows entirely empty.
  const std::int32_t shapes[][2] = {{1, 1}, {7, 5}, {8, 8}, {9, 3}, {16, 24}, {40, 33}};
  for (const auto& shape : shapes) {
    Rng rng(3000 + static_cast<std::uint64_t>(shape[0]));
    const SparseMatrix a = random_sparse(shape[0], shape[1], 0.2, rng);
    const RowMajorMirror mirror(a);
    linalg::SellMirror sell, sell_t;
    sell.build(a);
    sell_t.build_transposed(a);
    const Vector x = random_with_zeros(static_cast<std::size_t>(a.cols()), rng);
    const Vector y = random_with_zeros(static_cast<std::size_t>(a.rows()), rng);
    const double alpha = rng.uniform(-2.0, 2.0);

    Vector ref_ax(static_cast<std::size_t>(a.rows()), 0.0);
    mirror.multiply_into(alpha, x, ref_ax);
    Vector ref_aty(static_cast<std::size_t>(a.cols()), 0.0);
    mirror.multiply_transposed_accumulate(alpha, y, ref_aty);

    for (simd::Tier t : tiers) {
      ASSERT_EQ(simd::set_active_tier(t), t);
      SCOPED_TRACE(std::string("tier=") + simd::tier_name(t) + " shape=" +
                   std::to_string(shape[0]) + "x" + std::to_string(shape[1]));
      Vector ax(static_cast<std::size_t>(a.rows()), -1.0);
      sell.multiply_into(alpha, x, ax);
      expect_bits_equal(ref_ax, ax);
      Vector aty(static_cast<std::size_t>(a.cols()), -1.0);
      sell_t.multiply_into(alpha, y, aty);
      expect_bits_equal(ref_aty, aty);
    }
  }
}

TEST(SimdTiers, SellMirrorUpdateValuesMatchesRebuild) {
  Rng rng(3100);
  const SparseMatrix a = random_sparse(20, 15, 0.3, rng);
  linalg::SellMirror sell;
  sell.build(a);

  SparseMatrix scaled = a;
  Vector row_scale(20), col_scale(15);
  for (auto& v : row_scale) v = rng.uniform(0.5, 2.0);
  for (auto& v : col_scale) v = rng.uniform(0.5, 2.0);
  scaled.scale_rows_cols(row_scale, col_scale);

  ASSERT_TRUE(sell.pattern_matches(scaled));
  sell.update_values(scaled);
  linalg::SellMirror rebuilt;
  rebuilt.build(scaled);
  const Vector x = random_with_zeros(15, rng);
  Vector updated(20, -1.0), fresh(20, -2.0);
  sell.multiply_into(1.0, x, updated);
  rebuilt.multiply_into(1.0, x, fresh);
  expect_bits_equal(fresh, updated);
  // A different shape (or orientation) must NOT pattern-match.
  const SparseMatrix other = random_sparse(15, 20, 0.3, rng);
  EXPECT_FALSE(sell.pattern_matches(other));
}

TEST(SimdTiers, SellMirrorDegenerateShapes) {
  TierGuard guard;
  // All-zero matrix (every row empty -> zero-width chunks) and an empty
  // pattern: products must still produce exact zeros on every tier.
  const SparseMatrix zero = SparseMatrix::from_triplets(11, 4, {});
  linalg::SellMirror sell, sell_t;
  sell.build(zero);
  sell_t.build_transposed(zero);
  const Vector x(4, 3.0), y(11, 2.0);
  for (simd::Tier t : available_tiers()) {
    ASSERT_EQ(simd::set_active_tier(t), t);
    Vector ax(11, -1.0), aty(4, -1.0);
    sell.multiply_into(2.0, x, ax);
    sell_t.multiply_into(2.0, y, aty);
    for (double v : ax) expect_bits_equal(0.0, v);
    for (double v : aty) expect_bits_equal(0.0, v);
  }
}

TEST(SimdTiers, FullAdmmSolveBitIdenticalAcrossTiers) {
  TierGuard guard;
  Rng rng(3200);
  const qp::QpProblem problem = random_feasible_qp(40, 30, rng);
  ASSERT_EQ(simd::set_active_tier(simd::Tier::kScalar), simd::Tier::kScalar);
  qp::AdmmSolver scalar_solver;
  const auto ref = scalar_solver.solve(problem);
  ASSERT_EQ(ref.status, qp::SolveStatus::kOptimal);
  for (simd::Tier t : available_tiers()) {
    ASSERT_EQ(simd::set_active_tier(t), t);
    SCOPED_TRACE(simd::tier_name(t));
    qp::AdmmSolver solver;  // fresh: no cross-tier cache reuse in the test
    const auto got = solver.solve(problem);
    ASSERT_EQ(got.status, qp::SolveStatus::kOptimal);
    EXPECT_EQ(got.iterations, ref.iterations);
    expect_bits_equal(ref.x, got.x);
    expect_bits_equal(ref.y, got.y);
  }
}

TEST(SimdDispatch, TierNamesRoundTripAndActivationClamps) {
  TierGuard guard;
  for (simd::Tier t : {simd::Tier::kScalar, simd::Tier::kAvx2, simd::Tier::kAvx512}) {
    EXPECT_EQ(simd::tier_from_name(simd::tier_name(t)), t);
  }
  EXPECT_THROW((void)simd::tier_from_name("sse42"), std::exception);
  EXPECT_THROW((void)simd::tier_from_name(""), std::exception);
  // Scalar is always available; a request above the hardware clamps DOWN to
  // an available tier and reports what it actually activated.
  EXPECT_EQ(simd::set_active_tier(simd::Tier::kScalar), simd::Tier::kScalar);
  const simd::Tier got = simd::set_active_tier(simd::Tier::kAvx512);
  EXPECT_TRUE(simd::tier_available(got));
  EXPECT_LE(static_cast<int>(got), static_cast<int>(simd::Tier::kAvx512));
  EXPECT_EQ(got, simd::active_tier());
  EXPECT_TRUE(simd::tier_available(simd::Tier::kScalar));
  EXPECT_LE(static_cast<int>(simd::detected_tier()),
            static_cast<int>(simd::Tier::kAvx512));
}

// ------------------------------------------------------- IPM structure cache

TEST(IpmCache, CachedResolveBitIdenticalToFreshSolver) {
  Rng rng(101);
  const qp::QpProblem problem = random_feasible_qp(25, 18, rng);

  qp::IpmSolver caching;
  const auto first = caching.solve(problem);
  ASSERT_EQ(first.status, qp::SolveStatus::kOptimal);
  const auto cached = caching.solve(problem);  // structure-cache hit
  ASSERT_EQ(cached.status, qp::SolveStatus::kOptimal);

  qp::IpmSolver fresh;
  const auto reference = fresh.solve(problem);
  ASSERT_EQ(reference.status, qp::SolveStatus::kOptimal);
  expect_bits_equal(reference.x, cached.x);
  expect_bits_equal(reference.y, cached.y);
}

}  // namespace
}  // namespace gp
