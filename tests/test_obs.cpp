// Tests for geoplace::obs: the metrics registry (counters, gauges,
// log-bucket histograms), the trace spans/exporters, and the contract the
// instrumented layers rely on — concurrent recording from thread_pool lanes
// is race-free (run under the tsan preset via the "obs" label), bucketed
// percentiles track the scalar reference within the documented bucket
// error, and a disabled registry/tracer records nothing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "obs/export.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "qp/admm_solver.hpp"
#include "qp/problem.hpp"

namespace {

using gp::obs::Histogram;
using gp::obs::HistogramOptions;
using gp::obs::Registry;
using gp::obs::Span;
using gp::obs::TraceEvent;
using gp::obs::TraceFormat;
using gp::obs::Tracer;

TEST(Counter, AddsAndResets) {
  gp::obs::Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42);
  counter.add(-2);
  EXPECT_EQ(counter.value(), 40);
  counter.reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(Gauge, LastWriteWins) {
  gp::obs::Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(3.5);
  gauge.set(-1.25);
  EXPECT_EQ(gauge.value(), -1.25);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0.0);
}

TEST(Histogram, ExactMoments) {
  Histogram h;
  for (double v : {1.0, 2.0, 4.0, 8.0}) h.record(v);
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 15.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.percentile(50.0), 0.0);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.p99, 0.0);
}

TEST(Histogram, UnderflowAndOverflowClampToObservedRange) {
  Histogram h(HistogramOptions{.min_value = 1.0, .max_value = 100.0,
                               .buckets_per_decade = 4});
  h.record(-5.0);   // underflow (negative)
  h.record(0.01);   // underflow
  h.record(1e9);    // overflow
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  // Percentiles are clamped to the exact observed [min, max] even though
  // the owning buckets have infinite/degenerate edges.
  EXPECT_GE(h.percentile(1.0), -5.0);
  EXPECT_LE(h.percentile(99.9), 1e9);
}

TEST(Histogram, PercentileTracksScalarReferenceWithinBucketError) {
  // The documented accuracy bound: one bucket, i.e. a relative error of
  // 10^(1/buckets_per_decade) - 1 (~15.5% at the default 16/decade).
  const HistogramOptions options;  // defaults
  const double bucket_ratio = std::pow(10.0, 1.0 / options.buckets_per_decade);
  Histogram h(options);
  std::vector<double> values;
  // A skewed latency-like population spanning three decades.
  for (int i = 1; i <= 1000; ++i) {
    const double v = 0.05 * std::pow(1.01, i);  // 0.05 .. ~1047, geometric
    values.push_back(v);
    h.record(v);
  }
  for (double p : {10.0, 50.0, 90.0, 95.0, 99.0}) {
    const double exact = gp::percentile(values, p);
    const double approx = h.percentile(p);
    EXPECT_LE(approx, exact * bucket_ratio * 1.001) << "p" << p;
    EXPECT_GE(approx, exact / bucket_ratio * 0.999) << "p" << p;
  }
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 1000);
  EXPECT_DOUBLE_EQ(snap.p50, h.percentile(50.0));
  EXPECT_DOUBLE_EQ(snap.p95, h.percentile(95.0));
  EXPECT_DOUBLE_EQ(snap.p99, h.percentile(99.0));
}

TEST(Histogram, ConcurrentRecordingIsExactForCountSumMinMax) {
  // thread_pool lanes hammer one histogram; count/sum/min/max are
  // maintained with atomics and must come out exact. Run under the tsan
  // preset (label "obs") this is also the data-race check.
  Histogram h;
  constexpr std::size_t kLanes = 8;
  constexpr int kPerLane = 5000;
  gp::parallel_for(0, kLanes, [&](std::size_t lane) {
    for (int i = 0; i < kPerLane; ++i) {
      h.record(static_cast<double>(lane + 1));  // lane k records value k+1
    }
  });
  EXPECT_EQ(h.count(), static_cast<long long>(kLanes * kPerLane));
  double expected_sum = 0.0;
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    expected_sum += static_cast<double>((lane + 1) * kPerLane);
  }
  EXPECT_DOUBLE_EQ(h.sum(), expected_sum);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), static_cast<double>(kLanes));
}

TEST(RegistryTest, FindOrCreateReturnsStableReferences) {
  Registry registry;
  auto& c1 = registry.counter("a.count");
  auto& c2 = registry.counter("a.count");
  EXPECT_EQ(&c1, &c2);
  auto& h1 = registry.histogram("a.ms");
  auto& h2 = registry.histogram("a.ms");
  EXPECT_EQ(&h1, &h2);
  // Same name, different kind: a programming error, reported loudly.
  EXPECT_THROW(registry.gauge("a.count"), std::exception);
  EXPECT_THROW(registry.counter("a.ms"), std::exception);
}

TEST(RegistryTest, ResetAllZeroesGlobalWithoutInvalidatingReferences) {
  // reset_all() is the test/bench-friendly reset: values go to zero but
  // every previously handed-out reference stays valid and registered.
  auto& registry = Registry::global();
  auto& counter = registry.counter("resetall.count");
  auto& gauge = registry.gauge("resetall.gauge");
  auto& histogram = registry.histogram("resetall.ms");
  counter.add(5);
  gauge.set(2.5);
  histogram.record(1.0);
  Registry::reset_all();
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.count(), 0);
  EXPECT_EQ(&counter, &registry.counter("resetall.count"));
  EXPECT_EQ(&histogram, &registry.histogram("resetall.ms"));
}

TEST(RegistryTest, ConcurrentLookupAndUpdateFromPoolLanes) {
  // Runs on the GLOBAL registry — reset_all() gives the exact-count
  // assertions a clean slate without the fresh-registry workaround.
  auto& registry = Registry::global();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);
  Registry::reset_all();
  constexpr std::size_t kLanes = 8;
  constexpr int kPerLane = 2000;
  gp::parallel_for(0, kLanes, [&](std::size_t lane) {
    // Mixed find-or-create + record, as the solvers do: lookup races are
    // covered by the registry mutex, updates by the metric atomics.
    auto& counter = registry.counter("shared.count");
    auto& histogram = registry.histogram("shared.ms");
    auto& own = registry.counter("lane." + std::to_string(lane));
    for (int i = 0; i < kPerLane; ++i) {
      counter.add(1);
      histogram.record(1.0);
      own.add(1);
    }
  });
  EXPECT_EQ(registry.counter("shared.count").value(),
            static_cast<long long>(kLanes * kPerLane));
  EXPECT_EQ(registry.histogram("shared.ms").count(),
            static_cast<long long>(kLanes * kPerLane));
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    EXPECT_EQ(registry.counter("lane." + std::to_string(lane)).value(), kPerLane);
  }
  Registry::reset_all();
  registry.set_enabled(was_enabled);
}

TEST(RegistryTest, RowsAndJsonlExport) {
  Registry registry;
  registry.counter("x.solves").add(3);
  registry.gauge("x.converged").set(1.0);
  registry.histogram("x.ms").record(2.0);
  const auto rows = registry.rows();
  ASSERT_EQ(rows.size(), 3u);  // sorted by name within each kind group
  std::ostringstream out;
  registry.write_jsonl(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"x.solves\""), std::string::npos);
  EXPECT_NE(text.find("\"value\":3"), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"gauge\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(text.find("\"p95\""), std::string::npos);

  registry.reset_values();
  EXPECT_EQ(registry.counter("x.solves").value(), 0);
  EXPECT_EQ(registry.histogram("x.ms").count(), 0);
}

TEST(SpanTest, MeasuresTimeWithTracingDisabled) {
  ASSERT_FALSE(gp::obs::tracing_enabled());
  const std::size_t before = Tracer::global().events().size();
  Span span("test.disabled");
  volatile double sink = 0.0;
  for (int i = 0; i < 10000; ++i) sink = sink + 1.0;
  EXPECT_GE(span.elapsed_ms(), 0.0);
  const double at_close = span.close();
  EXPECT_GE(at_close, 0.0);
  // No event emission when tracing is off.
  EXPECT_EQ(Tracer::global().events().size(), before);
}

TEST(SpanTest, NestedSpansRecordDepthAndOrder) {
  auto& tracer = Tracer::global();
  tracer.start("unused_span_depth.jsonl", TraceFormat::kJsonl);
  {
    Span outer("test.outer");
    {
      Span inner("test.inner", 7.0);
    }
  }
  tracer.counter("test.value", 2.5);
  const std::vector<TraceEvent> events = tracer.events();
  tracer.discard();
  tracer.stop();
  std::remove("unused_span_depth.jsonl");

  ASSERT_EQ(events.size(), 3u);
  // Spans are recorded at close, so the inner span lands first.
  EXPECT_EQ(events[0].name, "test.inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_TRUE(events[0].has_arg);
  EXPECT_EQ(events[0].arg, 7.0);
  EXPECT_EQ(events[1].name, "test.outer");
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_GE(events[1].dur_us, events[0].dur_us);
  EXPECT_LE(events[1].ts_us, events[0].ts_us);
  EXPECT_EQ(events[2].name, "test.value");
  EXPECT_LT(events[2].dur_us, 0.0);  // counter sample marker
  EXPECT_EQ(events[2].arg, 2.5);
}

TEST(SpanTest, ConcurrentSpansFromPoolLanesGetDistinctThreadIds) {
  auto& tracer = Tracer::global();
  tracer.start("unused_span_tids.jsonl", TraceFormat::kJsonl);
  constexpr std::size_t kLanes = 4;
  gp::parallel_for(0, kLanes, [&](std::size_t lane) {
    Span span("test.lane", static_cast<double>(lane));
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
  });
  const std::vector<TraceEvent> events = tracer.events();
  tracer.discard();
  tracer.stop();
  std::remove("unused_span_tids.jsonl");

  ASSERT_EQ(events.size(), kLanes);
  std::vector<double> lanes_seen;
  for (const auto& event : events) {
    EXPECT_EQ(event.name, std::string("test.lane"));
    EXPECT_EQ(event.depth, 0);  // depth is per-thread, no cross-lane nesting
    lanes_seen.push_back(event.arg);
  }
  std::sort(lanes_seen.begin(), lanes_seen.end());
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    EXPECT_EQ(lanes_seen[lane], static_cast<double>(lane));
  }
}

TEST(ExportTest, ChromeTraceIsWellFormedJson) {
  std::vector<TraceEvent> events;
  events.push_back({"mod.solve", 10.0, 1500.0, 1, 0, 0.0, false});
  events.push_back({"mod.inner \"q\"", 20.0, 500.0, 1, 1, 3.0, true});
  events.push_back({"mod.residual", 30.0, -1.0, 2, 0, 0.125, true});
  std::ostringstream out;
  gp::obs::write_chrome_trace(out, events);
  const std::string text = out.str();
  EXPECT_EQ(text.front(), '[');
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(text.find("\"cat\":\"mod\""), std::string::npos);
  EXPECT_NE(text.find("\\\"q\\\""), std::string::npos);  // escaping
  EXPECT_NE(text.find("\"dur\":1500"), std::string::npos);
  // Trailing "]" closes the array.
  EXPECT_NE(text.rfind(']'), std::string::npos);
}

TEST(ExportTest, JsonlRoundTripsThroughTheFile) {
  const char* path = "test_obs_roundtrip.jsonl";
  gp::obs::start_tracing(path);
  {
    Span span("roundtrip.work");
  }
  gp::obs::stop_tracing();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line, all;
  bool saw_span = false;
  while (std::getline(in, line)) {
    all += line + "\n";
    if (line.find("\"type\":\"span\"") != std::string::npos &&
        line.find("roundtrip.work") != std::string::npos) {
      saw_span = true;
    }
  }
  in.close();
  std::remove(path);
  EXPECT_TRUE(saw_span) << all;
}

TEST(ExportTest, PathExtensionSelectsChromeVersusJsonl) {
  // ".json" exports the Chrome trace array, anything else the JSONL log;
  // both carry the run manifest (metadata event vs header line).
  auto run_traced = [](const char* path) {
    gp::obs::start_tracing(path);
    {
      Span span("fmt.work");
    }
    gp::obs::stop_tracing();
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    in.close();
    std::remove(path);
    return buffer.str();
  };

  const std::string chrome = run_traced("test_obs_fmt.json");
  EXPECT_EQ(chrome.front(), '[');
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"run_manifest\""), std::string::npos);
  EXPECT_NE(chrome.find("\"git_sha\""), std::string::npos);

  const std::string jsonl = run_traced("test_obs_fmt.jsonl");
  EXPECT_TRUE(gp::obs::is_manifest_line(jsonl));  // manifest is line 1
  EXPECT_NE(jsonl.find("\"type\":\"span\""), std::string::npos);
  EXPECT_EQ(jsonl.find("\"ph\":"), std::string::npos);  // not Chrome events
  // Stripping the manifest removes exactly the header line.
  const std::string stripped = gp::obs::strip_manifest_lines(jsonl);
  EXPECT_FALSE(gp::obs::is_manifest_line(stripped));
  EXPECT_NE(stripped.find("\"type\":\"span\""), std::string::npos);
}

TEST(ExportTest, JsonlExportAppendsRegistryAfterSpans) {
  // The registry outlives the tracer (both are process-wide statics, and
  // the tracer's export reads the registry): a stop_tracing() export must
  // be able to include live metric lines after the span events.
  auto& registry = Registry::global();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);
  Registry::reset_all();
  registry.counter("exporder.count").add(7);

  const char* path = "test_obs_order.jsonl";
  gp::obs::start_tracing(path);
  {
    Span span("exporder.work");
  }
  gp::obs::stop_tracing();
  registry.set_enabled(was_enabled);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  in.close();
  std::remove(path);
  const std::string text = buffer.str();
  const std::size_t span_at = text.find("exporder.work");
  const std::size_t metric_at = text.find("\"name\":\"exporder.count\"");
  EXPECT_NE(span_at, std::string::npos);
  EXPECT_NE(metric_at, std::string::npos);
  EXPECT_LT(span_at, metric_at);  // spans first, then the registry block
  Registry::reset_all();
}

TEST(ManifestTest, CaptureCarriesProvenanceAndEscapes) {
  gp::obs::RunManifest manifest = gp::obs::RunManifest::capture("test");
  EXPECT_EQ(manifest.tool, "test");
  EXPECT_FALSE(manifest.git_sha.empty());
  EXPECT_GE(manifest.threads, 1u);
  manifest.seeds = {1, 2};
  manifest.spec_hash = "00ff";
  manifest.trace_paths = {"a\"b"};
  const std::string line = manifest.to_jsonl_line();
  EXPECT_TRUE(gp::obs::is_manifest_line(line));
  EXPECT_NE(line.find("\"seeds\":[1,2]"), std::string::npos);
  EXPECT_NE(line.find("\"spec_hash\":\"00ff\""), std::string::npos);
  EXPECT_NE(line.find("a\\\"b"), std::string::npos);  // quote escaping
  EXPECT_EQ(gp::obs::strip_manifest_lines(line + "\n{\"x\":1}\n"), "{\"x\":1}\n");
}

TEST(SolveInfoTest, AdmmExportsHotLoopCountersToGlobalRegistry) {
  // The solver mirrors SolveInfo::hot_loop_allocations and
  // ::residual_spmv_ns into the global registry as admm.allocs /
  // admm.spmv_ns when it is enabled. This binary installs no operator-new
  // hooks, so the alloc counter must be exactly zero; the SpMV timer runs
  // off the wall clock and must be populated (timing is only collected
  // while the registry is enabled).
  gp::qp::QpProblem problem;
  problem.p = gp::linalg::SparseMatrix::identity(2);
  problem.q = {1.0, 1.0};
  problem.a = gp::linalg::SparseMatrix::from_triplets(1, 2, {{0, 0, 1.0}, {0, 1, 1.0}});
  problem.lower = {1.0};
  problem.upper = {1.0};

  auto& registry = Registry::global();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);
  Registry::reset_all();

  gp::qp::AdmmSolver solver;
  const auto result = solver.solve(problem);
  registry.set_enabled(was_enabled);

  ASSERT_EQ(result.status, gp::qp::SolveStatus::kOptimal);
  EXPECT_EQ(registry.counter("admm.allocs").value(), result.info.hot_loop_allocations);
  EXPECT_EQ(result.info.hot_loop_allocations, 0);
  EXPECT_EQ(registry.counter("admm.spmv_ns").value(), result.info.residual_spmv_ns);
  EXPECT_GT(result.info.residual_spmv_ns, 0);
}

TEST(SolveInfoTest, AdmmPopulatesFactorizationAndCacheFields) {
  // Two structurally identical QPs solved through one caching solver: the
  // first solve factors from scratch (cache_hits == 0), the second reuses
  // the cached scaling/ordering/symbolic analysis (cache_hits == 1). A
  // third solve with IDENTICAL data skips factorization outright.
  gp::qp::QpProblem problem;
  problem.p = gp::linalg::SparseMatrix::identity(2);
  problem.q = {1.0, 1.0};
  problem.a = gp::linalg::SparseMatrix::from_triplets(1, 2, {{0, 0, 1.0}, {0, 1, 1.0}});
  problem.lower = {1.0};
  problem.upper = {1.0};

  gp::qp::AdmmSettings settings;
  settings.cache_structure = true;
  gp::qp::AdmmSolver solver(settings);

  const auto first = solver.solve(problem);
  EXPECT_EQ(first.status, gp::qp::SolveStatus::kOptimal);
  EXPECT_EQ(first.info.cache_hits, 0);
  EXPECT_GE(first.info.factorizations, 1);
  EXPECT_FALSE(first.info.factorization_skipped);

  // Same pattern, new KKT values (q alone would leave the KKT matrix
  // untouched and take the factorization-skip path instead).
  problem.p = gp::linalg::SparseMatrix::identity(2, 2.0);
  problem.q = {2.0, 0.5};
  const auto second = solver.solve(problem);
  EXPECT_EQ(second.status, gp::qp::SolveStatus::kOptimal);
  EXPECT_EQ(second.info.cache_hits, 1);
  EXPECT_GE(second.info.factorizations, 1);
  EXPECT_FALSE(second.info.factorization_skipped);

  const auto third = solver.solve(problem);  // identical data
  EXPECT_EQ(third.status, gp::qp::SolveStatus::kOptimal);
  EXPECT_EQ(third.info.cache_hits, 1);
  EXPECT_TRUE(third.info.factorization_skipped);
  EXPECT_EQ(third.info.factorizations, 0);
}

}  // namespace
