// Tests for geoplace::obs: the metrics registry (counters, gauges,
// log-bucket histograms), the trace spans/exporters, and the contract the
// instrumented layers rely on — concurrent recording from thread_pool lanes
// is race-free (run under the tsan preset via the "obs" label), bucketed
// percentiles track the scalar reference within the documented bucket
// error, and a disabled registry/tracer records nothing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "obs/export.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "qp/admm_solver.hpp"
#include "qp/problem.hpp"

namespace {

using gp::obs::Histogram;
using gp::obs::HistogramOptions;
using gp::obs::Registry;
using gp::obs::Span;
using gp::obs::TraceEvent;
using gp::obs::TraceFormat;
using gp::obs::Tracer;

TEST(Counter, AddsAndResets) {
  gp::obs::Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42);
  counter.add(-2);
  EXPECT_EQ(counter.value(), 40);
  counter.reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(Gauge, LastWriteWins) {
  gp::obs::Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(3.5);
  gauge.set(-1.25);
  EXPECT_EQ(gauge.value(), -1.25);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0.0);
}

TEST(Histogram, ExactMoments) {
  Histogram h;
  for (double v : {1.0, 2.0, 4.0, 8.0}) h.record(v);
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 15.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.percentile(50.0), 0.0);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.p99, 0.0);
}

TEST(Histogram, UnderflowAndOverflowClampToObservedRange) {
  Histogram h(HistogramOptions{.min_value = 1.0, .max_value = 100.0,
                               .buckets_per_decade = 4});
  h.record(-5.0);   // underflow (negative)
  h.record(0.01);   // underflow
  h.record(1e9);    // overflow
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  // Percentiles are clamped to the exact observed [min, max] even though
  // the owning buckets have infinite/degenerate edges.
  EXPECT_GE(h.percentile(1.0), -5.0);
  EXPECT_LE(h.percentile(99.9), 1e9);
}

TEST(Histogram, PercentileTracksScalarReferenceWithinBucketError) {
  // The documented accuracy bound: one bucket, i.e. a relative error of
  // 10^(1/buckets_per_decade) - 1 (~15.5% at the default 16/decade).
  const HistogramOptions options;  // defaults
  const double bucket_ratio = std::pow(10.0, 1.0 / options.buckets_per_decade);
  Histogram h(options);
  std::vector<double> values;
  // A skewed latency-like population spanning three decades.
  for (int i = 1; i <= 1000; ++i) {
    const double v = 0.05 * std::pow(1.01, i);  // 0.05 .. ~1047, geometric
    values.push_back(v);
    h.record(v);
  }
  for (double p : {10.0, 50.0, 90.0, 95.0, 99.0}) {
    const double exact = gp::percentile(values, p);
    const double approx = h.percentile(p);
    EXPECT_LE(approx, exact * bucket_ratio * 1.001) << "p" << p;
    EXPECT_GE(approx, exact / bucket_ratio * 0.999) << "p" << p;
  }
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 1000);
  EXPECT_DOUBLE_EQ(snap.p50, h.percentile(50.0));
  EXPECT_DOUBLE_EQ(snap.p95, h.percentile(95.0));
  EXPECT_DOUBLE_EQ(snap.p99, h.percentile(99.0));
}

TEST(Histogram, ConcurrentRecordingIsExactForCountSumMinMax) {
  // thread_pool lanes hammer one histogram; count/sum/min/max are
  // maintained with atomics and must come out exact. Run under the tsan
  // preset (label "obs") this is also the data-race check.
  Histogram h;
  constexpr std::size_t kLanes = 8;
  constexpr int kPerLane = 5000;
  gp::parallel_for(0, kLanes, [&](std::size_t lane) {
    for (int i = 0; i < kPerLane; ++i) {
      h.record(static_cast<double>(lane + 1));  // lane k records value k+1
    }
  });
  EXPECT_EQ(h.count(), static_cast<long long>(kLanes * kPerLane));
  double expected_sum = 0.0;
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    expected_sum += static_cast<double>((lane + 1) * kPerLane);
  }
  EXPECT_DOUBLE_EQ(h.sum(), expected_sum);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), static_cast<double>(kLanes));
}

TEST(RegistryTest, FindOrCreateReturnsStableReferences) {
  Registry registry;
  auto& c1 = registry.counter("a.count");
  auto& c2 = registry.counter("a.count");
  EXPECT_EQ(&c1, &c2);
  auto& h1 = registry.histogram("a.ms");
  auto& h2 = registry.histogram("a.ms");
  EXPECT_EQ(&h1, &h2);
  // Same name, different kind: a programming error, reported loudly.
  EXPECT_THROW(registry.gauge("a.count"), std::exception);
  EXPECT_THROW(registry.counter("a.ms"), std::exception);
}

TEST(RegistryTest, ResetAllZeroesGlobalWithoutInvalidatingReferences) {
  // reset_all() is the test/bench-friendly reset: values go to zero but
  // every previously handed-out reference stays valid and registered.
  auto& registry = Registry::global();
  auto& counter = registry.counter("resetall.count");
  auto& gauge = registry.gauge("resetall.gauge");
  auto& histogram = registry.histogram("resetall.ms");
  counter.add(5);
  gauge.set(2.5);
  histogram.record(1.0);
  Registry::reset_all();
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.count(), 0);
  EXPECT_EQ(&counter, &registry.counter("resetall.count"));
  EXPECT_EQ(&histogram, &registry.histogram("resetall.ms"));
}

TEST(RegistryTest, ConcurrentLookupAndUpdateFromPoolLanes) {
  // Runs on the GLOBAL registry — reset_all() gives the exact-count
  // assertions a clean slate without the fresh-registry workaround.
  auto& registry = Registry::global();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);
  Registry::reset_all();
  constexpr std::size_t kLanes = 8;
  constexpr int kPerLane = 2000;
  gp::parallel_for(0, kLanes, [&](std::size_t lane) {
    // Mixed find-or-create + record, as the solvers do: lookup races are
    // covered by the registry mutex, updates by the metric atomics.
    auto& counter = registry.counter("shared.count");
    auto& histogram = registry.histogram("shared.ms");
    auto& own = registry.counter("lane." + std::to_string(lane));
    for (int i = 0; i < kPerLane; ++i) {
      counter.add(1);
      histogram.record(1.0);
      own.add(1);
    }
  });
  EXPECT_EQ(registry.counter("shared.count").value(),
            static_cast<long long>(kLanes * kPerLane));
  EXPECT_EQ(registry.histogram("shared.ms").count(),
            static_cast<long long>(kLanes * kPerLane));
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    EXPECT_EQ(registry.counter("lane." + std::to_string(lane)).value(), kPerLane);
  }
  Registry::reset_all();
  registry.set_enabled(was_enabled);
}

TEST(RegistryTest, RowsAndJsonlExport) {
  Registry registry;
  registry.counter("x.solves").add(3);
  registry.gauge("x.converged").set(1.0);
  registry.histogram("x.ms").record(2.0);
  const auto rows = registry.rows();
  ASSERT_EQ(rows.size(), 3u);  // sorted by name within each kind group
  std::ostringstream out;
  registry.write_jsonl(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"x.solves\""), std::string::npos);
  EXPECT_NE(text.find("\"value\":3"), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"gauge\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(text.find("\"p95\""), std::string::npos);

  registry.reset_values();
  EXPECT_EQ(registry.counter("x.solves").value(), 0);
  EXPECT_EQ(registry.histogram("x.ms").count(), 0);
}

TEST(SpanTest, MeasuresTimeWithTracingDisabled) {
  // Pin the flag: the suite may be running with GEOPLACE_TRACE armed (the
  // CI obs-on job does), and this test is about the disabled path.
  if (gp::obs::tracing_enabled()) gp::obs::stop_tracing();
  ASSERT_FALSE(gp::obs::tracing_enabled());
  const std::size_t before = Tracer::global().events().size();
  Span span("test.disabled");
  volatile double sink = 0.0;
  for (int i = 0; i < 10000; ++i) sink = sink + 1.0;
  EXPECT_GE(span.elapsed_ms(), 0.0);
  const double at_close = span.close();
  EXPECT_GE(at_close, 0.0);
  // No event emission when tracing is off.
  EXPECT_EQ(Tracer::global().events().size(), before);
}

TEST(SpanTest, NestedSpansRecordDepthAndOrder) {
  auto& tracer = Tracer::global();
  tracer.start("unused_span_depth.jsonl", TraceFormat::kJsonl);
  {
    Span outer("test.outer");
    {
      Span inner("test.inner", 7.0);
    }
  }
  tracer.counter("test.value", 2.5);
  const std::vector<TraceEvent> events = tracer.events();
  tracer.discard();
  tracer.stop();
  std::remove("unused_span_depth.jsonl");

  ASSERT_EQ(events.size(), 3u);
  // Spans are recorded at close, so the inner span lands first.
  EXPECT_EQ(events[0].name, "test.inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_TRUE(events[0].has_arg);
  EXPECT_EQ(events[0].arg, 7.0);
  EXPECT_EQ(events[1].name, "test.outer");
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_GE(events[1].dur_us, events[0].dur_us);
  EXPECT_LE(events[1].ts_us, events[0].ts_us);
  EXPECT_EQ(events[2].name, "test.value");
  EXPECT_LT(events[2].dur_us, 0.0);  // counter sample marker
  EXPECT_EQ(events[2].arg, 2.5);
}

TEST(SpanTest, ConcurrentSpansFromPoolLanesGetDistinctThreadIds) {
  auto& tracer = Tracer::global();
  tracer.start("unused_span_tids.jsonl", TraceFormat::kJsonl);
  constexpr std::size_t kLanes = 4;
  gp::parallel_for(0, kLanes, [&](std::size_t lane) {
    Span span("test.lane", static_cast<double>(lane));
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
  });
  const std::vector<TraceEvent> events = tracer.events();
  tracer.discard();
  tracer.stop();
  std::remove("unused_span_tids.jsonl");

  ASSERT_EQ(events.size(), kLanes);
  std::vector<double> lanes_seen;
  for (const auto& event : events) {
    EXPECT_EQ(event.name, std::string("test.lane"));
    EXPECT_EQ(event.depth, 0);  // depth is per-thread, no cross-lane nesting
    lanes_seen.push_back(event.arg);
  }
  std::sort(lanes_seen.begin(), lanes_seen.end());
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    EXPECT_EQ(lanes_seen[lane], static_cast<double>(lane));
  }
}

TEST(ExportTest, ChromeTraceIsWellFormedJson) {
  std::vector<TraceEvent> events;
  events.push_back({"mod.solve", 10.0, 1500.0, 1, 0, 0.0, false});
  events.push_back({"mod.inner \"q\"", 20.0, 500.0, 1, 1, 3.0, true});
  events.push_back({"mod.residual", 30.0, -1.0, 2, 0, 0.125, true});
  std::ostringstream out;
  gp::obs::write_chrome_trace(out, events);
  const std::string text = out.str();
  EXPECT_EQ(text.front(), '[');
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(text.find("\"cat\":\"mod\""), std::string::npos);
  EXPECT_NE(text.find("\\\"q\\\""), std::string::npos);  // escaping
  EXPECT_NE(text.find("\"dur\":1500"), std::string::npos);
  // Trailing "]" closes the array.
  EXPECT_NE(text.rfind(']'), std::string::npos);
}

TEST(ExportTest, JsonlRoundTripsThroughTheFile) {
  const char* path = "test_obs_roundtrip.jsonl";
  gp::obs::start_tracing(path);
  {
    Span span("roundtrip.work");
  }
  gp::obs::stop_tracing();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line, all;
  bool saw_span = false;
  while (std::getline(in, line)) {
    all += line + "\n";
    if (line.find("\"type\":\"span\"") != std::string::npos &&
        line.find("roundtrip.work") != std::string::npos) {
      saw_span = true;
    }
  }
  in.close();
  std::remove(path);
  EXPECT_TRUE(saw_span) << all;
}

TEST(ExportTest, PathExtensionSelectsChromeVersusJsonl) {
  // ".json" exports the Chrome trace array, anything else the JSONL log;
  // both carry the run manifest (metadata event vs header line).
  auto run_traced = [](const char* path) {
    gp::obs::start_tracing(path);
    {
      Span span("fmt.work");
    }
    gp::obs::stop_tracing();
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    in.close();
    std::remove(path);
    return buffer.str();
  };

  const std::string chrome = run_traced("test_obs_fmt.json");
  EXPECT_EQ(chrome.front(), '[');
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"run_manifest\""), std::string::npos);
  EXPECT_NE(chrome.find("\"git_sha\""), std::string::npos);

  const std::string jsonl = run_traced("test_obs_fmt.jsonl");
  EXPECT_TRUE(gp::obs::is_manifest_line(jsonl));  // manifest is line 1
  EXPECT_NE(jsonl.find("\"type\":\"span\""), std::string::npos);
  EXPECT_EQ(jsonl.find("\"ph\":"), std::string::npos);  // not Chrome events
  // Stripping the manifest removes exactly the header line.
  const std::string stripped = gp::obs::strip_manifest_lines(jsonl);
  EXPECT_FALSE(gp::obs::is_manifest_line(stripped));
  EXPECT_NE(stripped.find("\"type\":\"span\""), std::string::npos);
}

TEST(ExportTest, JsonlExportAppendsRegistryAfterSpans) {
  // The registry outlives the tracer (both are process-wide statics, and
  // the tracer's export reads the registry): a stop_tracing() export must
  // be able to include live metric lines after the span events.
  auto& registry = Registry::global();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);
  Registry::reset_all();
  registry.counter("exporder.count").add(7);

  const char* path = "test_obs_order.jsonl";
  gp::obs::start_tracing(path);
  {
    Span span("exporder.work");
  }
  gp::obs::stop_tracing();
  registry.set_enabled(was_enabled);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  in.close();
  std::remove(path);
  const std::string text = buffer.str();
  const std::size_t span_at = text.find("exporder.work");
  const std::size_t metric_at = text.find("\"name\":\"exporder.count\"");
  EXPECT_NE(span_at, std::string::npos);
  EXPECT_NE(metric_at, std::string::npos);
  EXPECT_LT(span_at, metric_at);  // spans first, then the registry block
  Registry::reset_all();
}

TEST(ManifestTest, CaptureCarriesProvenanceAndEscapes) {
  gp::obs::RunManifest manifest = gp::obs::RunManifest::capture("test");
  EXPECT_EQ(manifest.tool, "test");
  EXPECT_FALSE(manifest.git_sha.empty());
  EXPECT_GE(manifest.threads, 1u);
  manifest.seeds = {1, 2};
  manifest.spec_hash = "00ff";
  manifest.trace_paths = {"a\"b"};
  const std::string line = manifest.to_jsonl_line();
  EXPECT_TRUE(gp::obs::is_manifest_line(line));
  EXPECT_NE(line.find("\"seeds\":[1,2]"), std::string::npos);
  EXPECT_NE(line.find("\"spec_hash\":\"00ff\""), std::string::npos);
  EXPECT_NE(line.find("a\\\"b"), std::string::npos);  // quote escaping
  EXPECT_EQ(gp::obs::strip_manifest_lines(line + "\n{\"x\":1}\n"), "{\"x\":1}\n");
}

TEST(SolveInfoTest, AdmmExportsHotLoopCountersToGlobalRegistry) {
  // The solver mirrors SolveInfo::hot_loop_allocations and
  // ::residual_spmv_ns into the global registry as admm.allocs /
  // admm.spmv_ns when it is enabled. This binary installs no operator-new
  // hooks, so the alloc counter must be exactly zero; the SpMV timer runs
  // off the wall clock and must be populated (timing is only collected
  // while the registry is enabled).
  gp::qp::QpProblem problem;
  problem.p = gp::linalg::SparseMatrix::identity(2);
  problem.q = {1.0, 1.0};
  problem.a = gp::linalg::SparseMatrix::from_triplets(1, 2, {{0, 0, 1.0}, {0, 1, 1.0}});
  problem.lower = {1.0};
  problem.upper = {1.0};

  auto& registry = Registry::global();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);
  Registry::reset_all();

  gp::qp::AdmmSolver solver;
  const auto result = solver.solve(problem);
  registry.set_enabled(was_enabled);

  ASSERT_EQ(result.status, gp::qp::SolveStatus::kOptimal);
  EXPECT_EQ(registry.counter("admm.allocs").value(), result.info.hot_loop_allocations);
  EXPECT_EQ(result.info.hot_loop_allocations, 0);
  EXPECT_EQ(registry.counter("admm.spmv_ns").value(), result.info.residual_spmv_ns);
  EXPECT_GT(result.info.residual_spmv_ns, 0);
}

TEST(SolveInfoTest, AdmmPopulatesFactorizationAndCacheFields) {
  // Two structurally identical QPs solved through one caching solver: the
  // first solve factors from scratch (cache_hits == 0), the second reuses
  // the cached scaling/ordering/symbolic analysis (cache_hits == 1). A
  // third solve with IDENTICAL data skips factorization outright.
  gp::qp::QpProblem problem;
  problem.p = gp::linalg::SparseMatrix::identity(2);
  problem.q = {1.0, 1.0};
  problem.a = gp::linalg::SparseMatrix::from_triplets(1, 2, {{0, 0, 1.0}, {0, 1, 1.0}});
  problem.lower = {1.0};
  problem.upper = {1.0};

  gp::qp::AdmmSettings settings;
  settings.cache_structure = true;
  gp::qp::AdmmSolver solver(settings);

  const auto first = solver.solve(problem);
  EXPECT_EQ(first.status, gp::qp::SolveStatus::kOptimal);
  EXPECT_EQ(first.info.cache_hits, 0);
  EXPECT_GE(first.info.factorizations, 1);
  EXPECT_FALSE(first.info.factorization_skipped);

  // Same pattern, new KKT values (q alone would leave the KKT matrix
  // untouched and take the factorization-skip path instead).
  problem.p = gp::linalg::SparseMatrix::identity(2, 2.0);
  problem.q = {2.0, 0.5};
  const auto second = solver.solve(problem);
  EXPECT_EQ(second.status, gp::qp::SolveStatus::kOptimal);
  EXPECT_EQ(second.info.cache_hits, 1);
  EXPECT_GE(second.info.factorizations, 1);
  EXPECT_FALSE(second.info.factorization_skipped);

  const auto third = solver.solve(problem);  // identical data
  EXPECT_EQ(third.status, gp::qp::SolveStatus::kOptimal);
  EXPECT_EQ(third.info.cache_hits, 1);
  EXPECT_TRUE(third.info.factorization_skipped);
  EXPECT_EQ(third.info.factorizations, 0);
}

// ---------------------------------------------------- percentile property

// The provable accuracy contract of Histogram::percentile at percentile p
// over n samples: the estimate interpolates inside the bucket holding the
// order statistic x_(ceil(max(1, p/100*n))), then clamps to the exact
// observed [min, max]. So for an interior x_j the estimate lies within one
// bucket ratio r = 10^(1/buckets_per_decade) of x_j; when x_j underflows
// the estimate is capped by min_value, and when it overflows it is at
// least max_value (each still clamped to the observed range).
void expect_percentile_within_bucket_error(const Histogram& h,
                                           const std::vector<double>& sorted, double p) {
  ASSERT_FALSE(sorted.empty());
  const HistogramOptions& options = h.options();
  const double r = std::pow(10.0, 1.0 / options.buckets_per_decade);
  const double n = static_cast<double>(sorted.size());
  const double rank = std::max(1.0, p / 100.0 * n);
  const std::size_t j =
      std::min(sorted.size(), static_cast<std::size_t>(std::ceil(rank - 1e-9)));
  const double xj = sorted[j - 1];
  const double estimate = h.percentile(p);
  const double exact = gp::percentile(sorted, p);

  // Always inside the exact observed range (the clamp).
  EXPECT_GE(estimate, sorted.front() - 1e-12) << "p" << p;
  EXPECT_LE(estimate, sorted.back() + 1e-12) << "p" << p;

  if (xj < options.min_value) {
    // Underflow bucket [0, min_value): the estimate cannot exceed its edge.
    EXPECT_LE(estimate, options.min_value * (1.0 + 1e-12)) << "p" << p;
  } else if (xj >= options.max_value) {
    // Overflow bucket [max_value, max]: the estimate starts at its edge.
    EXPECT_GE(estimate, options.max_value * (1.0 - 1e-12)) << "p" << p;
  } else {
    EXPECT_GE(estimate, xj / r * (1.0 - 1e-9)) << "p" << p << " xj " << xj;
    EXPECT_LE(estimate, xj * r * (1.0 + 1e-9)) << "p" << p << " xj " << xj;
    // ... which also pins it within one bucket ratio of the interpolated
    // exact percentile's bracketing order statistics.
    EXPECT_GE(estimate, std::min(xj, exact) / r * (1.0 - 1e-9)) << "p" << p;
    EXPECT_LE(estimate, std::max(xj, exact) * r * (1.0 + 1e-9)) << "p" << p;
  }
}

constexpr double kPercentiles[] = {0.0, 1.0, 10.0, 25.0, 50.0,
                                   75.0, 90.0, 95.0, 99.0, 99.9, 100.0};

/// Deterministic LCG in [0, 1) (no global RNG state in tests).
struct Lcg {
  std::uint64_t state;
  double next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) / 9007199254740992.0;
  }
};

TEST(Histogram, PropertyRandomSamplesStayWithinBucketError) {
  // Log-uniform populations over several option shapes, including a coarse
  // 4-buckets-per-decade layout (worst documented error ~78%) and a narrow
  // [1, 10] range that pushes most samples into the underflow/overflow
  // buckets.
  const HistogramOptions shapes[] = {
      {},                     // defaults: [1e-3, 1e7], 16 per decade
      {1e-3, 1e7, 4},         // coarse buckets
      {1.0, 10.0, 16},        // narrow range: heavy under/overflow
  };
  for (const auto& options : shapes) {
    Histogram h(options);
    Lcg rng{12345};
    std::vector<double> sorted;
    for (int i = 0; i < 2000; ++i) {
      const double v = std::pow(10.0, rng.next() * 8.0 - 4.0);  // 1e-4 .. 1e4
      h.record(v);
      sorted.push_back(v);
    }
    std::sort(sorted.begin(), sorted.end());
    for (double p : kPercentiles) expect_percentile_within_bucket_error(h, sorted, p);
  }
}

TEST(Histogram, PropertySingleSampleIsExactAtEveryPercentile) {
  // count == 1: every percentile clamps to the one observed value.
  for (double v : {3.7, 1e-6, 0.0, -2.5, 1e9}) {
    Histogram h;
    h.record(v);
    for (double p : kPercentiles) {
      EXPECT_DOUBLE_EQ(h.percentile(p), v) << "p" << p << " v " << v;
    }
  }
}

TEST(Histogram, PropertyConstantSamplesAreExact) {
  // All-equal samples: min == max, so the clamp makes every percentile
  // exact regardless of which bucket the value hashed into.
  Histogram h;
  std::vector<double> sorted(100, 0.42);
  for (double v : sorted) h.record(v);
  for (double p : kPercentiles) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 0.42);
    expect_percentile_within_bucket_error(h, sorted, p);
  }
}

TEST(Histogram, PropertyUnderflowAndOverflowEdges) {
  const HistogramOptions options{1.0, 100.0, 8};

  // Entirely below min_value (zeros and negatives clamp there too): the
  // estimate lives in [observed min, min_value].
  Histogram low(options);
  std::vector<double> low_sorted = {-3.0, 0.0, 0.01, 0.2, 0.5};
  for (double v : low_sorted) low.record(v);
  for (double p : kPercentiles) {
    expect_percentile_within_bucket_error(low, low_sorted, p);
    EXPECT_LE(low.percentile(p), options.min_value);
    EXPECT_GE(low.percentile(p), -3.0);
  }

  // Entirely at/above max_value: the estimate lives in [max_value, max].
  Histogram high(options);
  std::vector<double> high_sorted = {100.0, 500.0, 1e4, 2e6};
  for (double v : high_sorted) high.record(v);
  for (double p : kPercentiles) {
    expect_percentile_within_bucket_error(high, high_sorted, p);
    EXPECT_GE(high.percentile(p), options.max_value);
    EXPECT_LE(high.percentile(p), 2e6);
  }

  // A mixed population crossing both edges.
  Histogram mixed(options);
  Lcg rng{777};
  std::vector<double> mixed_sorted;
  for (int i = 0; i < 500; ++i) {
    const double v = std::pow(10.0, rng.next() * 8.0 - 4.0);  // 1e-4 .. 1e4
    mixed.record(v);
    mixed_sorted.push_back(v);
  }
  std::sort(mixed_sorted.begin(), mixed_sorted.end());
  for (double p : kPercentiles) {
    expect_percentile_within_bucket_error(mixed, mixed_sorted, p);
  }
}

TEST(Registry, HistogramSnapshotTracksExactPercentiles) {
  // The registry path (named histogram + snapshot p50/p95/p99) obeys the
  // same bound as a standalone Histogram.
  auto& h = Registry::global().histogram("test.percentile_property");
  h.reset();
  Lcg rng{4242};
  std::vector<double> sorted;
  for (int i = 0; i < 1000; ++i) {
    const double v = std::pow(10.0, rng.next() * 6.0 - 3.0);  // 1e-3 .. 1e3
    h.record(v);
    sorted.push_back(v);
  }
  std::sort(sorted.begin(), sorted.end());
  for (double p : {50.0, 95.0, 99.0}) {
    expect_percentile_within_bucket_error(h, sorted, p);
  }
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 1000);
  EXPECT_DOUBLE_EQ(snap.p50, h.percentile(50.0));
  EXPECT_DOUBLE_EQ(snap.p95, h.percentile(95.0));
  EXPECT_DOUBLE_EQ(snap.p99, h.percentile(99.0));
  h.reset();
}

// ------------------------------------------------------------- timeline

using gp::obs::TelemetryFrame;
using gp::obs::TimelineWriter;

TEST(TimelineWriter, RingWrapsAndGathersOldestFirst) {
  TimelineWriter writer(4);
  EXPECT_EQ(writer.capacity(), 4u);
  for (int k = 0; k < 10; ++k) {
    TelemetryFrame& frame = writer.begin(k, 0.5 * k);
    frame.demand_total = 100.0 + k;
    writer.commit();
  }
  EXPECT_EQ(writer.size(), 4u);
  EXPECT_EQ(writer.total_committed(), 10);
  const auto frames = writer.frames();
  ASSERT_EQ(frames.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(frames[i].period, 6.0 + i);  // oldest retained first
    EXPECT_DOUBLE_EQ(frames[i].utc_hour, 0.5 * (6 + i));
    EXPECT_DOUBLE_EQ(frames[i].demand_total, 106.0 + i);
  }
  writer.clear();
  EXPECT_EQ(writer.size(), 0u);
  EXPECT_TRUE(writer.frames().empty());
}

TEST(TimelineWriter, BeginReplacesOpenFrameAndCommitCloses) {
  TimelineWriter writer(8);
  EXPECT_EQ(writer.current(), nullptr);
  writer.begin(0, 0.0).cost_resource = 1.0;
  writer.begin(1, 0.5).cost_resource = 2.0;  // discards the un-committed 0
  ASSERT_NE(writer.current(), nullptr);
  writer.commit();
  EXPECT_EQ(writer.current(), nullptr);
  writer.commit();  // no open frame: no-op
  const auto frames = writer.frames();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_DOUBLE_EQ(frames[0].period, 1.0);
  EXPECT_DOUBLE_EQ(frames[0].cost_resource, 2.0);
}

TEST(TimelineWriter, ColumnarJsonlExportIsSelfDescribing) {
  TimelineWriter writer(8);
  writer.begin(0, 0.0).cost_resource = 12.5;
  writer.commit();
  TelemetryFrame& second = writer.begin(1, 0.5);
  second.cost_resource = 0.1;
  second.mean_latency_ms = std::nan("");
  writer.commit();

  std::ostringstream out;
  gp::obs::RunManifest manifest;
  manifest.tool = "timeline";
  manifest.git_sha = "deadbeef";
  writer.write_jsonl(out, &manifest);

  std::istringstream in(out.str());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  // manifest + segment header + one line per column.
  ASSERT_EQ(lines.size(), 2 + gp::obs::timeline_num_columns());
  EXPECT_NE(lines[0].find("\"type\":\"manifest\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"type\":\"timeline\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"frames\":2"), std::string::npos);
  for (const std::string& name : gp::obs::timeline_column_names()) {
    EXPECT_NE(lines[1].find("\"" + name + "\""), std::string::npos) << name;
  }
  bool saw_cost = false, saw_latency = false;
  for (std::size_t i = 2; i < lines.size(); ++i) {
    EXPECT_NE(lines[i].find("\"type\":\"timeline_col\""), std::string::npos);
    if (lines[i].find("\"name\":\"cost_resource\"") != std::string::npos) {
      saw_cost = true;
      EXPECT_NE(lines[i].find("[12.5,0.1]"), std::string::npos) << lines[i];
    }
    if (lines[i].find("\"name\":\"mean_latency_ms\"") != std::string::npos) {
      saw_latency = true;
      // Non-finite doubles are null (JSON has no NaN).
      EXPECT_NE(lines[i].find("[0,null]"), std::string::npos) << lines[i];
    }
  }
  EXPECT_TRUE(saw_cost);
  EXPECT_TRUE(saw_latency);
}

TEST(TimelineWriter, DisabledTimelineContributesNothing) {
  TimelineWriter::set_enabled(false);
  EXPECT_EQ(gp::obs::timeline_frame(), nullptr);
  TimelineWriter::set_enabled(true);
  // Enabled but no open frame: contributors still get nullptr, not a stale
  // frame.
  TimelineWriter::local().clear();
  EXPECT_EQ(gp::obs::timeline_frame(), nullptr);
  TelemetryFrame& frame = TimelineWriter::local().begin(0, 0.0);
  EXPECT_EQ(gp::obs::timeline_frame(), &frame);
  TimelineWriter::local().commit();
  EXPECT_EQ(gp::obs::timeline_frame(), nullptr);
  TimelineWriter::set_enabled(false);
  TimelineWriter::local().clear();
}

}  // namespace
