// Tests for the common substrate: RNG determinism and distribution
// statistics, CSV formatting, descriptive statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace gp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double total = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) total += rng.uniform();
  EXPECT_NEAR(total / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  constexpr int kN = 200000;
  double total = 0.0, total_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double z = rng.normal();
    total += z;
    total_sq += z * z;
  }
  EXPECT_NEAR(total / kN, 0.0, 0.02);
  EXPECT_NEAR(total_sq / kN, 1.0, 0.03);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(19);
  constexpr int kN = 100000;
  double total = 0.0;
  for (int i = 0; i < kN; ++i) total += rng.exponential(4.0);
  EXPECT_NEAR(total / kN, 0.25, 0.01);
}

class RngPoissonTest : public ::testing::TestWithParam<double> {};

TEST_P(RngPoissonTest, MeanAndVarianceMatch) {
  const double mean = GetParam();
  Rng rng(23);
  constexpr int kN = 50000;
  std::vector<double> samples;
  samples.reserve(kN);
  for (int i = 0; i < kN; ++i) samples.push_back(static_cast<double>(rng.poisson(mean)));
  // Poisson: mean == variance == rate.
  EXPECT_NEAR(gp::mean(samples), mean, 0.05 * mean + 0.05);
  EXPECT_NEAR(gp::variance(samples), mean, 0.1 * mean + 0.1);
}

INSTANTIATE_TEST_SUITE_P(SmallAndLargeMeans, RngPoissonTest,
                         ::testing::Values(0.1, 1.0, 5.0, 29.0, 31.0, 100.0, 1000.0));

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(31);
  Rng child = parent.split();
  // The child stream must differ from the parent continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent() == child());
  EXPECT_LT(equal, 3);
}

TEST(Rng, BernoulliFrequencyMatches) {
  Rng rng(37);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, PreconditionViolationsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), PreconditionError);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
  EXPECT_THROW(rng.poisson(-1.0), PreconditionError);
  EXPECT_THROW(rng.bernoulli(1.5), PreconditionError);
  EXPECT_THROW(rng.normal(0.0, -1.0), PreconditionError);
}

TEST(Csv, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  csv.row(std::vector<double>{1.5, 2.0});
  EXPECT_EQ(out.str(), "a,b\n1.5,2\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, DoubleHeaderThrows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a"});
  EXPECT_THROW(csv.header({"b"}), PreconditionError);
}

TEST(Csv, FormatsSpecialDoubles) {
  EXPECT_EQ(CsvWriter::format(std::nan("")), "nan");
  EXPECT_EQ(CsvWriter::format(INFINITY), "inf");
  EXPECT_EQ(CsvWriter::format(-INFINITY), "-inf");
}

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> values{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(values), 5.0);
  EXPECT_NEAR(variance(values), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(values), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, EmptyInputsAreZero) {
  const std::vector<double> empty;
  EXPECT_EQ(mean(empty), 0.0);
  EXPECT_EQ(variance(empty), 0.0);
  EXPECT_EQ(sum(empty), 0.0);
  EXPECT_EQ(max_abs(empty), 0.0);
  EXPECT_EQ(total_variation(empty), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(values, 50.0), 2.5);
}

TEST(Stats, PercentileValidatesInput) {
  EXPECT_THROW(percentile({}, 50.0), PreconditionError);
  const std::vector<double> one{1.0};
  EXPECT_THROW(percentile(one, -1.0), PreconditionError);
  EXPECT_THROW(percentile(one, 101.0), PreconditionError);
}

TEST(Stats, TotalVariationMeasuresChurn) {
  const std::vector<double> flat{3.0, 3.0, 3.0};
  const std::vector<double> spiky{0.0, 5.0, 0.0, 5.0};
  EXPECT_DOUBLE_EQ(total_variation(flat), 0.0);
  EXPECT_DOUBLE_EQ(total_variation(spiky), 15.0);
}

TEST(Stats, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(0.0, 0.0));
}

}  // namespace
}  // namespace gp
