// Tests for the M/M/1 / SLA module and FFD bin packing.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "binpack/ffd.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "queueing/mm1.hpp"

namespace gp {
namespace {

using queueing::SlaParams;

TEST(Mm1, UtilizationAndStability) {
  EXPECT_DOUBLE_EQ(queueing::utilization(10.0, 5.0), 0.5);
  EXPECT_TRUE(queueing::stable(10.0, 9.99));
  EXPECT_FALSE(queueing::stable(10.0, 10.0));
  EXPECT_THROW(queueing::utilization(0.0, 1.0), PreconditionError);
}

TEST(Mm1, MeanResponseTimeFormula) {
  EXPECT_DOUBLE_EQ(queueing::mean_response_time(10.0, 0.0), 0.1);
  EXPECT_DOUBLE_EQ(queueing::mean_response_time(10.0, 8.0), 0.5);
  EXPECT_THROW(queueing::mean_response_time(10.0, 10.0), PreconditionError);
}

TEST(Mm1, PercentileFactorMatchesPaper) {
  EXPECT_DOUBLE_EQ(queueing::percentile_factor(0.0), 1.0);
  // ln(1 / 0.05) ~= 3, the paper's phi = 95% example.
  EXPECT_NEAR(queueing::percentile_factor(0.95), 2.9957, 1e-3);
  EXPECT_THROW(queueing::percentile_factor(1.0), PreconditionError);
  EXPECT_THROW(queueing::percentile_factor(-0.1), PreconditionError);
}

TEST(Sla, CoefficientMatchesEquation10) {
  // a = r / (mu - 1/(dbar - d)); mu=10, dbar-d=0.5 -> a = 1/8.
  SlaParams params;
  params.mu = 10.0;
  params.network_latency = 0.5;
  params.max_latency = 1.0;
  EXPECT_NEAR(queueing::sla_coefficient(params), 1.0 / 8.0, 1e-12);
  EXPECT_TRUE(queueing::sla_feasible(params));
}

TEST(Sla, ReservationRatioScalesCoefficient) {
  SlaParams params;
  params.mu = 10.0;
  params.network_latency = 0.5;
  params.max_latency = 1.0;
  params.reservation_ratio = 1.5;
  EXPECT_NEAR(queueing::sla_coefficient(params), 1.5 / 8.0, 1e-12);
}

TEST(Sla, InfeasibleWhenNetworkLatencyDominates) {
  SlaParams params;
  params.mu = 10.0;
  params.network_latency = 1.0;
  params.max_latency = 1.0;  // zero queueing budget
  EXPECT_EQ(queueing::sla_coefficient(params), std::numeric_limits<double>::infinity());
  EXPECT_FALSE(queueing::sla_feasible(params));
  params.max_latency = 1.05;  // budget 0.05 -> needs mu > 20: infeasible
  EXPECT_FALSE(queueing::sla_feasible(params));
  params.max_latency = 1.2;   // budget 0.2 -> needs mu > 5: feasible
  EXPECT_TRUE(queueing::sla_feasible(params));
}

TEST(Sla, PercentileTightensCoefficient) {
  SlaParams mean_sla;
  mean_sla.mu = 20.0;
  mean_sla.network_latency = 0.0;
  mean_sla.max_latency = 0.5;
  SlaParams p95 = mean_sla;
  p95.percentile = 0.95;
  EXPECT_GT(queueing::sla_coefficient(p95), queueing::sla_coefficient(mean_sla));
}

TEST(Sla, SatisfiedAllocationMeetsLatencyBound) {
  // Allocate exactly a*sigma servers; the resulting per-server load must
  // produce a mean delay within the SLA (the chain (8) -> (11) inverted).
  SlaParams params;
  params.mu = 10.0;
  params.network_latency = 0.2;
  params.max_latency = 0.6;
  const double a = queueing::sla_coefficient(params);
  const double sigma = 120.0;     // total demand
  const double x = a * sigma;     // minimal allocation
  const double lambda = sigma / x;
  const double delay = params.network_latency + queueing::mean_response_time(params.mu, lambda);
  EXPECT_NEAR(delay, params.max_latency, 1e-9);
}

TEST(Ffd, PacksKnownInstanceOptimally) {
  // Items {6,5,4,3,2,1}, capacity 7: optimum is 3 bins (6+1, 5+2, 4+3).
  const auto result = binpack::first_fit_decreasing({6, 5, 4, 3, 2, 1}, 7.0);
  EXPECT_EQ(result.bins_used, 3u);
  for (double load : result.bin_loads) EXPECT_DOUBLE_EQ(load, 7.0);
  EXPECT_NEAR(result.waste_fraction, 0.0, 1e-12);
}

TEST(Ffd, AssignmentIsConsistent) {
  const std::vector<double> sizes{3, 3, 3, 2, 2};
  const auto result = binpack::first_fit_decreasing(sizes, 5.0);
  ASSERT_EQ(result.assignment.size(), sizes.size());
  std::vector<double> loads(result.bins_used, 0.0);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    ASSERT_LT(result.assignment[i], result.bins_used);
    loads[result.assignment[i]] += sizes[i];
  }
  for (std::size_t b = 0; b < result.bins_used; ++b) {
    EXPECT_NEAR(loads[b], result.bin_loads[b], 1e-12);
    EXPECT_LE(loads[b], 5.0 + 1e-9);
  }
}

TEST(Ffd, PowerOfTwoSizesPackWithoutWaste) {
  // The GoGrid claim from Section VI: doubling VM flavors that fill whole
  // machines leave no waste under FFD.
  Rng rng(9);
  std::vector<double> sizes;
  double total = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double s = std::pow(2.0, rng.uniform_int(0, 3));  // 1, 2, 4, 8
    sizes.push_back(s);
    total += s;
  }
  // Top up to a multiple of the capacity so a perfect packing exists.
  const double capacity = 16.0;
  while (std::fmod(total, capacity) != 0.0) {
    const double missing = capacity - std::fmod(total, capacity);
    const double s = std::min(missing, 1.0);
    sizes.push_back(s);
    total += s;
  }
  ASSERT_TRUE(binpack::divisible_hierarchy(sizes, capacity));
  const auto result = binpack::first_fit_decreasing(sizes, capacity);
  EXPECT_EQ(result.bins_used, binpack::capacity_lower_bound(sizes, capacity));
  EXPECT_NEAR(result.waste_fraction, 0.0, 1e-9);
}

TEST(Ffd, ArbitrarySizesCanWaste) {
  // Sizes just over half capacity force one bin per item.
  const auto result = binpack::first_fit_decreasing({0.51, 0.51, 0.51}, 1.0);
  EXPECT_EQ(result.bins_used, 3u);
  EXPECT_GT(result.waste_fraction, 0.4);
}

TEST(Ffd, RespectsApproximationGuarantee) {
  // FFD uses at most 11/9 OPT + 1 bins; check against the capacity lower
  // bound on random instances.
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> sizes;
    const int n = static_cast<int>(rng.uniform_int(5, 60));
    for (int i = 0; i < n; ++i) sizes.push_back(rng.uniform(0.05, 1.0));
    const auto result = binpack::first_fit_decreasing(sizes, 1.0);
    const auto lower = binpack::capacity_lower_bound(sizes, 1.0);
    EXPECT_LE(result.bins_used,
              static_cast<std::size_t>(std::ceil(11.0 / 9.0 * static_cast<double>(lower))) + 1);
    EXPECT_GE(result.bins_used, lower);
  }
}

TEST(Ffd, DivisibleHierarchyDetection) {
  EXPECT_TRUE(binpack::divisible_hierarchy({1, 2, 4, 8}, 16.0));
  EXPECT_TRUE(binpack::divisible_hierarchy({2, 2, 2}, 8.0));
  EXPECT_FALSE(binpack::divisible_hierarchy({3, 4}, 12.0));   // 3 !| 4
  EXPECT_FALSE(binpack::divisible_hierarchy({5}, 12.0));      // 5 !| 12
}

TEST(Ffd, PreconditionChecks) {
  EXPECT_THROW(binpack::first_fit_decreasing({2.0}, 1.0), PreconditionError);
  EXPECT_THROW(binpack::first_fit_decreasing({0.0}, 1.0), PreconditionError);
  EXPECT_THROW(binpack::first_fit_decreasing({0.5}, 0.0), PreconditionError);
}

}  // namespace
}  // namespace gp
